//! Umbrella crate for the PowerGear reproduction workspace.
//!
//! Re-exports the public API of every subsystem crate so that the
//! root-level `examples/` and `tests/` can exercise the whole system.
pub use pg_activity as activity;
pub use pg_datasets as datasets;
pub use pg_dse as dse;
pub use pg_gnn as gnn;
pub use pg_graphcon as graphcon;
pub use pg_hlpow as hlpow;
pub use pg_hls as hls;
pub use pg_ir as ir;
pub use pg_powersim as powersim;
pub use pg_store as store;
pub use pg_tensor as tensor;
pub use pg_util as util;
pub use powergear;
