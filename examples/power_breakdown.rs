//! Power breakdown across directive configurations.
//!
//! ```text
//! cargo run --release --example power_breakdown
//! ```
//!
//! Uses the board-measurement oracle directly to show how pipelining,
//! unrolling and partitioning trade latency against power — the physical
//! behaviour PowerGear learns to predict, broken into Eq. 1's components
//! (interconnect, FU-internal, clock) plus gated static power.

use pg_activity::{execute, Stimuli};
use pg_datasets::polybench;
use pg_hls::{Directives, HlsFlow};
use pg_powersim::BoardOracle;

fn main() {
    let kernel = polybench::gemm(8);
    let flow = HlsFlow::new();
    let oracle = BoardOracle::default();
    let stim = Stimuli::for_kernel(&kernel, 0);

    let mut configs: Vec<(&str, Directives)> = Vec::new();
    configs.push(("baseline (no directives)", Directives::new()));
    let mut d = Directives::new();
    d.pipeline("k");
    configs.push(("pipeline k", d));
    let mut d = Directives::new();
    d.pipeline("k").unroll("k", 2);
    configs.push(("pipeline + unroll 2", d));
    let mut d = Directives::new();
    d.pipeline("k")
        .unroll("k", 4)
        .partition("A", 4)
        .partition("B", 4)
        .partition("C", 4);
    configs.push(("pipeline + unroll 4 + partition 4", d));

    println!(
        "{:<36} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "configuration", "latency", "total", "dynamic", "static", "nets", "intern", "clock"
    );
    for (name, dir) in configs {
        let design = flow.run(&kernel, &dir).expect("valid config");
        let trace = execute(&design, &stim);
        let p = oracle.measure(&design, &trace);
        println!(
            "{:<36} {:>9} {:>7.3}W {:>7.3}W {:>7.3}W {:>7.3}W {:>7.3}W {:>7.3}W",
            name,
            design.report.latency_cycles,
            p.total,
            p.dynamic,
            p.static_,
            p.nets,
            p.internal,
            p.clock
        );
    }
    println!("\nfaster designs burn more power: that is the Pareto tradeoff DSE navigates.");
}
