//! Quickstart: train PowerGear on a few kernels and estimate power for a
//! new design point.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the full Fig. 1 flow at a small scale: dataset construction
//! (HLS → activity trace → graph → oracle labels), HEC-GNN ensemble
//! training, and inference on an unseen directive configuration.

use pg_datasets::{build_kernel_dataset, polybench, DatasetConfig, PowerTarget};
use pg_hls::Directives;
use powergear::{PowerGear, PowerGearConfig};

fn main() {
    // 1. Build labeled datasets for three kernels (small problem size so
    //    this example runs in tens of seconds).
    let cfg = DatasetConfig {
        size: 8,
        max_samples: 32,
        seed: 1,
        threads: 2,
    };
    println!("building datasets (HLS -> trace -> graph -> oracle)...");
    let datasets: Vec<_> = [polybench::mvt(8), polybench::bicg(8), polybench::atax(8)]
        .iter()
        .map(|k| {
            let ds = build_kernel_dataset(k, &cfg);
            println!(
                "  {:8} {:3} samples, avg {:5.1} graph nodes",
                ds.kernel,
                ds.samples.len(),
                ds.avg_nodes()
            );
            ds
        })
        .collect();

    // 2. Train the PowerGear estimator (scaled-down hyperparameters).
    let mut pg_cfg = PowerGearConfig::quick();
    pg_cfg.hidden = 16;
    pg_cfg.epochs = 15;
    pg_cfg.folds = 2;
    println!("training HEC-GNN ensembles (total + dynamic)...");
    let model = PowerGear::fit(&datasets, &pg_cfg);

    // 3. Estimate power for a *new* design point of mvt.
    let kernel = polybench::mvt(8);
    let mut directives = Directives::new();
    directives
        .pipeline("j")
        .unroll("j", 4)
        .partition("A", 4)
        .partition("y1", 4);
    let est = model
        .estimate(&kernel, &directives)
        .expect("directives are valid for mvt");
    println!("\nnew design point: mvt with {directives}");
    println!("  estimated total power   : {:.3} W", est.total_w);
    println!("  estimated dynamic power : {:.3} W", est.dynamic_w);
    println!("  HLS latency             : {} cycles", est.latency_cycles);
    println!("  graph size              : {} nodes", est.graph_nodes);

    // 4. Compare against the simulated board measurement (the oracle that
    //    produced the training labels).
    let sample = pg_datasets::build_sample(
        &kernel,
        &directives,
        &pg_activity::Stimuli::for_kernel(&kernel, 1),
        &datasets[0].baseline,
    );
    println!("\nsimulated measurement (ground-truth oracle):");
    println!("  total   {:.3} W", sample.power.total);
    println!("  dynamic {:.3} W", sample.power.dynamic);
    let within = datasets[0].labeled(PowerTarget::Total);
    println!(
        "\n(model was fit on {} labeled designs across 3 kernels)",
        within.len() * 3
    );
}
