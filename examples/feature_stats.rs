//! Dataset diagnostics: feature magnitudes, graph sizes and label ranges
//! for one kernel's design space — useful when tuning training
//! hyperparameters or validating a new oracle calibration.
//!
//! ```text
//! cargo run --release --example feature_stats [kernel] [size] [samples]
//! ```

use pg_datasets::{build_kernel_dataset, polybench, DatasetConfig, PowerTarget};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kernel_name = args.first().map(|s| s.as_str()).unwrap_or("atax");
    let size: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let samples: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(24);

    let kernel = polybench::by_name(kernel_name, size)
        .unwrap_or_else(|| panic!("unknown kernel `{kernel_name}`"));
    let cfg = DatasetConfig {
        size,
        max_samples: samples,
        seed: 1,
        threads: 2,
    };
    let ds = build_kernel_dataset(&kernel, &cfg);

    let mut max_edge = [0f32; 4];
    let mut max_node_sa = 0f32;
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    for s in &ds.samples {
        nodes.push(s.graph.num_nodes as f64);
        edges.push(s.graph.num_edges() as f64);
        for ef in &s.graph.edge_feats {
            for k in 0..4 {
                max_edge[k] = max_edge[k].max(ef[k]);
            }
        }
        for n in 0..s.graph.num_nodes {
            let f = s.graph.node(n);
            max_node_sa = max_node_sa.max(f[28 + 3]);
        }
    }
    let span = |v: &[f64]| {
        (
            v.iter().cloned().fold(f64::MAX, f64::min),
            v.iter().cloned().fold(0.0f64, f64::max),
            v.iter().sum::<f64>() / v.len().max(1) as f64,
        )
    };
    let (nmin, nmax, nmean) = span(&nodes);
    let (emin, emax, emean) = span(&edges);
    println!(
        "kernel {kernel_name} (size {size}), {} design points",
        ds.samples.len()
    );
    println!("graph nodes : min {nmin:.0}  max {nmax:.0}  mean {nmean:.1}");
    println!("graph edges : min {emin:.0}  max {emax:.0}  mean {emean:.1}");
    println!("max edge features [SA_src, SA_snk, AR_src, AR_snk]: {max_edge:?}");
    println!("max node sa_overall: {max_node_sa:.3}");

    let dyn_: Vec<f64> = ds
        .labeled(PowerTarget::Dynamic)
        .iter()
        .map(|x| x.1)
        .collect();
    let tot: Vec<f64> = ds.labeled(PowerTarget::Total).iter().map(|x| x.1).collect();
    let lat: Vec<f64> = ds.samples.iter().map(|s| s.latency as f64).collect();
    let (dmin, dmax, dmean) = span(&dyn_);
    let (tmin, tmax, tmean) = span(&tot);
    let (lmin, lmax, _) = span(&lat);
    println!("dynamic power: min {dmin:.3} W  max {dmax:.3} W  mean {dmean:.3} W");
    println!("total power  : min {tmin:.3} W  max {tmax:.3} W  mean {tmean:.3} W");
    println!("latency      : min {lmin:.0}  max {lmax:.0} cycles");
}
