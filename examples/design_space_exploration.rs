//! Design space exploration with PowerGear as the power predictor
//! (the paper's §IV-C case study).
//!
//! ```text
//! cargo run --release --example design_space_exploration
//! ```
//!
//! Trains a dynamic-power model on two kernels, then explores a third
//! kernel's latency/power design space with the iterative sampling loop,
//! reporting the ADRS gap between the approximate and exact Pareto fronts.

use pg_datasets::{build_kernel_dataset, polybench, DatasetConfig, PowerTarget};
use pg_dse::{run_dse, DseConfig};
use pg_gnn::{train_ensemble, ModelConfig, TrainConfig};
use pg_graphcon::PowerGraph;

fn main() {
    let cfg = DatasetConfig {
        size: 8,
        max_samples: 40,
        seed: 1,
        threads: 2,
    };
    println!("building datasets...");
    let train_sets = [
        build_kernel_dataset(&polybench::bicg(8), &cfg),
        build_kernel_dataset(&polybench::gesummv(8), &cfg),
    ];
    let target = build_kernel_dataset(&polybench::mvt(8), &cfg);

    // Train a dynamic-power HEC-GNN on the other kernels (transfer setup).
    let mut data: Vec<(&PowerGraph, f64)> = Vec::new();
    for ds in &train_sets {
        data.extend(ds.labeled(PowerTarget::Dynamic));
    }
    let mut tc = TrainConfig::quick(ModelConfig::hec(16));
    tc.epochs = 25;
    tc.folds = 2;
    println!("training dynamic-power model on {} samples...", data.len());
    let model = train_ensemble(&data, &tc);

    // The DSE inputs: latency from HLS (cheap, known for all points),
    // true power from the oracle (revealed only when a point is sampled),
    // predicted power from the model (available everywhere).
    let graphs: Vec<&PowerGraph> = target.samples.iter().map(|s| &s.graph).collect();
    let latency: Vec<f64> = target.samples.iter().map(|s| s.latency as f64).collect();
    let truth: Vec<f64> = target.samples.iter().map(|s| s.power.dynamic).collect();
    let predicted = model.predict(&graphs);

    println!("\nexploring mvt's design space ({} points):", graphs.len());
    println!("  budget   ADRS(PowerGear)   ADRS(random-order predictor)");
    for budget in [0.2, 0.3, 0.4] {
        let out = run_dse(
            &latency,
            &truth,
            &predicted,
            &DseConfig::with_budget(budget, 7),
        );
        // a useless predictor for contrast: constant power everywhere
        let flat = vec![1.0; truth.len()];
        let base = run_dse(&latency, &truth, &flat, &DseConfig::with_budget(budget, 7));
        println!(
            "  {:>4.0}%    {:>10.4}        {:>10.4}",
            budget * 100.0,
            out.adrs,
            base.adrs
        );
    }

    let out = run_dse(
        &latency,
        &truth,
        &predicted,
        &DseConfig::with_budget(0.4, 7),
    );
    println!(
        "\nexact Pareto frontier ({} points):",
        out.exact_frontier.len()
    );
    for p in &out.exact_frontier {
        println!(
            "  latency {:>8.0} cycles   dynamic {:.4} W",
            p.latency, p.power
        );
    }
    println!(
        "approximate frontier found with 40% sampling ({} points):",
        out.approx_frontier.len()
    );
    for p in &out.approx_frontier {
        println!(
            "  latency {:>8.0} cycles   dynamic {:.4} W",
            p.latency, p.power
        );
    }
}
