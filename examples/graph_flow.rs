//! Graph construction walkthrough (the paper's Fig. 2).
//!
//! ```text
//! cargo run --release --example graph_flow
//! ```
//!
//! Shows what each optimization pass of §III-A does to a gemm design:
//! raw DFG → buffer insertion → datapath merging → graph trimming, with
//! node/edge counts, relation-type histograms and a peek at edge features.

use pg_activity::{execute, Stimuli};
use pg_datasets::polybench;
use pg_graphcon::{GraphConfig, GraphFlow, Relation};
use pg_hls::{Directives, HlsFlow};

fn main() {
    let kernel = polybench::gemm(8);
    let mut directives = Directives::new();
    directives
        .pipeline("k")
        .unroll("k", 2)
        .partition("A", 2)
        .partition("B", 2)
        .partition("C", 2);

    let design = HlsFlow::new()
        .run(&kernel, &directives)
        .expect("gemm synthesizes");
    println!("design: {}", design.design_id());
    println!(
        "HLS report: {} LUT, {} DSP, {} BRAM, latency {} cycles, clock {:.2} ns",
        design.report.lut,
        design.report.dsp,
        design.report.bram,
        design.report.latency_cycles,
        design.report.clock_ns
    );

    let trace = execute(&design, &Stimuli::for_kernel(&kernel, 0));
    println!(
        "activity trace: {} static ops, {} dynamic executions",
        design.ir.len(),
        design.ir.dynamic_op_count()
    );

    // Each stage of the construction flow, cumulatively enabled.
    let stages: [(&str, GraphConfig); 4] = [
        (
            "raw DFG              ",
            GraphConfig {
                buffer_insertion: false,
                datapath_merging: false,
                graph_trimming: false,
            },
        ),
        (
            "+ buffer insertion   ",
            GraphConfig {
                buffer_insertion: true,
                datapath_merging: false,
                graph_trimming: false,
            },
        ),
        (
            "+ datapath merging   ",
            GraphConfig {
                buffer_insertion: true,
                datapath_merging: true,
                graph_trimming: false,
            },
        ),
        ("+ graph trimming     ", GraphConfig::default()),
    ];

    println!("\npass pipeline (cumulative):");
    println!("  stage                  nodes  edges  A->A  A->N  N->A  N->N");
    for (name, cfg) in stages {
        let g = GraphFlow::with_config(cfg).build(&design, &trace);
        let rel = g.relation_counts();
        println!(
            "  {name} {:5}  {:5}  {:4}  {:4}  {:4}  {:4}",
            g.num_nodes,
            g.num_edges(),
            rel[Relation::AA.index()],
            rel[Relation::AN.index()],
            rel[Relation::NA.index()],
            rel[Relation::NN.index()]
        );
    }

    // Edge features of the final graph: [SA_src, SA_snk, AR_src, AR_snk].
    let g = GraphFlow::new().build(&design, &trace);
    println!("\nfive sample edges of the final graph:");
    for (i, ((s, d), ef)) in g.edges.iter().zip(&g.edge_feats).take(5).enumerate() {
        println!(
            "  e{i}: {s:3} -> {d:3}  rel {:?}  SA=({:.3},{:.3}) AR=({:.3},{:.3})",
            g.edge_rel[i], ef[0], ef[1], ef[2], ef[3]
        );
    }
    println!("\nmetadata features attach in the dataset builder (HLS report + scaling factors).");
}
