//! Leave-one-kernel-out (LOKO) evaluation harness.
//!
//! Reproduces the paper's cross-kernel protocol (§IV-A, Tables 1/2): for
//! each of the nine Polybench kernels, train on the other eight and test
//! on the held-out one, for both power targets. The harness emits a
//! per-kernel MAPE/RMSE table with deterministic fixed-order aggregation:
//! kernels are visited in dataset order, targets in `[Total, Dynamic]`
//! order, and every mean is a fixed-order fold over those rows — so the
//! table (and its digest) is bit-identical at any training thread count,
//! riding the thread-invariant trainer.
//!
//! [`run_loko`] evaluates one model configuration; zoo sweeps call it once
//! per [`ModelConfig`] and rank reports by [`LokoReport::mean_mape`].

use pg_datasets::{all_splits, build_all, DatasetConfig, KernelDataset, PowerTarget};
use pg_gnn::{train_ensemble, LabelNorm, ModelConfig, TrainConfig};
use pg_graphcon::PowerGraph;
use pg_util::rng::hash64;
use pg_util::Table;

/// Configuration for one LOKO evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Dataset build profile (size, samples per kernel, seed, threads).
    pub data: DatasetConfig,
    /// The zoo member under evaluation.
    pub model: ModelConfig,
    /// Training epochs per member model (dynamic power trains 2×).
    pub epochs: usize,
    /// Cross-validation folds per ensemble.
    pub folds: usize,
    /// Ensemble seeds.
    pub seeds: Vec<u64>,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Training worker threads (pure scheduling: results are
    /// thread-invariant).
    pub threads: usize,
    /// Restrict the sweep to these kernels (`None` = every kernel in the
    /// dataset). Training still uses all *other* kernels of the subset.
    pub kernels: Option<Vec<String>>,
}

impl EvalConfig {
    /// Reduced-scale defaults: small dataset, short training — sized for
    /// CI and golden fixtures, not paper-fidelity numbers.
    pub fn quick(model: ModelConfig) -> Self {
        EvalConfig {
            data: DatasetConfig {
                size: 6,
                max_samples: 10,
                seed: 3,
                threads: 2,
            },
            model,
            epochs: 8,
            folds: 2,
            seeds: vec![17],
            batch_size: 48,
            lr: 2e-3,
            threads: 2,
            kernels: None,
        }
    }

    /// Paper-scale defaults over the full 9-kernel space.
    pub fn paper(model: ModelConfig) -> Self {
        EvalConfig {
            data: DatasetConfig::paper(),
            model,
            epochs: 1200,
            folds: 10,
            seeds: vec![17, 43, 91],
            batch_size: 128,
            lr: 5e-4,
            threads: 2,
            kernels: None,
        }
    }

    /// GNN training config for one power target (mirrors
    /// [`crate::PowerGearConfig::train_config`], but for an arbitrary zoo
    /// member).
    pub fn train_config(&self, target: PowerTarget) -> TrainConfig {
        let mut cfg = TrainConfig::quick(self.model.clone());
        cfg.epochs = match target {
            PowerTarget::Dynamic => self.epochs * 2,
            PowerTarget::Total => self.epochs,
        };
        cfg.label_norm = match target {
            PowerTarget::Total => LabelNorm::Standardize,
            PowerTarget::Dynamic => LabelNorm::MeanScale,
        };
        cfg.folds = self.folds;
        cfg.seeds = self.seeds.clone();
        cfg.batch_size = self.batch_size;
        cfg.lr = self.lr;
        cfg.threads = self.threads;
        cfg
    }
}

/// One held-out kernel × power target evaluation row.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelEval {
    /// Held-out kernel name.
    pub kernel: String,
    /// Power target evaluated.
    pub target: PowerTarget,
    /// Training samples (the other kernels).
    pub n_train: usize,
    /// Test samples (the held-out kernel).
    pub n_test: usize,
    /// Mean absolute percentage error on the held-out kernel (percent).
    pub mape_pct: f64,
    /// Root-mean-square error on the held-out kernel (W).
    pub rmse_w: f64,
}

/// A complete LOKO table for one model configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LokoReport {
    /// Zoo identifier of the evaluated configuration.
    pub config: String,
    /// Per-kernel rows in fixed (dataset, target) order.
    pub rows: Vec<KernelEval>,
}

/// Table/report name for a power target.
pub fn target_name(target: PowerTarget) -> &'static str {
    match target {
        PowerTarget::Total => "total",
        PowerTarget::Dynamic => "dynamic",
    }
}

impl LokoReport {
    /// Fixed-order mean MAPE over all kernels for one target (the zoo
    /// ranking metric).
    pub fn mean_mape(&self, target: PowerTarget) -> f64 {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.target == target)
            .map(|r| r.mape_pct)
            .collect();
        pg_util::mean(&vals)
    }

    /// Fixed-order mean RMSE over all kernels for one target.
    pub fn mean_rmse(&self, target: PowerTarget) -> f64 {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.target == target)
            .map(|r| r.rmse_w)
            .collect();
        pg_util::mean(&vals)
    }

    /// Content digest over the exact error bits of every row (plus the
    /// config name), in row order. Two runs agree on the digest iff their
    /// tables are bit-identical.
    pub fn digest(&self) -> u64 {
        let mut buf = Vec::with_capacity(self.rows.len() * 32);
        buf.extend_from_slice(self.config.as_bytes());
        for r in &self.rows {
            buf.extend_from_slice(r.kernel.as_bytes());
            buf.extend_from_slice(target_name(r.target).as_bytes());
            buf.extend_from_slice(&(r.n_train as u64).to_le_bytes());
            buf.extend_from_slice(&(r.n_test as u64).to_le_bytes());
            buf.extend_from_slice(&r.mape_pct.to_bits().to_le_bytes());
            buf.extend_from_slice(&r.rmse_w.to_bits().to_le_bytes());
        }
        hash64(&buf)
    }

    /// Renders the paper-style table as TSV: one header line, one row per
    /// (kernel, target), fixed-order `mean` summary rows, and a trailing
    /// digest comment pinning the exact f64 bits.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# powergear loko config={}\n", self.config));
        out.push_str("kernel\ttarget\tn_train\tn_test\tmape_pct\trmse_w\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{:.6}\t{:.6}\n",
                r.kernel,
                target_name(r.target),
                r.n_train,
                r.n_test,
                r.mape_pct,
                r.rmse_w
            ));
        }
        for target in [PowerTarget::Total, PowerTarget::Dynamic] {
            if self.rows.iter().any(|r| r.target == target) {
                out.push_str(&format!(
                    "mean\t{}\t-\t-\t{:.6}\t{:.6}\n",
                    target_name(target),
                    self.mean_mape(target),
                    self.mean_rmse(target)
                ));
            }
        }
        out.push_str(&format!("# digest {:016x}\n", self.digest()));
        out
    }

    /// Pretty console table (same contents as the TSV body).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(&[
            "kernel", "target", "n_train", "n_test", "mape_pct", "rmse_w",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.kernel.clone(),
                target_name(r.target).to_string(),
                r.n_train.to_string(),
                r.n_test.to_string(),
                Table::fmt_f(r.mape_pct, 2),
                Table::fmt_f(r.rmse_w, 4),
            ]);
        }
        for target in [PowerTarget::Total, PowerTarget::Dynamic] {
            if self.rows.iter().any(|r| r.target == target) {
                t.row(vec![
                    "mean".to_string(),
                    target_name(target).to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    Table::fmt_f(self.mean_mape(target), 2),
                    Table::fmt_f(self.mean_rmse(target), 4),
                ]);
            }
        }
        t
    }
}

/// Runs the LOKO protocol over prebuilt datasets: for every kernel (in
/// dataset order), train an ensemble on the remaining kernels and evaluate
/// on the held-out one, for both power targets.
///
/// # Panics
///
/// Panics if `cfg.kernels` names a kernel absent from `datasets`.
pub fn run_loko(datasets: &[KernelDataset], cfg: &EvalConfig) -> LokoReport {
    let keep: Vec<&KernelDataset> = match &cfg.kernels {
        None => datasets.iter().collect(),
        Some(named) => {
            for k in named {
                assert!(
                    datasets.iter().any(|d| &d.kernel == k),
                    "unknown kernel {k:?} in LOKO subset"
                );
            }
            datasets.iter().filter(|d| named.contains(&d.kernel)).collect()
        }
    };
    let subset: Vec<KernelDataset> = keep.into_iter().cloned().collect();
    let mut rows = Vec::with_capacity(subset.len() * 2);
    for split in all_splits(&subset) {
        for target in [PowerTarget::Total, PowerTarget::Dynamic] {
            let train = split.train_labeled(target);
            let test = split.test_labeled(target);
            let tc = cfg.train_config(target);
            let ensemble = train_ensemble(&train, &tc);
            let graphs: Vec<&PowerGraph> = test.iter().map(|(g, _)| *g).collect();
            let preds = ensemble.predict(&graphs);
            let actual: Vec<f64> = test.iter().map(|(_, p)| *p).collect();
            rows.push(KernelEval {
                kernel: split.test_kernel.clone(),
                target,
                n_train: train.len(),
                n_test: test.len(),
                mape_pct: pg_util::mape(&preds, &actual),
                rmse_w: pg_util::rmse(&preds, &actual),
            });
        }
    }
    LokoReport {
        config: cfg.model.zoo_name(),
        rows,
    }
}

/// [`run_loko`] over freshly built datasets (`cfg.data` profile).
pub fn run_loko_built(cfg: &EvalConfig) -> LokoReport {
    let datasets = build_all(&cfg.data);
    run_loko(&datasets, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_gnn::Pool;

    fn tiny_cfg() -> EvalConfig {
        let mut cfg = EvalConfig::quick(ModelConfig::hec(8));
        cfg.data.max_samples = 6;
        cfg.epochs = 2;
        cfg.kernels = Some(vec!["atax".into(), "mvt".into(), "bicg".into()]);
        cfg
    }

    #[test]
    fn loko_covers_subset_for_both_targets() {
        let report = run_loko_built(&tiny_cfg());
        assert_eq!(report.rows.len(), 6, "3 kernels x 2 targets");
        let kernels: Vec<&str> = report.rows.iter().map(|r| r.kernel.as_str()).collect();
        assert_eq!(kernels, ["atax", "atax", "bicg", "bicg", "mvt", "mvt"]);
        for r in &report.rows {
            assert!(r.mape_pct.is_finite() && r.mape_pct >= 0.0, "{r:?}");
            assert!(r.rmse_w.is_finite() && r.rmse_w >= 0.0, "{r:?}");
            assert!(r.n_train > 0 && r.n_test > 0, "{r:?}");
        }
    }

    #[test]
    fn tsv_roundtrips_digest_and_marks_config() {
        let report = LokoReport {
            config: ModelConfig::hec(8).with_pool(Pool::Mean).zoo_name(),
            rows: vec![KernelEval {
                kernel: "atax".into(),
                target: PowerTarget::Total,
                n_train: 10,
                n_test: 5,
                mape_pct: 12.5,
                rmse_w: 0.031,
            }],
        };
        let tsv = report.to_tsv();
        assert!(tsv.contains("config=hec-p_mean-l3-h0"));
        assert!(tsv.contains("atax\ttotal\t10\t5\t12.500000\t0.031000"));
        assert!(tsv.contains(&format!("# digest {:016x}", report.digest())));
    }

    #[test]
    #[should_panic(expected = "unknown kernel")]
    fn unknown_subset_kernel_panics() {
        let mut cfg = tiny_cfg();
        cfg.kernels = Some(vec!["nope".into()]);
        run_loko(&[], &cfg);
    }
}
