//! The persistent `powergear serve --listen` daemon: a TCP server that
//! speaks the `PGRPC` framing protocol (byte-level spec in
//! `docs/PROTOCOL.md`) over [`std::net::TcpListener`].
//!
//! # Request lifecycle
//!
//! ```text
//! client ──TCP──▶ accept ──▶ connection handler (1 thread/conn)
//!                               │  read_frame / decode PredictRequest
//!                               ▼
//!                         AdmissionQueue  ◀── micro-batching under a
//!                               │              latency deadline
//!                               ▼              (--batch-deadline-us,
//!                         batcher thread        --max-batch)
//!                               │  route kernel → model snapshot
//!                               ▼
//!                         InferenceEngine (bit-identical to the
//!                               │           sequential predict path)
//!                               ▼
//!                         PredictResponse ──▶ handler ──TCP──▶ client
//! ```
//!
//! Concurrent requests coalesce into engine batches (see
//! [`pg_gnn::AdmissionQueue`]); because the engine is bit-identical for
//! any batch composition, coalescing never changes a single bit of any
//! response — the house determinism invariant is what makes deadline
//! batching safe.
//!
//! # Model routing and hot swap
//!
//! Models come from a [`ModelRegistry`] directory and/or a single `.pgm`
//! artifact. A poller thread rescans the sources every
//! [`DaemonConfig::poll_interval`] by file mtime+length stamp and
//! atomically swaps the routing catalog when anything changed. In-flight
//! requests always execute against the snapshot resolved when their batch
//! starts, and one request is always served by exactly one model
//! ([`pg_store::frame::PredictResponse`] carries the model name and
//! fingerprint so clients can attribute responses) — a swap therefore
//! drops zero requests and mixes zero models within a response. Artifacts
//! that fail to load mid-publish keep their previous healthy version until
//! a later poll succeeds.
//!
//! Operational guidance (tuning, troubleshooting) lives in
//! `docs/SERVING.md`; the overall system map in `docs/ARCHITECTURE.md`.
//!
//! # Examples
//!
//! ```no_run
//! use powergear::daemon::{Daemon, DaemonConfig};
//!
//! let mut cfg = DaemonConfig::new("127.0.0.1:7070");
//! cfg.registry_dir = Some("models".into());
//! let daemon = Daemon::bind(cfg)?;
//! daemon.run()?; // blocks until a Shutdown frame arrives
//! # Ok::<(), powergear::daemon::ServeError>(())
//! ```

use crate::PowerGear;
use pg_gnn::{AdmissionQueue, BatchPolicy, ServeConfig};
use pg_graphcon::PowerGraph;
use pg_store::frame::{self, error_code};
use pg_store::{ModelArtifact, ModelInfo, ModelRegistry, StoreError};
use pg_util::{metrics, trace};
use std::collections::BTreeMap;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, PoisonError, RwLock};
use std::thread;
// pg-lint: allow(wall_clock, reason = "import only; uptime telemetry and mtime-based swap detection are annotated at their use sites — neither feeds model arithmetic")
use std::time::{Duration, Instant, SystemTime};

/// Configuration for [`Daemon::bind`]. The CLI maps `serve --listen` flags
/// onto this one-to-one (`docs/SERVING.md` documents the tuning).
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Address to listen on, e.g. `127.0.0.1:7070` (port 0 picks a free
    /// port; see [`Daemon::local_addr`]).
    pub listen: String,
    /// Graph-count weight at which a micro-batch dispatches immediately
    /// (`--max-batch`).
    pub max_batch: usize,
    /// Longest a lone request waits for co-batching
    /// (`--batch-deadline-us`).
    pub batch_deadline: Duration,
    /// How often the model sources are rescanned for hot swap
    /// (`--poll-ms`).
    pub poll_interval: Duration,
    /// Engine worker threads per micro-batch (`--threads`).
    pub threads: usize,
    /// Registry directory of `.pgm` artifacts to route between
    /// (`--registry`).
    pub registry_dir: Option<PathBuf>,
    /// A single `.pgm` artifact to serve (`--model`); combinable with
    /// `registry_dir`, which takes precedence on a name collision.
    pub model_path: Option<PathBuf>,
    /// Address for the plain-text Prometheus exposition endpoint
    /// (`--metrics-listen`); `None` disables it.
    pub metrics_listen: Option<String>,
    /// JSONL file receiving one per-request span trace per served Predict
    /// (`--trace-out`); `None` disables tracing.
    pub trace_out: Option<PathBuf>,
}

impl DaemonConfig {
    /// A config for `listen` with the default knobs: batch up to 32
    /// graphs under a 500 µs deadline, poll sources every 200 ms, one
    /// engine thread.
    pub fn new(listen: impl Into<String>) -> DaemonConfig {
        DaemonConfig {
            listen: listen.into(),
            max_batch: 32,
            batch_deadline: Duration::from_micros(500),
            poll_interval: Duration::from_millis(200),
            threads: 1,
            registry_dir: None,
            model_path: None,
            metrics_listen: None,
            trace_out: None,
        }
    }
}

/// Errors from binding or running the daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (bind, accept, read, write).
    Io(std::io::Error),
    /// Persistence-layer failure loading a model source.
    Store(StoreError),
    /// Invalid [`DaemonConfig`].
    Config(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Store(e) => write!(f, "model store error: {e}"),
            ServeError::Config(msg) => write!(f, "daemon config error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

// ---------------------------------------------------------------------------
// Model catalog: routing + hot swap

/// File identity stamp used for swap detection: (mtime nanos, length).
type Stamp = (u128, u64);

/// One loaded, probe-verified model.
struct LoadedModel {
    name: String,
    /// Kernels the model was trained on (split from
    /// [`pg_store::ArtifactMeta::kernel`]); empty = serves any kernel.
    kernels: Vec<String>,
    kernel_csv: String,
    fingerprint: u64,
    gear: PowerGear,
}

/// The immutable routing catalog a batch executes against. Swaps replace
/// the whole catalog atomically (an `Arc` behind a lock); per-entry
/// `Arc`s are reused across rescans when a file's stamp is unchanged.
#[derive(Default)]
struct Catalog {
    entries: BTreeMap<String, (Stamp, Arc<LoadedModel>)>,
}

impl Catalog {
    /// Deterministic per-kernel routing: the lexicographically first model
    /// trained on `kernel`; models with an empty kernel list act as
    /// wildcard fallbacks (again first-by-name).
    fn route(&self, kernel: &str) -> Option<Arc<LoadedModel>> {
        let mut wildcard = None;
        for (_, (_, model)) in &self.entries {
            if model.kernels.iter().any(|k| k == kernel) {
                return Some(Arc::clone(model));
            }
            if model.kernels.is_empty() && wildcard.is_none() {
                wildcard = Some(Arc::clone(model));
            }
        }
        wildcard
    }

    fn infos(&self) -> Vec<ModelInfo> {
        self.entries
            .values()
            .map(|(_, m)| ModelInfo {
                name: m.name.clone(),
                kernel: m.kernel_csv.clone(),
                fingerprint: m.fingerprint,
            })
            .collect()
    }
}

fn stamp_of(path: &Path) -> Option<Stamp> {
    let meta = std::fs::metadata(path).ok()?;
    let mtime = meta
        .modified()
        .ok()
        // pg-lint: allow(wall_clock, reason = "reads the file's stored mtime for hot-swap change detection — not a clock sample, and never feeds model arithmetic")
        .and_then(|t| t.duration_since(SystemTime::UNIX_EPOCH).ok())
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    Some((mtime, meta.len()))
}

/// Lists `(name, path)` model sources in precedence order: the single
/// `--model` artifact first, then the registry (later names override
/// earlier ones on collision).
fn list_sources(cfg: &DaemonConfig) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    if let Some(path) = &cfg.model_path {
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "model".to_string());
        out.push((name, path.clone()));
    }
    if let Some(dir) = &cfg.registry_dir {
        if let Ok(reg) = ModelRegistry::open(dir) {
            if let Ok(entries) = reg.list() {
                for e in entries {
                    out.push((e.name, e.path));
                }
            }
        }
    }
    out
}

fn load_model(name: &str, path: &Path) -> Result<LoadedModel, StoreError> {
    let artifact = ModelArtifact::load(path)?;
    let gear = PowerGear::from_artifact(&artifact)?;
    let kernel_csv = artifact.meta.kernel.clone();
    let kernels = kernel_csv
        .split(',')
        .map(|k| k.trim().to_string())
        .filter(|k| !k.is_empty())
        .collect();
    Ok(LoadedModel {
        name: name.to_string(),
        kernels,
        kernel_csv,
        fingerprint: artifact.meta.train_fingerprint,
        gear,
    })
}

/// Rescans the model sources, reusing loaded models whose file stamp is
/// unchanged. Returns the fresh catalog, whether it differs from `prev`
/// (membership or any reloaded entry), and the number of load failures
/// (failed entries keep their previous healthy version, so a half-written
/// publish never evicts a serving model).
fn rescan(cfg: &DaemonConfig, prev: &Catalog) -> (Catalog, bool, u64) {
    let mut next = Catalog::default();
    let mut changed = false;
    let mut load_errors = 0u64;
    for (name, path) in list_sources(cfg) {
        let stamp = stamp_of(&path).unwrap_or((0, 0));
        match prev.entries.get(&name) {
            Some((old_stamp, model)) if *old_stamp == stamp => {
                next.entries.insert(name, (stamp, Arc::clone(model)));
            }
            old => match load_model(&name, &path) {
                Ok(model) => {
                    changed = true;
                    next.entries.insert(name, (stamp, Arc::new(model)));
                }
                Err(_) => {
                    load_errors += 1;
                    if let Some((old_stamp, model)) = old {
                        // keep serving the last healthy version
                        next.entries.insert(name, (*old_stamp, Arc::clone(model)));
                    }
                }
            },
        }
    }
    if next.entries.len() != prev.entries.len() || !next.entries.keys().eq(prev.entries.keys()) {
        changed = true;
    }
    (next, changed, load_errors)
}

// ---------------------------------------------------------------------------
// Shared daemon state

/// One admitted Predict request: the unit the batcher never splits.
struct Job {
    kernel: String,
    graphs: Vec<PowerGraph>,
    reply: mpsc::Sender<frame::RawFrame>,
    /// Admission timestamp ([`metrics::monotonic_us`]) for the
    /// admission-wait histogram and the `admission` span.
    admitted_us: u64,
    /// Per-request span trace, present only when `--trace-out` is set.
    trace: Option<trace::Trace>,
}

/// Pre-resolved registry handles for the request-path metrics that are
/// not per-model (per-model handles resolve per batch in
/// [`execute_group`]). The metric catalog is documented in
/// `docs/OBSERVABILITY.md`.
struct ServeMetrics {
    admission_wait_us: metrics::Histogram,
    queue_depth: metrics::Gauge,
    errors_total: metrics::Counter,
    load_errors_total: metrics::Counter,
    swaps_total: metrics::Counter,
}

impl ServeMetrics {
    fn resolve() -> ServeMetrics {
        ServeMetrics {
            admission_wait_us: metrics::histogram(
                "serve_admission_wait_us",
                metrics::buckets::LATENCY_US,
            ),
            queue_depth: metrics::gauge("serve_queue_depth"),
            errors_total: metrics::counter("serve_errors_total"),
            load_errors_total: metrics::counter("serve_load_errors_total"),
            swaps_total: metrics::counter("serve_swaps_total"),
        }
    }
}

struct Shared {
    cfg: DaemonConfig,
    addr: SocketAddr,
    queue: AdmissionQueue<Job>,
    catalog: RwLock<Arc<Catalog>>,
    stop: AtomicBool,
    // pg-lint: allow(wall_clock, reason = "uptime telemetry for the Stats frame only; never feeds model arithmetic")
    started: Instant,
    requests: AtomicU64,
    graphs: AtomicU64,
    batches: AtomicU64,
    errors: AtomicU64,
    swaps: AtomicU64,
    load_errors: AtomicU64,
    metrics: ServeMetrics,
    trace_sink: Option<trace::TraceSink>,
}

impl Shared {
    fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&self.catalog.read().unwrap_or_else(PoisonError::into_inner))
    }

    fn stats(&self) -> frame::StatsResponse {
        frame::StatsResponse {
            // pg-lint: allow(wall_clock, reason = "uptime telemetry for the Stats frame only; never feeds model arithmetic")
            uptime_s: self.started.elapsed().as_secs_f64(),
            requests: self.requests.load(Ordering::Relaxed),
            graphs: self.graphs.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            models: self.catalog().entries.len() as u64,
        }
    }

    /// A full registry snapshot for the `StatsV2` frame (includes the
    /// prof scope roll-ins, see [`metrics::snapshot`]).
    fn stats_v2(&self) -> frame::StatsV2Response {
        frame::StatsV2Response {
            // pg-lint: allow(wall_clock, reason = "uptime telemetry for the Stats frame only; never feeds model arithmetic")
            uptime_s: self.started.elapsed().as_secs_f64(),
            snapshot: metrics::snapshot(),
        }
    }

    /// Counts one served error on both the v1 Stats counter and the
    /// registry.
    fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.metrics.errors_total.inc();
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Initiates shutdown: further accepts/admissions are refused, queued
    /// work drains, and the accept loop is woken by a loopback connect.
    fn begin_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue.close();
        // Wake the blocking accept(); listening on a wildcard address
        // still accepts loopback connections to the same port.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(IpAddr::V4(Ipv4Addr::LOCALHOST));
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_millis(500));
    }
}

// ---------------------------------------------------------------------------
// The daemon

/// A bound-but-not-yet-running serving daemon. [`Daemon::run`] blocks the
/// calling thread (the CLI path); [`Daemon::spawn`] runs it on a
/// background thread and returns a [`DaemonHandle`] (the test path).
pub struct Daemon {
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    shared: Arc<Shared>,
}

impl Daemon {
    /// Binds the listen socket and loads the initial model catalog.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when no model source is configured or a
    /// batching knob is zero; [`ServeError::Io`] when the bind fails.
    pub fn bind(cfg: DaemonConfig) -> Result<Daemon, ServeError> {
        if cfg.registry_dir.is_none() && cfg.model_path.is_none() {
            return Err(ServeError::Config(
                "no model source: set registry_dir and/or model_path".into(),
            ));
        }
        if cfg.max_batch == 0 {
            return Err(ServeError::Config("max_batch must be positive".into()));
        }
        if cfg.threads == 0 {
            return Err(ServeError::Config("threads must be positive".into()));
        }
        let listener = TcpListener::bind(&cfg.listen)?;
        let addr = listener.local_addr()?;
        let metrics_listener = match &cfg.metrics_listen {
            Some(listen) => Some(TcpListener::bind(listen)?),
            None => None,
        };
        let trace_sink = match &cfg.trace_out {
            Some(path) => Some(trace::TraceSink::create(path)?),
            None => None,
        };
        let (catalog, _, load_errors) = rescan(&cfg, &Catalog::default());
        let queue = AdmissionQueue::new(BatchPolicy::new(cfg.max_batch, cfg.batch_deadline));
        let serve_metrics = ServeMetrics::resolve();
        serve_metrics.load_errors_total.add(load_errors);
        let shared = Arc::new(Shared {
            cfg,
            addr,
            queue,
            catalog: RwLock::new(Arc::new(catalog)),
            stop: AtomicBool::new(false),
            // pg-lint: allow(wall_clock, reason = "uptime telemetry for the Stats frame only; never feeds model arithmetic")
            started: Instant::now(),
            requests: AtomicU64::new(0),
            graphs: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            load_errors: AtomicU64::new(load_errors),
            metrics: serve_metrics,
            trace_sink,
        });
        Ok(Daemon {
            listener,
            metrics_listener,
            shared,
        })
    }

    /// The bound Prometheus endpoint address, when `metrics_listen` is
    /// configured (resolves port 0 to the actual port).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The currently loaded models, sorted by name.
    pub fn models(&self) -> Vec<ModelInfo> {
        self.shared.catalog().infos()
    }

    /// Model-source load failures observed so far (initial load + polls).
    pub fn load_errors(&self) -> u64 {
        self.shared.load_errors.load(Ordering::Relaxed)
    }

    /// Runs the daemon on the calling thread until a `Shutdown` frame
    /// arrives (or [`DaemonHandle::stop`] is called on a spawned daemon).
    /// Queued requests drain before shutdown completes — zero admitted
    /// requests are dropped.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] only for fatal listener failures; per-connection
    /// errors are answered with `Error` frames and never stop the daemon.
    pub fn run(self) -> Result<(), ServeError> {
        let shared = self.shared;
        let batcher = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || batcher_loop(&shared))
        };
        let poller = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || poller_loop(&shared))
        };
        let exposition = self.metrics_listener.map(|listener| {
            let shared = Arc::clone(&shared);
            thread::spawn(move || exposition_loop(&shared, &listener))
        });
        for stream in self.listener.incoming() {
            if shared.stopping() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&shared);
            // Handlers are detached: one blocked on a silent client must
            // not delay shutdown; it exits on its own read timeout.
            thread::spawn(move || handle_conn(&shared, stream));
        }
        shared.begin_stop();
        let _ = batcher.join();
        let _ = poller.join();
        if let Some(t) = exposition {
            let _ = t.join();
        }
        Ok(())
    }

    /// Runs the daemon on a background thread; the returned handle stops
    /// it and joins.
    pub fn spawn(self) -> DaemonHandle {
        let shared = Arc::clone(&self.shared);
        let metrics_addr = self.metrics_addr();
        let thread = thread::spawn(move || self.run());
        DaemonHandle {
            shared,
            metrics_addr,
            thread,
        }
    }
}

/// Handle to a daemon running via [`Daemon::spawn`].
pub struct DaemonHandle {
    shared: Arc<Shared>,
    metrics_addr: Option<SocketAddr>,
    thread: thread::JoinHandle<Result<(), ServeError>>,
}

impl DaemonHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The Prometheus endpoint address, when one is configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Serving counters so far.
    pub fn stats(&self) -> frame::StatsResponse {
        self.shared.stats()
    }

    /// Stops the daemon (draining queued requests) and joins its threads.
    ///
    /// # Errors
    ///
    /// Propagates the run loop's [`ServeError`], or
    /// [`ServeError::Config`] if the daemon thread panicked.
    pub fn stop(self) -> Result<(), ServeError> {
        self.shared.begin_stop();
        self.thread
            .join()
            .unwrap_or_else(|_| Err(ServeError::Config("daemon thread panicked".into())))
    }
}

// ---------------------------------------------------------------------------
// Connection handling

/// How often a blocked read wakes up to check the stop flag.
const READ_POLL: Duration = Duration::from_millis(100);

fn io_would_block(e: &StoreError) -> bool {
    matches!(
        e,
        StoreError::Io(io) if matches!(
            io.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        )
    )
}

fn error_frame(code: u16, message: impl Into<String>) -> frame::RawFrame {
    let payload = frame::ErrorFrame {
        code,
        message: message.into(),
    }
    .to_payload();
    frame::RawFrame::new(frame::FrameType::Error, payload)
}

/// Serves one client connection: a loop of read-frame → respond. Framing
/// errors answer with `Error { BAD_REQUEST }` and close (the byte stream
/// is no longer trustworthy); unknown frame types answer with
/// `Error { UNKNOWN_TYPE }` and keep the connection open (forward
/// compatibility, `docs/PROTOCOL.md` §versioning).
fn handle_conn(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    loop {
        if shared.stopping() {
            return;
        }
        match frame::read_frame(&mut stream) {
            Ok(None) => return, // clean EOF between frames
            Ok(Some(req)) => {
                let closing = matches!(req.frame_type(), Some(frame::FrameType::Shutdown));
                if respond(shared, &mut stream, req).is_err() || closing {
                    return;
                }
            }
            Err(ref e) if io_would_block(e) => continue, // poll the stop flag
            Err(e) => {
                shared.record_error();
                let f = error_frame(error_code::BAD_REQUEST, format!("bad frame: {e}"));
                let _ = frame::write_frame(&mut stream, &f);
                return;
            }
        }
    }
}

/// Dispatches one well-framed request and writes the response frame.
fn respond(
    shared: &Shared,
    stream: &mut TcpStream,
    req: frame::RawFrame,
) -> Result<(), StoreError> {
    let resp = match req.frame_type() {
        Some(frame::FrameType::Ping) => frame::RawFrame::new(frame::FrameType::Pong, Vec::new()),
        Some(frame::FrameType::Stats) => {
            frame::RawFrame::new(frame::FrameType::StatsOk, shared.stats().to_payload())
        }
        Some(frame::FrameType::StatsV2) => {
            frame::RawFrame::new(frame::FrameType::StatsV2Ok, shared.stats_v2().to_payload())
        }
        Some(frame::FrameType::ModelList) => {
            let payload = frame::ModelListResponse {
                models: shared.catalog().infos(),
            }
            .to_payload();
            frame::RawFrame::new(frame::FrameType::ModelListOk, payload)
        }
        Some(frame::FrameType::Shutdown) => {
            shared.begin_stop();
            frame::RawFrame::new(frame::FrameType::ShutdownOk, Vec::new())
        }
        Some(frame::FrameType::Predict) => predict(shared, &req.payload),
        _ => {
            shared.record_error();
            error_frame(
                error_code::UNKNOWN_TYPE,
                format!("unsupported frame type 0x{:02x}", req.tag),
            )
        }
    };
    frame::write_frame(stream, &resp)
}

/// Admits one Predict request and blocks until the batcher replies.
fn predict(shared: &Shared, payload: &[u8]) -> frame::RawFrame {
    let request = match frame::PredictRequest::from_payload(payload) {
        Ok(r) => r,
        Err(e) => {
            shared.record_error();
            return error_frame(error_code::BAD_REQUEST, format!("bad predict request: {e}"));
        }
    };
    let (tx, rx) = mpsc::channel();
    let weight = request.graphs.len();
    let job = Job {
        trace: shared
            .trace_sink
            .is_some()
            .then(|| trace::Trace::begin(&request.kernel)),
        kernel: request.kernel,
        graphs: request.graphs,
        reply: tx,
        admitted_us: metrics::monotonic_us(),
    };
    if !shared.queue.push(job, weight) {
        shared.record_error();
        return error_frame(error_code::SHUTTING_DOWN, "daemon is shutting down");
    }
    shared.metrics.queue_depth.add(1);
    shared.requests.fetch_add(1, Ordering::Relaxed);
    match rx.recv() {
        Ok(f) => f,
        Err(_) => {
            shared.record_error();
            error_frame(error_code::INTERNAL, "batcher dropped the request")
        }
    }
}

// ---------------------------------------------------------------------------
// Batcher and poller threads

/// Pulls coalesced batches off the admission queue and executes them.
/// Exits when the queue is closed *and drained* — admitted requests are
/// always answered, which is the "hot swap / shutdown drops zero
/// requests" guarantee the protocol tests enforce.
fn batcher_loop(shared: &Shared) {
    while let Some(mut jobs) = shared.queue.next_batch() {
        if jobs.is_empty() {
            continue;
        }
        shared.metrics.queue_depth.add(-(jobs.len() as i64));
        let pulled_us = metrics::monotonic_us();
        for job in &mut jobs {
            let wait_us = pulled_us.saturating_sub(job.admitted_us);
            shared.metrics.admission_wait_us.observe(wait_us);
            if let Some(t) = &mut job.trace {
                t.span("admission", job.admitted_us, wait_us);
            }
        }
        // One model snapshot per batch: resolved here, so a concurrent
        // swap affects only later batches and never splits a request.
        let catalog = shared.catalog();
        // name → (model, jobs) preserving FIFO job order within a group.
        let mut groups: BTreeMap<String, (Arc<LoadedModel>, Vec<Job>)> = BTreeMap::new();
        for job in jobs {
            match catalog.route(&job.kernel) {
                Some(model) => {
                    groups
                        .entry(model.name.clone())
                        .or_insert_with(|| (model, Vec::new()))
                        .1
                        .push(job);
                }
                None => {
                    shared.record_error();
                    let f = error_frame(
                        error_code::NO_MODEL,
                        format!("no loaded model serves kernel `{}`", job.kernel),
                    );
                    let _ = job.reply.send(f);
                }
            }
        }
        let routed_us = metrics::monotonic_us();
        for (name, (model, jobs)) in groups {
            execute_group(shared, &name, &model, jobs, pulled_us, routed_us);
        }
    }
}

/// Runs one model's share of a micro-batch through the engine and fans
/// the predictions back out to the per-request reply channels.
/// `pulled_us`/`routed_us` bound the batch's grouping phase for the
/// `batching`/`routing` trace spans.
fn execute_group(
    shared: &Shared,
    name: &str,
    model: &LoadedModel,
    jobs: Vec<Job>,
    pulled_us: u64,
    routed_us: u64,
) {
    let refs: Vec<&PowerGraph> = jobs.iter().flat_map(|j| j.graphs.iter()).collect();
    let labels = [("model", name)];
    metrics::counter_with("serve_requests_total", &labels).add(jobs.len() as u64);
    metrics::counter_with("serve_graphs_total", &labels).add(refs.len() as u64);
    metrics::counter_with("serve_batches_total", &labels).inc();
    metrics::histogram_with(
        "serve_batch_size_graphs",
        &labels,
        metrics::buckets::SIZE_POW2,
    )
    .observe(refs.len() as u64);
    let service_timer = metrics::histogram_with(
        "serve_service_time_us",
        &labels,
        metrics::buckets::LATENCY_US,
    )
    .start_timer();
    let infer_start_us = metrics::monotonic_us();
    let preds = if refs.is_empty() {
        Vec::new()
    } else {
        let serve = ServeConfig::new(
            shared.cfg.max_batch.min(refs.len()).max(1),
            shared.cfg.threads,
        );
        model.gear.estimate_graphs_with(&refs, &serve)
    };
    let infer_us = service_timer.stop();
    shared.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .graphs
        .fetch_add(refs.len() as u64, Ordering::Relaxed);
    let mut offset = 0usize;
    for mut job in jobs {
        let n = job.graphs.len();
        let predictions = preds[offset..offset + n].to_vec();
        offset += n;
        let encode_start_us = metrics::monotonic_us();
        let payload = frame::PredictResponse {
            model: name.to_string(),
            fingerprint: model.fingerprint,
            predictions,
        }
        .to_payload();
        let f = frame::RawFrame::new(frame::FrameType::PredictOk, payload);
        if let (Some(sink), Some(t)) = (&shared.trace_sink, &mut job.trace) {
            t.span("batching", pulled_us, routed_us.saturating_sub(pulled_us));
            t.span(
                "routing",
                routed_us,
                infer_start_us.saturating_sub(routed_us),
            );
            t.span("inference", infer_start_us, infer_us);
            t.span(
                "encode",
                encode_start_us,
                metrics::monotonic_us().saturating_sub(encode_start_us),
            );
            sink.record(t);
        }
        let _ = job.reply.send(f);
    }
}

/// Answers every HTTP connection on the metrics listener with the full
/// registry rendered as Prometheus text exposition (HTTP/1.0, one
/// response per connection). Non-blocking accept keeps shutdown prompt.
fn exposition_loop(shared: &Shared, listener: &TcpListener) {
    use std::io::{Read, Write};
    const IDLE: Duration = Duration::from_millis(50);
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shared.stopping() {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                // Drain the request head (best effort; any request path
                // gets the same document).
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf);
                let body = metrics::render_prometheus(&shared.stats_v2().snapshot);
                let head = format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                );
                let _ = stream
                    .write_all(head.as_bytes())
                    .and_then(|()| stream.write_all(body.as_bytes()));
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(IDLE),
            Err(_) => thread::sleep(IDLE),
        }
    }
}

/// Rescans the model sources every `poll_interval` and atomically swaps
/// the catalog when anything changed (sleeping in short slices so
/// shutdown stays responsive).
fn poller_loop(shared: &Shared) {
    const SLICE: Duration = Duration::from_millis(20);
    loop {
        let mut slept = Duration::ZERO;
        while slept < shared.cfg.poll_interval {
            if shared.stopping() {
                return;
            }
            let step = SLICE.min(shared.cfg.poll_interval - slept);
            thread::sleep(step);
            slept += step;
        }
        let prev = shared.catalog();
        let (next, changed, load_errors) = rescan(&shared.cfg, &prev);
        shared.load_errors.fetch_add(load_errors, Ordering::Relaxed);
        shared.metrics.load_errors_total.add(load_errors);
        if changed {
            let mut slot = shared
                .catalog
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            *slot = Arc::new(next);
            drop(slot);
            shared.swaps.fetch_add(1, Ordering::Relaxed);
            shared.metrics.swaps_total.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_gnn::{Ensemble, ModelConfig, PowerModel};
    use pg_store::ArtifactMeta;
    use std::io::Write;
    use std::sync::atomic::AtomicUsize;

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("pg_daemon_{tag}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A deterministic untrained estimator (seeded Glorot init) — fast to
    /// build, bit-stable to serve.
    fn tiny_gear(seed: u64) -> PowerGear {
        let cfg = ModelConfig::hec(8);
        PowerGear {
            total_model: Ensemble {
                models: vec![PowerModel::new(cfg.clone(), seed)],
            },
            dynamic_model: Ensemble {
                models: vec![PowerModel::new(cfg, seed ^ 0xbeef)],
            },
        }
    }

    fn graph(seed: u64) -> PowerGraph {
        let nodes = 3 + (seed % 3) as usize;
        let f = PowerGraph::NODE_FEATS;
        let mut node_feats = vec![0.0f32; nodes * f];
        for n in 0..nodes {
            node_feats[n * f + (seed as usize + n) % f] = 1.0;
        }
        let edges: Vec<(u32, u32)> = (1..nodes as u32).map(|d| (d - 1, d)).collect();
        let ne = edges.len();
        PowerGraph {
            kernel: "daemon".into(),
            design_id: format!("d{seed}"),
            num_nodes: nodes,
            node_feats,
            edges,
            edge_feats: (0..ne).map(|i| [0.1 * i as f32, 0.2, 0.3, 0.4]).collect(),
            edge_rel: (0..ne).map(|_| pg_graphcon::Relation::NN).collect(),
            meta: vec![0.5; 10],
        }
    }

    fn publish(dir: &Path, name: &str, kernel: &str, gear: &PowerGear, fp: u64) {
        let reg = ModelRegistry::open(dir).unwrap();
        let mut meta = ArtifactMeta::now(kernel, "total+dynamic");
        meta.train_fingerprint = fp;
        reg.publish(name, &gear.to_artifact(meta, &[], 0)).unwrap();
    }

    fn daemon_on(dir: &Path) -> DaemonHandle {
        let mut cfg = DaemonConfig::new("127.0.0.1:0");
        cfg.registry_dir = Some(dir.to_path_buf());
        cfg.batch_deadline = Duration::from_micros(200);
        cfg.poll_interval = Duration::from_millis(25);
        Daemon::bind(cfg).unwrap().spawn()
    }

    fn rpc(stream: &mut TcpStream, req: &frame::RawFrame) -> frame::RawFrame {
        frame::write_frame(stream, req).unwrap();
        frame::read_frame(stream).unwrap().expect("response frame")
    }

    #[test]
    fn bind_requires_a_model_source() {
        let cfg = DaemonConfig::new("127.0.0.1:0");
        assert!(matches!(Daemon::bind(cfg), Err(ServeError::Config(_))));
    }

    #[test]
    fn bind_rejects_zero_knobs() {
        let dir = tmp_dir("zero");
        let mut cfg = DaemonConfig::new("127.0.0.1:0");
        cfg.registry_dir = Some(dir.clone());
        cfg.max_batch = 0;
        assert!(matches!(Daemon::bind(cfg), Err(ServeError::Config(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ping_stats_models_and_shutdown() {
        let dir = tmp_dir("basic");
        let gear = tiny_gear(1);
        publish(&dir, "mvt-v1", "mvt", &gear, 0xabc);
        let handle = daemon_on(&dir);
        let mut s = TcpStream::connect(handle.addr()).unwrap();

        let pong = rpc(
            &mut s,
            &frame::RawFrame::new(frame::FrameType::Ping, vec![]),
        );
        assert_eq!(pong.frame_type(), Some(frame::FrameType::Pong));

        let resp = rpc(
            &mut s,
            &frame::RawFrame::new(frame::FrameType::ModelList, vec![]),
        );
        assert_eq!(resp.frame_type(), Some(frame::FrameType::ModelListOk));
        let list = frame::ModelListResponse::from_payload(&resp.payload).unwrap();
        assert_eq!(list.models.len(), 1);
        assert_eq!(list.models[0].name, "mvt-v1");
        assert_eq!(list.models[0].kernel, "mvt");
        assert_eq!(list.models[0].fingerprint, 0xabc);

        let resp = rpc(
            &mut s,
            &frame::RawFrame::new(frame::FrameType::Stats, vec![]),
        );
        let stats = frame::StatsResponse::from_payload(&resp.payload).unwrap();
        assert_eq!(stats.models, 1);
        assert!(stats.uptime_s >= 0.0);

        let resp = rpc(
            &mut s,
            &frame::RawFrame::new(frame::FrameType::Shutdown, vec![]),
        );
        assert_eq!(resp.frame_type(), Some(frame::FrameType::ShutdownOk));
        handle.stop().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predict_is_bit_identical_to_in_process_estimates() {
        let dir = tmp_dir("predict");
        let gear = tiny_gear(2);
        publish(&dir, "mvt-v1", "mvt", &gear, 7);
        let handle = daemon_on(&dir);
        let graphs: Vec<PowerGraph> = (0..5).map(graph).collect();
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let expect = gear.estimate_graphs(&refs);

        let mut s = TcpStream::connect(handle.addr()).unwrap();
        let req = frame::PredictRequest {
            kernel: "mvt".into(),
            graphs: graphs.clone(),
        };
        let resp = rpc(
            &mut s,
            &frame::RawFrame::new(frame::FrameType::Predict, req.to_payload()),
        );
        assert_eq!(resp.frame_type(), Some(frame::FrameType::PredictOk));
        let out = frame::PredictResponse::from_payload(&resp.payload).unwrap();
        assert_eq!(out.model, "mvt-v1");
        assert_eq!(out.fingerprint, 7);
        assert_eq!(out.predictions.len(), expect.len());
        for ((t1, d1), (t2, d2)) in out.predictions.iter().zip(&expect) {
            assert_eq!(t1.to_bits(), t2.to_bits());
            assert_eq!(d1.to_bits(), d2.to_bits());
        }
        handle.stop().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unroutable_kernel_gets_no_model_error() {
        let dir = tmp_dir("nomodel");
        publish(&dir, "mvt-v1", "mvt", &tiny_gear(3), 1);
        let handle = daemon_on(&dir);
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        let req = frame::PredictRequest {
            kernel: "gemm".into(),
            graphs: vec![graph(0)],
        };
        let resp = rpc(
            &mut s,
            &frame::RawFrame::new(frame::FrameType::Predict, req.to_payload()),
        );
        assert_eq!(resp.frame_type(), Some(frame::FrameType::Error));
        let err = frame::ErrorFrame::from_payload(&resp.payload).unwrap();
        assert_eq!(err.code, error_code::NO_MODEL);
        handle.stop().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_frame_type_keeps_connection_open() {
        let dir = tmp_dir("unknown");
        publish(&dir, "m", "mvt", &tiny_gear(4), 1);
        let handle = daemon_on(&dir);
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        let bogus = frame::RawFrame {
            tag: 0x7e,
            payload: vec![1, 2, 3],
        };
        let resp = rpc(&mut s, &bogus);
        assert_eq!(resp.frame_type(), Some(frame::FrameType::Error));
        let err = frame::ErrorFrame::from_payload(&resp.payload).unwrap();
        assert_eq!(err.code, error_code::UNKNOWN_TYPE);
        // the connection survives: a Ping still works
        let pong = rpc(
            &mut s,
            &frame::RawFrame::new(frame::FrameType::Ping, vec![]),
        );
        assert_eq!(pong.frame_type(), Some(frame::FrameType::Pong));
        handle.stop().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_bytes_get_bad_request_then_close() {
        let dir = tmp_dir("garbage");
        publish(&dir, "m", "mvt", &tiny_gear(5), 1);
        let handle = daemon_on(&dir);
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        // exactly one header's worth of garbage: unread bytes at close
        // would RST the socket and race the error frame away
        s.write_all(b"not a PGRPC hdr!").unwrap();
        let resp = frame::read_frame(&mut s).unwrap().expect("error frame");
        assert_eq!(resp.frame_type(), Some(frame::FrameType::Error));
        let err = frame::ErrorFrame::from_payload(&resp.payload).unwrap();
        assert_eq!(err.code, error_code::BAD_REQUEST);
        // server closes the desynced connection
        assert!(frame::read_frame(&mut s).unwrap().is_none());
        handle.stop().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wildcard_model_serves_any_kernel_and_specific_wins() {
        let dir = tmp_dir("route");
        publish(&dir, "any", "", &tiny_gear(6), 10);
        publish(&dir, "mvt-v1", "mvt", &tiny_gear(7), 20);
        let handle = daemon_on(&dir);
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        for (kernel, want) in [("mvt", "mvt-v1"), ("gemm", "any")] {
            let req = frame::PredictRequest {
                kernel: kernel.into(),
                graphs: vec![graph(1)],
            };
            let resp = rpc(
                &mut s,
                &frame::RawFrame::new(frame::FrameType::Predict, req.to_payload()),
            );
            assert_eq!(resp.frame_type(), Some(frame::FrameType::PredictOk));
            let out = frame::PredictResponse::from_payload(&resp.payload).unwrap();
            assert_eq!(out.model, want, "kernel {kernel}");
        }
        handle.stop().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_v2_metrics_endpoint_and_traces() {
        let dir = tmp_dir("obs");
        // Unique model name: per-model counters are process-global, so
        // exact assertions need a name no other test routes to.
        publish(&dir, "obsd-v1", "obsd", &tiny_gear(11), 42);
        let trace_path = dir.join("traces.jsonl");
        let mut cfg = DaemonConfig::new("127.0.0.1:0");
        cfg.registry_dir = Some(dir.clone());
        cfg.batch_deadline = Duration::from_micros(200);
        cfg.metrics_listen = Some("127.0.0.1:0".into());
        cfg.trace_out = Some(trace_path.clone());
        let daemon = Daemon::bind(cfg).unwrap();
        let metrics_addr = daemon.metrics_addr().expect("metrics listener bound");
        let handle = daemon.spawn();

        let mut s = TcpStream::connect(handle.addr()).unwrap();
        let total_reqs = 3usize;
        let graphs_per_req = 2usize;
        for i in 0..total_reqs {
            let req = frame::PredictRequest {
                kernel: "obsd".into(),
                graphs: (0..graphs_per_req as u64)
                    .map(|g| graph(i as u64 + g))
                    .collect(),
            };
            let resp = rpc(
                &mut s,
                &frame::RawFrame::new(frame::FrameType::Predict, req.to_payload()),
            );
            assert_eq!(resp.frame_type(), Some(frame::FrameType::PredictOk));
        }

        // StatsV2 carries the full registry snapshot.
        let resp = rpc(
            &mut s,
            &frame::RawFrame::new(frame::FrameType::StatsV2, vec![]),
        );
        assert_eq!(resp.frame_type(), Some(frame::FrameType::StatsV2Ok));
        let v2 = frame::StatsV2Response::from_payload(&resp.payload).unwrap();
        assert!(v2.uptime_s >= 0.0);
        let labels = [("model", "obsd-v1")];
        assert_eq!(
            v2.snapshot.counter_value("serve_requests_total", &labels),
            Some(total_reqs as u64)
        );
        assert_eq!(
            v2.snapshot.counter_value("serve_graphs_total", &labels),
            Some((total_reqs * graphs_per_req) as u64)
        );
        let batches = v2
            .snapshot
            .counter_value("serve_batches_total", &labels)
            .unwrap();
        assert!(batches >= 1 && batches <= total_reqs as u64);
        let bs = v2
            .snapshot
            .histogram("serve_batch_size_graphs", &labels)
            .unwrap();
        assert_eq!(bs.count, batches);
        assert_eq!(bs.sum, (total_reqs * graphs_per_req) as u64);
        let st = v2
            .snapshot
            .histogram("serve_service_time_us", &labels)
            .unwrap();
        assert_eq!(st.count, batches);
        // All admitted work is done, so the queue gauge is back to zero.
        assert_eq!(v2.snapshot.gauge_value("serve_queue_depth", &[]), Some(0));

        // The HTTP endpoint serves the same registry as Prometheus text.
        let mut http = TcpStream::connect(metrics_addr).unwrap();
        http.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut text = String::new();
        use std::io::Read;
        http.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(text.contains("text/plain; version=0.0.4"));
        assert!(text.contains("# TYPE serve_requests_total counter"));
        assert!(text.contains("serve_requests_total{model=\"obsd-v1\"}"));
        assert!(text.contains("serve_service_time_us_bucket{model=\"obsd-v1\",le=\"+Inf\"}"));

        handle.stop().unwrap();

        // One JSONL trace per served request, with all five spans.
        let traces = std::fs::read_to_string(&trace_path).unwrap();
        let lines: Vec<&str> = traces.lines().collect();
        assert_eq!(lines.len(), total_reqs);
        for line in lines {
            assert!(line.contains("\"kernel\":\"obsd\""));
            for span in ["admission", "batching", "routing", "inference", "encode"] {
                assert!(line.contains(&format!("\"name\":\"{span}\"")), "{line}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hot_swap_picks_up_republished_model() {
        let dir = tmp_dir("swap");
        publish(&dir, "mvt-v1", "mvt", &tiny_gear(8), 111);
        let handle = daemon_on(&dir);
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        let req = frame::PredictRequest {
            kernel: "mvt".into(),
            graphs: vec![graph(2)],
        };
        let raw = frame::RawFrame::new(frame::FrameType::Predict, req.to_payload());
        let before = frame::PredictResponse::from_payload(&rpc(&mut s, &raw).payload).unwrap();
        assert_eq!(before.fingerprint, 111);

        publish(&dir, "mvt-v1", "mvt", &tiny_gear(9), 222);
        // wait for the poller (25 ms interval) to observe the new stamp
        let deadline = 200;
        let mut swapped = false;
        for _ in 0..deadline {
            thread::sleep(Duration::from_millis(10));
            let after = frame::PredictResponse::from_payload(&rpc(&mut s, &raw).payload).unwrap();
            if after.fingerprint == 222 {
                swapped = true;
                break;
            }
        }
        assert!(swapped, "hot swap never observed");
        assert!(handle.stats().swaps >= 1);
        handle.stop().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
