//! `powergear` — command-line interface to the estimation pipeline.
//!
//! ```text
//! powergear kernels                            # list built-in kernels
//! powergear report  <kernel> [directives...]   # HLS report for one design
//! powergear graph   <kernel> [directives...]   # graph stats + feature dump
//! powergear measure <kernel> [directives...]   # simulated board measurement
//! powergear space   <kernel> [N]               # enumerate the design space
//! powergear serve   <kernel> [N]               # batched-inference throughput demo
//! powergear dataset <kernel>                   # build a labeled dataset at scale
//!
//! powergear train   <kernel> --save <m.pgm>    # train once, persist the model
//! powergear predict <kernel> [directives...] --model <m.pgm>
//! powergear serve   <kernel> [N] --model <m.pgm>   # zero training epochs
//! powergear serve   --listen <addr> --registry <dir>   # persistent PGRPC daemon
//! powergear stats   --addr <host:port> [--watch <secs>]   # live daemon metrics
//! powergear verify  <m.pgm>                    # bit-exactness probe check
//! powergear models  [--registry <dir>]         # list the model registry
//! powergear models  --verify-all               # replay every artifact's probe
//! powergear dse     <kernel> [N] --model <m.pgm>   # explore with a loaded model
//! powergear eval    --loko [flags]             # leave-one-kernel-out table
//!
//! directive syntax:  pipeline=<loop>  unroll=<loop>:<k>  partition=<array>:<k>
//! common flags:      --size <n>  (problem size, default 12)
//! serve flags:       --threads <t>  (engine worker threads, default: cores)
//! daemon flags:      --listen <addr>  --registry <dir>  --model <m.pgm>
//!                    --batch-deadline-us <us> (default 500)
//!                    --max-batch <graphs> (default 32)  --poll-ms <ms> (default 200)
//!                    --metrics-listen <addr> (Prometheus text endpoint)
//!                    --trace-out <file.jsonl> (per-request span traces)
//! train flags:       --samples <N> --epochs <e> --registry <dir> --name <name>
//! dataset flags:     --samples <N> (default 500) --threads <t> --seed <s>
//!                    --out <snapshot.pgstore>
//! dse flags:         --budget <frac>  (sampling budget, default 0.2)
//! eval flags:        --loko (required)  --arch <hec|gcn|sage|graphconv|gine>
//!                    --pool <add|mean|max>  --layers <n>  --heads <n>
//!                    --hidden <n>  --kernels <a,b,c>  --samples <N>
//!                    --size <n>  --epochs <e>  --folds <f>  --seed <s>
//!                    --threads <t>  --out <table.tsv>
//! ```
//!
//! Examples:
//!
//! ```text
//! powergear report gemm pipeline=k unroll=k:4 partition=A:4 --size 12
//! powergear dataset gemm --samples 500 --threads 4 --out gemm500.pgstore
//! powergear train bicg --samples 24 --size 8 --save bicg.pgm
//! powergear serve bicg 24 --model bicg.pgm
//! ```

use pg_activity::{execute, Stimuli};
use pg_datasets::{build_kernel_dataset_cached, polybench, DatasetConfig, HlsCache, PowerTarget};
use pg_gnn::{Arch, InferenceEngine, ModelConfig, Pool, ServeConfig, TrainConfig};
use pg_graphcon::{GraphFlow, PowerGraph};
use pg_hls::{Directives, HlsFlow};
use pg_powersim::BoardOracle;
use pg_store::{ArtifactMeta, ModelArtifact, ModelRegistry};
use powergear::{PowerGear, PowerGearConfig};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: powergear <kernels|report|graph|measure|space|serve|stats|train|predict|verify|models|dse|eval> ..."
        );
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "kernels" => cmd_kernels(),
        "space" => cmd_space(rest),
        "serve" => cmd_serve(rest),
        "stats" => cmd_stats(rest),
        "report" | "graph" | "measure" => cmd_design(cmd, rest),
        "dataset" => cmd_dataset(rest),
        "train" => cmd_train(rest),
        "predict" => cmd_predict(rest),
        "verify" => cmd_verify(rest),
        "models" => cmd_models(rest),
        "dse" => cmd_dse(rest),
        "eval" => cmd_eval(rest),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Argument handling

/// Parses the value following `<flag>` (e.g. `--size 8`). A present flag
/// with a missing or unparseable value is an error — `--threads abc` must
/// fail loudly instead of silently falling back to a default.
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            None => Err(format!("flag `{flag}` expects a value")),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value `{raw}` for `{flag}`")),
        },
    }
}

/// Every value-taking flag the CLI understands.
const KNOWN_FLAGS: [&str; 26] = [
    "--arch",
    "--pool",
    "--layers",
    "--heads",
    "--hidden",
    "--folds",
    "--kernels",
    "--size",
    "--threads",
    "--samples",
    "--epochs",
    "--save",
    "--model",
    "--registry",
    "--name",
    "--budget",
    "--seed",
    "--out",
    "--listen",
    "--batch-deadline-us",
    "--max-batch",
    "--poll-ms",
    "--metrics-listen",
    "--trace-out",
    "--addr",
    "--watch",
];

/// Boolean flags (present or absent, no value).
const KNOWN_BOOL_FLAGS: [&str; 2] = ["--verify-all", "--loko"];

/// Positional (non-flag) arguments, rejecting unknown `--flags` so typos
/// fail instead of being treated as kernel names or directives.
fn positionals(args: &[String]) -> Result<Vec<&String>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with("--") {
            if KNOWN_BOOL_FLAGS.contains(&a.as_str()) {
                i += 1;
            } else if KNOWN_FLAGS.contains(&a.as_str()) {
                i += 2; // skip the flag's value
            } else {
                return Err(format!("unknown flag `{a}`"));
            }
        } else {
            out.push(a);
            i += 1;
        }
    }
    Ok(out)
}

fn load_kernel(args: &[String]) -> Result<pg_ir::Kernel, String> {
    let pos = positionals(args)?;
    let name = pos
        .first()
        .ok_or_else(|| "missing kernel name".to_string())?;
    let size = flag_value(args, "--size")?.unwrap_or(12);
    polybench::by_name(name, size).ok_or_else(|| {
        format!(
            "unknown kernel `{name}`; available: {}",
            polybench::KERNEL_NAMES.join(", ")
        )
    })
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

fn parse_directives(args: &[String]) -> Result<Directives, String> {
    let mut d = Directives::new();
    for a in positionals(args)?.into_iter().skip(1) {
        if let Some(loop_) = a.strip_prefix("pipeline=") {
            d.pipeline(loop_);
        } else if let Some(rest) = a.strip_prefix("unroll=") {
            let (l, k) = rest
                .split_once(':')
                .ok_or_else(|| format!("`{a}` wants unroll=<loop>:<k>"))?;
            d.unroll(l, k.parse().map_err(|_| format!("bad factor in `{a}`"))?);
        } else if let Some(rest) = a.strip_prefix("partition=") {
            let (arr, k) = rest
                .split_once(':')
                .ok_or_else(|| format!("`{a}` wants partition=<array>:<k>"))?;
            d.partition(arr, k.parse().map_err(|_| format!("bad factor in `{a}`"))?);
        } else if a.parse::<usize>().is_err() {
            return Err(format!("unrecognized argument `{a}`"));
        }
    }
    Ok(d)
}

// ---------------------------------------------------------------------------
// Pipeline inspection commands (report/graph/measure/space/kernels)

fn cmd_kernels() -> Result<(), String> {
    println!("built-in Polybench kernels (use with --size <n>):");
    for name in polybench::KERNEL_NAMES {
        let k = polybench::by_name(name, 8).expect("built-in");
        println!(
            "  {:8} loops: {:?}  arrays: {:?}",
            name,
            k.innermost_loops(),
            k.arrays.iter().map(|a| a.name.clone()).collect::<Vec<_>>()
        );
    }
    Ok(())
}

fn cmd_space(args: &[String]) -> Result<(), String> {
    let kernel = load_kernel(args)?;
    let n = second_positional(args)?.unwrap_or(20);
    let configs = pg_datasets::sample_space(&kernel, n, 1);
    println!(
        "{} of the design space of `{}`:",
        configs.len(),
        kernel.name
    );
    for d in configs {
        println!("  {d}");
    }
    Ok(())
}

fn cmd_design(cmd: &str, args: &[String]) -> Result<(), String> {
    let kernel = load_kernel(args)?;
    let directives = parse_directives(args)?;
    let design = HlsFlow::new()
        .run(&kernel, &directives)
        .map_err(|e| format!("HLS failed: {e}"))?;
    match cmd {
        "report" => {
            let r = &design.report;
            println!("design   : {}", design.design_id());
            println!("latency  : {} cycles", r.latency_cycles);
            println!("clock    : {:.2} ns (target 10.00)", r.clock_ns);
            println!("LUT      : {}", r.lut);
            println!("FF       : {}", r.ff);
            println!("DSP      : {}", r.dsp);
            println!("BRAM     : {}", r.bram);
            println!("FSM      : {} states", design.fsmd.num_states());
        }
        "graph" => {
            let trace = execute(&design, &Stimuli::for_kernel(&kernel, 1));
            let g = GraphFlow::new().build(&design, &trace);
            let rel = g.relation_counts();
            println!("graph    : {} nodes, {} edges", g.num_nodes, g.num_edges());
            println!(
                "relations: A->A {}  A->N {}  N->A {}  N->N {}",
                rel[0], rel[1], rel[2], rel[3]
            );
            let mean_sa: f32 =
                g.edge_feats.iter().map(|e| e[0]).sum::<f32>() / g.num_edges().max(1) as f32;
            println!("mean edge SA(src): {mean_sa:.4}");
        }
        _ => {
            let trace = execute(&design, &Stimuli::for_kernel(&kernel, 1));
            let p = BoardOracle::default().measure(&design, &trace);
            println!("simulated on-board measurement for {}:", design.design_id());
            println!("  total   : {:.4} W", p.total);
            println!("  dynamic : {:.4} W", p.dynamic);
            println!("  static  : {:.4} W", p.static_);
            println!(
                "    nets (Eq.1) {:.4} W | FU internal {:.4} W | clock {:.4} W",
                p.nets, p.internal, p.clock
            );
        }
    }
    Ok(())
}

/// Second positional argument parsed as a count (e.g. `serve bicg 24`).
fn second_positional(args: &[String]) -> Result<Option<usize>, String> {
    match positionals(args)?.get(1) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid count `{raw}`")),
    }
}

// ---------------------------------------------------------------------------
// train / predict / verify / models / dse / serve

/// Builds the labeled dataset the model-facing commands share.
fn build_dataset(
    kernel: &pg_ir::Kernel,
    args: &[String],
    cache: &HlsCache,
) -> Result<pg_datasets::KernelDataset, String> {
    let cfg = DatasetConfig {
        size: flag_value(args, "--size")?.unwrap_or(12),
        max_samples: flag_value(args, "--samples")?.unwrap_or(32).max(4),
        seed: 1,
        threads: flag_value(args, "--threads")?.unwrap_or_else(default_threads),
    };
    eprintln!(
        "[data] building {} design points of `{}` (size {})...",
        cfg.max_samples, kernel.name, cfg.size
    );
    let t = Instant::now();
    let ds = build_kernel_dataset_cached(kernel, &cfg, cache);
    eprintln!(
        "[data]   {} samples in {:.2}s (HLS cache: {} designs, {} hits)",
        ds.samples.len(),
        t.elapsed().as_secs_f64(),
        cache.len(),
        cache.hits()
    );
    Ok(ds)
}

/// Builds one kernel's labeled dataset at paper scale (default 500 design
/// points), reporting cold-build timing and throughput, and optionally
/// persisting a `pg_store` snapshot that `load_dataset` can replay without
/// any synthesis.
fn cmd_dataset(args: &[String]) -> Result<(), String> {
    let kernel = load_kernel(args)?;
    let defaults = DatasetConfig::default();
    let cfg = DatasetConfig {
        size: flag_value(args, "--size")?.unwrap_or(12),
        max_samples: flag_value(args, "--samples")?
            .unwrap_or(defaults.max_samples)
            .max(4),
        seed: flag_value(args, "--seed")?.unwrap_or(defaults.seed),
        threads: flag_value(args, "--threads")?.unwrap_or_else(default_threads),
    };
    let out: Option<String> = flag_value(args, "--out")?;

    eprintln!(
        "[dataset] building {} design points of `{}` (size {}, {} thread(s))...",
        cfg.max_samples, kernel.name, cfg.size, cfg.threads
    );
    let cache = HlsCache::new();
    let t = Instant::now();
    let ds = build_kernel_dataset_cached(&kernel, &cfg, &cache);
    let secs = t.elapsed().as_secs_f64();
    println!(
        "dataset `{}`: {} samples, {:.1} avg nodes, baseline latency {} cycles",
        ds.kernel,
        ds.samples.len(),
        ds.avg_nodes(),
        ds.baseline.latency_cycles
    );
    println!(
        "cold build: {:.2}s ({:.1} designs/s, {} synthesized, {} cache hits)",
        secs,
        cache.misses() as f64 / secs.max(1e-9),
        cache.misses(),
        cache.hits()
    );
    if let Some(path) = out {
        pg_datasets::save_dataset(&ds, &path).map_err(|e| e.to_string())?;
        println!("snapshot saved to {path} (replay with load_dataset, zero synthesis)");
    }
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let kernel = load_kernel(args)?;
    let save: Option<String> = flag_value(args, "--save")?;
    let registry_dir: Option<String> = flag_value(args, "--registry")?;
    let reg_name: Option<String> = flag_value(args, "--name")?;
    if save.is_none() && registry_dir.is_none() {
        return Err("train needs a destination: --save <path> and/or --registry <dir>".into());
    }
    if registry_dir.is_some() != reg_name.is_some() {
        return Err("--registry and --name go together".into());
    }

    let cache = HlsCache::new();
    let ds = build_dataset(&kernel, args, &cache)?;
    let mut pg_cfg = PowerGearConfig::quick();
    if let Some(e) = flag_value(args, "--epochs")? {
        pg_cfg.epochs = e;
    }
    pg_cfg.threads = flag_value(args, "--threads")?.unwrap_or_else(default_threads);

    let t = Instant::now();
    let model = PowerGear::fit_with(std::slice::from_ref(&ds), &pg_cfg, |target, m| {
        eprintln!(
            "[train] {} member {}/{} (seed {}, fold {}): val MAPE {:.2}%",
            target_label(target),
            m.index + 1,
            m.total,
            m.seed,
            m.fold,
            m.val_mape
        );
    });
    eprintln!("[train] done in {:.2}s", t.elapsed().as_secs_f64());

    let heads = [
        (
            PowerTarget::Total,
            model.total_model.evaluate(&ds.labeled(PowerTarget::Total)),
        ),
        (
            PowerTarget::Dynamic,
            model
                .dynamic_model
                .evaluate(&ds.labeled(PowerTarget::Dynamic)),
        ),
    ];
    let mut meta = ArtifactMeta::now(&kernel.name, "total+dynamic");
    meta.train_fingerprint =
        pg_store::train_fingerprint(&pg_cfg.train_config(PowerTarget::Dynamic));
    meta.notes = format!("samples={} size={}", ds.samples.len(), ds.size);
    for (target, err) in &heads {
        meta.metrics
            .push((format!("{}_train_mape", target_label(*target)), *err));
    }
    let graphs: Vec<PowerGraph> = ds.samples.iter().map(|s| s.graph.clone()).collect();
    let artifact = model.to_artifact(meta, &graphs, 8);

    if let Some(path) = &save {
        artifact.save(path).map_err(|e| e.to_string())?;
        println!("saved model artifact to {path}");
    }
    if let (Some(dir), Some(name)) = (&registry_dir, &reg_name) {
        let reg = ModelRegistry::open(dir).map_err(|e| e.to_string())?;
        let path = reg.publish(name, &artifact).map_err(|e| e.to_string())?;
        println!("published `{name}` to {}", path.display());
    }
    for (target, err) in &heads {
        println!("  {:8} train MAPE {err:.2}%", target_label(*target));
    }
    Ok(())
}

fn target_label(target: PowerTarget) -> &'static str {
    match target {
        PowerTarget::Total => "total",
        PowerTarget::Dynamic => "dynamic",
    }
}

/// Loads and probe-verifies the `--model` artifact, and — when the command
/// targets a specific kernel — rejects a model trained on a different one,
/// so a mismatched artifact cannot silently produce garbage estimates.
fn load_artifact(
    args: &[String],
    expected_kernel: Option<&str>,
) -> Result<(String, ModelArtifact), String> {
    let path: String =
        flag_value(args, "--model")?.ok_or_else(|| "missing --model <path>".to_string())?;
    let artifact = ModelArtifact::load(&path).map_err(|e| format!("loading `{path}`: {e}"))?;
    artifact
        .verify()
        .map_err(|e| format!("verifying `{path}`: {e}"))?;
    if let Some(kernel) = expected_kernel {
        let trained_on = &artifact.meta.kernel;
        if !trained_on.is_empty() && !trained_on.split(',').any(|k| k.trim() == kernel) {
            return Err(format!(
                "`{path}` was trained on kernel(s) `{trained_on}`, not `{kernel}` — \
                 estimates would be meaningless; train a model for `{kernel}` first"
            ));
        }
    }
    Ok((path, artifact))
}

fn cmd_predict(args: &[String]) -> Result<(), String> {
    let kernel = load_kernel(args)?;
    let directives = parse_directives(args)?;
    let (path, artifact) = load_artifact(args, Some(&kernel.name))?;
    let model = PowerGear::from_artifact(&artifact).map_err(|e| e.to_string())?;
    eprintln!(
        "[predict] loaded `{path}` (kernel {}, {} + {} members, 0 training epochs)",
        artifact.meta.kernel,
        model.total_model.models.len(),
        model.dynamic_model.models.len()
    );
    let est = model
        .estimate(&kernel, &directives)
        .map_err(|e| format!("HLS failed: {e}"))?;
    println!("design    : {}/{}", kernel.name, directives.id());
    println!("total     : {:.4} W", est.total_w);
    println!("dynamic   : {:.4} W", est.dynamic_w);
    println!("latency   : {} cycles", est.latency_cycles);
    println!("graph     : {} nodes", est.graph_nodes);
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let pos = positionals(args)?;
    let path = pos
        .first()
        .ok_or_else(|| "usage: powergear verify <artifact.pgm>".to_string())?;
    let artifact = ModelArtifact::load(path).map_err(|e| format!("loading `{path}`: {e}"))?;
    artifact
        .verify()
        .map_err(|e| format!("verification of `{path}` FAILED: {e}"))?;
    let probe = artifact.probe.as_ref().map(|p| p.graphs.len()).unwrap_or(0);
    println!(
        "{path}: OK (kernel {}, target {}, {} ensembles, probe over {} graphs bit-exact)",
        artifact.meta.kernel,
        artifact.meta.target,
        artifact.ensembles.len(),
        probe
    );
    Ok(())
}

fn cmd_models(args: &[String]) -> Result<(), String> {
    let dir: String = flag_value(args, "--registry")?.unwrap_or_else(|| "models".into());
    let verify_all = args.iter().any(|a| a == "--verify-all");
    let reg = ModelRegistry::open(&dir).map_err(|e| e.to_string())?;
    let entries = reg.list().map_err(|e| e.to_string())?;
    if entries.is_empty() {
        // A sweep over nothing must not report success — an empty registry
        // under --verify-all is almost always a mistyped --registry path
        // (open() creates missing directories), and a CI gate that
        // verified zero probes has verified nothing.
        if verify_all {
            return Err(format!(
                "registry `{dir}` holds no artifacts — nothing to verify"
            ));
        }
        println!("registry `{dir}` is empty (publish with `train --registry {dir} --name <n>`)");
        return Ok(());
    }
    println!("registry `{dir}`: {} artifact(s)", entries.len());
    if verify_all {
        return verify_registry(&reg, &entries);
    }
    for e in entries {
        match e.meta {
            Ok(m) => {
                let metrics: Vec<String> = m
                    .metrics
                    .iter()
                    .map(|(k, v)| format!("{k}={v:.2}"))
                    .collect();
                println!(
                    "  {:16} kernel={} target={} fp={:016x} created={} {}",
                    e.name,
                    m.kernel,
                    m.target,
                    m.train_fingerprint,
                    m.created_at_unix,
                    metrics.join(" ")
                );
            }
            Err(err) => println!("  {:16} UNREADABLE: {err}", e.name),
        }
    }
    Ok(())
}

/// `models --verify-all`: loads every artifact in the registry and replays
/// its embedded bit-exactness probe, reporting pass/fail per model. Any
/// failure (unreadable artifact, probe mismatch) makes the command exit
/// non-zero, so a registry sweep can gate CI or a deployment.
fn verify_registry(reg: &ModelRegistry, entries: &[pg_store::RegistryEntry]) -> Result<(), String> {
    let mut failed = 0usize;
    for e in entries {
        let status = reg
            .load(&e.name)
            .and_then(|artifact| artifact.verify().map(|()| artifact));
        match status {
            Ok(artifact) => {
                let probe = artifact.probe.as_ref().map(|p| p.graphs.len()).unwrap_or(0);
                println!(
                    "  {:16} PASS (kernel={}, {} ensembles, probe over {} graphs bit-exact)",
                    e.name,
                    artifact.meta.kernel,
                    artifact.ensembles.len(),
                    probe
                );
            }
            Err(err) => {
                failed += 1;
                println!("  {:16} FAIL: {err}", e.name);
            }
        }
    }
    if failed > 0 {
        return Err(format!(
            "{failed}/{} artifact(s) failed verification",
            entries.len()
        ));
    }
    println!("all {} artifact(s) verified bit-exact", entries.len());
    Ok(())
}

fn cmd_dse(args: &[String]) -> Result<(), String> {
    let kernel = load_kernel(args)?;
    let (path, artifact) = load_artifact(args, Some(&kernel.name))?;
    let model = PowerGear::from_artifact(&artifact).map_err(|e| e.to_string())?;
    let dse_cfg = match flag_value::<f64>(args, "--budget")? {
        None => pg_dse::DseConfig::quick(7),
        Some(budget) => {
            if !(0.0..=1.0).contains(&budget) {
                return Err(format!("--budget {budget} must be within 0..=1"));
            }
            pg_dse::DseConfig::with_budget(budget, 7)
        }
    };
    let cache = HlsCache::new();
    let ds = build_dataset(&kernel, args, &cache)?;
    let latency: Vec<f64> = ds.samples.iter().map(|s| s.latency as f64).collect();
    let truth: Vec<f64> = ds.samples.iter().map(|s| s.power.dynamic).collect();
    let graphs: Vec<&PowerGraph> = ds.samples.iter().map(|s| &s.graph).collect();
    let engine = InferenceEngine::new(&model.dynamic_model);
    eprintln!(
        "[dse] exploring {} points of `{}` with `{path}` at {:.0}% budget",
        graphs.len(),
        kernel.name,
        dse_cfg.budget_frac * 100.0
    );
    let out = pg_dse::run_dse_with_engine(&latency, &truth, &graphs, &engine, &dse_cfg);
    println!("{}", out.summary(graphs.len()));
    for p in &out.approx_frontier {
        println!(
            "  frontier: {} latency {:.0} dynamic {:.4} W",
            ds.samples[p.id].design_id, p.latency, p.power
        );
    }
    Ok(())
}

/// One parsed configuration for both `serve` modes: the one-shot
/// throughput demo and the persistent `--listen` daemon share it, so the
/// batching/threading flags mean the same thing in both.
struct ServeCliConfig {
    size: usize,
    count: usize,
    threads: usize,
    model: Option<String>,
    registry: Option<String>,
    listen: Option<String>,
    batch_deadline_us: u64,
    max_batch: usize,
    poll_ms: u64,
    metrics_listen: Option<String>,
    trace_out: Option<String>,
}

fn parse_serve_config(args: &[String]) -> Result<ServeCliConfig, String> {
    let cfg = ServeCliConfig {
        size: flag_value(args, "--size")?.unwrap_or(12),
        count: second_positional(args)?.unwrap_or(24),
        threads: flag_value(args, "--threads")?
            .unwrap_or_else(default_threads)
            .max(1),
        model: flag_value(args, "--model")?,
        registry: flag_value(args, "--registry")?,
        listen: flag_value(args, "--listen")?,
        batch_deadline_us: flag_value(args, "--batch-deadline-us")?.unwrap_or(500),
        max_batch: flag_value(args, "--max-batch")?.unwrap_or(32),
        poll_ms: flag_value(args, "--poll-ms")?.unwrap_or(200),
        metrics_listen: flag_value(args, "--metrics-listen")?,
        trace_out: flag_value(args, "--trace-out")?,
    };
    if cfg.max_batch == 0 {
        return Err("--max-batch must be positive".into());
    }
    Ok(cfg)
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let cfg = parse_serve_config(args)?;
    if cfg.listen.is_some() {
        return cmd_serve_daemon(&cfg);
    }
    cmd_serve_oneshot(args, &cfg)
}

/// `serve --listen <addr>`: the persistent PGRPC daemon (protocol spec in
/// docs/PROTOCOL.md, operations runbook in docs/SERVING.md). Blocks until
/// a Shutdown frame arrives.
fn cmd_serve_daemon(cfg: &ServeCliConfig) -> Result<(), String> {
    use powergear::daemon::{Daemon, DaemonConfig};
    if cfg.model.is_none() && cfg.registry.is_none() {
        return Err(
            "serve --listen needs a model source: --model <m.pgm> and/or --registry <dir>".into(),
        );
    }
    let listen = cfg.listen.clone().unwrap_or_default();
    let mut dcfg = DaemonConfig::new(listen);
    dcfg.max_batch = cfg.max_batch;
    dcfg.batch_deadline = std::time::Duration::from_micros(cfg.batch_deadline_us);
    dcfg.poll_interval = std::time::Duration::from_millis(cfg.poll_ms.max(1));
    dcfg.threads = cfg.threads;
    dcfg.registry_dir = cfg.registry.clone().map(Into::into);
    dcfg.model_path = cfg.model.clone().map(Into::into);
    dcfg.metrics_listen = cfg.metrics_listen.clone();
    dcfg.trace_out = cfg.trace_out.clone().map(Into::into);
    let daemon = Daemon::bind(dcfg).map_err(|e| e.to_string())?;
    let models = daemon.models();
    eprintln!(
        "[serve] listening on {} — {} model(s), batch ≤{} graphs / {}µs deadline, \
         {} engine thread(s), source poll {}ms",
        daemon.local_addr(),
        models.len(),
        cfg.max_batch,
        cfg.batch_deadline_us,
        cfg.threads,
        cfg.poll_ms
    );
    for m in &models {
        eprintln!(
            "[serve]   {:16} kernel(s) `{}` fp={:016x}",
            m.name, m.kernel, m.fingerprint
        );
    }
    if models.is_empty() {
        eprintln!(
            "[serve]   no models loaded yet ({} load error(s)); publish to the registry \
             and the daemon hot-swaps them in",
            daemon.load_errors()
        );
    }
    if let Some(addr) = daemon.metrics_addr() {
        eprintln!("[serve] Prometheus metrics on http://{addr}/metrics");
    }
    if let Some(path) = &cfg.trace_out {
        eprintln!("[serve] per-request span traces -> {path}");
    }
    eprintln!("[serve] send a Shutdown frame to stop (see docs/PROTOCOL.md)");
    daemon.run().map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------------
// stats

/// `powergear stats --addr <host:port> [--watch <secs>]`: fetches a
/// `StatsV2` registry snapshot from a live daemon and renders it as a
/// table; `--watch` repeats forever at the given period.
fn cmd_stats(args: &[String]) -> Result<(), String> {
    let addr: String = flag_value(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7070".into());
    let watch: Option<u64> = flag_value(args, "--watch")?;
    loop {
        let v2 = fetch_stats_v2(&addr)?;
        print_stats_v2(&addr, &v2);
        match watch {
            None => return Ok(()),
            Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs.max(1))),
        }
    }
}

/// One StatsV2 round trip on a fresh connection.
fn fetch_stats_v2(addr: &str) -> Result<pg_store::StatsV2Response, String> {
    use pg_store::frame;
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connecting to `{addr}`: {e}"))?;
    let req = frame::RawFrame::new(frame::FrameType::StatsV2, Vec::new());
    frame::write_frame(&mut stream, &req).map_err(|e| e.to_string())?;
    let resp = frame::read_frame(&mut stream)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| "server closed the connection".to_string())?;
    match resp.frame_type() {
        Some(frame::FrameType::StatsV2Ok) => {
            frame::StatsV2Response::from_payload(&resp.payload).map_err(|e| e.to_string())
        }
        Some(frame::FrameType::Error) => {
            let err = frame::ErrorFrame::from_payload(&resp.payload).map_err(|e| e.to_string())?;
            Err(format!(
                "server rejected StatsV2 (code {}): {} — an older daemon? try upgrading it",
                err.code, err.message
            ))
        }
        other => Err(format!("unexpected response frame {other:?}")),
    }
}

fn fmt_metric_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{{{}}}", inner.join(","))
}

/// A histogram bound in microseconds, humanized (`u64::MAX` is +inf).
fn fmt_bound(b: Option<u64>) -> String {
    match b {
        None => "-".into(),
        Some(u64::MAX) => "+inf".into(),
        Some(v) => v.to_string(),
    }
}

fn print_stats_v2(addr: &str, v2: &pg_store::StatsV2Response) {
    println!("daemon {addr}: up {:.1}s", v2.uptime_s);
    if !v2.snapshot.counters.is_empty() {
        println!("  {:<52} {:>14}", "counter", "value");
        for c in &v2.snapshot.counters {
            println!(
                "  {:<52} {:>14}",
                format!("{}{}", c.name, fmt_metric_labels(&c.labels)),
                c.value
            );
        }
    }
    if !v2.snapshot.gauges.is_empty() {
        println!("  {:<52} {:>14}", "gauge", "value");
        for g in &v2.snapshot.gauges {
            println!(
                "  {:<52} {:>14}",
                format!("{}{}", g.name, fmt_metric_labels(&g.labels)),
                g.value
            );
        }
    }
    if !v2.snapshot.histograms.is_empty() {
        println!(
            "  {:<52} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "p50<=", "p95<=", "mean"
        );
        for h in &v2.snapshot.histograms {
            println!(
                "  {:<52} {:>10} {:>10} {:>10} {:>10.1}",
                format!("{}{}", h.name, fmt_metric_labels(&h.labels)),
                h.count,
                fmt_bound(h.percentile(0.5)),
                fmt_bound(h.percentile(0.95)),
                h.mean()
            );
        }
    }
}

/// `serve <kernel> [N]` without `--listen`: the original in-process
/// throughput demo comparing the batched engine against the sequential
/// path on one locally built dataset.
fn cmd_serve_oneshot(args: &[String], scfg: &ServeCliConfig) -> Result<(), String> {
    let kernel = load_kernel(args)?;
    let n = scfg.count;
    let threads = scfg.threads;
    let model_path = &scfg.model;

    let cache = HlsCache::new();
    let cfg = DatasetConfig {
        size: scfg.size,
        max_samples: n.max(4),
        seed: 1,
        threads,
    };
    eprintln!(
        "[serve] building {} design points of `{}`...",
        cfg.max_samples, kernel.name
    );
    let t_build = Instant::now();
    let ds = build_kernel_dataset_cached(&kernel, &cfg, &cache);
    eprintln!(
        "[serve]   {} samples in {:.2}s (HLS cache: {} designs, {} hits)",
        ds.samples.len(),
        t_build.elapsed().as_secs_f64(),
        cache.len(),
        cache.hits()
    );

    let ensemble = match model_path {
        Some(_) => {
            let (path, artifact) = load_artifact(args, Some(&kernel.name))?;
            let model = PowerGear::from_artifact(&artifact).map_err(|e| e.to_string())?;
            eprintln!(
                "[serve] loaded pre-trained dynamic ensemble from `{path}` \
                 ({} members, 0 training epochs at serve time)",
                model.dynamic_model.models.len()
            );
            model.dynamic_model
        }
        None => {
            let data = ds.labeled(PowerTarget::Dynamic);
            let mut tc = TrainConfig::quick(ModelConfig::hec(16));
            tc.epochs = 10;
            tc.folds = 2;
            tc.threads = threads;
            eprintln!("[serve] training a quick dynamic-power ensemble (pass --model to skip)...");
            pg_gnn::train_ensemble(&data, &tc)
        }
    };

    let graphs: Vec<&PowerGraph> = ds.samples.iter().map(|s| &s.graph).collect();
    // warm up allocators etc. before timing either path
    let _ = ensemble.predict(&graphs);
    let t_seq = Instant::now();
    let seq = ensemble.predict(&graphs);
    let seq_s = t_seq.elapsed().as_secs_f64();

    let engine =
        InferenceEngine::with_config(&ensemble, ServeConfig::new(8.min(graphs.len()), threads));
    let (batched, stats) = engine.predict_with_stats(&graphs);
    assert_eq!(
        seq.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        batched.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "engine must be bit-identical to the sequential path"
    );

    println!(
        "serving `{}`: {} graphs, {} ensemble members{}",
        ds.kernel,
        stats.graphs,
        ensemble.models.len(),
        if model_path.is_some() {
            " (loaded from artifact, 0 training epochs)"
        } else {
            ""
        }
    );
    println!(
        "  sequential : {:>10.1} graphs/s ({:.2} ms total)",
        stats.graphs as f64 / seq_s.max(1e-12),
        seq_s * 1e3
    );
    println!(
        "  engine     : {:>10.1} graphs/s ({:.2} ms total, {} batches x {} threads)",
        stats.graphs_per_sec(),
        stats.seconds * 1e3,
        stats.batches,
        stats.threads_used
    );
    println!(
        "  speedup    : {:.2}x (bit-identical output)",
        seq_s / stats.seconds.max(1e-12)
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// eval: leave-one-kernel-out cross-kernel evaluation

/// Parses `--arch/--pool/--layers/--heads/--hidden` into a zoo
/// [`ModelConfig`], validating value domains with loud errors.
fn parse_zoo_config(args: &[String]) -> Result<ModelConfig, String> {
    let hidden: usize = flag_value(args, "--hidden")?.unwrap_or(16);
    if hidden == 0 {
        return Err("`--hidden` must be at least 1".into());
    }
    let arch_name: Option<String> = flag_value(args, "--arch")?;
    let mut model = match arch_name.as_deref() {
        None | Some("hec") => ModelConfig::hec(hidden),
        Some("gcn") => ModelConfig::baseline(Arch::Gcn, hidden),
        Some("sage") => ModelConfig::baseline(Arch::Sage, hidden),
        Some("graphconv") => ModelConfig::baseline(Arch::GraphConv, hidden),
        Some("gine") => ModelConfig::baseline(Arch::Gine, hidden),
        Some(other) => {
            return Err(format!(
                "unknown arch `{other}`; available: hec, gcn, sage, graphconv, gine"
            ))
        }
    };
    if let Some(pool) = flag_value::<String>(args, "--pool")? {
        model.pool = Pool::parse(&pool)
            .ok_or_else(|| format!("unknown pool `{pool}`; available: add, mean, max"))?;
    }
    if let Some(layers) = flag_value(args, "--layers")? {
        if layers == 0 {
            return Err("`--layers` must be at least 1".into());
        }
        model.layers = layers;
    }
    if let Some(heads) = flag_value(args, "--heads")? {
        if heads > 0 && model.arch != Arch::Hec {
            return Err("`--heads` requires the hec arch (edge attention)".into());
        }
        if heads > 0 && model.hidden % heads != 0 {
            return Err(format!(
                "`--heads {heads}` must divide `--hidden {}`",
                model.hidden
            ));
        }
        model.heads = heads;
    }
    Ok(model)
}

fn cmd_eval(args: &[String]) -> Result<(), String> {
    let pos = positionals(args)?;
    if let Some(extra) = pos.first() {
        return Err(format!("unexpected argument `{extra}`; eval takes flags only"));
    }
    if !args.iter().any(|a| a == "--loko") {
        return Err("eval requires `--loko` (leave-one-kernel-out protocol)".into());
    }
    let mut cfg = powergear::eval::EvalConfig::quick(parse_zoo_config(args)?);
    if let Some(size) = flag_value(args, "--size")? {
        cfg.data.size = size;
    }
    if let Some(samples) = flag_value(args, "--samples")? {
        cfg.data.max_samples = samples;
    }
    if let Some(seed) = flag_value(args, "--seed")? {
        cfg.data.seed = seed;
    }
    if let Some(epochs) = flag_value(args, "--epochs")? {
        cfg.epochs = epochs;
    }
    if let Some(folds) = flag_value(args, "--folds")? {
        cfg.folds = folds;
    }
    if let Some(threads) = flag_value(args, "--threads")? {
        cfg.threads = threads;
        cfg.data.threads = threads;
    }
    if let Some(list) = flag_value::<String>(args, "--kernels")? {
        let kernels: Vec<String> = list.split(',').map(|k| k.trim().to_string()).collect();
        for k in &kernels {
            if !polybench::KERNEL_NAMES.contains(&k.as_str()) {
                return Err(format!(
                    "unknown kernel `{k}`; available: {}",
                    polybench::KERNEL_NAMES.join(", ")
                ));
            }
        }
        if kernels.len() < 2 {
            return Err("`--kernels` needs at least 2 kernels (train on N-1)".into());
        }
        cfg.kernels = Some(kernels);
    }

    let t0 = Instant::now();
    let report = powergear::eval::run_loko_built(&cfg);
    println!(
        "loko config {} ({} kernels x 2 targets, {} samples/kernel, {:.1}s)",
        report.config,
        report.rows.len() / 2,
        cfg.data.max_samples,
        t0.elapsed().as_secs_f64()
    );
    println!("{}", report.to_table());
    println!("digest {:016x}", report.digest());
    if let Some(path) = flag_value::<String>(args, "--out")? {
        std::fs::write(&path, report.to_tsv())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}
