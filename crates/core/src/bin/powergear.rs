//! `powergear` — command-line interface to the estimation pipeline.
//!
//! ```text
//! powergear kernels                      # list built-in kernels
//! powergear report  <kernel> [directives...]   # HLS report for one design
//! powergear graph   <kernel> [directives...]   # graph stats + feature dump
//! powergear measure <kernel> [directives...]   # simulated board measurement
//! powergear space   <kernel> [N]        # enumerate the design space
//! powergear serve   <kernel> [N]        # batched-inference throughput demo
//!
//! directive syntax:  pipeline=<loop>  unroll=<loop>:<k>  partition=<array>:<k>
//! common flags:      --size <n>  (problem size, default 12)
//! serve flags:       --threads <t>  (engine worker threads, default: cores)
//! ```
//!
//! Examples:
//!
//! ```text
//! powergear report gemm pipeline=k unroll=k:4 partition=A:4 --size 12
//! powergear measure atax pipeline=j
//! ```

use pg_activity::{execute, Stimuli};
use pg_datasets::{build_kernel_dataset_cached, polybench, DatasetConfig, HlsCache, PowerTarget};
use pg_gnn::{train_ensemble, InferenceEngine, ModelConfig, ServeConfig, TrainConfig};
use pg_graphcon::{GraphFlow, PowerGraph};
use pg_hls::{Directives, HlsFlow};
use pg_powersim::BoardOracle;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: powergear <kernels|report|graph|measure|space|serve> ...");
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "kernels" => {
            println!("built-in Polybench kernels (use with --size <n>):");
            for name in polybench::KERNEL_NAMES {
                let k = polybench::by_name(name, 8).expect("built-in");
                println!(
                    "  {:8} loops: {:?}  arrays: {:?}",
                    name,
                    k.innermost_loops(),
                    k.arrays.iter().map(|a| a.name.clone()).collect::<Vec<_>>()
                );
            }
            ExitCode::SUCCESS
        }
        "space" => {
            let Some(kernel) = load_kernel(&args) else {
                return ExitCode::FAILURE;
            };
            let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);
            let configs = pg_datasets::sample_space(&kernel, n, 1);
            println!(
                "{} of the design space of `{}`:",
                configs.len(),
                kernel.name
            );
            for d in configs {
                println!("  {d}");
            }
            ExitCode::SUCCESS
        }
        "serve" => {
            let Some(kernel) = load_kernel(&args) else {
                return ExitCode::FAILURE;
            };
            let n: usize = args
                .get(2)
                .filter(|a| !a.starts_with("--"))
                .and_then(|s| s.parse().ok())
                .unwrap_or(24);
            let threads = flag_value(&args, "--threads")
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|p| p.get())
                        .unwrap_or(1)
                })
                .max(1);
            let size = flag_value(&args, "--size").unwrap_or(12);
            serve_demo(&kernel, n, threads, size)
        }
        "report" | "graph" | "measure" => {
            let Some(kernel) = load_kernel(&args) else {
                return ExitCode::FAILURE;
            };
            let directives = match parse_directives(&args[2..]) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("bad directive: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let design = match HlsFlow::new().run(&kernel, &directives) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("HLS failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cmd.as_str() {
                "report" => {
                    let r = &design.report;
                    println!("design   : {}", design.design_id());
                    println!("latency  : {} cycles", r.latency_cycles);
                    println!("clock    : {:.2} ns (target 10.00)", r.clock_ns);
                    println!("LUT      : {}", r.lut);
                    println!("FF       : {}", r.ff);
                    println!("DSP      : {}", r.dsp);
                    println!("BRAM     : {}", r.bram);
                    println!("FSM      : {} states", design.fsmd.num_states());
                }
                "graph" => {
                    let trace = execute(&design, &Stimuli::for_kernel(&kernel, 1));
                    let g = GraphFlow::new().build(&design, &trace);
                    let rel = g.relation_counts();
                    println!("graph    : {} nodes, {} edges", g.num_nodes, g.num_edges());
                    println!(
                        "relations: A->A {}  A->N {}  N->A {}  N->N {}",
                        rel[0], rel[1], rel[2], rel[3]
                    );
                    let mean_sa: f32 = g.edge_feats.iter().map(|e| e[0]).sum::<f32>()
                        / g.num_edges().max(1) as f32;
                    println!("mean edge SA(src): {mean_sa:.4}");
                }
                _ => {
                    let trace = execute(&design, &Stimuli::for_kernel(&kernel, 1));
                    let p = BoardOracle::default().measure(&design, &trace);
                    println!("simulated on-board measurement for {}:", design.design_id());
                    println!("  total   : {:.4} W", p.total);
                    println!("  dynamic : {:.4} W", p.dynamic);
                    println!("  static  : {:.4} W", p.static_);
                    println!(
                        "    nets (Eq.1) {:.4} W | FU internal {:.4} W | clock {:.4} W",
                        p.nets, p.internal, p.clock
                    );
                }
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`");
            ExitCode::FAILURE
        }
    }
}

/// Trains a small ensemble on the kernel's design space (HLS runs served
/// through a shared cache) and contrasts sequential vs batched multi-core
/// inference throughput.
fn serve_demo(kernel: &pg_ir::Kernel, n: usize, threads: usize, size: usize) -> ExitCode {
    let cache = HlsCache::new();
    let cfg = DatasetConfig {
        size,
        max_samples: n.max(4),
        seed: 1,
        threads: threads.max(1),
    };
    eprintln!(
        "[serve] building {} design points of `{}`...",
        cfg.max_samples, kernel.name
    );
    let t_build = Instant::now();
    let ds = build_kernel_dataset_cached(kernel, &cfg, &cache);
    eprintln!(
        "[serve]   {} samples in {:.2}s (HLS cache: {} designs, {} hits)",
        ds.samples.len(),
        t_build.elapsed().as_secs_f64(),
        cache.len(),
        cache.hits()
    );

    let data = ds.labeled(PowerTarget::Dynamic);
    let mut tc = TrainConfig::quick(ModelConfig::hec(16));
    tc.epochs = 10;
    tc.folds = 2;
    tc.threads = threads.max(1);
    eprintln!("[serve] training a quick dynamic-power ensemble...");
    let ensemble = train_ensemble(&data, &tc);

    let graphs: Vec<&PowerGraph> = ds.samples.iter().map(|s| &s.graph).collect();
    // warm up allocators etc. before timing either path
    let _ = ensemble.predict(&graphs);
    let t_seq = Instant::now();
    let seq = ensemble.predict(&graphs);
    let seq_s = t_seq.elapsed().as_secs_f64();

    let engine =
        InferenceEngine::with_config(&ensemble, ServeConfig::new(8.min(graphs.len()), threads));
    let (batched, stats) = engine.predict_with_stats(&graphs);
    assert_eq!(
        seq.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        batched.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "engine must be bit-identical to the sequential path"
    );

    println!(
        "serving `{}`: {} graphs, {} ensemble members",
        ds.kernel,
        stats.graphs,
        ensemble.models.len()
    );
    println!(
        "  sequential : {:>10.1} graphs/s ({:.2} ms total)",
        stats.graphs as f64 / seq_s.max(1e-12),
        seq_s * 1e3
    );
    println!(
        "  engine     : {:>10.1} graphs/s ({:.2} ms total, {} batches x {} threads)",
        stats.graphs_per_sec(),
        stats.seconds * 1e3,
        stats.batches,
        stats.threads_used
    );
    println!(
        "  speedup    : {:.2}x (bit-identical output)",
        seq_s / stats.seconds.max(1e-12)
    );
    ExitCode::SUCCESS
}

/// Parses the value following `<flag>` (e.g. `--size 8`), if present.
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

fn load_kernel(args: &[String]) -> Option<pg_ir::Kernel> {
    let name = args.get(1)?;
    let size = flag_value(args, "--size").unwrap_or(12);
    match polybench::by_name(name, size) {
        Some(k) => Some(k),
        None => {
            eprintln!(
                "unknown kernel `{name}`; available: {}",
                polybench::KERNEL_NAMES.join(", ")
            );
            None
        }
    }
}

fn parse_directives(args: &[String]) -> Result<Directives, String> {
    let mut d = Directives::new();
    for a in args {
        if a.starts_with("--") {
            continue; // flags handled elsewhere
        }
        if let Some(loop_) = a.strip_prefix("pipeline=") {
            d.pipeline(loop_);
        } else if let Some(rest) = a.strip_prefix("unroll=") {
            let (l, k) = rest
                .split_once(':')
                .ok_or_else(|| format!("`{a}` wants unroll=<loop>:<k>"))?;
            d.unroll(l, k.parse().map_err(|_| format!("bad factor in `{a}`"))?);
        } else if let Some(rest) = a.strip_prefix("partition=") {
            let (arr, k) = rest
                .split_once(':')
                .ok_or_else(|| format!("`{a}` wants partition=<array>:<k>"))?;
            d.partition(arr, k.parse().map_err(|_| format!("bad factor in `{a}`"))?);
        } else if a.parse::<usize>().is_err() {
            return Err(format!("unrecognized argument `{a}`"));
        }
    }
    Ok(d)
}
