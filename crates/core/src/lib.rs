//! **PowerGear**: graph-learning-assisted early-stage power estimation for
//! FPGA HLS — a full Rust reproduction of the DATE 2022 paper.
//!
//! PowerGear estimates total and dynamic power of an HLS design right after
//! high-level synthesis, skipping RTL implementation and gate-level
//! simulation. It combines a graph construction flow (buffer insertion,
//! datapath merging, graph trimming, switching-activity feature annotation)
//! with HEC-GNN, a heterogeneous edge-centric GNN whose aggregation fits
//! the dynamic-power formula `P = Σ α·C·V²·f`.
//!
//! This crate is the user-facing entry point: [`PowerGear::fit`] trains the
//! total- and dynamic-power ensembles on labeled datasets, and
//! [`PowerGear::estimate`] runs the complete inference flow (HLS → activity
//! trace → graph → GNN) for a new kernel/directive configuration.
//!
//! # Examples
//!
//! ```no_run
//! use powergear::{PowerGear, PowerGearConfig};
//! use pg_datasets::{build_all, DatasetConfig};
//! use pg_hls::Directives;
//!
//! let datasets = build_all(&DatasetConfig::default());
//! let model = PowerGear::fit(&datasets, &PowerGearConfig::quick());
//! let kernel = pg_datasets::polybench::gemm(12);
//! let mut directives = Directives::new();
//! directives.pipeline("k").unroll("k", 4);
//! let estimate = model.estimate(&kernel, &directives)?;
//! println!("total {:.3} W, dynamic {:.3} W", estimate.total_w, estimate.dynamic_w);
//! # Ok::<(), pg_hls::HlsError>(())
//! ```

pub mod daemon;
pub mod eval;

use pg_activity::{execute, Stimuli};
use pg_datasets::{HlsCache, KernelDataset, PowerTarget};
use pg_gnn::{Ensemble, InferenceEngine, ModelConfig, ServeConfig, TrainConfig};
use pg_graphcon::{GraphFlow, PowerGraph};
use pg_hls::{Directives, HlsError, HlsReport};
use pg_ir::Kernel;

/// Top-level configuration for [`PowerGear::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct PowerGearConfig {
    /// Hidden width of HEC-GNN.
    pub hidden: usize,
    /// Training epochs per member model.
    pub epochs: usize,
    /// Cross-validation folds (paper: 10).
    pub folds: usize,
    /// Ensemble seeds (paper: 3).
    pub seeds: Vec<u64>,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Worker threads.
    pub threads: usize,
}

impl PowerGearConfig {
    /// Scaled-down defaults for this environment (same pipeline as the
    /// paper, smaller width/epochs/folds).
    pub fn quick() -> Self {
        PowerGearConfig {
            hidden: 32,
            epochs: 40,
            folds: 3,
            seeds: vec![17],
            batch_size: 48,
            lr: 2e-3,
            threads: 2,
        }
    }

    /// The paper's published hyperparameters (heavy on CPU).
    pub fn paper() -> Self {
        PowerGearConfig {
            hidden: 128,
            epochs: 1200,
            folds: 10,
            seeds: vec![17, 43, 91],
            batch_size: 128,
            lr: 5e-4,
            threads: 2,
        }
    }

    /// Converts to a GNN training config for `target` power.
    pub fn train_config(&self, target: PowerTarget) -> TrainConfig {
        let mut cfg = TrainConfig::quick(ModelConfig::hec(self.hidden));
        cfg.epochs = match target {
            // the paper trains dynamic power twice as long
            PowerTarget::Dynamic => self.epochs * 2,
            PowerTarget::Total => self.epochs,
        };
        cfg.label_norm = match target {
            // static power is a near-constant offset under total power;
            // standardized labels keep short training runs from collapsing
            // below the positive-power floor
            PowerTarget::Total => pg_gnn::LabelNorm::Standardize,
            PowerTarget::Dynamic => pg_gnn::LabelNorm::MeanScale,
        };
        cfg.folds = self.folds;
        cfg.seeds = self.seeds.clone();
        cfg.batch_size = self.batch_size;
        cfg.lr = self.lr;
        cfg.threads = self.threads;
        cfg
    }
}

/// A power estimate for one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerEstimate {
    /// Estimated total power (W).
    pub total_w: f64,
    /// Estimated dynamic power (W).
    pub dynamic_w: f64,
    /// HLS-reported latency (cycles).
    pub latency_cycles: u64,
    /// The constructed graph's node count (diagnostics).
    pub graph_nodes: usize,
}

/// The trained PowerGear estimator: two HEC-GNN ensembles plus the
/// graph-construction pipeline needed to serve new designs.
#[derive(Debug, Clone)]
pub struct PowerGear {
    /// Ensemble regressing total power.
    pub total_model: Ensemble,
    /// Ensemble regressing dynamic power.
    pub dynamic_model: Ensemble,
}

impl PowerGear {
    /// Trains both ensembles on the given kernel datasets.
    ///
    /// # Panics
    ///
    /// Panics if `datasets` holds too few samples for the fold count.
    pub fn fit(datasets: &[KernelDataset], config: &PowerGearConfig) -> PowerGear {
        Self::fit_with(datasets, config, |_, _| {})
    }

    /// [`PowerGear::fit`] with a checkpoint hook invoked after every
    /// trained ensemble member of either head (see
    /// [`pg_gnn::train_ensemble_with`]) — the CLI uses it for progress
    /// reporting; callers can also persist incremental checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `datasets` holds too few samples for the fold count.
    pub fn fit_with(
        datasets: &[KernelDataset],
        config: &PowerGearConfig,
        mut on_member: impl FnMut(PowerTarget, &pg_gnn::MemberTrained<'_>),
    ) -> PowerGear {
        let mut total_data = Vec::new();
        let mut dynamic_data = Vec::new();
        for ds in datasets {
            total_data.extend(ds.labeled(PowerTarget::Total));
            dynamic_data.extend(ds.labeled(PowerTarget::Dynamic));
        }
        let total_model = pg_gnn::train_ensemble_with(
            &total_data,
            &config.train_config(PowerTarget::Total),
            |m| on_member(PowerTarget::Total, m),
        );
        let dynamic_model = pg_gnn::train_ensemble_with(
            &dynamic_data,
            &config.train_config(PowerTarget::Dynamic),
            |m| on_member(PowerTarget::Dynamic, m),
        );
        PowerGear {
            total_model,
            dynamic_model,
        }
    }

    /// Builds the PowerGraph for a new design point exactly as the training
    /// pipeline does (HLS → trace → graph flow → metadata features).
    ///
    /// # Errors
    ///
    /// Propagates [`HlsError`] from synthesis of the design or its
    /// unoptimized baseline.
    pub fn build_graph(
        kernel: &Kernel,
        directives: &Directives,
    ) -> Result<(PowerGraph, HlsReport), HlsError> {
        Self::build_graph_cached(kernel, directives, &HlsCache::new())
    }

    /// [`PowerGear::build_graph`] through a shared [`HlsCache`], so the
    /// baseline and repeated design points are synthesized only once.
    ///
    /// # Errors
    ///
    /// Propagates [`HlsError`] from synthesis of the design or its
    /// unoptimized baseline.
    pub fn build_graph_cached(
        kernel: &Kernel,
        directives: &Directives,
        cache: &HlsCache,
    ) -> Result<(PowerGraph, HlsReport), HlsError> {
        let baseline = cache.run(kernel, &Directives::new())?.report.clone();
        let design = cache.run(kernel, directives)?;
        let stim = Stimuli::for_kernel(kernel, 1);
        let trace = execute(&design, &stim);
        let mut graph = GraphFlow::new().build(&design, &trace);
        graph.meta = design
            .report
            .metadata_features(&baseline)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        Ok((graph, design.report.clone()))
    }

    /// Full inference flow for a new design point.
    ///
    /// # Errors
    ///
    /// Propagates [`HlsError`] from synthesis.
    pub fn estimate(
        &self,
        kernel: &Kernel,
        directives: &Directives,
    ) -> Result<PowerEstimate, HlsError> {
        let (graph, report) = Self::build_graph(kernel, directives)?;
        let (total, dynamic) = self.estimate_graph(&graph);
        Ok(PowerEstimate {
            total_w: total,
            dynamic_w: dynamic,
            latency_cycles: report.latency_cycles,
            graph_nodes: graph.num_nodes,
        })
    }

    /// Inference on an already-constructed graph.
    pub fn estimate_graph(&self, graph: &PowerGraph) -> (f64, f64) {
        self.estimate_graphs(&[graph])[0]
    }

    /// Batched inference on many graphs through the serving engine
    /// (bit-identical to per-graph [`PowerGear::estimate_graph`]); returns
    /// `(total, dynamic)` watts in input order.
    pub fn estimate_graphs(&self, graphs: &[&PowerGraph]) -> Vec<(f64, f64)> {
        self.estimate_graphs_with(graphs, &ServeConfig::default())
    }

    /// [`PowerGear::estimate_graphs`] with explicit batching/parallelism.
    pub fn estimate_graphs_with(
        &self,
        graphs: &[&PowerGraph],
        serve: &ServeConfig,
    ) -> Vec<(f64, f64)> {
        let total = InferenceEngine::with_config(&self.total_model, serve.clone()).predict(graphs);
        let dynamic =
            InferenceEngine::with_config(&self.dynamic_model, serve.clone()).predict(graphs);
        total.into_iter().zip(dynamic).collect()
    }

    /// Estimates a whole set of design points of one kernel: each
    /// configuration is synthesized through the shared [`HlsCache`] and all
    /// graphs are served in one batched engine pass — the DSE calling
    /// pattern of §IV-C.
    ///
    /// # Errors
    ///
    /// Propagates the first [`HlsError`] from synthesis.
    pub fn estimate_space(
        &self,
        kernel: &Kernel,
        configs: &[Directives],
        cache: &HlsCache,
    ) -> Result<Vec<PowerEstimate>, HlsError> {
        let mut graphs = Vec::with_capacity(configs.len());
        let mut reports = Vec::with_capacity(configs.len());
        for d in configs {
            let (graph, report) = Self::build_graph_cached(kernel, d, cache)?;
            graphs.push(graph);
            reports.push(report);
        }
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let preds = self.estimate_graphs(&refs);
        Ok(preds
            .into_iter()
            .zip(graphs.iter().zip(&reports))
            .map(|((total, dynamic), (graph, report))| PowerEstimate {
                total_w: total,
                dynamic_w: dynamic,
                latency_cycles: report.latency_cycles,
                graph_nodes: graph.num_nodes,
            })
            .collect())
    }

    /// Ensemble name the total head is stored under in a `.pgm` artifact.
    pub const TOTAL_ENSEMBLE: &'static str = "total";
    /// Ensemble name the dynamic head is stored under in a `.pgm` artifact.
    pub const DYNAMIC_ENSEMBLE: &'static str = "dynamic";

    /// Packages both trained heads as a [`pg_store::ModelArtifact`] with
    /// the given metadata and a bit-exactness probe over up to `probe_max`
    /// of `probe_graphs` (pass an empty slice to skip the probe).
    pub fn to_artifact(
        &self,
        meta: pg_store::ArtifactMeta,
        probe_graphs: &[PowerGraph],
        probe_max: usize,
    ) -> pg_store::ModelArtifact {
        let artifact = pg_store::ModelArtifact {
            meta,
            ensembles: vec![
                (Self::TOTAL_ENSEMBLE.into(), self.total_model.clone()),
                (Self::DYNAMIC_ENSEMBLE.into(), self.dynamic_model.clone()),
            ],
            probe: None,
        };
        if probe_graphs.is_empty() || probe_max == 0 {
            artifact
        } else {
            artifact.with_probe(probe_graphs, probe_max)
        }
    }

    /// Saves both trained heads to a `.pgm` artifact at `path` (see
    /// [`PowerGear::to_artifact`] for the probe arguments).
    ///
    /// # Errors
    ///
    /// Propagates [`pg_store::StoreError`] from the filesystem.
    pub fn save(
        &self,
        path: impl AsRef<std::path::Path>,
        meta: pg_store::ArtifactMeta,
        probe_graphs: &[PowerGraph],
        probe_max: usize,
    ) -> Result<(), pg_store::StoreError> {
        self.to_artifact(meta, probe_graphs, probe_max).save(path)
    }

    /// Reconstructs an estimator from a loaded artifact, requiring both
    /// the `total` and `dynamic` ensembles and running the embedded
    /// bit-exactness probe (if present).
    ///
    /// # Errors
    ///
    /// [`pg_store::StoreError`] when a head is missing or the probe fails.
    pub fn from_artifact(
        artifact: &pg_store::ModelArtifact,
    ) -> Result<PowerGear, pg_store::StoreError> {
        artifact.verify()?;
        let get = |name: &'static str| {
            artifact.ensemble(name).cloned().ok_or_else(|| {
                pg_store::StoreError::corrupt(format!("artifact has no `{name}` ensemble"))
            })
        };
        Ok(PowerGear {
            total_model: get(Self::TOTAL_ENSEMBLE)?,
            dynamic_model: get(Self::DYNAMIC_ENSEMBLE)?,
        })
    }

    /// Loads an estimator saved with [`PowerGear::save`]. Inference runs
    /// zero training epochs: the ensembles come off disk bit-exact.
    ///
    /// # Errors
    ///
    /// Any [`pg_store::StoreError`] from I/O, decoding or verification.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<PowerGear, pg_store::StoreError> {
        Self::from_artifact(&pg_store::ModelArtifact::load(path)?)
    }

    /// MAPE (%) of both heads on labeled samples: `(total, dynamic)`.
    pub fn evaluate(&self, samples: &[&pg_datasets::Sample]) -> (f64, f64) {
        let total: Vec<(&PowerGraph, f64)> = samples
            .iter()
            .map(|s| (&s.graph, s.label(PowerTarget::Total)))
            .collect();
        let dynamic: Vec<(&PowerGraph, f64)> = samples
            .iter()
            .map(|s| (&s.graph, s.label(PowerTarget::Dynamic)))
            .collect();
        (
            self.total_model.evaluate(&total),
            self.dynamic_model.evaluate(&dynamic),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_datasets::{build_kernel_dataset, polybench, DatasetConfig};

    fn tiny_datasets() -> Vec<KernelDataset> {
        let cfg = DatasetConfig {
            size: 6,
            max_samples: 14,
            seed: 1,
            threads: 1,
        };
        vec![
            build_kernel_dataset(&polybench::mvt(6), &cfg),
            build_kernel_dataset(&polybench::bicg(6), &cfg),
        ]
    }

    fn tiny_config() -> PowerGearConfig {
        PowerGearConfig {
            hidden: 12,
            epochs: 8,
            folds: 2,
            seeds: vec![5],
            batch_size: 16,
            lr: 3e-3,
            threads: 1,
        }
    }

    #[test]
    fn fit_and_estimate_end_to_end() {
        let ds = tiny_datasets();
        let model = PowerGear::fit(&ds, &tiny_config());
        assert_eq!(model.total_model.models.len(), 2);
        let kernel = polybench::mvt(6);
        let mut d = Directives::new();
        d.pipeline("j");
        let est = model.estimate(&kernel, &d).unwrap();
        assert!(est.total_w > 0.0, "total {}", est.total_w);
        assert!(est.dynamic_w > 0.0);
        assert!(est.latency_cycles > 0);
        assert!(est.graph_nodes > 3);
    }

    #[test]
    fn evaluate_reports_both_heads() {
        let ds = tiny_datasets();
        let model = PowerGear::fit(&ds, &tiny_config());
        let samples: Vec<&pg_datasets::Sample> = ds[0].samples.iter().collect();
        let (te, de) = model.evaluate(&samples);
        assert!(te.is_finite() && te >= 0.0);
        assert!(de.is_finite() && de >= 0.0);
    }

    #[test]
    fn dynamic_head_trains_longer() {
        let cfg = PowerGearConfig::quick();
        assert_eq!(
            cfg.train_config(PowerTarget::Dynamic).epochs,
            2 * cfg.train_config(PowerTarget::Total).epochs
        );
    }

    #[test]
    fn paper_config_published_values() {
        let cfg = PowerGearConfig::paper();
        assert_eq!(cfg.hidden, 128);
        assert_eq!(cfg.folds, 10);
        assert_eq!(cfg.seeds.len(), 3);
    }

    #[test]
    fn estimate_space_matches_per_point_estimates() {
        let ds = tiny_datasets();
        let model = PowerGear::fit(&ds, &tiny_config());
        let kernel = polybench::mvt(6);
        let configs: Vec<Directives> = ds[0]
            .samples
            .iter()
            .take(4)
            .map(|s| s.directives.clone())
            .collect();
        let cache = HlsCache::new();
        let batch = model.estimate_space(&kernel, &configs, &cache).unwrap();
        assert_eq!(batch.len(), 4);
        for (d, est) in configs.iter().zip(&batch) {
            let single = model.estimate(&kernel, d).unwrap();
            assert_eq!(single.total_w.to_bits(), est.total_w.to_bits());
            assert_eq!(single.dynamic_w.to_bits(), est.dynamic_w.to_bits());
            assert_eq!(single.latency_cycles, est.latency_cycles);
        }
        // baseline is shared across all points; repeats are served hot
        assert!(cache.hits() >= configs.len() - 1);
    }

    #[test]
    fn batched_estimate_matches_single() {
        let ds = tiny_datasets();
        let model = PowerGear::fit(&ds, &tiny_config());
        let graphs: Vec<&PowerGraph> = ds[1].samples.iter().map(|s| &s.graph).collect();
        let batched = model.estimate_graphs(&graphs);
        for (g, (t, d)) in graphs.iter().zip(&batched) {
            let (st, sd) = model.estimate_graph(g);
            assert_eq!(st.to_bits(), t.to_bits());
            assert_eq!(sd.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn save_load_roundtrip_is_bit_exact() {
        let ds = tiny_datasets();
        let model = PowerGear::fit(&ds, &tiny_config());
        let graphs: Vec<PowerGraph> = ds[0].samples.iter().map(|s| s.graph.clone()).collect();
        let path = std::env::temp_dir().join(format!("pg_core_rt_{}.pgm", std::process::id()));
        let meta = pg_store::ArtifactMeta::now("mvt,bicg", "total+dynamic");
        model.save(&path, meta, &graphs, 4).unwrap();

        let loaded = PowerGear::load(&path).unwrap();
        let refs: Vec<&PowerGraph> = ds[1].samples.iter().map(|s| &s.graph).collect();
        let a = model.estimate_graphs(&refs);
        let b = loaded.estimate_graphs(&refs);
        for ((t1, d1), (t2, d2)) in a.iter().zip(&b) {
            assert_eq!(t1.to_bits(), t2.to_bits());
            assert_eq!(d1.to_bits(), d2.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_artifact_without_heads() {
        let artifact = pg_store::ModelArtifact {
            meta: pg_store::ArtifactMeta::now("x", "dynamic"),
            ensembles: vec![],
            probe: None,
        };
        assert!(PowerGear::from_artifact(&artifact).is_err());
    }

    #[test]
    fn estimate_rejects_bad_directives() {
        let ds = tiny_datasets();
        let model = PowerGear::fit(&ds, &tiny_config());
        let kernel = polybench::mvt(6);
        let mut d = Directives::new();
        d.pipeline("nonexistent");
        assert!(model.estimate(&kernel, &d).is_err());
    }
}
