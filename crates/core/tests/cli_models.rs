//! CLI integration tests for the `models --verify-all` registry sweep:
//! spawns the real `powergear` binary against a temp registry holding good
//! artifacts (probe-carrying and probe-less) plus one deliberately
//! corrupted file, and asserts the per-model PASS/FAIL report and exit
//! codes.

use pg_datasets::{build_sample, polybench, sample_space};
use pg_gnn::{Ensemble, ModelConfig, PowerModel};
use pg_hls::{Directives, HlsFlow};
use pg_store::{ArtifactMeta, ModelArtifact, ModelRegistry, ProbeSet};
use std::path::PathBuf;
use std::process::Command;

fn powergear() -> Command {
    Command::new(env!("CARGO_BIN_EXE_powergear"))
}

fn tmp_registry(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pg_cli_models_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create registry dir");
    dir
}

/// A small untrained-but-valid artifact; `with_probe` embeds prediction
/// bits over two real graphs so `verify` exercises actual inference.
fn artifact(kernel_name: &str, with_probe: bool) -> ModelArtifact {
    let ensembles = vec![(
        "dynamic".to_string(),
        Ensemble {
            models: vec![PowerModel::new(ModelConfig::hec(8), 11)],
        },
    )];
    let probe = with_probe.then(|| {
        let kernel = polybench::by_name(kernel_name, 6).expect("kernel");
        let baseline = HlsFlow::new()
            .run(&kernel, &Directives::new())
            .expect("baseline")
            .report;
        let stimuli = pg_activity::Stimuli::for_kernel(&kernel, 1);
        let graphs: Vec<_> = sample_space(&kernel, 2, 1)
            .iter()
            .map(|d| build_sample(&kernel, d, &stimuli, &baseline).graph)
            .collect();
        ProbeSet::capture(&ensembles, &graphs)
    });
    ModelArtifact {
        meta: ArtifactMeta::now(kernel_name, "dynamic"),
        ensembles,
        probe,
    }
}

#[test]
fn verify_all_passes_clean_registry() {
    let dir = tmp_registry("clean");
    let reg = ModelRegistry::open(&dir).unwrap();
    reg.publish("mvt-v1", &artifact("mvt", true)).unwrap();
    reg.publish("bicg-v1", &artifact("bicg", false)).unwrap();

    let out = powergear()
        .args(["models", "--registry"])
        .arg(&dir)
        .arg("--verify-all")
        .output()
        .expect("run powergear");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "expected success:\n{stdout}");
    assert_eq!(stdout.matches("PASS").count(), 2, "{stdout}");
    assert!(
        stdout.contains("all 2 artifact(s) verified bit-exact"),
        "{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_all_fails_on_corrupted_artifact() {
    let dir = tmp_registry("corrupt");
    let reg = ModelRegistry::open(&dir).unwrap();
    reg.publish("good", &artifact("mvt", true)).unwrap();
    // A deliberately corrupted artifact: valid container bytes with a bit
    // flipped in the payload, so the CRC check must reject it.
    let good_path = dir.join("good.pgm");
    let mut bytes = std::fs::read(&good_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(dir.join("broken.pgm"), bytes).unwrap();

    let out = powergear()
        .args(["models", "--registry"])
        .arg(&dir)
        .arg("--verify-all")
        .output()
        .expect("run powergear");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "corrupted registry must exit non-zero:\n{stdout}"
    );
    assert!(
        stdout.contains("good") && stdout.contains("PASS"),
        "{stdout}"
    );
    assert!(
        stdout.contains("broken") && stdout.contains("FAIL"),
        "{stdout}"
    );
    assert!(stderr.contains("failed verification"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_all_fails_on_empty_registry() {
    // A sweep over zero artifacts (e.g. a mistyped --registry path, which
    // open() silently creates) must not report success.
    let dir = tmp_registry("empty");
    let out = powergear()
        .args(["models", "--registry"])
        .arg(&dir)
        .arg("--verify-all")
        .output()
        .expect("run powergear");
    assert!(
        !out.status.success(),
        "verify-all over an empty registry must exit non-zero"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("nothing to verify"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plain_listing_still_reports_unreadable_without_failing() {
    let dir = tmp_registry("listing");
    let reg = ModelRegistry::open(&dir).unwrap();
    reg.publish("ok", &artifact("mvt", false)).unwrap();
    std::fs::write(dir.join("junk.pgm"), b"not a container").unwrap();

    let out = powergear()
        .args(["models", "--registry"])
        .arg(&dir)
        .output()
        .expect("run powergear");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "plain listing must not fail:\n{stdout}"
    );
    assert!(stdout.contains("UNREADABLE"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
