//! CLI integration tests for `powergear eval --loko`: spawns the real
//! binary on a reduced kernel subset / tiny model and asserts the MAPE
//! table, the deterministic digest line, the `--out` TSV roundtrip, and
//! loud non-zero exits for bad flag values.

use std::path::PathBuf;
use std::process::Command;

fn powergear() -> Command {
    Command::new(env!("CARGO_BIN_EXE_powergear"))
}

/// Flags for a run small enough for an integration test but covering the
/// full LOKO path (3 kernels × 2 targets).
const TINY: [&str; 11] = [
    "eval",
    "--loko",
    "--kernels",
    "atax,mvt,bicg",
    "--samples",
    "6",
    "--epochs",
    "2",
    "--hidden",
    "8",
    "--threads",
];

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pg_cli_eval_{tag}_{}.tsv", std::process::id()))
}

#[test]
fn loko_prints_table_for_every_kernel_and_target() {
    let out = powergear()
        .args(TINY)
        .arg("2")
        .output()
        .expect("run powergear");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("loko config hec-p_add-l3-h0"), "{stdout}");
    for kernel in ["atax", "mvt", "bicg"] {
        assert_eq!(
            stdout.matches(kernel).count(),
            2,
            "one row per target for {kernel}:\n{stdout}"
        );
    }
    assert_eq!(stdout.matches("mean").count(), 2, "{stdout}");
    assert!(stdout.contains("digest "), "{stdout}");
}

#[test]
fn loko_out_writes_tsv_with_matching_digest() {
    let path = tmp_path("out");
    let out = powergear()
        .args(TINY)
        .arg("2")
        .arg("--out")
        .arg(&path)
        .output()
        .expect("run powergear");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    let tsv = std::fs::read_to_string(&path).expect("written table");
    assert!(tsv.starts_with("# powergear loko config=hec-p_add-l3-h0"), "{tsv}");
    assert!(tsv.contains("kernel\ttarget\tn_train\tn_test\tmape_pct\trmse_w"), "{tsv}");
    // The digest trailer in the file matches the one printed to stdout.
    let file_digest = tsv
        .lines()
        .last()
        .and_then(|l| l.strip_prefix("# digest "))
        .expect("digest trailer");
    assert!(stdout.contains(&format!("digest {file_digest}")), "{stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn loko_is_bit_identical_across_thread_counts() {
    let digest_of = |threads: &str| {
        let out = powergear()
            .args(TINY)
            .arg(threads)
            .output()
            .expect("run powergear");
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        stdout
            .lines()
            .find_map(|l| l.strip_prefix("digest ").map(str::to_string))
            .expect("digest line")
    };
    let d1 = digest_of("1");
    assert_eq!(d1, digest_of("2"));
    assert_eq!(d1, digest_of("4"));
}

#[test]
fn eval_requires_loko_flag() {
    let out = powergear().arg("eval").output().expect("run powergear");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("eval requires `--loko`"), "{stderr}");
}

#[test]
fn unknown_kernel_fails_loudly() {
    let out = powergear()
        .args(["eval", "--loko", "--kernels", "atax,nosuch"])
        .output()
        .expect("run powergear");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown kernel `nosuch`"), "{stderr}");
    assert!(stderr.contains("atax"), "lists available kernels: {stderr}");
}

#[test]
fn bad_zoo_flag_values_fail_loudly() {
    for (flags, needle) in [
        (vec!["--arch", "transformer"], "unknown arch `transformer`"),
        (vec!["--pool", "median"], "unknown pool `median`"),
        (vec!["--layers", "0"], "`--layers` must be at least 1"),
        (vec!["--heads", "2", "--arch", "gcn"], "requires the hec arch"),
        (
            vec!["--heads", "3", "--hidden", "16"],
            "`--heads 3` must divide `--hidden 16`",
        ),
    ] {
        let out = powergear()
            .args(["eval", "--loko"])
            .args(&flags)
            .output()
            .expect("run powergear");
        assert!(!out.status.success(), "{flags:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{flags:?}: {stderr}");
    }
}

#[test]
fn eval_rejects_positional_arguments() {
    let out = powergear()
        .args(["eval", "atax", "--loko"])
        .output()
        .expect("run powergear");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unexpected argument `atax`"), "{stderr}");
}
