//! Iterative sampling-based design space exploration (§IV-C).
//!
//! "We first sample a small subset of design points for HLS and then
//! utilize PowerGear to estimate dynamic power. Together with the set of
//! latency derived from HLS, we compute the dynamic power-latency Pareto
//! frontier using existing sampling points, based on which a sampling
//! algorithm \[7\] is applied to select promising design points that are most
//! likely to be Pareto-optimal for further evaluation. The above steps are
//! conducted iteratively … until the total sampling budget is met."
//!
//! Latencies are known exactly for every point (HLS is cheap); power is
//! known exactly only for *sampled* points (implementation + measurement)
//! and estimated by the prediction model elsewhere. A better power
//! predictor steers sampling toward truly Pareto-optimal points, lowering
//! the final ADRS — which is how Table III separates Vivado, HL-Pow and
//! PowerGear.

use crate::adrs::{adrs, point_distance};
use crate::pareto::{pareto_frontier, Point};
use pg_gnn::InferenceEngine;
use pg_graphcon::PowerGraph;
use pg_util::Rng64;

/// DSE configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DseConfig {
    /// Initial random sampling fraction (paper: 2 %).
    pub initial_frac: f64,
    /// Total sampling budget fraction (paper: 20/30/40 %).
    pub budget_frac: f64,
    /// Points added per refinement iteration, as a fraction of the space.
    pub batch_frac: f64,
    /// Sampling seed.
    pub seed: u64,
}

impl DseConfig {
    /// The paper's setup at a given total budget.
    pub fn with_budget(budget_frac: f64, seed: u64) -> Self {
        DseConfig {
            initial_frac: 0.02,
            budget_frac,
            batch_frac: 0.02,
            seed,
        }
    }

    /// A quick exploration (20 % budget, the paper's smallest setting) —
    /// the default for CLI-driven runs against a loaded model.
    pub fn quick(seed: u64) -> Self {
        DseConfig::with_budget(0.2, seed)
    }
}

/// Result of one DSE run.
#[derive(Debug, Clone, PartialEq)]
pub struct DseOutcome {
    /// Indices of sampled (ground-truth-evaluated) points.
    pub sampled: Vec<usize>,
    /// Approximate Pareto frontier over the sampled points (true values).
    pub approx_frontier: Vec<Point>,
    /// Exact Pareto frontier over the full space.
    pub exact_frontier: Vec<Point>,
    /// Eq. 8 distance between the two frontiers.
    pub adrs: f64,
}

impl DseOutcome {
    /// A one-paragraph human-readable summary (sampling effort, frontier
    /// sizes, ADRS) for CLI/driver output.
    pub fn summary(&self, space_size: usize) -> String {
        format!(
            "sampled {}/{} design points ({:.0}%), approx frontier {} vs exact {}, ADRS {:.4}",
            self.sampled.len(),
            space_size,
            100.0 * self.sampled.len() as f64 / space_size.max(1) as f64,
            self.approx_frontier.len(),
            self.exact_frontier.len(),
            self.adrs
        )
    }
}

/// Runs the iterative DSE loop.
///
/// * `latency[i]` — latency of point `i` (known for all points);
/// * `true_power[i]` — oracle dynamic power (revealed only when sampled);
/// * `predicted_power[i]` — the prediction model's estimate for all points.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn run_dse(
    latency: &[f64],
    true_power: &[f64],
    predicted_power: &[f64],
    cfg: &DseConfig,
) -> DseOutcome {
    let n = latency.len();
    assert!(n > 0, "empty design space");
    assert_eq!(n, true_power.len(), "true power length mismatch");
    assert_eq!(n, predicted_power.len(), "predicted power length mismatch");

    let budget = ((n as f64 * cfg.budget_frac).round() as usize).clamp(2, n);
    let initial = ((n as f64 * cfg.initial_frac).ceil() as usize).clamp(2, budget);
    let batch = ((n as f64 * cfg.batch_frac).ceil() as usize).max(1);

    let mut rng = Rng64::new(cfg.seed);
    let mut sampled_mask = vec![false; n];
    let mut sampled: Vec<usize> = rng.sample_indices(n, initial);
    for &i in &sampled {
        sampled_mask[i] = true;
    }

    while sampled.len() < budget {
        // Mixed view: truth where sampled, prediction elsewhere.
        let mixed: Vec<Point> = (0..n)
            .map(|i| Point {
                id: i,
                latency: latency[i],
                power: if sampled_mask[i] {
                    true_power[i]
                } else {
                    predicted_power[i]
                },
            })
            .collect();
        let frontier = pareto_frontier(&mixed);
        // Candidates: unsampled frontier members first, then nearest to the
        // frontier by normalized distance.
        let mut candidates: Vec<usize> = frontier
            .iter()
            .filter(|p| !sampled_mask[p.id])
            .map(|p| p.id)
            .collect();
        if candidates.len() < batch {
            let mut rest: Vec<(f64, usize)> = (0..n)
                .filter(|&i| !sampled_mask[i] && !candidates.contains(&i))
                .map(|i| {
                    let p = mixed[i];
                    let d = frontier
                        .iter()
                        .map(|f| point_distance(f, &p))
                        .fold(f64::INFINITY, f64::min);
                    (d, i)
                })
                .collect();
            rest.sort_by(|a, b| a.partial_cmp(b).expect("no NaN distances"));
            candidates.extend(rest.into_iter().map(|(_, i)| i));
        }
        if candidates.is_empty() {
            break; // everything sampled
        }
        for i in candidates
            .into_iter()
            .take(batch.min(budget - sampled.len()))
        {
            sampled_mask[i] = true;
            sampled.push(i);
        }
    }

    let approx_frontier = pareto_frontier(
        &sampled
            .iter()
            .map(|&i| Point {
                id: i,
                latency: latency[i],
                power: true_power[i],
            })
            .collect::<Vec<_>>(),
    );
    let exact_frontier = pareto_frontier(
        &(0..n)
            .map(|i| Point {
                id: i,
                latency: latency[i],
                power: true_power[i],
            })
            .collect::<Vec<_>>(),
    );
    let score = adrs(&exact_frontier, &approx_frontier);
    DseOutcome {
        sampled,
        approx_frontier,
        exact_frontier,
        adrs: score,
    }
}

/// Runs the iterative DSE loop with predictions produced by one batched
/// pass of the serving engine over the candidate graphs — the paper's
/// actual calling pattern ("utilize PowerGear to estimate dynamic power"
/// once per candidate design point).
///
/// `graphs[i]` must be the constructed power graph of design point `i`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty, or if the engine's
/// ensemble is empty.
pub fn run_dse_with_engine(
    latency: &[f64],
    true_power: &[f64],
    graphs: &[&PowerGraph],
    engine: &InferenceEngine<'_>,
    cfg: &DseConfig,
) -> DseOutcome {
    assert_eq!(latency.len(), graphs.len(), "graph count mismatch");
    let predicted = engine.predict(graphs);
    run_dse(latency, true_power, &predicted, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_gnn::{Ensemble, ModelConfig, PowerModel, ServeConfig};
    use pg_graphcon::Relation;

    /// A synthetic space with a clean latency/power tradeoff plus noise.
    fn space(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = Rng64::new(seed);
        let mut lat = Vec::new();
        let mut pow = Vec::new();
        for i in 0..n {
            let x = (i + 1) as f64 / n as f64;
            lat.push(1000.0 * x + 50.0 * rng.f64());
            pow.push(0.5 / x + 0.08 * rng.normal().abs());
        }
        (lat, pow)
    }

    #[test]
    fn perfect_predictor_beats_antipredictor() {
        let (lat, pow) = space(200, 1);
        let cfg = DseConfig::with_budget(0.2, 7);
        let perfect = run_dse(&lat, &pow, &pow, &cfg);
        // anti-predictor: inverted power ranking
        let anti: Vec<f64> = pow.iter().map(|p| 1.0 / (p + 0.01)).collect();
        let bad = run_dse(&lat, &pow, &anti, &cfg);
        assert!(
            perfect.adrs <= bad.adrs,
            "perfect {} vs anti {}",
            perfect.adrs,
            bad.adrs
        );
    }

    #[test]
    fn adrs_improves_with_budget() {
        let (lat, pow) = space(300, 2);
        let noisy: Vec<f64> = {
            let mut rng = Rng64::new(9);
            pow.iter()
                .map(|p| p * (1.0 + 0.15 * rng.normal()))
                .collect()
        };
        let lo = run_dse(&lat, &pow, &noisy, &DseConfig::with_budget(0.1, 3));
        let hi = run_dse(&lat, &pow, &noisy, &DseConfig::with_budget(0.5, 3));
        assert!(
            hi.adrs <= lo.adrs + 1e-9,
            "budget 50% {} vs 10% {}",
            hi.adrs,
            lo.adrs
        );
    }

    #[test]
    fn respects_budget() {
        let (lat, pow) = space(100, 3);
        let out = run_dse(&lat, &pow, &pow, &DseConfig::with_budget(0.3, 1));
        assert_eq!(out.sampled.len(), 30);
        let distinct: std::collections::HashSet<usize> = out.sampled.iter().copied().collect();
        assert_eq!(distinct.len(), 30, "sampled points must be distinct");
    }

    #[test]
    fn full_budget_reaches_zero_adrs() {
        let (lat, pow) = space(60, 4);
        let out = run_dse(&lat, &pow, &pow, &DseConfig::with_budget(1.0, 1));
        assert!(out.adrs < 1e-12);
        assert_eq!(out.approx_frontier, out.exact_frontier);
    }

    #[test]
    fn approx_frontier_subset_of_sampled() {
        let (lat, pow) = space(120, 5);
        let out = run_dse(&lat, &pow, &pow, &DseConfig::with_budget(0.25, 2));
        for p in &out.approx_frontier {
            assert!(out.sampled.contains(&p.id));
        }
    }

    #[test]
    fn deterministic() {
        let (lat, pow) = space(80, 6);
        let a = run_dse(&lat, &pow, &pow, &DseConfig::with_budget(0.2, 11));
        let b = run_dse(&lat, &pow, &pow, &DseConfig::with_budget(0.2, 11));
        assert_eq!(a, b);
    }

    fn tiny_graph(seed: u64) -> PowerGraph {
        let mut rng = Rng64::new(seed);
        let nodes = 4 + rng.below(4);
        let f = PowerGraph::NODE_FEATS;
        let mut node_feats = vec![0.0f32; nodes * f];
        for n in 0..nodes {
            node_feats[n * f + rng.below(5)] = 1.0;
        }
        let edges: Vec<(u32, u32)> = (1..nodes as u32).map(|d| (d - 1, d)).collect();
        let ne = edges.len();
        PowerGraph {
            kernel: "dse".into(),
            design_id: format!("d{seed}"),
            num_nodes: nodes,
            node_feats,
            edges,
            edge_feats: (0..ne).map(|_| [rng.f32(), rng.f32(), 0.1, 0.1]).collect(),
            edge_rel: (0..ne)
                .map(|i| {
                    if i % 2 == 0 {
                        Relation::AA
                    } else {
                        Relation::NN
                    }
                })
                .collect(),
            meta: (0..10).map(|_| rng.f32()).collect(),
        }
    }

    #[test]
    fn engine_driven_dse_matches_precomputed_predictions() {
        let graphs: Vec<PowerGraph> = (0..30).map(tiny_graph).collect();
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let ensemble = Ensemble {
            models: vec![PowerModel::new(ModelConfig::hec(8), 3)],
        };
        let (lat, pow) = space(30, 8);
        let cfg = DseConfig::with_budget(0.4, 5);
        // precompute with the sequential path, then drive DSE via the engine
        let predicted = ensemble.predict(&refs);
        let expect = run_dse(&lat, &pow, &predicted, &cfg);
        let engine = InferenceEngine::with_config(&ensemble, ServeConfig::new(7, 2));
        let got = run_dse_with_engine(&lat, &pow, &refs, &engine, &cfg);
        assert_eq!(expect, got);
    }
}
