//! Pareto frontiers over (latency, dynamic power) design points.
//!
//! The case study (§IV-C) trades off latency against dynamic power; both
//! objectives are minimized. Points are carried by index so callers can map
//! frontier members back to design configurations.

/// A design point in the latency/power plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Caller-side identifier (index into the design space).
    pub id: usize,
    /// Latency in cycles.
    pub latency: f64,
    /// Dynamic power in watts.
    pub power: f64,
}

/// `true` if `a` dominates `b` (no worse in both, strictly better in one).
pub fn dominates(a: &Point, b: &Point) -> bool {
    (a.latency <= b.latency && a.power <= b.power) && (a.latency < b.latency || a.power < b.power)
}

/// Returns the Pareto-optimal subset, sorted by latency ascending.
///
/// Duplicate coordinates keep a single representative (the lowest id).
pub fn pareto_frontier(points: &[Point]) -> Vec<Point> {
    if points.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<Point> = points.to_vec();
    sorted.sort_by(|a, b| {
        (a.latency, a.power, a.id)
            .partial_cmp(&(b.latency, b.power, b.id))
            .expect("no NaN coordinates")
    });
    let mut frontier: Vec<Point> = Vec::new();
    let mut best_power = f64::INFINITY;
    for p in sorted {
        if p.power < best_power {
            // skip exact coordinate duplicates
            if let Some(last) = frontier.last() {
                if last.latency == p.latency && last.power == p.power {
                    continue;
                }
            }
            frontier.push(p);
            best_power = p.power;
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(id: usize, l: f64, p: f64) -> Point {
        Point {
            id,
            latency: l,
            power: p,
        }
    }

    #[test]
    fn dominance_rules() {
        assert!(dominates(&pt(0, 1.0, 1.0), &pt(1, 2.0, 2.0)));
        assert!(dominates(&pt(0, 1.0, 1.0), &pt(1, 1.0, 2.0)));
        assert!(!dominates(&pt(0, 1.0, 1.0), &pt(1, 1.0, 1.0)));
        assert!(!dominates(&pt(0, 1.0, 2.0), &pt(1, 2.0, 1.0)));
    }

    #[test]
    fn frontier_of_tradeoff_curve() {
        let pts = vec![
            pt(0, 10.0, 1.0),
            pt(1, 5.0, 2.0),
            pt(2, 1.0, 5.0),
            pt(3, 6.0, 3.0),  // dominated by 1
            pt(4, 12.0, 1.5), // dominated by 0
        ];
        let f = pareto_frontier(&pts);
        let ids: Vec<usize> = f.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![2, 1, 0]);
        // sorted by latency
        assert!(f.windows(2).all(|w| w[0].latency <= w[1].latency));
    }

    #[test]
    fn frontier_is_mutually_nondominating() {
        let pts: Vec<Point> = (0..50)
            .map(|i| {
                let x = (i * 7 % 13) as f64;
                let y = (i * 11 % 17) as f64;
                pt(i, x, y)
            })
            .collect();
        let f = pareto_frontier(&pts);
        for a in &f {
            for b in &f {
                if a.id != b.id {
                    assert!(!dominates(a, b), "{a:?} dominates {b:?}");
                }
            }
        }
        // every non-frontier point is dominated by some frontier point
        for p in &pts {
            if !f.iter().any(|q| q.id == p.id) {
                assert!(
                    f.iter()
                        .any(|q| dominates(q, p) || (q.latency == p.latency && q.power == p.power)),
                    "{p:?} not covered"
                );
            }
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(pareto_frontier(&[]).is_empty());
        let f = pareto_frontier(&[pt(3, 1.0, 1.0)]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id, 3);
    }

    #[test]
    fn duplicates_collapse() {
        let f = pareto_frontier(&[pt(0, 1.0, 1.0), pt(1, 1.0, 1.0)]);
        assert_eq!(f.len(), 1);
    }
}
