//! Design space exploration (the paper's case study, §IV-C).
//!
//! Provides the latency/dynamic-power [`pareto::pareto_frontier`], the
//! [`adrs::adrs`] quality metric (Eq. 8), and the iterative
//! prediction-guided sampling loop ([`explore::run_dse`]) used to produce
//! Table III and Fig. 4.
//!
//! # Examples
//!
//! ```
//! use pg_dse::{run_dse, DseConfig};
//! let latency = vec![100.0, 50.0, 25.0, 12.5];
//! let power =   vec![0.05, 0.08, 0.15, 0.40];
//! let out = run_dse(&latency, &power, &power, &DseConfig::with_budget(1.0, 1));
//! assert!(out.adrs < 1e-12);
//! ```

pub mod adrs;
pub mod explore;
pub mod pareto;

pub use adrs::{adrs, point_distance};
pub use explore::{run_dse, run_dse_with_engine, DseConfig, DseOutcome};
pub use pareto::{dominates, pareto_frontier, Point};
