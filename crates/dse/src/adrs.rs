//! Average distance from reference set (Eq. 8).
//!
//! `ADRS(Γ, Ω) = (1/|Γ|) Σ_{γ∈Γ} min_{ω∈Ω} f(γ, ω)` where `Γ` is the exact
//! Pareto set, `Ω` the approximate one, and `f` the normalized positive
//! shortfall `max(0, (ω.lat − γ.lat)/γ.lat, (ω.pow − γ.pow)/γ.pow)` — the
//! customary metric in HLS DSE literature. Lower is better; 0 means the
//! approximate set covers the exact frontier.

use crate::pareto::Point;

/// Normalized distance of approximate point `w` from exact point `g`.
pub fn point_distance(g: &Point, w: &Point) -> f64 {
    let dl = if g.latency.abs() > 1e-12 {
        (w.latency - g.latency) / g.latency
    } else {
        w.latency - g.latency
    };
    let dp = if g.power.abs() > 1e-12 {
        (w.power - g.power) / g.power
    } else {
        w.power - g.power
    };
    dl.max(dp).max(0.0)
}

/// Eq. 8 over the exact set `gamma` and approximate set `omega`.
///
/// # Panics
///
/// Panics if either set is empty.
pub fn adrs(gamma: &[Point], omega: &[Point]) -> f64 {
    assert!(!gamma.is_empty(), "exact Pareto set is empty");
    assert!(!omega.is_empty(), "approximate Pareto set is empty");
    let total: f64 = gamma
        .iter()
        .map(|g| {
            omega
                .iter()
                .map(|w| point_distance(g, w))
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    total / gamma.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(id: usize, l: f64, p: f64) -> Point {
        Point {
            id,
            latency: l,
            power: p,
        }
    }

    #[test]
    fn identical_sets_zero() {
        let g = vec![pt(0, 1.0, 4.0), pt(1, 2.0, 2.0), pt(2, 4.0, 1.0)];
        assert_eq!(adrs(&g, &g), 0.0);
    }

    #[test]
    fn superset_still_zero() {
        let g = vec![pt(0, 1.0, 4.0), pt(1, 4.0, 1.0)];
        let mut o = g.clone();
        o.push(pt(2, 2.0, 2.0));
        assert_eq!(adrs(&g, &o), 0.0);
    }

    #[test]
    fn worse_approximation_positive() {
        let g = vec![pt(0, 1.0, 1.0)];
        let o = vec![pt(1, 1.5, 1.2)];
        let d = adrs(&g, &o);
        assert!((d - 0.5).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn distance_ignores_improvements() {
        // approximate point better in one dim: only shortfall counts
        let g = pt(0, 2.0, 2.0);
        let w = pt(1, 1.0, 2.2);
        assert!((point_distance(&g, &w) - 0.1).abs() < 1e-12);
        let better = pt(2, 1.0, 1.0);
        assert_eq!(point_distance(&g, &better), 0.0);
    }

    #[test]
    fn adrs_monotone_in_coverage() {
        let g = vec![pt(0, 1.0, 4.0), pt(1, 2.0, 2.0), pt(2, 4.0, 1.0)];
        let partial = vec![g[0]];
        let fuller = vec![g[0], g[1]];
        assert!(adrs(&g, &fuller) <= adrs(&g, &partial));
    }

    #[test]
    #[should_panic]
    fn empty_exact_panics() {
        adrs(&[], &[pt(0, 1.0, 1.0)]);
    }
}
