//! HL-Pow model training with the paper's hyperparameter search.
//!
//! "Similar to GNNs, we use 20% of training data for validation, based on
//! which we tune the hyperparameters with tree size in [10, 500], tree
//! depth in [5, 10], minimum samples per leaf in [2, 8], and learning rate
//! in {0.005, 0.01, 0.05}" (§IV). The grid here spans those ranges at a
//! resolution sized for the evaluation environment.

use crate::features::hlpow_features;
use crate::gbdt::{Gbdt, GbdtConfig};
use pg_graphcon::PowerGraph;
use pg_util::{mape, Rng64};

/// A trained HL-Pow model.
#[derive(Debug, Clone, PartialEq)]
pub struct HlPowModel {
    /// Underlying boosted trees.
    pub gbdt: Gbdt,
}

/// Hyperparameter grid spanning the paper's ranges.
pub fn search_grid() -> Vec<GbdtConfig> {
    let mut grid = Vec::new();
    for &n_trees in &[60usize, 160] {
        for &max_depth in &[5usize, 8] {
            for &lr in &[0.01f64, 0.05] {
                grid.push(GbdtConfig {
                    n_trees,
                    max_depth,
                    min_samples_leaf: 4,
                    learning_rate: lr,
                    subsample: 0.9,
                    max_bins: 32,
                });
            }
        }
    }
    grid
}

impl HlPowModel {
    /// Trains on labeled graphs with the validation-driven grid search.
    ///
    /// # Panics
    ///
    /// Panics on fewer than five samples.
    pub fn train(data: &[(&PowerGraph, f64)], seed: u64) -> HlPowModel {
        assert!(data.len() >= 5, "HL-Pow needs at least 5 samples");
        let feats: Vec<Vec<f64>> = data.iter().map(|(g, _)| hlpow_features(g)).collect();
        let targets: Vec<f64> = data.iter().map(|(_, t)| *t).collect();

        // 20 % validation split.
        let mut order: Vec<usize> = (0..data.len()).collect();
        Rng64::new(seed ^ 0x417).shuffle(&mut order);
        let n_val = (data.len() / 5).max(1);
        let (val_idx, train_idx) = order.split_at(n_val);
        let xt: Vec<Vec<f64>> = train_idx.iter().map(|&i| feats[i].clone()).collect();
        let yt: Vec<f64> = train_idx.iter().map(|&i| targets[i]).collect();
        let xv: Vec<Vec<f64>> = val_idx.iter().map(|&i| feats[i].clone()).collect();
        let yv: Vec<f64> = val_idx.iter().map(|&i| targets[i]).collect();

        let mut best: Option<(f64, Gbdt)> = None;
        for cfg in search_grid() {
            let model = Gbdt::fit(&xt, &yt, cfg, seed);
            let err = mape(&model.predict_batch(&xv), &yv);
            if best.as_ref().map(|(b, _)| err < *b).unwrap_or(true) {
                best = Some((err, model));
            }
        }
        let (_, gbdt) = best.expect("grid is non-empty");
        // refit the winning configuration on the full data
        let full = Gbdt::fit(&feats, &targets, gbdt.config.clone(), seed);
        HlPowModel { gbdt: full }
    }

    /// Predicts power for one graph.
    pub fn predict(&self, graph: &PowerGraph) -> f64 {
        self.gbdt.predict(&hlpow_features(graph))
    }

    /// Predicts for many graphs.
    pub fn predict_batch(&self, graphs: &[&PowerGraph]) -> Vec<f64> {
        graphs.iter().map(|g| self.predict(g)).collect()
    }

    /// MAPE (%) on labeled data.
    pub fn evaluate(&self, data: &[(&PowerGraph, f64)]) -> f64 {
        let preds: Vec<f64> = data.iter().map(|(g, _)| self.predict(g)).collect();
        let targets: Vec<f64> = data.iter().map(|(_, t)| *t).collect();
        mape(&preds, &targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graphcon::Relation;

    /// Graph whose node-activity histogram encodes the target linearly.
    fn synth(seed: u64) -> (PowerGraph, f64) {
        let mut rng = Rng64::new(seed);
        let nodes = 8 + rng.below(8);
        let f = PowerGraph::NODE_FEATS;
        let mut node_feats = vec![0.0f32; nodes * f];
        let mut hot = 0.0f64;
        for n in 0..nodes {
            let slot = rng.below(6);
            node_feats[n * f + 5 + slot] = 1.0;
            let sa = rng.f32() * 2.0;
            node_feats[n * f + 5 + 23 + 3] = sa;
            if slot == 4 {
                hot += sa as f64; // pretend fadds dominate power
            }
        }
        let meta: Vec<f32> = (0..10).map(|_| rng.f32()).collect();
        let power = 0.2 + 0.05 * hot + 0.1 * meta[0] as f64;
        (
            PowerGraph {
                kernel: "s".into(),
                design_id: format!("s{seed}"),
                num_nodes: nodes,
                node_feats,
                edges: vec![],
                edge_feats: vec![],
                edge_rel: Vec::<Relation>::new(),
                meta,
            },
            power,
        )
    }

    #[test]
    fn learns_histogram_signal() {
        let samples: Vec<(PowerGraph, f64)> = (0..150).map(synth).collect();
        let data: Vec<(&PowerGraph, f64)> = samples.iter().map(|(g, t)| (g, *t)).collect();
        let (train, test) = data.split_at(120);
        let model = HlPowModel::train(train, 3);
        let err = model.evaluate(test);
        assert!(err < 15.0, "test MAPE {err}");
    }

    #[test]
    fn grid_spans_paper_ranges() {
        let grid = search_grid();
        assert!(grid.iter().any(|c| c.learning_rate == 0.05));
        assert!(grid.iter().any(|c| c.learning_rate == 0.01));
        assert!(grid.iter().any(|c| c.max_depth == 5));
        assert!(grid.iter().any(|c| c.max_depth == 8));
        assert!(grid.iter().all(|c| (10..=500).contains(&c.n_trees)));
        assert!(grid.iter().all(|c| (2..=8).contains(&c.min_samples_leaf)));
    }

    #[test]
    fn deterministic_training() {
        let samples: Vec<(PowerGraph, f64)> = (0..30).map(|i| synth(i + 50)).collect();
        let data: Vec<(&PowerGraph, f64)> = samples.iter().map(|(g, t)| (g, *t)).collect();
        let a = HlPowModel::train(&data, 7);
        let b = HlPowModel::train(&data, 7);
        assert_eq!(a.predict(data[0].0), b.predict(data[0].0));
    }
}
