//! HL-Pow feature construction.
//!
//! HL-Pow \[7\] "adopts histograms as a way of feature alignment over
//! different designs … encoding the activities of each type of HLS
//! operations into a histogram individually, concatenating histograms as
//! overall design features". Crucially it models *operations only* — no
//! interconnect structure and no per-edge activities — which is exactly the
//! gap PowerGear's graphs close. Features here are per-opcode-slot
//! histograms of node switching activity, concatenated with the global HLS
//! report metadata.

use pg_graphcon::PowerGraph;

/// Histogram bins per operation type.
pub const BINS: usize = 8;
/// Bin upper edges over switching activity (bits/cycle).
pub const BIN_EDGES: [f32; BINS - 1] = [0.01, 0.03, 0.08, 0.2, 0.5, 1.2, 3.0];

/// Number of opcode slots (IR opcodes + the two buffer classes).
pub const OP_SLOTS: usize = 23;

/// Total feature width.
pub const FEATURE_DIM: usize = OP_SLOTS * BINS + 10;

fn bin_of(activity: f32) -> usize {
    for (b, &edge) in BIN_EDGES.iter().enumerate() {
        if activity <= edge {
            return b;
        }
    }
    BINS - 1
}

/// Extracts the HL-Pow feature vector of a graph sample.
///
/// Uses only per-node information (opcode identity + activity) and the
/// global metadata — never edge features — matching the baseline's design.
pub fn hlpow_features(graph: &PowerGraph) -> Vec<f64> {
    let mut feats = vec![0.0f64; FEATURE_DIM];
    let class_width = 5; // class one-hot width before opcode one-hot
    let numeric_base = class_width + OP_SLOTS;
    for n in 0..graph.num_nodes {
        let row = graph.node(n);
        let opcode_slot = row[class_width..class_width + OP_SLOTS]
            .iter()
            .position(|&v| v > 0.5)
            .unwrap_or(0);
        let sa_overall = row[numeric_base + 3];
        let bin = bin_of(sa_overall);
        feats[opcode_slot * BINS + bin] += 1.0;
    }
    for (k, &m) in graph.meta.iter().take(10).enumerate() {
        feats[OP_SLOTS * BINS + k] = m as f64;
    }
    feats
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graphcon::Relation;

    fn graph_with(activities: &[(usize, f32)]) -> PowerGraph {
        let f = PowerGraph::NODE_FEATS;
        let n = activities.len();
        let mut node_feats = vec![0.0f32; n * f];
        for (i, &(slot, sa)) in activities.iter().enumerate() {
            node_feats[i * f + 5 + slot] = 1.0;
            node_feats[i * f + 5 + OP_SLOTS + 3] = sa;
        }
        PowerGraph {
            kernel: "t".into(),
            design_id: "t".into(),
            num_nodes: n,
            node_feats,
            edges: vec![],
            edge_feats: vec![],
            edge_rel: Vec::<Relation>::new(),
            meta: vec![0.5; 10],
        }
    }

    #[test]
    fn histogram_counts_nodes_by_type_and_bin() {
        let g = graph_with(&[(2, 0.0), (2, 0.05), (7, 2.0)]);
        let feats = hlpow_features(&g);
        assert_eq!(feats.len(), FEATURE_DIM);
        assert_eq!(feats[2 * BINS + bin_of(0.0)], 1.0);
        assert_eq!(feats[2 * BINS + bin_of(0.05)], 1.0);
        assert_eq!(feats[7 * BINS + bin_of(2.0)], 1.0);
        let total: f64 = feats[..OP_SLOTS * BINS].iter().sum();
        assert_eq!(total, 3.0);
    }

    #[test]
    fn metadata_appended() {
        let g = graph_with(&[(0, 0.1)]);
        let feats = hlpow_features(&g);
        for k in 0..10 {
            assert!((feats[OP_SLOTS * BINS + k] - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn bins_are_monotone() {
        assert_eq!(bin_of(0.0), 0);
        assert!(bin_of(0.02) > bin_of(0.005));
        assert_eq!(bin_of(100.0), BINS - 1);
        let mut prev = 0;
        for sa in [0.0, 0.02, 0.05, 0.1, 0.3, 0.8, 2.0, 5.0] {
            let b = bin_of(sa);
            assert!(b >= prev);
            prev = b;
        }
    }
}
