//! HL-Pow baseline \[7\]: histogram features + gradient-boosted trees.
//!
//! HL-Pow is the state-of-the-art learning-based HLS power model the paper
//! compares against (Table I, Table III). It aligns designs by encoding
//! per-operation-type activity histograms — deliberately blind to
//! interconnect structure and per-edge switching activity, which is the gap
//! PowerGear closes.
//!
//! # Examples
//!
//! ```no_run
//! use pg_hlpow::HlPowModel;
//! # let samples: Vec<(pg_graphcon::PowerGraph, f64)> = vec![];
//! let data: Vec<(&pg_graphcon::PowerGraph, f64)> =
//!     samples.iter().map(|(g, t)| (g, *t)).collect();
//! let model = HlPowModel::train(&data, 1);
//! let err = model.evaluate(&data);
//! println!("HL-Pow MAPE = {err:.2}%");
//! ```

pub mod features;
pub mod gbdt;
pub mod train;

pub use features::{hlpow_features, FEATURE_DIM};
pub use gbdt::{Gbdt, GbdtConfig, Tree};
pub use train::{search_grid, HlPowModel};
