//! Gradient-boosted regression trees, from scratch.
//!
//! The paper implements HL-Pow with "gradient boosting decision tree (GBDT)
//! models" tuned over tree size [10, 500], depth [5, 10], minimum samples
//! per leaf [2, 8] and learning rate {0.005, 0.01, 0.05} (§IV). This is a
//! standard least-squares boosting implementation with histogram
//! (quantile-binned) split finding and optional row subsampling.

use pg_util::Rng64;

/// GBDT hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Shrinkage.
    pub learning_rate: f64,
    /// Row subsample fraction per round.
    pub subsample: f64,
    /// Candidate thresholds per feature.
    pub max_bins: usize,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_trees: 120,
            max_depth: 6,
            min_samples_leaf: 4,
            learning_rate: 0.05,
            subsample: 0.9,
            max_bins: 32,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    Leaf(f64),
}

/// One regression tree (flattened nodes, root at 0).
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Predicts for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

/// A fitted gradient-boosted model.
#[derive(Debug, Clone, PartialEq)]
pub struct Gbdt {
    /// Boosted trees.
    pub trees: Vec<Tree>,
    /// Initial prediction (training-target mean).
    pub base: f64,
    /// Hyperparameters used.
    pub config: GbdtConfig,
}

impl Gbdt {
    /// Fits with least-squares boosting.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ or the data is empty.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: GbdtConfig, seed: u64) -> Gbdt {
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        assert!(!x.is_empty(), "empty training data");
        let base = y.iter().sum::<f64>() / y.len() as f64;
        let mut residual: Vec<f64> = y.iter().map(|&t| t - base).collect();
        let mut rng = Rng64::new(seed);
        let thresholds = quantile_thresholds(x, config.max_bins);
        let mut trees = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            let rows: Vec<usize> = if config.subsample < 1.0 {
                (0..x.len())
                    .filter(|_| rng.f64() < config.subsample)
                    .collect()
            } else {
                (0..x.len()).collect()
            };
            let rows = if rows.len() < config.min_samples_leaf * 2 {
                (0..x.len()).collect()
            } else {
                rows
            };
            let tree = fit_tree(x, &residual, &rows, &thresholds, &config);
            for (i, xi) in x.iter().enumerate() {
                residual[i] -= config.learning_rate * tree.predict(xi);
            }
            trees.push(tree);
        }
        Gbdt {
            trees,
            base,
            config,
        }
    }

    /// Predicts for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut acc = self.base;
        for t in &self.trees {
            acc += self.config.learning_rate * t.predict(x);
        }
        acc
    }

    /// Predicts for many feature vectors.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// Quantile-based candidate thresholds per feature.
fn quantile_thresholds(x: &[Vec<f64>], max_bins: usize) -> Vec<Vec<f64>> {
    let dim = x[0].len();
    let mut out = Vec::with_capacity(dim);
    for f in 0..dim {
        let mut vals: Vec<f64> = x.iter().map(|r| r[f]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("no NaN features"));
        vals.dedup();
        let mut th = Vec::new();
        if vals.len() > 1 {
            let step = (vals.len() as f64 / max_bins as f64).max(1.0);
            let mut pos = step;
            while (pos as usize) < vals.len() {
                let i = pos as usize;
                th.push(0.5 * (vals[i - 1] + vals[i]));
                pos += step;
            }
            th.dedup();
        }
        out.push(th);
    }
    out
}

fn fit_tree(
    x: &[Vec<f64>],
    residual: &[f64],
    rows: &[usize],
    thresholds: &[Vec<f64>],
    cfg: &GbdtConfig,
) -> Tree {
    let mut nodes = Vec::new();
    build_node(x, residual, rows, thresholds, cfg, 0, &mut nodes);
    Tree { nodes }
}

fn mean_of(residual: &[f64], rows: &[usize]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|&i| residual[i]).sum::<f64>() / rows.len() as f64
}

fn build_node(
    x: &[Vec<f64>],
    residual: &[f64],
    rows: &[usize],
    thresholds: &[Vec<f64>],
    cfg: &GbdtConfig,
    depth: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let idx = nodes.len();
    if depth >= cfg.max_depth || rows.len() < 2 * cfg.min_samples_leaf {
        nodes.push(Node::Leaf(mean_of(residual, rows)));
        return idx;
    }
    // Best split by SSE reduction.
    let total_sum: f64 = rows.iter().map(|&i| residual[i]).sum();
    let n = rows.len() as f64;
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    for (f, ths) in thresholds.iter().enumerate() {
        if ths.is_empty() {
            continue;
        }
        // histogram accumulation over candidate thresholds
        let mut sums = vec![0.0f64; ths.len() + 1];
        let mut counts = vec![0usize; ths.len() + 1];
        for &i in rows {
            let v = x[i][f];
            let b = ths.partition_point(|&t| t < v);
            sums[b] += residual[i];
            counts[b] += 1;
        }
        let mut left_sum = 0.0;
        let mut left_n = 0usize;
        for (b, &th) in ths.iter().enumerate() {
            left_sum += sums[b];
            left_n += counts[b];
            let right_n = rows.len() - left_n;
            if left_n < cfg.min_samples_leaf || right_n < cfg.min_samples_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let gain = left_sum * left_sum / left_n as f64 + right_sum * right_sum / right_n as f64
                - total_sum * total_sum / n;
            if best.map(|(g, _, _)| gain > g).unwrap_or(gain > 1e-12) {
                best = Some((gain, f, th));
            }
        }
    }
    match best {
        None => {
            nodes.push(Node::Leaf(mean_of(residual, rows)));
            idx
        }
        Some((_, feature, threshold)) => {
            let (l_rows, r_rows): (Vec<usize>, Vec<usize>) =
                rows.iter().partition(|&&i| x[i][feature] <= threshold);
            nodes.push(Node::Leaf(0.0)); // placeholder
            let left = build_node(x, residual, &l_rows, thresholds, cfg, depth + 1, nodes);
            let right = build_node(x, residual, &r_rows, thresholds, cfg, depth + 1, nodes);
            nodes[idx] = Node::Split {
                feature,
                threshold,
                left,
                right,
            };
            idx
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = Rng64::new(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.f64();
            let b = rng.f64();
            let c = rng.f64();
            // piecewise nonlinear target
            let t = if a > 0.5 { 2.0 * b } else { 0.5 + c } + 0.05 * rng.normal();
            x.push(vec![a, b, c]);
            y.push(t);
        }
        (x, y)
    }

    #[test]
    fn fits_piecewise_function() {
        let (x, y) = toy_data(400, 1);
        let model = Gbdt::fit(&x, &y, GbdtConfig::default(), 2);
        let (xt, yt) = toy_data(100, 99);
        let preds = model.predict_batch(&xt);
        let mse: f64 = preds
            .iter()
            .zip(&yt)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / yt.len() as f64;
        let var: f64 = {
            let m = yt.iter().sum::<f64>() / yt.len() as f64;
            yt.iter().map(|t| (t - m) * (t - m)).sum::<f64>() / yt.len() as f64
        };
        assert!(mse < 0.25 * var, "mse {mse} vs var {var}");
    }

    #[test]
    fn constant_target_predicts_constant() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![3.5; 20];
        let model = Gbdt::fit(&x, &y, GbdtConfig::default(), 1);
        assert!((model.predict(&[7.0]) - 3.5).abs() < 1e-6);
    }

    #[test]
    fn deeper_trees_fit_train_better() {
        let (x, y) = toy_data(200, 5);
        let shallow = Gbdt::fit(
            &x,
            &y,
            GbdtConfig {
                max_depth: 1,
                n_trees: 40,
                subsample: 1.0,
                ..GbdtConfig::default()
            },
            3,
        );
        let deep = Gbdt::fit(
            &x,
            &y,
            GbdtConfig {
                max_depth: 6,
                n_trees: 40,
                subsample: 1.0,
                ..GbdtConfig::default()
            },
            3,
        );
        let train_mse = |m: &Gbdt| {
            m.predict_batch(&x)
                .iter()
                .zip(&y)
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f64>()
                / y.len() as f64
        };
        assert!(train_mse(&deep) < train_mse(&shallow));
    }

    #[test]
    fn respects_min_leaf() {
        let (x, y) = toy_data(30, 8);
        let model = Gbdt::fit(
            &x,
            &y,
            GbdtConfig {
                min_samples_leaf: 15,
                max_depth: 4,
                n_trees: 5,
                subsample: 1.0,
                ..GbdtConfig::default()
            },
            1,
        );
        // with min leaf 15 of 30 samples, trees can split at most once
        for t in &model.trees {
            assert!(t.len() <= 3, "tree has {} nodes", t.len());
        }
    }

    #[test]
    fn deterministic() {
        let (x, y) = toy_data(100, 2);
        let a = Gbdt::fit(&x, &y, GbdtConfig::default(), 9);
        let b = Gbdt::fit(&x, &y, GbdtConfig::default(), 9);
        assert_eq!(a.predict(&x[0]), b.predict(&x[0]));
    }

    #[test]
    #[should_panic]
    fn empty_data_panics() {
        Gbdt::fit(&[], &[], GbdtConfig::default(), 1);
    }
}
