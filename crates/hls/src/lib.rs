//! A from-scratch high-level synthesis (HLS) substrate.
//!
//! The paper's PowerGear flow consumes artifacts of Vivado HLS: the
//! intermediate representation (IR) from front-end compilation and the
//! finite state machine with datapath (FSMD) from back-end optimization,
//! plus the HLS report (resources, latency, timing). This crate rebuilds
//! that tool chain for the kernel descriptions in `pg-ir`:
//!
//! * [`Directives`] — loop pipelining, loop unrolling and array (buffer)
//!   partitioning, the three knobs the paper's design spaces sweep;
//! * [`lower`] — front end: kernel + directives → SSA [`pg_ir::IrFunction`]
//!   (unrolling applied, address arithmetic and casts materialized);
//! * [`schedule`] — back end: dependence- and resource-constrained list
//!   scheduling with initiation-interval (II) analysis for pipelined loops
//!   (memory-port and loop-carried recurrence limits);
//! * [`bind`] — functional-unit binding with cross-state resource sharing
//!   (the sharing sets later drive the paper's datapath-merging pass);
//! * [`fsmd`] — the FSMD controller abstraction;
//! * [`report`] — LUT/FF/DSP/BRAM utilization, latency and achieved clock
//!   estimates, and the scaling factors versus the unoptimized baseline
//!   that PowerGear feeds to its metadata MLP.
//!
//! The entry point is [`HlsFlow::run`], which returns an [`HlsDesign`]
//! bundling every artifact downstream crates need.
//!
//! # Examples
//!
//! ```
//! use pg_hls::{Directives, HlsFlow};
//! use pg_ir::{ArrayKind, KernelBuilder};
//! use pg_ir::expr::{aff, Expr};
//!
//! let kernel = KernelBuilder::new("axpy")
//!     .array("a", &[16], ArrayKind::Input)
//!     .array("x", &[16], ArrayKind::Input)
//!     .array("y", &[16], ArrayKind::Output)
//!     .loop_("i", 16, |b| {
//!         b.assign(
//!             ("y", vec![aff("i")]),
//!             Expr::load("y", vec![aff("i")])
//!                 + Expr::load("a", vec![aff("i")]) * Expr::load("x", vec![aff("i")]),
//!         );
//!     })
//!     .build()?;
//!
//! let mut dir = Directives::new();
//! dir.pipeline("i").unroll("i", 2).partition("y", 2);
//! let design = HlsFlow::default().run(&kernel, &dir)?;
//! assert!(design.report.latency_cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod bind;
pub mod directives;
pub mod flow;
pub mod fsmd;
pub mod lower;
pub mod report;
pub mod resources;
pub mod schedule;

pub use bind::{Binding, FuInstance};
pub use directives::Directives;
pub use flow::{HlsDesign, HlsError, HlsFlow, KernelAnalysis, PreparedKernel};
pub use fsmd::{FsmState, Fsmd};
pub use report::HlsReport;
pub use resources::{FuKind, FuLibrary, FuSpec};
pub use schedule::{BlockSchedule, Schedule};
