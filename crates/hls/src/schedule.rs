//! HLS back-end scheduling.
//!
//! Implements resource-constrained list scheduling per IR block, with
//! modulo-resource reservation for pipelined loops. The initiation interval
//! (II) of a pipelined loop is the maximum of:
//!
//! * the **memory-port bound** — accesses per BRAM bank per iteration over
//!   the available ports (accesses whose bank cannot be resolved statically
//!   reserve every bank, as a conservative HLS tool would), and
//! * the **recurrence bound** — for loop-carried reductions through memory
//!   (`c[i][j] += ...` with the reduction loop innermost), the latency of
//!   the load → compute → store cycle.
//!
//! These two effects are what make the paper's design spaces interesting:
//! partitioning relieves port pressure, pipelining amortizes depth, and
//! recurrences cap the benefit.

use crate::directives::Directives;
use crate::resources::FuLibrary;
use pg_ir::{IrBlock, IrFunction, MemRef, Opcode, ValueId};
use std::collections::HashMap;

/// Schedule of one IR block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSchedule {
    /// Index of the block in the function.
    pub block: usize,
    /// Start cycle of each op, aligned with `IrBlock::ops`.
    pub start: Vec<u32>,
    /// Cycles to complete one iteration (max over `start + latency`).
    pub depth: u32,
    /// Initiation interval; meaningful when the block is pipelined, equals
    /// `depth + 1` otherwise (a new iteration starts after the previous one
    /// finishes).
    pub ii: u32,
    /// Total cycles contributed by this block (all iterations).
    pub total_latency: u64,
}

impl BlockSchedule {
    /// Start cycle of op `v` (must belong to this block).
    pub fn start_of(&self, block: &IrBlock, v: ValueId) -> Option<u32> {
        block
            .ops
            .iter()
            .position(|&o| o == v)
            .map(|i| self.start[i])
    }
}

/// Whole-function schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Per-block schedules, aligned with `IrFunction::blocks`.
    pub blocks: Vec<BlockSchedule>,
    /// End-to-end latency in cycles (blocks execute sequentially).
    pub total_latency: u64,
}

impl Schedule {
    /// Start cycle of `v` within its own block's iteration.
    pub fn op_start(&self, func: &IrFunction, v: ValueId) -> u32 {
        let op = func.op(v);
        self.blocks[op.block]
            .start_of(&func.blocks[op.block], v)
            .expect("op listed in its block")
    }
}

/// May two memory references touch the same address?
///
/// Returns `false` only when provably disjoint: resolved different banks, or
/// identical variable strides with different constant offsets.
pub fn may_alias(a: &MemRef, b: &MemRef) -> bool {
    if a.array != b.array {
        return false;
    }
    if let (Some(ba), Some(bb)) = (a.bank, b.bank) {
        if ba != bb {
            return false;
        }
    }
    if a.linear == b.linear {
        return true;
    }
    if a.linear.terms == b.linear.terms && a.linear.offset != b.linear.offset {
        return false;
    }
    true
}

/// Builds intra-block dependence edges: SSA def-use plus memory ordering
/// (program order between aliasing accesses where at least one is a store).
fn block_deps(func: &IrFunction, block: &IrBlock) -> Vec<Vec<usize>> {
    let pos: HashMap<ValueId, usize> = block.ops.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); block.ops.len()];
    for (i, &vid) in block.ops.iter().enumerate() {
        let op = func.op(vid);
        for u in op.value_operands() {
            if let Some(&j) = pos.get(&u) {
                preds[i].push(j);
            }
        }
    }
    // Memory ordering.
    let mem_ops: Vec<usize> = block
        .ops
        .iter()
        .enumerate()
        .filter(|(_, &v)| matches!(func.op(v).opcode, Opcode::Load | Opcode::Store))
        .map(|(i, _)| i)
        .collect();
    for (ai, &i) in mem_ops.iter().enumerate() {
        let oi = func.op(block.ops[i]);
        for &j in mem_ops.iter().skip(ai + 1) {
            let oj = func.op(block.ops[j]);
            let either_store = oi.opcode == Opcode::Store || oj.opcode == Opcode::Store;
            if !either_store {
                continue;
            }
            let (mi, mj) = (
                oi.mem.as_ref().expect("mem op has memref"),
                oj.mem.as_ref().expect("mem op has memref"),
            );
            if may_alias(mi, mj) {
                preds[j].push(i);
            }
        }
    }
    preds
}

/// Memory-port demand key: `(interned array id, bank)`. Array names are
/// interned once per function (see [`ArrayInterner`]) so the reservation
/// probes in the modulo-scheduling loop hash two integers instead of
/// cloning strings.
type PortKey = (u32, usize);

/// First-seen-order interning of the array names referenced by a function's
/// memory ops.
#[derive(Debug, Default)]
struct ArrayInterner<'f> {
    ids: HashMap<&'f str, u32>,
}

impl<'f> ArrayInterner<'f> {
    fn new(func: &'f IrFunction) -> Self {
        let mut ids = HashMap::new();
        for op in &func.ops {
            if let Some(m) = &op.mem {
                let next = ids.len() as u32;
                ids.entry(m.array.as_str()).or_insert(next);
            }
        }
        ArrayInterner { ids }
    }

    fn id(&self, array: &str) -> u32 {
        self.ids[array]
    }
}

fn port_keys(m: &MemRef, partitions: usize, arrays: &ArrayInterner<'_>) -> Vec<PortKey> {
    let aid = arrays.id(&m.array);
    match m.bank {
        Some(b) => vec![(aid, b)],
        None => (0..partitions.max(1)).map(|b| (aid, b)).collect(),
    }
}

/// Lower bound on II from memory-port pressure.
fn ii_mem_bound(
    func: &IrFunction,
    block: &IrBlock,
    directives: &Directives,
    ports: u32,
    arrays: &ArrayInterner<'_>,
) -> u32 {
    // Ordered map: the fold below iterates it (max is order-insensitive,
    // but unordered iteration in the schedule path is banned outright).
    let mut demand: std::collections::BTreeMap<PortKey, u32> = std::collections::BTreeMap::new();
    for &v in &block.ops {
        let op = func.op(v);
        if matches!(op.opcode, Opcode::Load | Opcode::Store) {
            let m = op.mem.as_ref().expect("mem op has memref");
            for k in port_keys(m, directives.partition_factor(&m.array), arrays) {
                *demand.entry(k).or_insert(0) += 1;
            }
        }
    }
    demand
        .values()
        .map(|&n| n.div_ceil(ports))
        .max()
        .unwrap_or(1)
        .max(1)
}

/// ASAP start times ignoring resource limits (used for the recurrence bound
/// and as the list-scheduling priority).
fn asap(func: &IrFunction, block: &IrBlock, lib: &FuLibrary, preds: &[Vec<usize>]) -> Vec<u32> {
    let mut start = vec![0u32; block.ops.len()];
    for i in 0..block.ops.len() {
        for &p in &preds[i] {
            // chained combinational ops advance by 0; memory and float ops
            // advance by their latency
            let lat = lib.latency(func.op(block.ops[p]).opcode);
            start[i] = start[i].max(start[p] + lat);
        }
    }
    start
}

/// Lower bound on II from loop-carried memory recurrences: a load and a
/// store with *identical* symbolic address that does **not** advance with
/// the innermost (pipelined) loop variable form a distance-1 cycle; II must
/// cover the load→store path latency. Streaming accesses (`y[i]` in an
/// `i`-loop) touch a fresh address each iteration and are not recurrences.
fn ii_recurrence_bound(
    func: &IrFunction,
    block: &IrBlock,
    lib: &FuLibrary,
    asap_start: &[u32],
) -> u32 {
    let mut bound = 1u32;
    let inner_var = match block.dims.last() {
        Some(d) => d.var.as_str(),
        None => return 1,
    };
    for (i, &vi) in block.ops.iter().enumerate() {
        let oi = func.op(vi);
        if oi.opcode != Opcode::Load {
            continue;
        }
        let mi = oi.mem.as_ref().expect("load has memref");
        if mi.linear.vars().any(|v| v == inner_var) {
            continue; // address advances every iteration: no carried cycle
        }
        for (j, &vj) in block.ops.iter().enumerate() {
            let oj = func.op(vj);
            if oj.opcode != Opcode::Store {
                continue;
            }
            let mj = oj.mem.as_ref().expect("store has memref");
            if mi.array == mj.array && mi.linear == mj.linear {
                let store_end = asap_start[j] + lib.latency(Opcode::Store);
                let d = store_end.saturating_sub(asap_start[i]);
                bound = bound.max(d);
            }
        }
    }
    bound
}

/// Schedules one block; returns the schedule and whether it is pipelined.
fn schedule_block(
    func: &IrFunction,
    block_idx: usize,
    lib: &FuLibrary,
    directives: &Directives,
    arrays: &ArrayInterner<'_>,
) -> BlockSchedule {
    let block = &func.blocks[block_idx];
    let preds = block_deps(func, block);
    let asap_start = asap(func, block, lib, &preds);
    let ports = lib.mem_ports_per_bank;

    let pipelined = block.pipelined;
    let mut ii = if pipelined {
        ii_mem_bound(func, block, directives, ports, arrays).max(ii_recurrence_bound(
            func,
            block,
            lib,
            &asap_start,
        ))
    } else {
        u32::MAX // per-cycle limits only
    };

    loop {
        match try_list_schedule(
            func,
            block,
            lib,
            directives,
            &preds,
            &asap_start,
            ii,
            ports,
            arrays,
        ) {
            Some(start) => {
                let depth = block
                    .ops
                    .iter()
                    .zip(&start)
                    .map(|(&v, &s)| s + lib.latency(func.op(v).opcode))
                    .max()
                    .unwrap_or(0);
                let (eff_ii, total) = block_latency(block, depth, ii, pipelined);
                return BlockSchedule {
                    block: block_idx,
                    start,
                    depth,
                    ii: eff_ii,
                    total_latency: total,
                };
            }
            None => {
                ii = ii.saturating_add(1);
                assert!(
                    ii < 10_000,
                    "modulo scheduling failed to converge for block {}",
                    block.label
                );
            }
        }
    }
}

fn block_latency(block: &IrBlock, depth: u32, ii: u32, pipelined: bool) -> (u32, u64) {
    let iter_lat = depth.max(1) as u64;
    if pipelined {
        let inner_trip = block.dims.last().map(|d| d.trip).unwrap_or(1) as u64;
        let outer: u64 = block
            .dims
            .iter()
            .rev()
            .skip(1)
            .map(|d| d.trip as u64)
            .product();
        let per_entry = iter_lat + (inner_trip.saturating_sub(1)) * ii as u64;
        (ii, outer.max(1) * (per_entry + 1))
    } else {
        let trips = block.trip_product() as u64;
        let eff = iter_lat + 1;
        (depth + 1, trips * eff)
    }
}

/// Resource-constrained list scheduling (priority = ASAP time). For
/// pipelined blocks, memory ports are reserved modulo II.
// reason: the scheduler threads six orthogonal inputs (IR, block, library,
// directives, interner, II) that have no natural struct to live in.
#[allow(clippy::too_many_arguments)]
fn try_list_schedule(
    func: &IrFunction,
    block: &IrBlock,
    lib: &FuLibrary,
    directives: &Directives,
    preds: &[Vec<usize>],
    asap_start: &[u32],
    ii: u32,
    ports: u32,
    arrays: &ArrayInterner<'_>,
) -> Option<Vec<u32>> {
    let n = block.ops.len();
    let modulo = ii != u32::MAX;
    let horizon: u32 =
        asap_start.iter().max().copied().unwrap_or(0) + 64 + if modulo { ii * 4 } else { 0 };
    // Reservation table: (key, cycle-or-slot) -> used count.
    let mut reserved: HashMap<(PortKey, u32), u32> = HashMap::new();
    let mut start = vec![0u32; n];
    // Order ops by ASAP priority, stable on program order (indices).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (asap_start[i], i));

    // earliest feasible respecting already-scheduled preds
    for &i in &order {
        let vid = block.ops[i];
        let op = func.op(vid);
        let mut t = 0u32;
        for &p in &preds[i] {
            let lat = lib.latency(func.op(block.ops[p]).opcode);
            t = t.max(start[p] + lat);
        }
        let is_mem = matches!(op.opcode, Opcode::Load | Opcode::Store);
        if !is_mem {
            start[i] = t;
            continue;
        }
        let m = op.mem.as_ref().expect("mem op has memref");
        let keys = port_keys(m, directives.partition_factor(&m.array), arrays);
        let mut placed = false;
        while t <= horizon {
            let slot = if modulo { t % ii } else { t };
            let free = keys
                .iter()
                .all(|&k| reserved.get(&(k, slot)).copied().unwrap_or(0) < ports);
            if free {
                for &k in &keys {
                    *reserved.entry((k, slot)).or_insert(0) += 1;
                }
                start[i] = t;
                placed = true;
                break;
            }
            t += 1;
        }
        if !placed {
            return None;
        }
    }
    Some(start)
}

/// Schedules every block of `func`.
pub fn schedule(func: &IrFunction, lib: &FuLibrary, directives: &Directives) -> Schedule {
    let arrays = ArrayInterner::new(func);
    let blocks: Vec<BlockSchedule> = (0..func.blocks.len())
        .map(|b| schedule_block(func, b, lib, directives, &arrays))
        .collect();
    // Interface/start-up overhead approximates the HLS wrapper FSM.
    let total: u64 = blocks.iter().map(|b| b.total_latency).sum::<u64>() + 10;
    Schedule {
        blocks,
        total_latency: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use pg_ir::expr::aff;
    use pg_ir::{ArrayKind, Expr, Kernel, KernelBuilder};

    fn axpy() -> Kernel {
        KernelBuilder::new("axpy")
            .array("a", &[16], ArrayKind::Input)
            .array("x", &[16], ArrayKind::Input)
            .array("y", &[16], ArrayKind::Output)
            .loop_("i", 16, |b| {
                b.assign(
                    ("y", vec![aff("i")]),
                    Expr::load("y", vec![aff("i")])
                        + Expr::load("a", vec![aff("i")]) * Expr::load("x", vec![aff("i")]),
                );
            })
            .build()
            .unwrap()
    }

    fn dot() -> Kernel {
        // loop-carried reduction through memory: s[0] += a[i]*b[i]
        KernelBuilder::new("dot")
            .array("a", &[16], ArrayKind::Input)
            .array("b", &[16], ArrayKind::Input)
            .array("s", &[1], ArrayKind::Output)
            .loop_("i", 16, |bb| {
                bb.assign(
                    ("s", vec![pg_ir::AffineExpr::constant(0)]),
                    Expr::load("s", vec![pg_ir::AffineExpr::constant(0)])
                        + Expr::load("a", vec![aff("i")]) * Expr::load("b", vec![aff("i")]),
                );
            })
            .build()
            .unwrap()
    }

    #[test]
    fn respects_dependencies() {
        let lib = FuLibrary::default();
        let d = Directives::new();
        let f = lower(&axpy(), &d).unwrap();
        let s = schedule(&f, &lib, &d);
        for op in &f.ops {
            let my_start = s.op_start(&f, op.id);
            for u in op.value_operands() {
                let dep = f.op(u);
                if dep.block == op.block {
                    let dep_start = s.op_start(&f, u);
                    let lat = lib.latency(dep.opcode);
                    assert!(
                        my_start >= dep_start + lat,
                        "{} starts at {} before dep {} completes at {}",
                        op.id,
                        my_start,
                        u,
                        dep_start + lat
                    );
                }
            }
        }
    }

    #[test]
    fn pipelining_reduces_latency() {
        let lib = FuLibrary::default();
        let base = Directives::new();
        let f0 = lower(&axpy(), &base).unwrap();
        let s0 = schedule(&f0, &lib, &base);
        let mut dp = Directives::new();
        dp.pipeline("i");
        let f1 = lower(&axpy(), &dp).unwrap();
        let s1 = schedule(&f1, &lib, &dp);
        assert!(
            s1.total_latency < s0.total_latency,
            "pipelined {} vs baseline {}",
            s1.total_latency,
            s0.total_latency
        );
    }

    #[test]
    fn partition_relieves_port_pressure() {
        let lib = FuLibrary::default();
        // unroll 4 + pipeline: 4 loads of `a` per iteration, 2 ports -> II>=2
        let mut d1 = Directives::new();
        d1.pipeline("i").unroll("i", 4);
        let f1 = lower(&axpy(), &d1).unwrap();
        let s1 = schedule(&f1, &lib, &d1);
        let mut d2 = Directives::new();
        d2.pipeline("i")
            .unroll("i", 4)
            .partition("a", 4)
            .partition("x", 4)
            .partition("y", 4);
        let f2 = lower(&axpy(), &d2).unwrap();
        let s2 = schedule(&f2, &lib, &d2);
        let ii1 = s1.blocks.last().unwrap().ii;
        let ii2 = s2.blocks.last().unwrap().ii;
        assert!(ii2 < ii1, "partitioned II {ii2} vs unpartitioned II {ii1}");
        assert!(s2.total_latency < s1.total_latency);
    }

    #[test]
    fn recurrence_limits_ii() {
        let lib = FuLibrary::default();
        let mut d = Directives::new();
        d.pipeline("i");
        let f = lower(&dot(), &d).unwrap();
        let s = schedule(&f, &lib, &d);
        // load s[0] -> fadd (4 cycles) -> store: II must cover the cycle
        let ii = s.blocks.last().unwrap().ii;
        assert!(ii >= 5, "recurrence-bound II was {ii}");
    }

    #[test]
    fn axpy_streaming_has_low_ii() {
        let lib = FuLibrary::default();
        let mut d = Directives::new();
        d.pipeline("i");
        let f = lower(&axpy(), &d).unwrap();
        let s = schedule(&f, &lib, &d);
        // y[i] touches a new address each iteration: not a recurrence, and
        // y needs a load+store (2 accesses on 2 ports) -> II can be 1
        let ii = s.blocks.last().unwrap().ii;
        assert_eq!(ii, 1, "streaming axpy II was {ii}");
    }

    #[test]
    fn may_alias_logic() {
        use pg_ir::AffineExpr;
        let m = |lin: AffineExpr, bank: Option<usize>| MemRef {
            array: "a".into(),
            indices: vec![],
            linear: lin,
            bank,
        };
        // identical address
        assert!(may_alias(&m(aff("i"), None), &m(aff("i"), None)));
        // provably different offsets
        assert!(!may_alias(&m(aff("i"), None), &m(aff("i").plus(1), None)));
        // different resolved banks
        assert!(!may_alias(
            &m(aff("i").scaled(2), Some(0)),
            &m(aff("i").scaled(2).plus(1), Some(1))
        ));
        // unknown relation -> conservative
        assert!(may_alias(&m(aff("i"), None), &m(aff("j"), None)));
    }

    #[test]
    fn memory_ports_never_oversubscribed() {
        let lib = FuLibrary::default();
        let mut d = Directives::new();
        d.pipeline("i").unroll("i", 8);
        let f = lower(&axpy(), &d).unwrap();
        let s = schedule(&f, &lib, &d);
        let arrays = ArrayInterner::new(&f);
        for (bi, bs) in s.blocks.iter().enumerate() {
            let block = &f.blocks[bi];
            let ii = bs.ii;
            let mut usage: HashMap<(PortKey, u32), u32> = HashMap::new();
            for (i, &v) in block.ops.iter().enumerate() {
                let op = f.op(v);
                if matches!(op.opcode, Opcode::Load | Opcode::Store) {
                    let m = op.mem.as_ref().unwrap();
                    let slot = if block.pipelined {
                        bs.start[i] % ii
                    } else {
                        bs.start[i]
                    };
                    for k in port_keys(m, d.partition_factor(&m.array), &arrays) {
                        *usage.entry((k, slot)).or_insert(0) += 1;
                    }
                }
            }
            for ((k, slot), n) in usage {
                assert!(
                    n <= lib.mem_ports_per_bank,
                    "bank {k:?} oversubscribed at slot {slot}: {n}"
                );
            }
        }
    }

    #[test]
    fn unroll_without_partition_may_not_help() {
        let lib = FuLibrary::default();
        let mut du = Directives::new();
        du.pipeline("i").unroll("i", 8);
        let fu = lower(&axpy(), &du).unwrap();
        let su = schedule(&fu, &lib, &du);
        // throughput: iterations happen 8-per-initiation but II grows with
        // port conflicts; total latency should still beat non-unrolled
        // non-pipelined baseline
        let base = Directives::new();
        let fb = lower(&axpy(), &base).unwrap();
        let sb = schedule(&fb, &lib, &base);
        assert!(su.total_latency < sb.total_latency);
    }
}
