//! HLS optimization directives.
//!
//! The paper's design spaces are generated "by applying loop pipelining,
//! loop unrolling and buffer partitioning" (§IV). [`Directives`] captures
//! one point of that space: per-loop pipeline/unroll settings and per-array
//! cyclic partition factors.

use std::collections::BTreeMap;
use std::fmt;

/// A directive configuration (one design point).
///
/// Loops are addressed by their induction-variable label, arrays by name.
/// Unknown labels are tolerated at construction and rejected by the HLS
/// flow, so a single configuration grammar can serve every kernel.
///
/// # Examples
///
/// ```
/// use pg_hls::Directives;
/// let mut d = Directives::new();
/// d.pipeline("j").unroll("j", 4).partition("a", 2);
/// assert!(d.is_pipelined("j"));
/// assert_eq!(d.unroll_factor("j"), 4);
/// assert_eq!(d.partition_factor("a"), 2);
/// assert_eq!(d.partition_factor("other"), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Directives {
    pipeline: BTreeMap<String, bool>,
    unroll: BTreeMap<String, usize>,
    partition: BTreeMap<String, usize>,
}

impl Directives {
    /// An empty (baseline / unoptimized) configuration.
    pub fn new() -> Self {
        Directives::default()
    }

    /// Enables pipelining on the loop labelled `label`.
    pub fn pipeline(&mut self, label: &str) -> &mut Self {
        self.pipeline.insert(label.to_string(), true);
        self
    }

    /// Sets the unroll factor of the loop labelled `label`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn unroll(&mut self, label: &str, factor: usize) -> &mut Self {
        assert!(factor > 0, "unroll factor must be positive");
        self.unroll.insert(label.to_string(), factor);
        self
    }

    /// Sets the cyclic partition factor of array `array`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn partition(&mut self, array: &str, factor: usize) -> &mut Self {
        assert!(factor > 0, "partition factor must be positive");
        self.partition.insert(array.to_string(), factor);
        self
    }

    /// Whether the loop labelled `label` is pipelined.
    pub fn is_pipelined(&self, label: &str) -> bool {
        self.pipeline.get(label).copied().unwrap_or(false)
    }

    /// Unroll factor for `label` (1 when unset).
    pub fn unroll_factor(&self, label: &str) -> usize {
        self.unroll.get(label).copied().unwrap_or(1)
    }

    /// Partition factor for `array` (1 when unset).
    pub fn partition_factor(&self, array: &str) -> usize {
        self.partition.get(array).copied().unwrap_or(1)
    }

    /// Labels with explicit pipeline settings.
    pub fn pipelined_loops(&self) -> impl Iterator<Item = &str> {
        self.pipeline
            .iter()
            .filter(|(_, &on)| on)
            .map(|(l, _)| l.as_str())
    }

    /// `(label, factor)` pairs with factor > 1.
    pub fn unrolled_loops(&self) -> impl Iterator<Item = (&str, usize)> {
        self.unroll
            .iter()
            .filter(|(_, &f)| f > 1)
            .map(|(l, &f)| (l.as_str(), f))
    }

    /// `(array, factor)` pairs with factor > 1.
    pub fn partitioned_arrays(&self) -> impl Iterator<Item = (&str, usize)> {
        self.partition
            .iter()
            .filter(|(_, &f)| f > 1)
            .map(|(a, &f)| (a.as_str(), f))
    }

    /// `true` when no directive is set (the unoptimized baseline).
    pub fn is_baseline(&self) -> bool {
        !self.pipeline.values().any(|&b| b)
            && !self.unroll.values().any(|&f| f > 1)
            && !self.partition.values().any(|&f| f > 1)
    }

    /// A stable short identifier for file names and hashing, e.g.
    /// `p[j]u[j=4]pa[a=2]`.
    pub fn id(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Directives {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p: Vec<&str> = self.pipelined_loops().collect();
        let u: Vec<String> = self
            .unrolled_loops()
            .map(|(l, k)| format!("{l}={k}"))
            .collect();
        let pa: Vec<String> = self
            .partitioned_arrays()
            .map(|(a, k)| format!("{a}={k}"))
            .collect();
        write!(
            f,
            "p[{}]u[{}]pa[{}]",
            p.join(","),
            u.join(","),
            pa.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_baseline() {
        let d = Directives::new();
        assert!(d.is_baseline());
        assert!(!d.is_pipelined("i"));
        assert_eq!(d.unroll_factor("i"), 1);
        assert_eq!(d.partition_factor("a"), 1);
    }

    #[test]
    fn setters_and_getters() {
        let mut d = Directives::new();
        d.pipeline("i").unroll("j", 8).partition("buf", 4);
        assert!(d.is_pipelined("i"));
        assert!(!d.is_baseline());
        assert_eq!(d.unroll_factor("j"), 8);
        assert_eq!(d.partition_factor("buf"), 4);
        assert_eq!(d.unrolled_loops().count(), 1);
        assert_eq!(d.partitioned_arrays().count(), 1);
    }

    #[test]
    fn id_is_stable_and_distinct() {
        let mut a = Directives::new();
        a.pipeline("i").unroll("i", 2);
        let mut b = Directives::new();
        b.unroll("i", 2).pipeline("i");
        assert_eq!(a.id(), b.id());
        let mut c = Directives::new();
        c.unroll("i", 4);
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn unroll_one_is_baseline() {
        let mut d = Directives::new();
        d.unroll("i", 1).partition("a", 1);
        assert!(d.is_baseline());
    }

    #[test]
    #[should_panic]
    fn zero_unroll_panics() {
        Directives::new().unroll("i", 0);
    }
}
