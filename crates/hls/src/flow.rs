//! End-to-end HLS flow orchestration.
//!
//! [`HlsFlow::run`] executes front end (lowering with directives), back end
//! (scheduling, binding, FSMD extraction) and reporting, returning an
//! [`HlsDesign`] that bundles every artifact the PowerGear pipeline
//! consumes downstream: the IR for activity tracing, the binding for
//! datapath merging and netlist synthesis, and the report for metadata
//! features.

use crate::bind::{bind, Binding};
use crate::directives::Directives;
use crate::fsmd::{build_fsmd, Fsmd};
use crate::lower::lower_prepared;
use crate::report::{report, HlsReport};
use crate::resources::FuLibrary;
use crate::schedule::{schedule, Schedule};
use pg_ir::{ArrayDecl, IrFunction, Kernel, KernelError};
use pg_util::prof;
use std::fmt;
use std::sync::Arc;

/// Errors from the HLS flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HlsError {
    /// A directive referenced a loop label that does not exist.
    UnknownLoop(String),
    /// A directive referenced an array that does not exist.
    UnknownArray(String),
    /// Pipeline/unroll was requested on a non-innermost loop.
    NotInnermost(String),
    /// The kernel failed structural validation.
    InvalidKernel(KernelError),
}

impl fmt::Display for HlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlsError::UnknownLoop(l) => write!(f, "directive targets unknown loop `{l}`"),
            HlsError::UnknownArray(a) => write!(f, "directive targets unknown array `{a}`"),
            HlsError::NotInnermost(l) => {
                write!(
                    f,
                    "pipeline/unroll only supported on innermost loops (got `{l}`)"
                )
            }
            HlsError::InvalidKernel(e) => write!(f, "invalid kernel: {e}"),
        }
    }
}

impl std::error::Error for HlsError {}

impl From<KernelError> for HlsError {
    fn from(e: KernelError) -> Self {
        HlsError::InvalidKernel(e)
    }
}

/// Directive-independent analysis of a kernel: structural validation plus
/// the loop-label and innermost-loop sets every directive validation
/// consults. Computing it is cheap for a single design point but — done
/// per-point — used to be repeated ~500 times per kernel during dataset
/// generation; [`PreparedKernel`] hoists it so the whole design space
/// shares one analysis (the `HlsCache` keeps one per kernel fingerprint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelAnalysis {
    /// All loop labels, pre-order.
    labels: Vec<String>,
    /// Innermost loop labels (pipeline/unroll targets).
    innermost: Vec<String>,
}

impl KernelAnalysis {
    /// Validates `kernel` and captures its directive-independent analysis.
    ///
    /// # Errors
    ///
    /// [`HlsError::InvalidKernel`] when structural validation fails.
    pub fn new(kernel: &Kernel) -> Result<Self, HlsError> {
        let _t = prof::scope("hls.analyze");
        kernel.validate()?;
        Ok(KernelAnalysis {
            labels: kernel.loop_labels(),
            innermost: kernel.innermost_loops(),
        })
    }

    /// All loop labels of the analyzed kernel.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Innermost loop labels of the analyzed kernel.
    pub fn innermost(&self) -> &[String] {
        &self.innermost
    }
}

/// A kernel bundled with its shared [`KernelAnalysis`]; the input of
/// [`HlsFlow::run_prepared`]. Preparing once and synthesizing many design
/// points amortizes validation across the directive space.
#[derive(Debug, Clone)]
pub struct PreparedKernel<'k> {
    /// The underlying kernel.
    pub kernel: &'k Kernel,
    analysis: Arc<KernelAnalysis>,
}

impl<'k> PreparedKernel<'k> {
    /// Validates and analyzes `kernel`.
    ///
    /// # Errors
    ///
    /// [`HlsError::InvalidKernel`] when structural validation fails.
    pub fn new(kernel: &'k Kernel) -> Result<Self, HlsError> {
        Ok(PreparedKernel {
            kernel,
            analysis: Arc::new(KernelAnalysis::new(kernel)?),
        })
    }

    /// Rebinds an already-computed analysis to `kernel`. The caller asserts
    /// the analysis was produced from this kernel (the `HlsCache` keys it
    /// by kernel fingerprint).
    pub fn with_analysis(kernel: &'k Kernel, analysis: Arc<KernelAnalysis>) -> Self {
        PreparedKernel { kernel, analysis }
    }

    /// The shared analysis.
    pub fn analysis(&self) -> &Arc<KernelAnalysis> {
        &self.analysis
    }
}

/// A fully synthesized design point.
#[derive(Debug, Clone, PartialEq)]
pub struct HlsDesign {
    /// Source kernel name.
    pub kernel_name: String,
    /// The directive configuration that produced this design.
    pub directives: Directives,
    /// SSA IR (post-unroll).
    pub ir: IrFunction,
    /// Block schedules and total latency.
    pub schedule: Schedule,
    /// FU binding / sharing sets.
    pub binding: Binding,
    /// Controller abstraction.
    pub fsmd: Fsmd,
    /// Resource/latency/timing report.
    pub report: HlsReport,
    /// `(array, banks)` pairs after partitioning.
    pub arrays: Vec<(ArrayDecl, usize)>,
    /// FU library used (needed by the power substrate).
    pub lib: FuLibrary,
}

impl HlsDesign {
    /// A stable identifier `kernel/directives` for caching and jitter seeds.
    pub fn design_id(&self) -> String {
        format!("{}/{}", self.kernel_name, self.directives.id())
    }
}

/// The HLS tool: a functional-unit library plus run entry points.
#[derive(Debug, Clone, Default)]
pub struct HlsFlow {
    /// FU library / device model.
    pub lib: FuLibrary,
}

impl HlsFlow {
    /// Creates a flow with the default UltraScale+-style library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the full flow on `kernel` with `directives`.
    ///
    /// # Errors
    ///
    /// Returns [`HlsError`] for invalid kernels or directive targets.
    pub fn run(&self, kernel: &Kernel, directives: &Directives) -> Result<HlsDesign, HlsError> {
        self.run_prepared(&PreparedKernel::new(kernel)?, directives)
    }

    /// Runs the flow against an already-validated [`PreparedKernel`],
    /// skipping the directive-independent analysis (structural validation,
    /// loop-label/innermost sets) that [`PreparedKernel::new`] hoisted out.
    /// The produced design is bit-identical to [`HlsFlow::run`].
    ///
    /// # Errors
    ///
    /// Returns [`HlsError`] for invalid directive targets.
    pub fn run_prepared(
        &self,
        prepared: &PreparedKernel,
        directives: &Directives,
    ) -> Result<HlsDesign, HlsError> {
        let _t = prof::scope("hls");
        let kernel = &prepared.kernel;
        let ir = {
            let _t = prof::scope("hls.lower");
            lower_prepared(prepared, directives)?
        };
        let sched = {
            let _t = prof::scope("hls.schedule");
            schedule(&ir, &self.lib, directives)
        };
        let binding = {
            let _t = prof::scope("hls.bind");
            bind(&ir, &sched, &self.lib)
        };
        let fsmd = {
            let _t = prof::scope("hls.fsmd");
            build_fsmd(&ir, &sched)
        };
        let arrays: Vec<(ArrayDecl, usize)> = kernel
            .arrays
            .iter()
            .map(|a| {
                let banks = directives.partition_factor(&a.name).min(a.len()).max(1);
                (a.clone(), banks)
            })
            .collect();
        let rpt = {
            let _t = prof::scope("hls.report");
            report(&ir, &sched, &binding, &fsmd, &arrays, &self.lib)
        };
        Ok(HlsDesign {
            kernel_name: kernel.name.clone(),
            directives: directives.clone(),
            ir,
            schedule: sched,
            binding,
            fsmd,
            report: rpt,
            arrays,
            lib: self.lib.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_ir::expr::aff;
    use pg_ir::{ArrayKind, Expr, KernelBuilder};

    fn axpy() -> Kernel {
        KernelBuilder::new("axpy")
            .array("a", &[16], ArrayKind::Input)
            .array("x", &[16], ArrayKind::Input)
            .array("y", &[16], ArrayKind::Output)
            .loop_("i", 16, |b| {
                b.assign(
                    ("y", vec![aff("i")]),
                    Expr::load("y", vec![aff("i")])
                        + Expr::load("a", vec![aff("i")]) * Expr::load("x", vec![aff("i")]),
                );
            })
            .build()
            .unwrap()
    }

    #[test]
    fn full_flow_produces_consistent_design() {
        let d = Directives::new();
        let design = HlsFlow::new().run(&axpy(), &d).unwrap();
        assert!(design.report.latency_cycles > 16);
        assert!(design.report.lut > 0);
        assert!(design.report.bram >= 3);
        assert_eq!(design.arrays.len(), 3);
        assert!(design.fsmd.num_states() > 0);
        assert!(design.ir.validate().is_ok());
        assert!(design.design_id().starts_with("axpy/"));
    }

    #[test]
    fn directives_change_resources_and_latency() {
        let base = HlsFlow::new().run(&axpy(), &Directives::new()).unwrap();
        let mut d = Directives::new();
        d.pipeline("i")
            .unroll("i", 4)
            .partition("a", 4)
            .partition("x", 4)
            .partition("y", 4);
        let opt = HlsFlow::new().run(&axpy(), &d).unwrap();
        assert!(opt.report.latency_cycles < base.report.latency_cycles);
        assert!(opt.report.dsp >= base.report.dsp);
        assert!(opt.report.bram > base.report.bram);
    }

    #[test]
    fn partition_clamped_to_array_size() {
        let k = KernelBuilder::new("tiny")
            .array("s", &[2], ArrayKind::Output)
            .loop_("i", 2, |b| {
                b.assign(("s", vec![aff("i")]), Expr::Const(1.0));
            })
            .build()
            .unwrap();
        let mut d = Directives::new();
        d.partition("s", 8);
        let design = HlsFlow::new().run(&k, &d).unwrap();
        assert_eq!(design.arrays[0].1, 2);
    }

    #[test]
    fn error_display_is_informative() {
        let e = HlsError::UnknownLoop("q".into());
        assert!(e.to_string().contains("q"));
    }
}
