//! HLS report: resource utilization, latency and timing estimates.
//!
//! PowerGear feeds its metadata MLP with "the global resource utilization
//! (LUT, DSP and BRAM), timing information (latency and achieved clock
//! period) in HLS, and the scaling factors, i.e., the ratio of the above
//! design metrics over those of the unoptimized baseline" (§III-B). This
//! module produces those quantities from the scheduled, bound design.

use crate::bind::Binding;
use crate::fsmd::Fsmd;
use crate::resources::{FuKind, FuLibrary};
use crate::schedule::Schedule;
use pg_ir::{ArrayDecl, IrFunction};

/// Post-synthesis estimates for one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct HlsReport {
    /// Look-up tables.
    pub lut: u32,
    /// Flip-flops.
    pub ff: u32,
    /// DSP blocks.
    pub dsp: u32,
    /// 18 Kb block RAMs.
    pub bram: u32,
    /// End-to-end latency in cycles.
    pub latency_cycles: u64,
    /// Achieved clock period estimate (ns).
    pub clock_ns: f64,
}

impl HlsReport {
    /// The five metadata scalars the paper uses, plus their scaling factors
    /// against the unoptimized `baseline` design — ten features total, in a
    /// scale suitable for an MLP (log/normalized).
    pub fn metadata_features(&self, baseline: &HlsReport) -> Vec<f64> {
        // ratios are clamped: unrolled designs can blow LUT/DSP up 30x over
        // the baseline, and unbounded ratio features transfer poorly to
        // kernels unseen in training
        let ratio = |a: f64, b: f64| {
            if b > 0.0 {
                (a / b).min(4.0)
            } else {
                1.0
            }
        };
        vec![
            (self.lut as f64 / 1e4).min(10.0),
            (self.dsp as f64 / 1e2).min(10.0),
            (self.bram as f64 / 1e2).min(10.0),
            ((self.latency_cycles.max(1) as f64).log10()) / 6.0,
            self.clock_ns / 10.0,
            ratio(self.lut as f64, baseline.lut as f64),
            ratio(self.dsp as f64, baseline.dsp as f64),
            ratio(self.bram as f64, baseline.bram as f64),
            ratio(
                (self.latency_cycles.max(1) as f64).log10(),
                (baseline.latency_cycles.max(1) as f64).log10(),
            ),
            ratio(self.clock_ns, baseline.clock_ns),
        ]
    }

    /// Number of metadata features produced by [`Self::metadata_features`].
    pub const NUM_FEATURES: usize = 10;
}

/// Computes the report for a scheduled & bound design.
pub fn report(
    func: &IrFunction,
    sched: &Schedule,
    binding: &Binding,
    fsmd: &Fsmd,
    arrays: &[(ArrayDecl, usize)],
    lib: &FuLibrary,
) -> HlsReport {
    let mut lut = 0u32;
    let mut ff = 0u32;
    let mut dsp = 0u32;
    for inst in &binding.instances {
        let spec = lib.spec(inst.kind);
        lut += spec.lut;
        ff += spec.ff;
        dsp += spec.dsp;
    }
    // Wiring/cast glue for unbound ops.
    for op in &func.ops {
        let kind = lib.kind_of(op.opcode);
        if !kind.is_shareable() {
            lut += lib.spec(kind).lut;
        }
    }
    // Sharing muxes: a 2:1 32-bit mux is ~16 LUT6; each extra input adds 16.
    lut += binding.mux_inputs * 16;
    // Control: one-hot FSM + next-state logic.
    let states = fsmd.num_states() as u32;
    lut += 40 + states * 3;
    ff += 32 + states;
    ff += binding.reg_bits.min(u32::MAX as u64) as u32;

    let bram: u32 = arrays
        .iter()
        .map(|(a, banks)| lib.bram_blocks(a.len(), *banks))
        .sum();

    // Achieved clock: slowest FU stage plus wire/mux penalties that grow
    // with design size (routing congestion surrogate).
    let max_fu_delay = binding
        .instances
        .iter()
        .map(|i| lib.spec(i.kind).delay_ns)
        .fold(2.0f64, f64::max);
    let max_share = binding
        .instances
        .iter()
        .map(|i| i.ops.len())
        .max()
        .unwrap_or(1) as f64;
    let mux_penalty = 0.25 * max_share.log2().max(0.0);
    let wire_penalty = 0.35 * ((lut.max(1) as f64).log10() - 2.0).max(0.0);
    let clock_ns = (max_fu_delay + mux_penalty + wire_penalty).clamp(2.0, 16.0);

    let _ = FuKind::ALL; // (documented ordering referenced by power model)
    HlsReport {
        lut,
        ff,
        dsp,
        bram,
        latency_cycles: sched.total_latency,
        clock_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(lut: u32, dsp: u32, bram: u32, lat: u64, clk: f64) -> HlsReport {
        HlsReport {
            lut,
            ff: lut / 2,
            dsp,
            bram,
            latency_cycles: lat,
            clock_ns: clk,
        }
    }

    #[test]
    fn metadata_has_ten_features() {
        let base = mk(1000, 4, 8, 10_000, 8.0);
        let cur = mk(2000, 8, 8, 5_000, 8.5);
        let f = cur.metadata_features(&base);
        assert_eq!(f.len(), HlsReport::NUM_FEATURES);
        // scaling factors land in sensible ranges
        assert!((f[5] - 2.0).abs() < 1e-9, "lut ratio");
        assert!((f[6] - 2.0).abs() < 1e-9, "dsp ratio");
        assert!((f[7] - 1.0).abs() < 1e-9, "bram ratio");
        assert!(f[8] < 1.0, "latency ratio shrinks");
    }

    #[test]
    fn baseline_scaling_is_unity() {
        let base = mk(1000, 4, 8, 10_000, 8.0);
        let f = base.metadata_features(&base);
        for v in &f[5..10] {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_baseline_guarded() {
        let base = mk(0, 0, 0, 1, 8.0);
        let cur = mk(100, 1, 1, 1, 8.0);
        let f = cur.metadata_features(&base);
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
