//! Functional-unit library and device model.
//!
//! Latency/area numbers approximate Vivado HLS mapping 32-bit operations
//! onto a Xilinx UltraScale+ device at a 10 ns target clock (the paper's
//! ZCU102 at 100 MHz): pipelined floating-point cores (DSP-based mul,
//! fabric+DSP add), combinational integer index arithmetic, and dual-port
//! block RAM. Absolute numbers need not match Vivado exactly — downstream
//! models only rely on their *relative* magnitudes and on their response to
//! directives.

use pg_ir::Opcode;

/// The class of functional unit an opcode maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuKind {
    /// Floating-point adder/subtractor core.
    FAddSub,
    /// Floating-point multiplier core.
    FMul,
    /// Floating-point divider core.
    FDiv,
    /// Floating-point comparator.
    FCmp,
    /// Integer ALU (add/sub/compare).
    IntAlu,
    /// Integer multiplier.
    IntMul,
    /// Block-RAM read/write port.
    MemPort,
    /// Address generation / wiring (gep, casts) — no standalone FU.
    Wire,
    /// Control logic (phi/br/select/ret).
    Control,
}

impl FuKind {
    /// All kinds, in a stable order.
    pub const ALL: [FuKind; 9] = [
        FuKind::FAddSub,
        FuKind::FMul,
        FuKind::FDiv,
        FuKind::FCmp,
        FuKind::IntAlu,
        FuKind::IntMul,
        FuKind::MemPort,
        FuKind::Wire,
        FuKind::Control,
    ];

    /// `true` when this kind occupies a shareable hardware instance.
    pub fn is_shareable(self) -> bool {
        !matches!(self, FuKind::Wire | FuKind::Control)
    }
}

/// Timing and area of one functional-unit kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuSpec {
    /// Cycles from operand issue to result (0 = combinational).
    pub latency: u32,
    /// LUT cost per instance.
    pub lut: u32,
    /// Flip-flop cost per instance.
    pub ff: u32,
    /// DSP blocks per instance.
    pub dsp: u32,
    /// Combinational delay contribution (ns) for clock estimation.
    pub delay_ns: f64,
}

/// The functional-unit library plus device-level constants.
#[derive(Debug, Clone, PartialEq)]
pub struct FuLibrary {
    /// Read/write ports per BRAM bank (true dual port).
    pub mem_ports_per_bank: u32,
    /// Words per 18 Kb BRAM at 32-bit width.
    pub bram_words: u32,
    /// Target clock period (ns); the board runs at this frequency.
    pub target_clock_ns: f64,
    /// Supply voltage (V) for the power formula.
    pub vdd: f64,
}

impl Default for FuLibrary {
    fn default() -> Self {
        FuLibrary {
            mem_ports_per_bank: 2,
            bram_words: 512,
            target_clock_ns: 10.0,
            vdd: 0.85,
        }
    }
}

impl FuLibrary {
    /// The FU kind an opcode executes on.
    pub fn kind_of(&self, op: Opcode) -> FuKind {
        use Opcode::*;
        match op {
            FAdd | FSub => FuKind::FAddSub,
            FMul => FuKind::FMul,
            FDiv => FuKind::FDiv,
            FCmp => FuKind::FCmp,
            Add | Sub | ICmp => FuKind::IntAlu,
            Mul => FuKind::IntMul,
            Load | Store => FuKind::MemPort,
            Alloca | GetElementPtr | SExt | ZExt | Trunc | BitCast => FuKind::Wire,
            Phi | Br | Select | Ret => FuKind::Control,
        }
    }

    /// Timing/area spec of a kind.
    pub fn spec(&self, kind: FuKind) -> FuSpec {
        match kind {
            FuKind::FAddSub => FuSpec {
                latency: 4,
                lut: 214,
                ff: 324,
                dsp: 2,
                delay_ns: 5.8,
            },
            FuKind::FMul => FuSpec {
                latency: 3,
                lut: 78,
                ff: 151,
                dsp: 3,
                delay_ns: 5.2,
            },
            FuKind::FDiv => FuSpec {
                latency: 14,
                lut: 792,
                ff: 1446,
                dsp: 0,
                delay_ns: 6.9,
            },
            FuKind::FCmp => FuSpec {
                latency: 1,
                lut: 66,
                ff: 48,
                dsp: 0,
                delay_ns: 3.1,
            },
            FuKind::IntAlu => FuSpec {
                latency: 0,
                lut: 39,
                ff: 0,
                dsp: 0,
                delay_ns: 1.9,
            },
            FuKind::IntMul => FuSpec {
                latency: 1,
                lut: 20,
                ff: 40,
                dsp: 1,
                delay_ns: 4.0,
            },
            FuKind::MemPort => FuSpec {
                latency: 1,
                lut: 12,
                ff: 8,
                dsp: 0,
                delay_ns: 2.3,
            },
            FuKind::Wire => FuSpec {
                latency: 0,
                lut: 2,
                ff: 0,
                dsp: 0,
                delay_ns: 0.3,
            },
            FuKind::Control => FuSpec {
                latency: 0,
                lut: 4,
                ff: 2,
                dsp: 0,
                delay_ns: 0.6,
            },
        }
    }

    /// Latency in cycles of an opcode.
    pub fn latency(&self, op: Opcode) -> u32 {
        self.spec(self.kind_of(op)).latency
    }

    /// BRAM banks needed for `elems` 32-bit words split into `partitions`
    /// cyclic banks (each bank is padded to whole 18 Kb blocks).
    pub fn bram_blocks(&self, elems: usize, partitions: usize) -> u32 {
        let per_bank = elems.div_ceil(partitions.max(1));
        let blocks_per_bank = (per_bank as u32).div_ceil(self.bram_words).max(1);
        blocks_per_bank * partitions.max(1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_all_opcodes() {
        let lib = FuLibrary::default();
        for op in Opcode::ALL {
            // must not panic and must return a spec
            let k = lib.kind_of(op);
            let s = lib.spec(k);
            assert!(s.delay_ns > 0.0);
        }
    }

    #[test]
    fn float_ops_have_multicycle_latency() {
        let lib = FuLibrary::default();
        assert!(lib.latency(Opcode::FAdd) >= 3);
        assert!(lib.latency(Opcode::FDiv) > lib.latency(Opcode::FMul));
        assert_eq!(lib.latency(Opcode::GetElementPtr), 0);
    }

    #[test]
    fn memports_are_shareable_wires_not() {
        assert!(FuKind::MemPort.is_shareable());
        assert!(FuKind::FAddSub.is_shareable());
        assert!(!FuKind::Wire.is_shareable());
        assert!(!FuKind::Control.is_shareable());
    }

    #[test]
    fn bram_blocks_scale_with_partitions() {
        let lib = FuLibrary::default();
        // 1024 words, 1 bank -> 2 blocks; 4 banks of 256 -> 4 blocks (padding)
        assert_eq!(lib.bram_blocks(1024, 1), 2);
        assert_eq!(lib.bram_blocks(1024, 4), 4);
        // tiny array still costs one block per bank
        assert_eq!(lib.bram_blocks(16, 2), 2);
    }

    #[test]
    fn dsp_costs_present_for_float_mul() {
        let lib = FuLibrary::default();
        assert!(lib.spec(FuKind::FMul).dsp > 0);
        assert_eq!(lib.spec(FuKind::FDiv).dsp, 0);
    }
}
