//! Finite state machine with datapath (FSMD) abstraction.
//!
//! The FSMD is the second HLS artifact the paper's graph construction
//! consumes (Fig. 1): it tells which operations are active in which control
//! state, i.e. which datapath resources are exercised when. Here it is
//! derived from the block schedules; the power substrate uses the state
//! count for control-logic sizing and the per-state activity for clock and
//! enable-network toggling.

use crate::schedule::Schedule;
use pg_ir::{IrFunction, ValueId};

/// One control state: the ops issued at a given cycle of a block iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct FsmState {
    /// Owning block.
    pub block: usize,
    /// Cycle within the block's iteration schedule.
    pub cycle: u32,
    /// Ops issued in this state.
    pub active: Vec<ValueId>,
}

/// The whole controller.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Fsmd {
    /// States in execution order.
    pub states: Vec<FsmState>,
}

impl Fsmd {
    /// Number of control states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Mean number of active ops per state (datapath occupancy).
    pub fn mean_occupancy(&self) -> f64 {
        if self.states.is_empty() {
            return 0.0;
        }
        let total: usize = self.states.iter().map(|s| s.active.len()).sum();
        total as f64 / self.states.len() as f64
    }
}

/// Builds the FSMD from a schedule: one state per (block, cycle) pair up to
/// each block's depth, listing the ops issued there.
pub fn build_fsmd(func: &IrFunction, sched: &Schedule) -> Fsmd {
    let mut states = Vec::new();
    for (bi, block) in func.blocks.iter().enumerate() {
        let bs = &sched.blocks[bi];
        let depth = bs.depth;
        for cycle in 0..=depth {
            let active: Vec<ValueId> = block
                .ops
                .iter()
                .enumerate()
                .filter(|(i, _)| bs.start[*i] == cycle)
                .map(|(_, &v)| v)
                .collect();
            if !active.is_empty() || cycle == 0 {
                states.push(FsmState {
                    block: bi,
                    cycle,
                    active,
                });
            }
        }
    }
    Fsmd { states }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directives::Directives;
    use crate::lower::lower;
    use crate::resources::FuLibrary;
    use crate::schedule::schedule;
    use pg_ir::expr::aff;
    use pg_ir::{ArrayKind, Expr, KernelBuilder};

    fn setup() -> (IrFunction, Schedule) {
        let k = KernelBuilder::new("k")
            .array("a", &[8], ArrayKind::Input)
            .array("y", &[8], ArrayKind::Output)
            .loop_("i", 8, |b| {
                b.assign(
                    ("y", vec![aff("i")]),
                    Expr::load("a", vec![aff("i")]) * Expr::Const(3.0),
                );
            })
            .build()
            .unwrap();
        let d = Directives::new();
        let f = lower(&k, &d).unwrap();
        let s = schedule(&f, &FuLibrary::default(), &d);
        (f, s)
    }

    #[test]
    fn covers_every_op_exactly_once() {
        let (f, s) = setup();
        let fsmd = build_fsmd(&f, &s);
        let listed: usize = fsmd.states.iter().map(|st| st.active.len()).sum();
        assert_eq!(listed, f.len());
    }

    #[test]
    fn states_ordered_by_block_then_cycle() {
        let (f, s) = setup();
        let fsmd = build_fsmd(&f, &s);
        let mut prev = (0usize, 0u32);
        for st in &fsmd.states {
            assert!((st.block, st.cycle) >= prev);
            prev = (st.block, st.cycle);
        }
        assert!(fsmd.num_states() >= 2);
        assert!(fsmd.mean_occupancy() > 0.0);
    }
}
