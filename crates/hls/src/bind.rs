//! Functional-unit binding with cross-state resource sharing.
//!
//! After scheduling, operations of the same FU kind whose initiations never
//! coincide are bound to the same hardware instance — both within a block
//! (across FSM states) and across blocks (blocks execute sequentially, so
//! rank-r instances are shared globally). The resulting sharing sets are
//! exactly what the paper's datapath-merging pass consumes: "we merge the
//! DFG nodes utilizing the same set of hardware resources" (§III-A).

use crate::resources::{FuKind, FuLibrary};
use crate::schedule::Schedule;
use pg_ir::{IrFunction, ValueId};
use std::collections::{BTreeMap, HashMap};

/// One physical functional-unit instance and the ops time-sharing it.
#[derive(Debug, Clone, PartialEq)]
pub struct FuInstance {
    /// FU kind.
    pub kind: FuKind,
    /// Global index within this kind (or within this memory bank).
    pub index: usize,
    /// Ops bound to the instance, in schedule order.
    pub ops: Vec<ValueId>,
    /// For [`FuKind::MemPort`]: the `(array, bank)` the port belongs to.
    pub mem: Option<(String, usize)>,
}

/// Binding of every shareable op to a hardware instance.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Binding {
    /// All instances.
    pub instances: Vec<FuInstance>,
    /// Map op → index into [`Binding::instances`]. Ordered so that every
    /// consumer (encoding, digests) iterates in `ValueId` order for free.
    pub op_to_instance: BTreeMap<ValueId, usize>,
    /// Total 32-bit multiplexer inputs introduced by sharing.
    pub mux_inputs: u32,
    /// Total register bits (output + pipeline staging estimate).
    pub reg_bits: u64,
}

impl Binding {
    /// Number of instances of `kind`.
    pub fn count_of(&self, kind: FuKind) -> usize {
        self.instances.iter().filter(|i| i.kind == kind).count()
    }

    /// Ops sharing the same instance as `v` (including `v`), empty if the op
    /// is unbound (wire/control).
    pub fn sharing_set(&self, v: ValueId) -> &[ValueId] {
        match self.op_to_instance.get(&v) {
            Some(&i) => &self.instances[i].ops,
            None => &[],
        }
    }
}

/// Binds all shareable ops of `func` given its schedule.
pub fn bind(func: &IrFunction, sched: &Schedule, lib: &FuLibrary) -> Binding {
    // Memory keys are interned `(array id, bank)` pairs so the per-op
    // grouping maps hash integers instead of cloning array names; the
    // id → name table materializes the display name once per instance.
    let mut array_ids: HashMap<&str, u32> = HashMap::new();
    let mut array_names: Vec<&str> = Vec::new();
    for op in &func.ops {
        if let Some(m) = &op.mem {
            array_ids.entry(m.array.as_str()).or_insert_with(|| {
                array_names.push(m.array.as_str());
                (array_names.len() - 1) as u32
            });
        }
    }
    // key -> (slot -> rank counter) is rebuilt per block; the map below
    // tracks global instances: (kind-or-memkey, rank) -> instance index.
    let mut instance_index: HashMap<(FuKind, Option<(u32, usize)>, usize), usize> = HashMap::new();
    let mut binding = Binding::default();

    for (bi, block) in func.blocks.iter().enumerate() {
        let bs = &sched.blocks[bi];
        let pipelined = block.pipelined;
        // (kind, memkey, slot) -> rank counter within this block
        let mut slot_rank: HashMap<(FuKind, Option<(u32, usize)>, u32), usize> = HashMap::new();
        // deterministic order: by start cycle, then program order
        let mut order: Vec<usize> = (0..block.ops.len()).collect();
        order.sort_by_key(|&i| (bs.start[i], i));
        for i in order {
            let vid = block.ops[i];
            let op = func.op(vid);
            let kind = lib.kind_of(op.opcode);
            if !kind.is_shareable() {
                continue;
            }
            let memkey = if kind == FuKind::MemPort {
                let m = op.mem.as_ref().expect("mem op has memref");
                Some((array_ids[m.array.as_str()], m.bank.unwrap_or(0)))
            } else {
                None
            };
            let slot = if pipelined && bs.ii > 0 {
                bs.start[i] % bs.ii
            } else {
                bs.start[i]
            };
            let rank_key = (kind, memkey, slot);
            let rank = {
                let r = slot_rank.entry(rank_key).or_insert(0);
                let cur = *r;
                *r += 1;
                cur
            };
            let global_key = (kind, memkey, rank);
            let inst = *instance_index.entry(global_key).or_insert_with(|| {
                binding.instances.push(FuInstance {
                    kind,
                    index: rank,
                    ops: Vec::new(),
                    mem: memkey.map(|(aid, bank)| (array_names[aid as usize].to_string(), bank)),
                });
                binding.instances.len() - 1
            });
            binding.instances[inst].ops.push(vid);
            binding.op_to_instance.insert(vid, inst);
        }
    }

    // Mux inputs: each instance with k>1 bound ops muxes its two operand
    // ports (and the write port for memory).
    for inst in &binding.instances {
        let k = inst.ops.len() as u32;
        if k > 1 {
            binding.mux_inputs += 2 * (k - 1);
        }
    }

    // Register estimate: one output register per producing op, plus one
    // staging register per def-use edge that crosses a cycle boundary.
    let mut reg_bits: u64 = 0;
    for op in &func.ops {
        if op.bits > 0 && lib.latency(op.opcode) > 0 {
            reg_bits += op.bits as u64;
        }
    }
    for op in &func.ops {
        for u in op.value_operands() {
            let def = func.op(u);
            if def.block == op.block {
                let s_use = sched.op_start(func, op.id);
                let s_def = sched.op_start(func, u) + lib.latency(def.opcode);
                if s_use > s_def {
                    reg_bits += def.bits.min(32) as u64;
                }
            }
        }
    }
    binding.reg_bits = reg_bits;
    binding
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directives::Directives;
    use crate::lower::lower;
    use crate::schedule::schedule;
    use pg_ir::expr::aff;
    use pg_ir::{ArrayKind, Expr, Kernel, KernelBuilder, Opcode};

    fn two_adds() -> Kernel {
        // chained fadds: the second depends on the first through memory,
        // so they start in different FSM states and can share one FU
        KernelBuilder::new("twoadd")
            .array("a", &[8], ArrayKind::Input)
            .array("b", &[8], ArrayKind::Input)
            .array("y", &[8], ArrayKind::Output)
            .array("z", &[8], ArrayKind::Output)
            .loop_("i", 8, |bb| {
                bb.assign(
                    ("y", vec![aff("i")]),
                    Expr::load("a", vec![aff("i")]) + Expr::Const(1.0),
                );
                bb.assign(
                    ("z", vec![aff("i")]),
                    Expr::load("y", vec![aff("i")]) + Expr::load("b", vec![aff("i")]),
                );
            })
            .build()
            .unwrap()
    }

    fn run(kernel: &Kernel, d: &Directives) -> (pg_ir::IrFunction, Schedule, Binding) {
        let lib = FuLibrary::default();
        let f = lower(kernel, d).unwrap();
        let s = schedule(&f, &lib, d);
        let b = bind(&f, &s, &lib);
        (f, s, b)
    }

    #[test]
    fn every_shareable_op_is_bound() {
        let lib = FuLibrary::default();
        let d = Directives::new();
        let (f, _s, b) = run(&two_adds(), &d);
        for op in &f.ops {
            let kind = lib.kind_of(op.opcode);
            if kind.is_shareable() {
                assert!(b.op_to_instance.contains_key(&op.id), "{} unbound", op.id);
            } else {
                assert!(!b.op_to_instance.contains_key(&op.id));
            }
        }
    }

    #[test]
    fn sequential_adds_share_one_fu() {
        // non-pipelined: loads of a and b collide on different arrays'
        // ports, fadds start at different cycles and can share
        let d = Directives::new();
        let (f, s, b) = run(&two_adds(), &d);
        let fadds: Vec<ValueId> = f
            .ops
            .iter()
            .filter(|o| o.opcode == Opcode::FAdd)
            .map(|o| o.id)
            .collect();
        assert_eq!(fadds.len(), 2);
        let starts: Vec<u32> = fadds.iter().map(|&v| s.op_start(&f, v)).collect();
        if starts[0] != starts[1] {
            assert_eq!(
                b.op_to_instance[&fadds[0]], b.op_to_instance[&fadds[1]],
                "fadds at different cycles should share"
            );
            assert_eq!(b.count_of(FuKind::FAddSub), 1);
        }
    }

    #[test]
    fn conflicting_ops_get_distinct_instances() {
        let (f, s, b) = {
            let mut d = Directives::new();
            d.pipeline("i")
                .unroll("i", 2)
                .partition("a", 2)
                .partition("b", 2)
                .partition("y", 2)
                .partition("z", 2);
            run(&two_adds(), &d)
        };
        // with II=1 all 4 fadds initiate every cycle: 4 instances
        let ii = s.blocks.last().unwrap().ii;
        if ii == 1 {
            assert_eq!(b.count_of(FuKind::FAddSub), 4);
        }
        // no instance holds two ops with the same modulo slot
        for inst in &b.instances {
            let mut slots = std::collections::HashSet::new();
            for &v in &inst.ops {
                let op = f.op(v);
                let bs = &s.blocks[op.block];
                let slot = if f.blocks[op.block].pipelined {
                    (s.op_start(&f, v) % bs.ii, op.block)
                } else {
                    (s.op_start(&f, v), op.block)
                };
                assert!(slots.insert(slot), "double-booked instance");
            }
        }
    }

    #[test]
    fn mem_ports_are_per_bank() {
        let mut d = Directives::new();
        d.partition("a", 2);
        let (_f, _s, b) = run(&two_adds(), &d);
        let a_ports: Vec<&FuInstance> = b
            .instances
            .iter()
            .filter(|i| i.kind == FuKind::MemPort && i.mem.as_ref().is_some_and(|m| m.0 == "a"))
            .collect();
        // bank info recorded
        assert!(a_ports.iter().all(|i| i.mem.as_ref().unwrap().1 < 2));
    }

    #[test]
    fn sharing_set_roundtrip() {
        let d = Directives::new();
        let (f, _s, b) = run(&two_adds(), &d);
        for op in &f.ops {
            if let Some(&i) = b.op_to_instance.get(&op.id) {
                assert!(b.instances[i].ops.contains(&op.id));
                assert!(b.sharing_set(op.id).contains(&op.id));
            }
        }
        // unbound op returns empty set
        let wire = f
            .ops
            .iter()
            .find(|o| o.opcode == Opcode::GetElementPtr)
            .unwrap();
        assert!(b.sharing_set(wire.id).is_empty());
    }

    #[test]
    fn registers_and_muxes_accounted() {
        let d = Directives::new();
        let (_f, _s, b) = run(&two_adds(), &d);
        assert!(b.reg_bits > 0);
        // sharing occurs somewhere in a sequential schedule
        assert!(b.instances.iter().any(|i| i.ops.len() > 1));
        assert!(b.mux_inputs > 0);
    }
}
