//! HLS front end: lowering kernels to SSA IR with directives applied.
//!
//! Mirrors what Vivado HLS front-end compilation produces (Fig. 1 "IR"):
//! loop unrolling is performed here (unrolled lanes become distinct static
//! ops whose affine subscripts carry the lane offset), address arithmetic is
//! materialized as integer `mul`/`add` chains followed by `sext` casts and
//! `getelementptr`, internal arrays get `alloca`s, and every loop dimension
//! contributes `phi`/`add`/`icmp`/`br` control ops. The cast/control noise is
//! deliberate: the paper's graph-trimming pass exists to remove it.

use crate::directives::Directives;
use crate::flow::{HlsError, PreparedKernel};
use pg_ir::expr::{AffineExpr, ArrayRef, Expr};
use pg_ir::{ArrayKind, BinOp, Block, Kernel, Loop, Opcode};
use pg_ir::{IrFunction, LoopDim, MemRef, Operand, ValueId};
use std::collections::HashMap;

/// Lowers `kernel` with `directives` into an SSA [`IrFunction`].
///
/// # Errors
///
/// Returns [`HlsError`] when a directive references an unknown loop/array,
/// when pipeline/unroll targets a non-innermost loop (the only placement
/// the design spaces use, mirroring the paper's setup), or when the kernel
/// fails structural validation.
pub fn lower(kernel: &Kernel, directives: &Directives) -> Result<IrFunction, HlsError> {
    lower_prepared(&PreparedKernel::new(kernel)?, directives)
}

/// [`lower`] against a shared [`PreparedKernel`], skipping the repeated
/// directive-independent kernel analysis.
///
/// # Errors
///
/// Returns [`HlsError`] when a directive references an unknown loop/array
/// or pipeline/unroll targets a non-innermost loop.
pub fn lower_prepared(
    prepared: &PreparedKernel<'_>,
    directives: &Directives,
) -> Result<IrFunction, HlsError> {
    validate_directives(prepared, directives)?;
    let kernel = prepared.kernel;
    let mut lw = Lowerer {
        kernel,
        directives,
        func: IrFunction::new(&format!("{}_{}", kernel.name, directives.id())),
    };
    lw.emit_allocas();
    lw.lower_blocks(&kernel.body, &mut Vec::new())?;
    debug_assert_eq!(lw.func.validate(), Ok(()));
    Ok(lw.func)
}

fn validate_directives(prepared: &PreparedKernel<'_>, d: &Directives) -> Result<(), HlsError> {
    let analysis = prepared.analysis();
    let labels = analysis.labels();
    let innermost = analysis.innermost();
    for l in d.pipelined_loops() {
        if !labels.iter().any(|x| x == l) {
            return Err(HlsError::UnknownLoop(l.to_string()));
        }
        if !innermost.iter().any(|x| x == l) {
            return Err(HlsError::NotInnermost(l.to_string()));
        }
    }
    for (l, _) in d.unrolled_loops() {
        if !labels.iter().any(|x| x == l) {
            return Err(HlsError::UnknownLoop(l.to_string()));
        }
        if !innermost.iter().any(|x| x == l) {
            return Err(HlsError::NotInnermost(l.to_string()));
        }
    }
    for (a, _) in d.partitioned_arrays() {
        if prepared.kernel.array(a).is_none() {
            return Err(HlsError::UnknownArray(a.to_string()));
        }
    }
    Ok(())
}

/// Largest divisor of `trip` that is ≤ `factor` (Vivado pads remainder
/// iterations; we clamp to an exact divisor instead and document it).
pub fn clamp_unroll(trip: usize, factor: usize) -> usize {
    let f = factor.min(trip).max(1);
    (1..=f).rev().find(|&k| trip.is_multiple_of(k)).unwrap_or(1)
}

struct Lowerer<'a> {
    kernel: &'a Kernel,
    directives: &'a Directives,
    func: IrFunction,
}

/// Per-block lowering caches (common-subexpression elimination for address
/// arithmetic, as a real compiler front end would do).
#[derive(Default)]
struct BlockCtx {
    block: usize,
    /// affine index expression -> operand producing its value
    index_cache: HashMap<AffineExpr, Operand>,
    /// (array, substituted subscripts) -> gep value
    gep_cache: HashMap<(String, Vec<AffineExpr>), ValueId>,
    /// induction variable -> its phi op (index arithmetic consumes the phi
    /// value, keeping the dataflow graph connected as in real LLVM IR)
    phi_of: HashMap<String, ValueId>,
}

impl BlockCtx {
    /// Operand reading induction variable `v`: the phi value when the block
    /// defines one, a raw `IVar` otherwise.
    fn ivar(&self, v: &str) -> Operand {
        match self.phi_of.get(v) {
            Some(&p) => Operand::Value(p),
            None => Operand::IVar(v.to_string()),
        }
    }
}

impl<'a> Lowerer<'a> {
    fn emit_allocas(&mut self) {
        let temps: Vec<_> = self
            .kernel
            .arrays
            .iter()
            .filter(|a| a.kind == ArrayKind::Temp)
            .cloned()
            .collect();
        if temps.is_empty() {
            return;
        }
        let b = self
            .func
            .push_block(&format!("{}.entry", self.kernel.name), vec![], false, 1);
        for a in temps {
            let mem = MemRef {
                array: a.name.clone(),
                indices: vec![],
                linear: AffineExpr::constant(0),
                bank: None,
            };
            self.func
                .push_op(b, Opcode::Alloca, vec![], 32, Some(mem), 0);
        }
    }

    fn lower_blocks(&mut self, blocks: &[Block], ctx: &mut Vec<LoopDim>) -> Result<(), HlsError> {
        // Group consecutive statements into straight-line regions.
        let mut stmt_run: Vec<&pg_ir::Stmt> = Vec::new();
        for b in blocks {
            match b {
                Block::Stmt(s) => stmt_run.push(s),
                Block::Loop(l) => {
                    if !stmt_run.is_empty() {
                        self.emit_stmt_block(&stmt_run, ctx, None)?;
                        stmt_run.clear();
                    }
                    self.lower_loop(l, ctx)?;
                }
            }
        }
        if !stmt_run.is_empty() {
            self.emit_stmt_block(&stmt_run, ctx, None)?;
        }
        Ok(())
    }

    fn lower_loop(&mut self, l: &Loop, ctx: &mut Vec<LoopDim>) -> Result<(), HlsError> {
        let innermost = l.body.iter().all(|c| matches!(c, Block::Stmt(_)));
        if innermost {
            let stmts: Vec<&pg_ir::Stmt> = l
                .body
                .iter()
                .map(|c| match c {
                    Block::Stmt(s) => s,
                    Block::Loop(_) => unreachable!("innermost checked above"),
                })
                .collect();
            self.emit_stmt_block(&stmts, ctx, Some(l))?;
        } else {
            ctx.push(LoopDim {
                var: l.var.clone(),
                trip: l.trip,
                source_label: l.var.clone(),
            });
            self.lower_blocks(&l.body, ctx)?;
            ctx.pop();
        }
        Ok(())
    }

    /// Emits one IR block for a run of statements. `inner` is the innermost
    /// loop owning the statements (None for statements between loops).
    fn emit_stmt_block(
        &mut self,
        stmts: &[&pg_ir::Stmt],
        ctx: &[LoopDim],
        inner: Option<&Loop>,
    ) -> Result<(), HlsError> {
        let mut dims = ctx.to_vec();
        let (unroll, pipelined, inner_var) = match inner {
            Some(l) => {
                let u = clamp_unroll(l.trip, self.directives.unroll_factor(&l.var));
                dims.push(LoopDim {
                    var: l.var.clone(),
                    trip: l.trip / u,
                    source_label: l.var.clone(),
                });
                (u, self.directives.is_pipelined(&l.var), Some(l.var.clone()))
            }
            None => (1, false, None),
        };
        let label = format!(
            "{}.{}",
            self.kernel.name,
            dims.iter()
                .map(|d| d.var.as_str())
                .collect::<Vec<_>>()
                .join(".")
        );
        let block = self
            .func
            .push_block(&label, dims.clone(), pipelined, unroll);
        let mut bc = BlockCtx {
            block,
            ..BlockCtx::default()
        };

        // Loop-control scaffolding: one phi per dimension up front; index
        // arithmetic and counter updates consume the phi value.
        for d in &dims {
            let phi = self.func.push_op(
                block,
                Opcode::Phi,
                vec![Operand::ConstI(0), Operand::IVar(d.var.clone())],
                32,
                None,
                0,
            );
            bc.phi_of.insert(d.var.clone(), phi);
        }

        for lane in 0..unroll {
            for stmt in stmts {
                self.lower_stmt(&mut bc, stmt, inner_var.as_deref(), unroll, lane)?;
            }
        }

        // Counter increment / exit test / branch per dimension, then br.
        let mut last_cmp = None;
        for d in &dims {
            let inc = self.func.push_op(
                block,
                Opcode::Add,
                vec![bc.ivar(&d.var), Operand::ConstI(1)],
                32,
                None,
                0,
            );
            let cmp = self.func.push_op(
                block,
                Opcode::ICmp,
                vec![Operand::Value(inc), Operand::ConstI(d.trip as i64)],
                1,
                None,
                0,
            );
            last_cmp = Some(cmp);
        }
        let br_operands = match last_cmp {
            Some(c) => vec![Operand::Value(c)],
            None => vec![],
        };
        self.func
            .push_op(block, Opcode::Br, br_operands, 0, None, 0);
        Ok(())
    }

    fn lower_stmt(
        &mut self,
        bc: &mut BlockCtx,
        stmt: &pg_ir::Stmt,
        inner_var: Option<&str>,
        unroll: usize,
        lane: usize,
    ) -> Result<(), HlsError> {
        let value = self.lower_expr(bc, &stmt.expr, inner_var, unroll, lane)?;
        let target = self.subst_ref(&stmt.target, inner_var, unroll, lane);
        let gep = self.lower_gep(bc, &target)?;
        self.func.push_op(
            bc.block,
            Opcode::Store,
            vec![value, Operand::Value(gep)],
            0,
            Some(self.memref(&target)),
            lane,
        );
        Ok(())
    }

    fn lower_expr(
        &mut self,
        bc: &mut BlockCtx,
        expr: &Expr,
        inner_var: Option<&str>,
        unroll: usize,
        lane: usize,
    ) -> Result<Operand, HlsError> {
        match expr {
            Expr::Const(c) => Ok(Operand::ConstF(*c)),
            Expr::Scalar(s) => Ok(Operand::Scalar(s.clone())),
            Expr::IVar(v) => Ok(bc.ivar(v)),
            Expr::Load(r) => {
                let r = self.subst_ref(r, inner_var, unroll, lane);
                let gep = self.lower_gep(bc, &r)?;
                let load = self.func.push_op(
                    bc.block,
                    Opcode::Load,
                    vec![Operand::Value(gep)],
                    32,
                    Some(self.memref(&r)),
                    lane,
                );
                Ok(Operand::Value(load))
            }
            Expr::Bin(op, l, rhs) => {
                let lv = self.lower_expr(bc, l, inner_var, unroll, lane)?;
                let rv = self.lower_expr(bc, rhs, inner_var, unroll, lane)?;
                let opcode = match op {
                    BinOp::Add => Opcode::FAdd,
                    BinOp::Sub => Opcode::FSub,
                    BinOp::Mul => Opcode::FMul,
                    BinOp::Div => Opcode::FDiv,
                };
                let v = self
                    .func
                    .push_op(bc.block, opcode, vec![lv, rv], 32, None, lane);
                Ok(Operand::Value(v))
            }
        }
    }

    /// Applies the unroll substitution `inner := unroll*inner + lane` to all
    /// subscripts of a reference.
    fn subst_ref(
        &self,
        r: &ArrayRef,
        inner_var: Option<&str>,
        unroll: usize,
        lane: usize,
    ) -> ArrayRef {
        if unroll <= 1 || inner_var.is_none() {
            return r.clone();
        }
        let v = inner_var.expect("checked above");
        ArrayRef {
            array: r.array.clone(),
            indices: r
                .indices
                .iter()
                .map(|e| e.substitute(v, unroll as i64, lane as i64))
                .collect(),
        }
    }

    fn memref(&self, r: &ArrayRef) -> MemRef {
        let decl = self
            .kernel
            .array(&r.array)
            .expect("validated before lowering");
        // Row-major flattening.
        let mut linear = AffineExpr::constant(0);
        let mut stride = 1i64;
        for (idx, &dim) in r.indices.iter().zip(&decl.dims).rev() {
            linear = linear.add(&idx.clone().scaled(stride));
            stride *= dim as i64;
        }
        let p = self.directives.partition_factor(&r.array);
        let bank = bank_of(&linear, p);
        MemRef {
            array: r.array.clone(),
            indices: r.indices.clone(),
            linear,
            bank,
        }
    }

    /// Lowers the address computation for `r`: per-dimension integer index
    /// arithmetic, `sext` casts and a (CSE-cached) `getelementptr`.
    fn lower_gep(&mut self, bc: &mut BlockCtx, r: &ArrayRef) -> Result<ValueId, HlsError> {
        let key = (r.array.clone(), r.indices.clone());
        if let Some(&g) = bc.gep_cache.get(&key) {
            return Ok(g);
        }
        let mut idx_operands = Vec::new();
        for idx in &r.indices {
            let val = self.lower_affine(bc, idx);
            // LLVM front ends sign-extend i32 indices to i64 for gep.
            let extended = match val {
                Operand::ConstI(_) => val,
                other => {
                    let key = sext_key(idx);
                    if let Some(op) = bc.index_cache.get(&key) {
                        op.clone()
                    } else {
                        let s = self
                            .func
                            .push_op(bc.block, Opcode::SExt, vec![other], 64, None, 0);
                        bc.index_cache.insert(key, Operand::Value(s));
                        Operand::Value(s)
                    }
                }
            };
            idx_operands.push(extended);
        }
        let gep = self.func.push_op(
            bc.block,
            Opcode::GetElementPtr,
            idx_operands,
            64,
            Some(self.memref(r)),
            0,
        );
        bc.gep_cache.insert(key, gep);
        Ok(gep)
    }

    /// Lowers an affine expression to integer ops, with CSE.
    fn lower_affine(&mut self, bc: &mut BlockCtx, e: &AffineExpr) -> Operand {
        if let Some(op) = bc.index_cache.get(e) {
            return op.clone();
        }
        let result = if e.is_constant() {
            Operand::ConstI(e.offset)
        } else if e.terms.len() == 1 && e.terms[0].1 == 1 && e.offset == 0 {
            bc.ivar(&e.terms[0].0)
        } else {
            let mut acc: Option<Operand> = None;
            for (v, c) in &e.terms {
                let term = if *c == 1 {
                    bc.ivar(v)
                } else {
                    let single = AffineExpr {
                        terms: vec![(v.clone(), *c)],
                        offset: 0,
                    };
                    if let Some(op) = bc.index_cache.get(&single) {
                        op.clone()
                    } else {
                        let m = self.func.push_op(
                            bc.block,
                            Opcode::Mul,
                            vec![bc.ivar(v), Operand::ConstI(*c)],
                            32,
                            None,
                            0,
                        );
                        bc.index_cache.insert(single, Operand::Value(m));
                        Operand::Value(m)
                    }
                };
                acc = Some(match acc {
                    None => term,
                    Some(prev) => {
                        let a =
                            self.func
                                .push_op(bc.block, Opcode::Add, vec![prev, term], 32, None, 0);
                        Operand::Value(a)
                    }
                });
            }
            let mut out = acc.expect("non-constant affine has at least one term");
            if e.offset != 0 {
                let a = self.func.push_op(
                    bc.block,
                    Opcode::Add,
                    vec![out, Operand::ConstI(e.offset)],
                    32,
                    None,
                    0,
                );
                out = Operand::Value(a);
            }
            out
        };
        bc.index_cache.insert(e.clone(), result.clone());
        result
    }
}

/// Cache key for the sext of an index expression (distinct from the raw
/// value's key).
fn sext_key(e: &AffineExpr) -> AffineExpr {
    // Tag by shifting into an otherwise-unused huge offset space.
    e.clone().plus(1 << 40)
}

/// Statically resolves the cyclic-partition bank of a flattened affine
/// address, when every variable stride is a multiple of the factor.
pub fn bank_of(linear: &AffineExpr, partitions: usize) -> Option<usize> {
    if partitions <= 1 {
        return Some(0);
    }
    let p = partitions as i64;
    if linear.terms.iter().all(|(_, c)| c % p == 0) {
        Some(linear.offset.rem_euclid(p) as usize)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_ir::expr::aff;
    use pg_ir::KernelBuilder;

    fn axpy() -> Kernel {
        KernelBuilder::new("axpy")
            .array("a", &[16], ArrayKind::Input)
            .array("x", &[16], ArrayKind::Input)
            .array("y", &[16], ArrayKind::Output)
            .loop_("i", 16, |b| {
                b.assign(
                    ("y", vec![aff("i")]),
                    Expr::load("y", vec![aff("i")])
                        + Expr::load("a", vec![aff("i")]) * Expr::load("x", vec![aff("i")]),
                );
            })
            .build()
            .unwrap()
    }

    fn mm() -> Kernel {
        KernelBuilder::new("mm")
            .array("a", &[8, 8], ArrayKind::Input)
            .array("b", &[8, 8], ArrayKind::Input)
            .array("c", &[8, 8], ArrayKind::Output)
            .loop_("i", 8, |bb| {
                bb.loop_("j", 8, |bb| {
                    bb.loop_("k", 8, |bb| {
                        bb.assign(
                            ("c", vec![aff("i"), aff("j")]),
                            Expr::load("c", vec![aff("i"), aff("j")])
                                + Expr::load("a", vec![aff("i"), aff("k")])
                                    * Expr::load("b", vec![aff("k"), aff("j")]),
                        );
                    });
                });
            })
            .build()
            .unwrap()
    }

    #[test]
    fn lowers_baseline_axpy() {
        let f = lower(&axpy(), &Directives::new()).unwrap();
        assert!(f.validate().is_ok());
        let h = f.opcode_counts();
        assert_eq!(h[&Opcode::Load], 3);
        assert_eq!(h[&Opcode::Store], 1);
        assert_eq!(h[&Opcode::FMul], 1);
        assert_eq!(h[&Opcode::FAdd], 1);
        // y gep CSEd between load and store
        assert_eq!(h[&Opcode::GetElementPtr], 3);
        assert_eq!(h[&Opcode::Phi], 1);
        assert_eq!(h[&Opcode::Br], 1);
    }

    #[test]
    fn unroll_replicates_datapath() {
        let mut d = Directives::new();
        d.unroll("i", 4);
        let f = lower(&axpy(), &d).unwrap();
        let h = f.opcode_counts();
        assert_eq!(h[&Opcode::FMul], 4);
        assert_eq!(h[&Opcode::Load], 12);
        assert_eq!(f.blocks[0].dims[0].trip, 4);
        assert_eq!(f.blocks[0].unroll, 4);
    }

    #[test]
    fn unroll_clamps_to_divisor() {
        assert_eq!(clamp_unroll(16, 8), 8);
        assert_eq!(clamp_unroll(12, 8), 6);
        assert_eq!(clamp_unroll(7, 3), 1);
        assert_eq!(clamp_unroll(7, 7), 7);
    }

    #[test]
    fn mm_has_three_dims_one_block() {
        let f = lower(&mm(), &Directives::new()).unwrap();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].dims.len(), 3);
        assert_eq!(f.blocks[0].trip_product(), 512);
        // three phis + three inc/cmp pairs
        let h = f.opcode_counts();
        assert_eq!(h[&Opcode::Phi], 3);
        assert_eq!(h[&Opcode::ICmp], 3);
    }

    #[test]
    fn mm_gep_linearizes_row_major() {
        let f = lower(&mm(), &Directives::new()).unwrap();
        let gep = f
            .ops
            .iter()
            .find(|o| o.opcode == Opcode::GetElementPtr && o.mem.as_ref().unwrap().array == "a")
            .unwrap();
        let linear = &gep.mem.as_ref().unwrap().linear;
        // a[i][k] row-major with dim 8 -> 8*i + k
        let env: std::collections::BTreeMap<String, i64> =
            [("i".to_string(), 2), ("k".to_string(), 3)]
                .into_iter()
                .collect();
        assert_eq!(linear.eval(&env), 19);
    }

    #[test]
    fn partition_banks_resolved_for_unrolled_access() {
        // unroll 2, partition 2: lane accesses alternate banks statically
        let mut d = Directives::new();
        d.unroll("i", 2).partition("a", 2);
        let f = lower(&axpy(), &d).unwrap();
        let banks: Vec<Option<usize>> = f
            .ops
            .iter()
            .filter(|o| o.opcode == Opcode::Load && o.mem.as_ref().unwrap().array == "a")
            .map(|o| o.mem.as_ref().unwrap().bank)
            .collect();
        assert_eq!(banks, vec![Some(0), Some(1)]);
    }

    #[test]
    fn unpartitioned_access_is_bank_zero() {
        let f = lower(&axpy(), &Directives::new()).unwrap();
        for o in &f.ops {
            if let Some(m) = &o.mem {
                if o.opcode != Opcode::Alloca {
                    assert_eq!(m.bank, Some(0));
                }
            }
        }
    }

    #[test]
    fn dynamic_bank_when_not_divisible() {
        assert_eq!(bank_of(&aff("i"), 2), None);
        assert_eq!(bank_of(&aff("i").scaled(4), 2), Some(0));
        assert_eq!(bank_of(&aff("i").scaled(4).plus(3), 2), Some(1));
    }

    #[test]
    fn temp_arrays_get_allocas() {
        let k = KernelBuilder::new("t")
            .array("tmp", &[8], ArrayKind::Temp)
            .array("y", &[8], ArrayKind::Output)
            .loop_("i", 8, |b| {
                b.assign(("tmp", vec![aff("i")]), Expr::Const(0.0));
                b.assign(("y", vec![aff("i")]), Expr::load("tmp", vec![aff("i")]));
            })
            .build()
            .unwrap();
        let f = lower(&k, &Directives::new()).unwrap();
        assert_eq!(f.opcode_counts()[&Opcode::Alloca], 1);
        assert_eq!(f.blocks[0].label, "t.entry");
    }

    #[test]
    fn rejects_unknown_loop_directive() {
        let mut d = Directives::new();
        d.pipeline("zz");
        assert!(matches!(lower(&axpy(), &d), Err(HlsError::UnknownLoop(_))));
    }

    #[test]
    fn rejects_non_innermost_pipeline() {
        let mut d = Directives::new();
        d.pipeline("i");
        assert!(matches!(lower(&mm(), &d), Err(HlsError::NotInnermost(_))));
    }

    #[test]
    fn rejects_unknown_array_partition() {
        let mut d = Directives::new();
        d.partition("zz", 2);
        assert!(matches!(lower(&axpy(), &d), Err(HlsError::UnknownArray(_))));
    }

    #[test]
    fn sext_emitted_for_variable_indices() {
        let f = lower(&axpy(), &Directives::new()).unwrap();
        assert!(f.opcode_counts()[&Opcode::SExt] >= 1);
    }

    #[test]
    fn stmts_between_loops_get_own_block() {
        let k = KernelBuilder::new("t2")
            .array("tmp", &[8], ArrayKind::Temp)
            .array("a", &[8, 8], ArrayKind::Input)
            .array("y", &[8], ArrayKind::Output)
            .loop_("i", 8, |b| {
                b.assign(("tmp", vec![aff("i")]), Expr::Const(0.0));
                b.loop_("j", 8, |b| {
                    b.assign(
                        ("tmp", vec![aff("i")]),
                        Expr::load("tmp", vec![aff("i")])
                            + Expr::load("a", vec![aff("i"), aff("j")]),
                    );
                });
                b.assign(("y", vec![aff("i")]), Expr::load("tmp", vec![aff("i")]));
            })
            .build()
            .unwrap();
        let f = lower(&k, &Directives::new()).unwrap();
        // entry (alloca), init stmt block, inner loop block, tail stmt block
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.blocks[1].dims.len(), 1);
        assert_eq!(f.blocks[2].dims.len(), 2);
    }
}
