//! Batched, multi-core inference serving for trained ensembles.
//!
//! PowerGear's DSE loop (§IV-C) calls the power model once per candidate
//! design point; [`Ensemble::predict`] assembles one batch and walks every
//! member sequentially. [`InferenceEngine`] is the throughput layer on top:
//! it groups the input graphs into [`crate::GraphBatch`]es of a
//! configurable size,
//! shards the batches across worker threads with `std::thread::scope`
//! (mirroring the data-parallel training loop in `train`), and returns the
//! predictions in input order.
//!
//! Every per-graph computation in the forward pass — row-wise matmuls,
//! per-destination scatter adds over a graph's own contiguous nodes and
//! edges, element-wise activations — is independent of which other graphs
//! share the batch, so the engine's output is **bit-identical** to the
//! sequential path for any batch size and thread count (enforced by the
//! workspace's parity property test).
//!
//! # Examples
//!
//! ```no_run
//! use pg_gnn::{InferenceEngine, ServeConfig};
//! # let ensemble = pg_gnn::Ensemble::default();
//! # let graphs: Vec<&pg_graphcon::PowerGraph> = vec![];
//! let engine = InferenceEngine::with_config(&ensemble, ServeConfig::new(16, 4));
//! let watts = engine.predict(&graphs);
//! ```

use crate::train::Ensemble;
use pg_graphcon::PowerGraph;
// pg-lint: allow(wall_clock, reason = "import only; the single use site is the telemetry timer annotated below")
use std::time::Instant;

/// Batching/parallelism knobs for [`InferenceEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Graphs grouped into one [`crate::GraphBatch`] (tensor-op
    /// granularity).
    pub batch_size: usize,
    /// Worker threads batches are sharded across (1 = sequential).
    pub threads: usize,
}

impl ServeConfig {
    /// A configuration with explicit batch size and thread count.
    ///
    /// # Panics
    ///
    /// Panics if either knob is zero.
    pub fn new(batch_size: usize, threads: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(threads > 0, "thread count must be positive");
        ServeConfig {
            batch_size,
            threads,
        }
    }

    /// Single-threaded serving at the given batch size (the reference
    /// configuration the parity tests compare against).
    pub fn sequential(batch_size: usize) -> Self {
        ServeConfig::new(batch_size, 1)
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_size: 32,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Counters from one [`InferenceEngine::predict_with_stats`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeStats {
    /// Graphs served.
    pub graphs: usize,
    /// Batches formed.
    pub batches: usize,
    /// Worker threads actually spawned (capped by the batch count).
    pub threads_used: usize,
    /// Wall-clock seconds spent serving.
    pub seconds: f64,
}

impl ServeStats {
    /// Serving throughput in graphs per second.
    pub fn graphs_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.graphs as f64 / self.seconds
        } else {
            f64::INFINITY
        }
    }
}

/// A batched, multi-core serving frontend over a trained [`Ensemble`].
#[derive(Debug, Clone)]
pub struct InferenceEngine<'a> {
    ensemble: &'a Ensemble,
    /// Batching/parallelism configuration.
    pub config: ServeConfig,
}

impl<'a> InferenceEngine<'a> {
    /// Wraps `ensemble` with the default configuration (batch 32, one
    /// thread per available core).
    pub fn new(ensemble: &'a Ensemble) -> Self {
        InferenceEngine {
            ensemble,
            config: ServeConfig::default(),
        }
    }

    /// Wraps `ensemble` with an explicit configuration.
    pub fn with_config(ensemble: &'a Ensemble, config: ServeConfig) -> Self {
        InferenceEngine { ensemble, config }
    }

    /// The served ensemble.
    pub fn ensemble(&self) -> &Ensemble {
        self.ensemble
    }

    /// Mean ensemble prediction for every graph, in input order.
    ///
    /// # Panics
    ///
    /// Panics if the ensemble is empty (matching [`Ensemble::predict`]).
    pub fn predict(&self, graphs: &[&PowerGraph]) -> Vec<f64> {
        self.predict_with_stats(graphs).0
    }

    /// [`InferenceEngine::predict`] plus serving counters.
    pub fn predict_with_stats(&self, graphs: &[&PowerGraph]) -> (Vec<f64>, ServeStats) {
        // pg-lint: allow(wall_clock, reason = "serving telemetry (ServeStats.seconds); never feeds model math or artifacts")
        let t0 = Instant::now();
        if graphs.is_empty() {
            return (
                Vec::new(),
                ServeStats {
                    graphs: 0,
                    batches: 0,
                    threads_used: 0,
                    seconds: t0.elapsed().as_secs_f64(),
                },
            );
        }
        assert!(!self.ensemble.models.is_empty(), "empty ensemble");
        let batches: Vec<&[&PowerGraph]> = graphs.chunks(self.config.batch_size.max(1)).collect();
        let threads = self.config.threads.max(1).min(batches.len());
        // Contiguous shards of the batch list preserve input order when
        // worker outputs are concatenated back in spawn order; the actual
        // worker count is ceil(batches / shard), which can be below
        // `threads` when the shards don't divide evenly.
        let shard = batches.len().div_ceil(threads);
        let workers = batches.len().div_ceil(shard);

        let per_batch: Vec<Vec<f64>> = if workers == 1 {
            self.predict_shard(&batches)
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = batches
                    .chunks(shard)
                    .map(|group| scope.spawn(move || self.predict_shard(group)))
                    .collect();
                handles
                    .into_iter()
                    // pg-lint: allow(panic_path, reason = "a panicked worker holds no recoverable state; swallowing the join error would silently drop a shard of predictions")
                    .flat_map(|h| h.join().expect("inference worker panicked"))
                    .collect()
            })
        };

        let stats = ServeStats {
            graphs: graphs.len(),
            batches: batches.len(),
            threads_used: workers,
            seconds: t0.elapsed().as_secs_f64(),
        };
        pg_util::metrics::counter("engine_batches_total").add(stats.batches as u64);
        pg_util::metrics::counter("engine_graphs_total").add(stats.graphs as u64);
        pg_util::metrics::histogram(
            "engine_batch_time_us",
            pg_util::metrics::buckets::LATENCY_US,
        )
        .observe((stats.seconds * 1e6) as u64);
        (per_batch.into_iter().flatten().collect(), stats)
    }

    /// One worker's batches through the sequential path, sharing a single
    /// tape whose arenas are reused across batches and ensemble members.
    /// Delegating to [`Ensemble::predict_in`] makes the bit-identity
    /// contract hold by construction (the engine only changes batch
    /// composition, scheduling, and buffer reuse — never the arithmetic).
    fn predict_shard(&self, group: &[&[&PowerGraph]]) -> Vec<Vec<f64>> {
        let mut tape = pg_tensor::Tape::new();
        group
            .iter()
            .map(|b| self.ensemble.predict_in(b, &mut tape))
            .collect()
    }
}

impl Ensemble {
    /// A serving engine over this ensemble with the default configuration.
    pub fn engine(&self) -> InferenceEngine<'_> {
        InferenceEngine::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelConfig, PowerModel};
    use pg_graphcon::Relation;
    use pg_util::Rng64;

    fn graph(seed: u64) -> PowerGraph {
        let mut rng = Rng64::new(seed);
        let nodes = 4 + rng.below(5);
        let f = PowerGraph::NODE_FEATS;
        let mut node_feats = vec![0.0f32; nodes * f];
        for n in 0..nodes {
            node_feats[n * f + rng.below(5)] = 1.0;
            node_feats[n * f + 30 + rng.below(4)] = rng.f32();
        }
        let edges: Vec<(u32, u32)> = (1..nodes as u32).map(|d| (d - 1, d)).collect();
        let ne = edges.len();
        PowerGraph {
            kernel: "serve".into(),
            design_id: format!("s{seed}"),
            num_nodes: nodes,
            node_feats,
            edges,
            edge_feats: (0..ne)
                .map(|_| [rng.f32(), rng.f32(), rng.f32() * 0.4, rng.f32() * 0.4])
                .collect(),
            edge_rel: (0..ne)
                .map(|i| match i % 4 {
                    0 => Relation::AA,
                    1 => Relation::AN,
                    2 => Relation::NA,
                    _ => Relation::NN,
                })
                .collect(),
            meta: (0..10).map(|k| 0.05 * k as f32).collect(),
        }
    }

    fn ensemble(members: usize) -> Ensemble {
        Ensemble {
            models: (0..members)
                .map(|i| {
                    let mut m = PowerModel::new(ModelConfig::hec(12), 40 + i as u64);
                    m.target_scale = 0.4 + 0.1 * i as f32;
                    m
                })
                .collect(),
        }
    }

    #[test]
    fn matches_sequential_bitwise() {
        let graphs: Vec<PowerGraph> = (0..13).map(graph).collect();
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let ens = ensemble(3);
        let seq = ens.predict(&refs);
        for (bs, threads) in [(1, 1), (3, 1), (4, 2), (13, 2), (2, 4), (64, 3)] {
            let engine = InferenceEngine::with_config(&ens, ServeConfig::new(bs, threads));
            let got = engine.predict(&refs);
            let a: Vec<u64> = seq.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "diverged at batch_size={bs} threads={threads}");
        }
    }

    #[test]
    fn preserves_input_order() {
        let graphs: Vec<PowerGraph> = (0..9).map(graph).collect();
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let ens = ensemble(1);
        let engine = InferenceEngine::with_config(&ens, ServeConfig::new(2, 3));
        let batched = engine.predict(&refs);
        for (i, r) in refs.iter().enumerate() {
            let single = ens.predict(&[*r]);
            assert_eq!(single[0].to_bits(), batched[i].to_bits(), "graph {i}");
        }
    }

    #[test]
    fn empty_input_serves_nothing() {
        let ens = ensemble(1);
        let (preds, stats) = ens.engine().predict_with_stats(&[]);
        assert!(preds.is_empty());
        assert_eq!(stats.graphs, 0);
        assert_eq!(stats.batches, 0);
    }

    #[test]
    fn stats_count_batches_and_threads() {
        let graphs: Vec<PowerGraph> = (0..10).map(graph).collect();
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let ens = ensemble(2);
        let engine = InferenceEngine::with_config(&ens, ServeConfig::new(3, 8));
        let (preds, stats) = engine.predict_with_stats(&refs);
        assert_eq!(preds.len(), 10);
        assert_eq!(stats.graphs, 10);
        assert_eq!(stats.batches, 4); // ceil(10 / 3)
        assert_eq!(stats.threads_used, 4); // capped by the batch count
        assert!(stats.seconds >= 0.0);
        assert!(stats.graphs_per_sec() > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty ensemble")]
    fn empty_ensemble_panics() {
        let g = graph(1);
        Ensemble::default().engine().predict(&[&g]);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        ServeConfig::new(0, 1);
    }
}
