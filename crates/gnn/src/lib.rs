//! HEC-GNN and baseline GNN models for HLS power estimation (§III-B).
//!
//! Implements the paper's heterogeneous edge-centric GNN:
//!
//! * **Eq. 4/5** — node update `h_v = ReLU(W_V h_v + Σ_r Σ_u W_r W_E
//!   e_{u,v,r})`, aggregating *edge* features per relation type, fitting the
//!   dynamic-power formula (activity × capacitance weights);
//! * **Eq. 6** — jumping-knowledge sum pooling over all conv layers;
//! * **Eq. 7** — metadata MLP (HLS-report globals) concatenated with the
//!   graph embedding, feeding a two-layer regression head;
//! * MAPE training loss, Adam, mini-batches, and the 10-fold × 3-seed
//!   prediction-averaging ensemble;
//! * baselines GCN, GraphSAGE, GraphConv and GINE on the same outer
//!   architecture (Table I), and the ablation variants of Table II;
//! * a batched, multi-core serving layer ([`InferenceEngine`]) whose output
//!   is bit-identical to the sequential prediction path.
//!
//! # Examples
//!
//! ```no_run
//! use pg_gnn::{train_ensemble, ModelConfig, TrainConfig};
//! # let samples: Vec<(pg_graphcon::PowerGraph, f64)> = vec![];
//! let data: Vec<(&pg_graphcon::PowerGraph, f64)> =
//!     samples.iter().map(|(g, t)| (g, *t)).collect();
//! let cfg = TrainConfig::quick(ModelConfig::hec(32));
//! let ensemble = train_ensemble(&data, &cfg);
//! let err = ensemble.evaluate(&data);
//! println!("MAPE = {err:.2}%");
//! ```

pub mod ablation;
pub mod admission;
pub mod batch;
pub mod model;
pub mod serve;
pub mod train;

pub use ablation::{table2_variants, zoo_variants, Variant};
pub use admission::{AdmissionQueue, BatchPolicy};
pub use batch::{GraphBatch, RelEdges};
pub use model::{Arch, ModelConfig, Pool, PowerModel};
pub use serve::{InferenceEngine, ServeConfig, ServeStats};
pub use train::{
    evaluate_model, train_ensemble, train_ensemble_with, train_single, Ensemble, LabelNorm,
    MemberTrained, TrainConfig,
};
