//! Training loop, k-fold × seed ensembling, and evaluation.
//!
//! The paper trains with mini-batches (size 128), Adam at 5e-4, MAPE loss,
//! and "an ensemble learning strategy, in which we perform 10-fold
//! cross-validation together with three different random seeds … and
//! average all the output of trained models" (§III-B). [`train_ensemble`]
//! implements exactly that scheme; fold count, seed list, epochs and model
//! width are configurable so the scaled-down evaluation environment (2 CPU
//! cores vs the paper's V100) can run the full pipeline end to end.

use crate::batch::GraphBatch;
use crate::model::{ModelConfig, PowerModel};
use pg_graphcon::PowerGraph;
use pg_tensor::{Adam, GradAccum, ParamStore, Tape};
use pg_util::rng::mix64;
use pg_util::{mape, Rng64};

/// Graphs per gradient shard. Shard boundaries are a pure function of the
/// batch — never of `cfg.threads` — so the per-shard computations (and the
/// dropout RNG streams seeded per shard) are identical at any thread
/// count; threads only change which worker executes which shard.
const SHARD_GRAPHS: usize = 8;

/// How regression labels are normalized before training.
///
/// The Total target collapses under the paper's mean-scaled MAPE scheme at
/// small epoch budgets: static power is a large constant offset, so the
/// useful signal is a small relative variation that an undertrained network
/// drives below zero (clamped to the 1 mW floor). Standardizing removes the
/// offset and trains on z-scores with MSE instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LabelNorm {
    /// Divide labels by their training mean and train with MAPE (the
    /// paper's scheme; best for strictly-relative targets like dynamic
    /// power).
    #[default]
    MeanScale,
    /// Standardize labels to z-scores `(t - mean) / std` and train with
    /// MSE (robust for offset-dominated targets like total power).
    Standardize,
}

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Model architecture/width.
    pub model: ModelConfig,
    /// Training epochs (paper: 1200 total / 2400 dynamic).
    pub epochs: usize,
    /// Mini-batch size (paper: 128).
    pub batch_size: usize,
    /// Adam learning rate (paper: 5e-4).
    pub lr: f32,
    /// Cross-validation folds for the ensemble (paper: 10).
    pub folds: usize,
    /// Random seeds for the ensemble (paper: 3).
    pub seeds: Vec<u64>,
    /// Data-parallel worker threads per batch.
    pub threads: usize,
    /// Epochs without validation improvement before early stop (0 = off).
    pub patience: usize,
    /// Label normalization scheme.
    pub label_norm: LabelNorm,
}

impl TrainConfig {
    /// A configuration sized for this evaluation environment; same pipeline
    /// as the paper at reduced width/epochs.
    pub fn quick(model: ModelConfig) -> Self {
        TrainConfig {
            model,
            epochs: 40,
            batch_size: 48,
            lr: 2e-3,
            folds: 3,
            seeds: vec![17],
            threads: 2,
            patience: 12,
            label_norm: LabelNorm::MeanScale,
        }
    }

    /// The paper's published hyperparameters (hidden 128, batch 128,
    /// lr 5e-4, 10 folds × 3 seeds). Long-running on CPU.
    pub fn paper(mut model: ModelConfig, dynamic_power: bool) -> Self {
        model.hidden = 128;
        TrainConfig {
            model,
            epochs: if dynamic_power { 2400 } else { 1200 },
            batch_size: 128,
            lr: 5e-4,
            folds: 10,
            seeds: vec![17, 43, 91],
            threads: 2,
            patience: 0,
            label_norm: LabelNorm::MeanScale,
        }
    }
}

/// A labeled sample reference.
pub type Labeled<'a> = (&'a PowerGraph, f64);

/// An ensemble of trained models whose predictions are averaged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ensemble {
    /// Member models.
    pub models: Vec<PowerModel>,
}

impl Ensemble {
    /// Mean prediction across members (the batch is assembled once).
    pub fn predict(&self, graphs: &[&PowerGraph]) -> Vec<f64> {
        let mut tape = Tape::new();
        self.predict_in(graphs, &mut tape)
    }

    /// [`Ensemble::predict`] recording onto a caller-owned tape, so serving
    /// workers can reuse one tape's arenas across batches and members.
    /// Output is bit-identical to [`Ensemble::predict`].
    pub fn predict_in(&self, graphs: &[&PowerGraph], tape: &mut Tape) -> Vec<f64> {
        assert!(!self.models.is_empty(), "empty ensemble");
        let targets = vec![0.0; graphs.len()];
        let batch = GraphBatch::new(graphs, &targets);
        let mut acc = vec![0.0f64; graphs.len()];
        for m in &self.models {
            for (a, p) in acc.iter_mut().zip(m.predict_prebuilt_in(&batch, tape)) {
                *a += p;
            }
        }
        for a in &mut acc {
            *a /= self.models.len() as f64;
        }
        acc
    }

    /// MAPE (%) against labeled data.
    pub fn evaluate(&self, data: &[Labeled<'_>]) -> f64 {
        let graphs: Vec<&PowerGraph> = data.iter().map(|(g, _)| *g).collect();
        let targets: Vec<f64> = data.iter().map(|(_, t)| *t).collect();
        mape(&self.predict(&graphs), &targets)
    }
}

/// Trains one model on `train`, early-stopping/model-selecting on `val`.
///
/// Training is **bit-identical for any `cfg.threads`**: mini-batches are
/// split into fixed `SHARD_GRAPHS`-graph shards independent of the
/// thread count, every shard's RNG seed is derived statelessly from
/// `(seed, epoch, batch, shard)` via [`mix64`], each shard accumulates
/// into its own [`GradAccum`] slot, and the slots are merged in ascending
/// shard order. The merged gradient is the exact sample-weighted batch
/// mean, so an uneven tail shard contributes proportionally to its size.
pub fn train_single(
    train: &[Labeled<'_>],
    val: &[Labeled<'_>],
    cfg: &TrainConfig,
    seed: u64,
) -> PowerModel {
    assert!(!train.is_empty(), "empty training set");
    let mut model = PowerModel::new(cfg.model.clone(), seed);
    let labels: Vec<f64> = train.iter().map(|(_, t)| *t).collect();
    let mean_target = pg_util::stats::mean(&labels);
    match cfg.label_norm {
        LabelNorm::MeanScale => {
            model.target_scale = mean_target.max(1e-6) as f32;
            model.target_shift = 0.0;
        }
        LabelNorm::Standardize => {
            model.target_scale = pg_util::stats::stddev(&labels).max(1e-6) as f32;
            model.target_shift = mean_target as f32;
        }
    }

    let mut opt = Adam::new(cfg.lr);
    let mut rng = Rng64::new(seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xABCD);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut best: Option<(f64, ParamStore)> = None;
    let mut stale = 0usize;

    // Long-lived per-shard-slot arenas, reused across batches and epochs:
    // one tape and one accumulator per shard slot, plus the batch-level
    // accumulator the slots are merged into.
    let max_shards = cfg.batch_size.max(1).div_ceil(SHARD_GRAPHS);
    let mut shard_accums: Vec<GradAccum> = (0..max_shards)
        .map(|_| GradAccum::new(model.store.len()))
        .collect();
    let mut shard_tapes: Vec<Tape> = (0..max_shards).map(|_| Tape::new()).collect();
    let mut accum = GradAccum::new(model.store.len());

    for epoch in 0..cfg.epochs {
        // step learning-rate decay: x0.5 at 60 % and 85 % of the budget
        let frac = epoch as f32 / cfg.epochs.max(1) as f32;
        opt.lr = cfg.lr
            * if frac >= 0.85 {
                0.25
            } else if frac >= 0.6 {
                0.5
            } else {
                1.0
            };
        rng.shuffle(&mut order);
        for (batch_idx, chunk) in order.chunks(cfg.batch_size).enumerate() {
            // Shard boundaries depend only on the batch content; worker
            // seeds only on (seed, epoch, batch, shard). Neither consumes
            // the main RNG stream, so `cfg.threads` cannot perturb it.
            let shards: Vec<&[usize]> = chunk.chunks(SHARD_GRAPHS).collect();
            let nshards = shards.len();
            let seeds: Vec<u64> = (0..nshards)
                .map(|s| mix64(&[seed, epoch as u64, batch_idx as u64, s as u64]))
                .collect();
            let threads = cfg.threads.max(1).min(nshards);
            let per_worker = nshards.div_ceil(threads);

            let run_shard = |acc: &mut GradAccum,
                             tape: &mut Tape,
                             shard: &[usize],
                             ws: u64,
                             model_ref: &PowerModel| {
                let (g, t) = shard_batch(train, shard);
                let batch = GraphBatch::new(&g, &t);
                let mut wrng = Rng64::new(ws);
                let (_, grads) = model_ref.loss_and_grads_in(&batch, &mut wrng, tape);
                acc.add(grads, shard.len());
            };

            if threads == 1 {
                for (s, shard) in shards.iter().enumerate() {
                    run_shard(
                        &mut shard_accums[s],
                        &mut shard_tapes[s],
                        shard,
                        seeds[s],
                        &model,
                    );
                }
            } else {
                std::thread::scope(|scope| {
                    let model_ref = &model;
                    let run = &run_shard;
                    let accs = shard_accums[..nshards].chunks_mut(per_worker);
                    let tapes = shard_tapes[..nshards].chunks_mut(per_worker);
                    for (((accs, tapes), shs), sds) in accs
                        .zip(tapes)
                        .zip(shards.chunks(per_worker))
                        .zip(seeds.chunks(per_worker))
                    {
                        scope.spawn(move || {
                            for (((acc, tape), shard), &ws) in
                                accs.iter_mut().zip(tapes.iter_mut()).zip(shs).zip(sds)
                            {
                                run(acc, tape, shard, ws, model_ref);
                            }
                        });
                    }
                });
            }

            // Fixed-order reduction: ascending shard index, regardless of
            // which worker finished first — parallel merge is bit-identical
            // to sequential.
            accum.reset();
            for sa in &mut shard_accums[..nshards] {
                accum.merge_from(sa);
                sa.reset();
            }
            opt.step(&mut model.store, accum.mean_in_place());
        }

        if !val.is_empty() {
            let val_err = evaluate_model(&model, val);
            let improved = best.as_ref().map(|(b, _)| val_err < *b).unwrap_or(true);
            if improved {
                best = Some((val_err, model.store.clone()));
                stale = 0;
            } else {
                stale += 1;
                if cfg.patience > 0 && stale >= cfg.patience {
                    break;
                }
            }
        }
    }
    if let Some((_, store)) = best {
        model.store = store;
    }
    model
}

fn shard_batch<'a>(data: &[Labeled<'a>], idx: &[usize]) -> (Vec<&'a PowerGraph>, Vec<f64>) {
    let graphs: Vec<&PowerGraph> = idx.iter().map(|&i| data[i].0).collect();
    let targets: Vec<f64> = idx.iter().map(|&i| data[i].1).collect();
    (graphs, targets)
}

/// MAPE (%) of a single model on labeled data.
pub fn evaluate_model(model: &PowerModel, data: &[Labeled<'_>]) -> f64 {
    let graphs: Vec<&PowerGraph> = data.iter().map(|(g, _)| *g).collect();
    let targets: Vec<f64> = data.iter().map(|(_, t)| *t).collect();
    mape(&model.predict(&graphs), &targets)
}

/// Progress report handed to a checkpoint hook after each ensemble member
/// finishes training (see [`train_ensemble_with`]).
#[derive(Debug)]
pub struct MemberTrained<'a> {
    /// Member position in the final ensemble (0-based).
    pub index: usize,
    /// Total members the run will produce (`folds × seeds`).
    pub total: usize,
    /// Ensemble seed this member belongs to.
    pub seed: u64,
    /// Cross-validation fold this member was trained on.
    pub fold: usize,
    /// Validation MAPE (%) of the trained member on its held-out fold.
    pub val_mape: f64,
    /// The trained member (already model-selected on its fold).
    pub model: &'a PowerModel,
}

/// Trains the paper's ensemble: `folds`-fold cross-validation × `seeds`,
/// averaging every member's predictions.
pub fn train_ensemble(data: &[Labeled<'_>], cfg: &TrainConfig) -> Ensemble {
    train_ensemble_with(data, cfg, |_| {})
}

/// [`train_ensemble`] with a checkpoint hook invoked once per trained
/// member, in training order. The hook sees the member *before* it is moved
/// into the ensemble, so callers can persist incremental checkpoints (e.g.
/// through `pg_store`) or report progress without re-training on a crash.
pub fn train_ensemble_with(
    data: &[Labeled<'_>],
    cfg: &TrainConfig,
    mut on_member: impl FnMut(&MemberTrained<'_>),
) -> Ensemble {
    assert!(data.len() >= cfg.folds.max(2), "too little data for folds");
    let total = cfg.folds * cfg.seeds.len();
    let mut models = Vec::new();
    for (si, &seed) in cfg.seeds.iter().enumerate() {
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = Rng64::new(seed ^ 0x5eed);
        rng.shuffle(&mut order);
        for fold in 0..cfg.folds {
            let val_idx: Vec<usize> = order
                .iter()
                .copied()
                .skip(fold)
                .step_by(cfg.folds)
                .collect();
            let val_set: std::collections::HashSet<usize> = val_idx.iter().copied().collect();
            let train_data: Vec<Labeled<'_>> = order
                .iter()
                .filter(|i| !val_set.contains(i))
                .map(|&i| data[i])
                .collect();
            let val_data: Vec<Labeled<'_>> = val_idx.iter().map(|&i| data[i]).collect();
            let model_seed = seed
                .wrapping_mul(1000)
                .wrapping_add(fold as u64)
                .wrapping_add((si as u64) << 32);
            let model = train_single(&train_data, &val_data, cfg, model_seed);
            on_member(&MemberTrained {
                index: models.len(),
                total,
                seed,
                fold,
                val_mape: evaluate_model(&model, &val_data),
                model: &model,
            });
            models.push(model);
        }
    }
    Ensemble { models }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Arch;
    use pg_graphcon::Relation;

    /// Synthetic sample whose power is a linear function of its total edge
    /// switching activity — exactly the signal HEC-GNN aggregates.
    fn synth(seed: u64) -> (PowerGraph, f64) {
        let mut rng = Rng64::new(seed);
        let nodes = 6 + rng.below(6);
        let f = PowerGraph::NODE_FEATS;
        let mut node_feats = vec![0.0f32; nodes * f];
        for n in 0..nodes {
            node_feats[n * f + rng.below(5)] = 1.0;
        }
        let mut edges = Vec::new();
        let mut edge_feats = Vec::new();
        let mut edge_rel = Vec::new();
        let mut total_sa = 0.0f64;
        for d in 1..nodes as u32 {
            let s = rng.below(d as usize) as u32;
            let sa = rng.f32();
            edges.push((s, d));
            edge_feats.push([sa, sa * 0.8, sa * 0.3, sa * 0.2]);
            edge_rel.push(match rng.below(4) {
                0 => Relation::AA,
                1 => Relation::AN,
                2 => Relation::NA,
                _ => Relation::NN,
            });
            total_sa += sa as f64;
        }
        let meta: Vec<f32> = (0..10).map(|_| rng.f32()).collect();
        let power = 0.1 + 0.05 * total_sa + 0.02 * meta[0] as f64;
        (
            PowerGraph {
                kernel: "synth".into(),
                design_id: format!("s{seed}"),
                num_nodes: nodes,
                node_feats,
                edges,
                edge_feats,
                edge_rel,
                meta,
            },
            power,
        )
    }

    #[test]
    fn single_model_learns_activity_signal() {
        let samples: Vec<(PowerGraph, f64)> = (0..60).map(synth).collect();
        let data: Vec<Labeled<'_>> = samples.iter().map(|(g, t)| (g, *t)).collect();
        let (train, val) = data.split_at(48);
        let mut cfg = TrainConfig::quick(ModelConfig::hec(16));
        cfg.epochs = 60;
        cfg.threads = 1;
        let model = train_single(train, val, &cfg, 7);
        let err = evaluate_model(&model, val);
        assert!(err < 20.0, "val MAPE {err}");
    }

    #[test]
    fn ensemble_beats_or_matches_worst_member() {
        let samples: Vec<(PowerGraph, f64)> = (0..40).map(|i| synth(i + 100)).collect();
        let data: Vec<Labeled<'_>> = samples.iter().map(|(g, t)| (g, *t)).collect();
        let mut cfg = TrainConfig::quick(ModelConfig::hec(16));
        cfg.epochs = 25;
        cfg.folds = 2;
        cfg.threads = 1;
        let ens = train_ensemble(&data[..32], &cfg);
        assert_eq!(ens.models.len(), 2);
        let test = &data[32..];
        let ens_err = ens.evaluate(test);
        let worst = ens
            .models
            .iter()
            .map(|m| evaluate_model(m, test))
            .fold(f64::MIN, f64::max);
        assert!(
            ens_err <= worst + 1.0,
            "ensemble {ens_err} vs worst {worst}"
        );
    }

    #[test]
    fn threaded_training_runs() {
        let samples: Vec<(PowerGraph, f64)> = (0..24).map(|i| synth(i + 200)).collect();
        let data: Vec<Labeled<'_>> = samples.iter().map(|(g, t)| (g, *t)).collect();
        let mut cfg = TrainConfig::quick(ModelConfig::baseline(Arch::Gcn, 8));
        cfg.epochs = 3;
        cfg.threads = 2;
        let model = train_single(&data[..16], &data[16..], &cfg, 3);
        assert!(model.store.get(0).is_finite());
    }

    #[test]
    fn deterministic_given_seed_single_thread() {
        let samples: Vec<(PowerGraph, f64)> = (0..16).map(|i| synth(i + 300)).collect();
        let data: Vec<Labeled<'_>> = samples.iter().map(|(g, t)| (g, *t)).collect();
        let mut cfg = TrainConfig::quick(ModelConfig::hec(8));
        cfg.epochs = 3;
        cfg.threads = 1;
        let m1 = train_single(&data[..12], &data[12..], &cfg, 11);
        let m2 = train_single(&data[..12], &data[12..], &cfg, 11);
        let g: Vec<&PowerGraph> = data[12..].iter().map(|(g, _)| *g).collect();
        assert_eq!(m1.predict(&g), m2.predict(&g));
    }

    #[test]
    fn paper_config_matches_published_hyperparameters() {
        let cfg = TrainConfig::paper(ModelConfig::hec(32), true);
        assert_eq!(cfg.model.hidden, 128);
        assert_eq!(cfg.epochs, 2400);
        assert_eq!(cfg.batch_size, 128);
        assert_eq!(cfg.folds, 10);
        assert_eq!(cfg.seeds.len(), 3);
        assert!((cfg.lr - 5e-4).abs() < 1e-9);
        let total = TrainConfig::paper(ModelConfig::hec(32), false);
        assert_eq!(total.epochs, 1200);
    }
}
