//! The HEC-GNN ablation variants of Table II, plus the architecture-zoo
//! sweep grid.
//!
//! * `w/o opt.` — no edge features, no directionality, no heterogeneity, no
//!   metadata (single model);
//! * `w/o e.f.` — aggregate neighbor node embeddings instead of edge
//!   features (single);
//! * `w/o dir.` — undirected message passing (single);
//! * `w/o hetr.` — one shared relation weight (single);
//! * `w/o md.` — no metadata embedding branch (single);
//! * `sgl.` — the full model, single instance (no ensemble);
//! * `prop.` — the full model with the k-fold × seed ensemble.
//!
//! [`zoo_variants`] spans the orthogonal zoo axes instead: architecture
//! (HEC vs node-centric baselines), readout pooling, convolution depth,
//! and multi-head edge attention — the grid the LOKO harness ranks on
//! held-out MAPE.

use crate::model::{Arch, ModelConfig, Pool};

/// One ablation variant: display name, model configuration, and whether the
/// ensemble strategy is applied.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// Paper's column label.
    pub name: &'static str,
    /// Model configuration.
    pub config: ModelConfig,
    /// `true` for the full `prop.` ensemble; single model otherwise.
    pub ensemble: bool,
}

/// All seven Table II variants at the given hidden width, in paper order.
pub fn table2_variants(hidden: usize) -> Vec<Variant> {
    let base = ModelConfig::hec(hidden);

    let mut wo_opt = base.clone();
    wo_opt.use_edge_feats = false;
    wo_opt.directed = false;
    wo_opt.heterogeneous = false;
    wo_opt.use_metadata = false;

    let mut wo_ef = base.clone();
    wo_ef.use_edge_feats = false;

    let mut wo_dir = base.clone();
    wo_dir.directed = false;

    let mut wo_hetr = base.clone();
    wo_hetr.heterogeneous = false;

    let mut wo_md = base.clone();
    wo_md.use_metadata = false;

    vec![
        Variant {
            name: "w/o opt.",
            config: wo_opt,
            ensemble: false,
        },
        Variant {
            name: "w/o e.f.",
            config: wo_ef,
            ensemble: false,
        },
        Variant {
            name: "w/o dir.",
            config: wo_dir,
            ensemble: false,
        },
        Variant {
            name: "w/o hetr.",
            config: wo_hetr,
            ensemble: false,
        },
        Variant {
            name: "w/o md.",
            config: wo_md,
            ensemble: false,
        },
        Variant {
            name: "sgl.",
            config: base.clone(),
            ensemble: false,
        },
        Variant {
            name: "prop.",
            config: base,
            ensemble: true,
        },
    ]
}

/// The architecture-zoo sweep grid at the given hidden width, in fixed
/// order: the paper's HEC against two node-centric baselines, the three
/// readout modes, two extra depths, and an attention variant — every
/// config a [`crate::PowerModel`] can instantiate directly.
pub fn zoo_variants(hidden: usize) -> Vec<Variant> {
    let mut out = Vec::new();
    let mut push = |name: &'static str, config: ModelConfig| {
        out.push(Variant {
            name,
            config,
            ensemble: false,
        });
    };
    // Architecture axis: HEC vs 2 baselines.
    push("hec", ModelConfig::hec(hidden));
    push("gcn", ModelConfig::baseline(Arch::Gcn, hidden));
    push("sage", ModelConfig::baseline(Arch::Sage, hidden));
    // Pooling axis (sum is the paper's readout, covered by `hec`).
    push("hec-mean", ModelConfig::hec(hidden).with_pool(Pool::Mean));
    push("hec-max", ModelConfig::hec(hidden).with_pool(Pool::Max));
    // Depth axis (3 layers is the paper's depth, covered by `hec`).
    push("hec-2l", ModelConfig::hec(hidden).with_layers(2));
    push("hec-4l", ModelConfig::hec(hidden).with_layers(4));
    // Attention axis (2 heads; hidden must stay divisible).
    push("hec-attn2", ModelConfig::hec(hidden).with_heads(2));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_spans_every_axis_with_distinct_configs() {
        let zoo = zoo_variants(16);
        assert!(zoo.len() >= 8);
        // ≥ 3 architectures, ≥ 2 pooling modes, ≥ 2 depths, attention.
        let archs: std::collections::BTreeSet<String> =
            zoo.iter().map(|v| format!("{:?}", v.config.arch)).collect();
        assert!(archs.len() >= 3, "{archs:?}");
        let pools: std::collections::BTreeSet<&str> =
            zoo.iter().map(|v| v.config.pool.name()).collect();
        assert!(pools.len() >= 3, "{pools:?}");
        let depths: std::collections::BTreeSet<usize> =
            zoo.iter().map(|v| v.config.layers).collect();
        assert!(depths.len() >= 3, "{depths:?}");
        assert!(zoo.iter().any(|v| v.config.heads > 0));
        // All configs and zoo names distinct.
        let mut names: Vec<String> = zoo.iter().map(|v| v.config.zoo_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), zoo.len(), "duplicate zoo configs");
    }

    #[test]
    fn seven_variants_in_paper_order() {
        let v = table2_variants(16);
        let names: Vec<&str> = v.iter().map(|x| x.name).collect();
        assert_eq!(
            names,
            vec![
                "w/o opt.",
                "w/o e.f.",
                "w/o dir.",
                "w/o hetr.",
                "w/o md.",
                "sgl.",
                "prop."
            ]
        );
    }

    #[test]
    fn only_prop_is_ensembled() {
        let v = table2_variants(16);
        assert!(v.iter().filter(|x| x.ensemble).count() == 1);
        assert!(v.last().unwrap().ensemble);
    }

    #[test]
    fn switches_match_names() {
        let v = table2_variants(16);
        let by_name = |n: &str| v.iter().find(|x| x.name == n).unwrap();
        assert!(!by_name("w/o e.f.").config.use_edge_feats);
        assert!(by_name("w/o e.f.").config.heterogeneous);
        assert!(!by_name("w/o dir.").config.directed);
        assert!(!by_name("w/o hetr.").config.heterogeneous);
        assert!(!by_name("w/o md.").config.use_metadata);
        let wo = &by_name("w/o opt.").config;
        assert!(!wo.use_edge_feats && !wo.directed && !wo.heterogeneous && !wo.use_metadata);
        let prop = &by_name("prop.").config;
        assert!(prop.use_edge_feats && prop.directed && prop.heterogeneous && prop.use_metadata);
    }
}
