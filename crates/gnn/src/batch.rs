//! Graph batching: many [`PowerGraph`] samples concatenated into one large
//! disjoint graph for efficient tensor ops.
//!
//! Nodes of all graphs are stacked into one feature matrix; edges are
//! offset and grouped by relation type (the heterogeneous aggregation of
//! Eq. 5 processes each relation separately); a `graph_of` map drives
//! sum pooling back to per-graph embeddings (Eq. 6).

use pg_graphcon::{PowerGraph, Relation};
use pg_tensor::Matrix;

/// Edges of one relation type within a batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RelEdges {
    /// Source node indices (batch-global).
    pub src: Vec<u32>,
    /// Destination node indices (batch-global).
    pub dst: Vec<u32>,
    /// Edge features, `E_r × 4`.
    pub feats: Matrix,
}

impl RelEdges {
    /// Number of edges.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// `true` when the relation has no edges in the batch.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }
}

/// A batch of graphs ready for the GNN.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphBatch {
    /// Stacked node features, `N × F`.
    pub node_feats: Matrix,
    /// Total node count `N`.
    pub num_nodes: usize,
    /// Graph index of each node.
    pub graph_of: Vec<u32>,
    /// Number of graphs `G`.
    pub num_graphs: usize,
    /// Per-relation edge groups (directed, as constructed).
    pub rel: Vec<RelEdges>,
    /// All edges combined (directed), for homogeneous variants.
    pub all: RelEdges,
    /// Reversed copies of all edges, for undirected variants.
    pub all_rev: RelEdges,
    /// Per-relation reversed edges (undirected heterogeneous variant).
    pub rel_rev: Vec<RelEdges>,
    /// Metadata features, `G × M` (zero-width if unavailable).
    pub meta: Matrix,
    /// Regression targets, one per graph.
    pub targets: Vec<f32>,
    /// Symmetric-normalization coefficient per combined+self-loop edge
    /// (GCN): edges are `all ∪ all_rev ∪ self-loops` in that order.
    pub gcn_src: Vec<u32>,
    /// GCN destination indices (matching [`GraphBatch::gcn_src`]).
    pub gcn_dst: Vec<u32>,
    /// GCN Â normalization coefficients.
    pub gcn_coeff: Vec<f32>,
    /// In-degree (over `all`) per node, for mean aggregation.
    pub in_degree: Vec<f32>,
}

impl GraphBatch {
    /// Builds a batch from graphs and their targets.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or a graph has no nodes.
    pub fn new(graphs: &[&PowerGraph], targets: &[f64]) -> Self {
        assert_eq!(graphs.len(), targets.len(), "target count mismatch");
        assert!(!graphs.is_empty(), "empty batch");
        let f = PowerGraph::NODE_FEATS;
        let num_nodes: usize = graphs.iter().map(|g| g.num_nodes).sum();
        let mut node_feats = Matrix::zeros(num_nodes, f);
        let mut graph_of = Vec::with_capacity(num_nodes);
        let meta_dim = graphs.iter().map(|g| g.meta.len()).max().unwrap_or(0);
        let mut meta = Matrix::zeros(graphs.len(), meta_dim);

        let mut rel: Vec<(Vec<u32>, Vec<u32>, Vec<f32>)> =
            vec![(Vec::new(), Vec::new(), Vec::new()); Relation::COUNT];
        let mut offset = 0u32;
        for (gi, g) in graphs.iter().enumerate() {
            assert!(g.num_nodes > 0, "graph {gi} has no nodes");
            for n in 0..g.num_nodes {
                node_feats
                    .row_mut(offset as usize + n)
                    .copy_from_slice(g.node(n));
                graph_of.push(gi as u32);
            }
            for (ei, &(s, d)) in g.edges.iter().enumerate() {
                let r = g.edge_rel[ei].index();
                rel[r].0.push(s + offset);
                rel[r].1.push(d + offset);
                rel[r].2.extend_from_slice(&g.edge_feats[ei]);
            }
            for (k, &m) in g.meta.iter().enumerate() {
                meta.data[gi * meta_dim + k] = m;
            }
            offset += g.num_nodes as u32;
        }

        let rel: Vec<RelEdges> = rel
            .into_iter()
            .map(|(src, dst, flat)| {
                let n = src.len();
                RelEdges {
                    src,
                    dst,
                    feats: Matrix::from_vec(n, 4, flat),
                }
            })
            .collect();

        // Combined views.
        let mut all = RelEdges::default();
        let mut all_flat = Vec::new();
        for r in &rel {
            all.src.extend_from_slice(&r.src);
            all.dst.extend_from_slice(&r.dst);
            all_flat.extend_from_slice(&r.feats.data);
        }
        all.feats = Matrix::from_vec(all.src.len(), 4, all_flat);
        let all_rev = reverse(&all);
        let rel_rev: Vec<RelEdges> = rel.iter().map(reverse).collect();

        // GCN: symmetric normalization over undirected edges + self loops.
        let mut gcn_src: Vec<u32> = Vec::new();
        let mut gcn_dst: Vec<u32> = Vec::new();
        gcn_src.extend_from_slice(&all.src);
        gcn_dst.extend_from_slice(&all.dst);
        gcn_src.extend_from_slice(&all.dst);
        gcn_dst.extend_from_slice(&all.src);
        for n in 0..num_nodes as u32 {
            gcn_src.push(n);
            gcn_dst.push(n);
        }
        let mut deg = vec![1.0f32; num_nodes]; // self loop counts once
        for e in 0..all.len() {
            deg[all.src[e] as usize] += 1.0;
            deg[all.dst[e] as usize] += 1.0;
        }
        let gcn_coeff: Vec<f32> = gcn_src
            .iter()
            .zip(&gcn_dst)
            .map(|(&s, &d)| 1.0 / (deg[s as usize] * deg[d as usize]).sqrt())
            .collect();

        let mut in_degree = vec![0.0f32; num_nodes];
        for &d in &all.dst {
            in_degree[d as usize] += 1.0;
        }

        GraphBatch {
            node_feats,
            num_nodes,
            graph_of,
            num_graphs: graphs.len(),
            rel,
            all,
            all_rev,
            rel_rev,
            meta,
            targets: targets.iter().map(|&t| t as f32).collect(),
            gcn_src,
            gcn_dst,
            gcn_coeff,
            in_degree,
        }
    }

    /// Total edge count (directed, as constructed).
    pub fn num_edges(&self) -> usize {
        self.all.len()
    }
}

fn reverse(r: &RelEdges) -> RelEdges {
    RelEdges {
        src: r.dst.clone(),
        dst: r.src.clone(),
        feats: r.feats.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph(nodes: usize, shift: f32) -> PowerGraph {
        let f = PowerGraph::NODE_FEATS;
        let mut node_feats = vec![0.0f32; nodes * f];
        for n in 0..nodes {
            node_feats[n * f] = 1.0;
            node_feats[n * f + f - 1] = shift + n as f32;
        }
        let edges: Vec<(u32, u32)> = (1..nodes as u32).map(|d| (d - 1, d)).collect();
        let ne = edges.len();
        PowerGraph {
            kernel: "t".into(),
            design_id: "t".into(),
            num_nodes: nodes,
            node_feats,
            edges,
            edge_feats: vec![[0.1, 0.2, 0.05, 0.05]; ne],
            edge_rel: (0..ne)
                .map(|i| match i % 2 {
                    0 => Relation::NA,
                    _ => Relation::AN,
                })
                .collect(),
            meta: vec![0.5, 1.0],
        }
    }

    #[test]
    fn stacks_nodes_with_offsets() {
        let (a, b) = (tiny_graph(3, 0.0), tiny_graph(4, 10.0));
        let batch = GraphBatch::new(&[&a, &b], &[1.0, 2.0]);
        assert_eq!(batch.num_nodes, 7);
        assert_eq!(batch.num_graphs, 2);
        assert_eq!(batch.graph_of, vec![0, 0, 0, 1, 1, 1, 1]);
        // second graph's edges shifted by 3
        let total_edges: usize = batch.rel.iter().map(|r| r.len()).sum();
        assert_eq!(total_edges, 2 + 3);
        assert!(batch
            .rel
            .iter()
            .flat_map(|r| r.src.iter().chain(r.dst.iter()))
            .all(|&x| x < 7));
        assert_eq!(batch.targets, vec![1.0, 2.0]);
    }

    #[test]
    fn relations_partition_edges() {
        let a = tiny_graph(5, 0.0);
        let batch = GraphBatch::new(&[&a], &[1.0]);
        assert_eq!(batch.rel[Relation::NA.index()].len(), 2);
        assert_eq!(batch.rel[Relation::AN.index()].len(), 2);
        assert_eq!(batch.rel[Relation::AA.index()].len(), 0);
        assert_eq!(batch.num_edges(), 4);
    }

    #[test]
    fn reversed_edges_swap_endpoints() {
        let a = tiny_graph(3, 0.0);
        let batch = GraphBatch::new(&[&a], &[1.0]);
        assert_eq!(batch.all_rev.src, batch.all.dst);
        assert_eq!(batch.all_rev.dst, batch.all.src);
        assert_eq!(batch.all_rev.feats, batch.all.feats);
    }

    #[test]
    fn gcn_normalization_sane() {
        let a = tiny_graph(4, 0.0);
        let batch = GraphBatch::new(&[&a], &[1.0]);
        // edges*2 + self loops
        assert_eq!(batch.gcn_src.len(), 3 * 2 + 4);
        assert!(batch.gcn_coeff.iter().all(|&c| c > 0.0 && c <= 1.0));
        // middle node degree 3 (two neighbors + self): self-loop coeff 1/3
        let self_loop_idx = batch.gcn_src.len() - 3; // node 1's self loop
        assert!((batch.gcn_coeff[self_loop_idx] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn meta_matrix_padded() {
        let a = tiny_graph(2, 0.0);
        let mut b = tiny_graph(2, 1.0);
        b.meta = vec![];
        let batch = GraphBatch::new(&[&a, &b], &[1.0, 2.0]);
        assert_eq!(batch.meta.rows, 2);
        assert_eq!(batch.meta.cols, 2);
        assert_eq!(batch.meta.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn in_degree_counts() {
        let a = tiny_graph(3, 0.0); // chain 0->1->2
        let batch = GraphBatch::new(&[&a], &[1.0]);
        assert_eq!(batch.in_degree, vec![0.0, 1.0, 1.0]);
    }
}
