//! Admission queue with micro-batching under a latency deadline — the
//! many-clients front half of the serving daemon.
//!
//! Concurrent connection handlers [`AdmissionQueue::push`] jobs as they
//! arrive; a single batcher thread pulls coalesced batches with
//! [`AdmissionQueue::next_batch`]. A batch closes when either
//!
//! * the queued **weight** (graphs, for the daemon) reaches
//!   [`BatchPolicy::max_weight`], or
//! * [`BatchPolicy::deadline`] has elapsed since the *oldest queued* item
//!   arrived — bounding the latency a lone request can pay waiting for
//!   company.
//!
//! Items are never split across batches and always dispatch in FIFO
//! arrival order, so a multi-graph request stays one atomic unit (the
//! hot-swap "no mixed-model response" guarantee builds on this). Batch
//! *composition* depends on arrival timing, but downstream arithmetic does
//! not: the [`crate::InferenceEngine`] is bit-identical for any batch
//! shape, which is what makes deadline-based coalescing safe under the
//! workspace's determinism invariant (`docs/ARCHITECTURE.md` shows where
//! this sits in the daemon's request lifecycle).
//!
//! # Examples
//!
//! ```
//! use pg_gnn::{AdmissionQueue, BatchPolicy};
//! use std::time::Duration;
//!
//! let q = AdmissionQueue::new(BatchPolicy {
//!     max_weight: 32,
//!     deadline: Duration::from_micros(500),
//! });
//! q.push("job", 4);
//! q.close();
//! assert_eq!(q.next_batch(), Some(vec!["job"]));
//! assert_eq!(q.next_batch(), None);
//! ```

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
// pg-lint: allow(wall_clock, reason = "import only; deadline arithmetic sites are annotated below — timing steers batch composition, never model math (engine is bit-identical for any batch shape)")
use std::time::{Duration, Instant};

/// When a batch closes: at `max_weight`, or `deadline` after the oldest
/// queued item arrived, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Weight (e.g. graphs) at which a batch dispatches immediately.
    pub max_weight: usize,
    /// Longest an admitted item waits for co-batching.
    pub deadline: Duration,
}

impl BatchPolicy {
    /// A policy with explicit knobs.
    ///
    /// # Panics
    ///
    /// Panics if `max_weight` is zero.
    pub fn new(max_weight: usize, deadline: Duration) -> Self {
        assert!(max_weight > 0, "max batch weight must be positive");
        BatchPolicy {
            max_weight,
            deadline,
        }
    }
}

struct Queued<T> {
    item: T,
    weight: usize,
    // pg-lint: allow(wall_clock, reason = "arrival timestamp only feeds the admission deadline; batch composition never changes the served arithmetic")
    arrived: Instant,
}

struct State<T> {
    items: VecDeque<Queued<T>>,
    /// Sum of queued weights (kept incrementally; avoids O(n) scans).
    pending_weight: usize,
    closed: bool,
}

/// A thread-safe admission queue that coalesces pushed items into batches
/// under [`BatchPolicy`]. See the module docs for the dispatch rules.
pub struct AdmissionQueue<T> {
    policy: BatchPolicy,
    state: Mutex<State<T>>,
    cv: Condvar,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue with the given policy.
    pub fn new(policy: BatchPolicy) -> Self {
        AdmissionQueue {
            policy,
            state: Mutex::new(State {
                items: VecDeque::new(),
                pending_weight: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// The dispatch policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        // A poisoned mutex means a producer panicked while holding the
        // lock; the queue state itself (a VecDeque + counters) is still
        // coherent, and a daemon must keep serving the other connections.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits an item with the given weight (clamped to at least 1).
    /// Returns `false` — without enqueueing — once the queue is closed.
    pub fn push(&self, item: T, weight: usize) -> bool {
        let mut st = self.lock();
        if st.closed {
            return false;
        }
        let weight = weight.max(1);
        st.pending_weight += weight;
        st.items.push_back(Queued {
            item,
            weight,
            // pg-lint: allow(wall_clock, reason = "deadline bookkeeping for admission scheduling; see module docs — never feeds model arithmetic")
            arrived: Instant::now(),
        });
        drop(st);
        self.cv.notify_all();
        true
    }

    /// Closes the queue: pending items still drain as batches, further
    /// pushes are rejected, and [`AdmissionQueue::next_batch`] returns
    /// `None` once empty.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// `true` once [`AdmissionQueue::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Items currently queued (diagnostics only; racy by nature).
    pub fn pending(&self) -> usize {
        self.lock().items.len()
    }

    /// Blocks until a batch is ready and returns it in FIFO order, or
    /// `None` when the queue is closed and drained. A batch holds at least
    /// one item; items are never split, so one oversized item dispatches
    /// alone.
    pub fn next_batch(&self) -> Option<Vec<T>> {
        let mut st = self.lock();
        loop {
            if st.items.is_empty() {
                if st.closed {
                    return None;
                }
                st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            if st.closed || st.pending_weight >= self.policy.max_weight {
                break; // dispatch now: full batch, or draining after close
            }
            // Wait out the remainder of the oldest item's deadline; a new
            // push can still complete the batch early.
            let oldest = st.items[0].arrived;
            // pg-lint: allow(wall_clock, reason = "deadline check for admission scheduling; see module docs — never feeds model arithmetic")
            let now = Instant::now();
            let Some(remaining) = (oldest + self.policy.deadline).checked_duration_since(now)
            else {
                break; // deadline expired
            };
            if remaining.is_zero() {
                break;
            }
            let (guard, _timeout) = self
                .cv
                .wait_timeout(st, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }

        let mut batch = Vec::new();
        let mut weight = 0usize;
        while let Some(front) = st.items.front() {
            if !batch.is_empty() && weight + front.weight > self.policy.max_weight {
                break;
            }
            let Some(q) = st.items.pop_front() else {
                break;
            };
            weight += q.weight;
            st.pending_weight -= q.weight;
            batch.push(q.item);
            if weight >= self.policy.max_weight {
                break;
            }
        }
        Some(batch)
    }
}

impl<T> std::fmt::Debug for AdmissionQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionQueue")
            .field("policy", &self.policy)
            .field("pending", &self.pending())
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn policy(max_weight: usize, deadline_ms: u64) -> BatchPolicy {
        BatchPolicy::new(max_weight, Duration::from_millis(deadline_ms))
    }

    #[test]
    fn weight_threshold_dispatches_without_deadline() {
        // Deadline is far away; reaching max_weight must dispatch at once.
        let q = AdmissionQueue::new(policy(4, 60_000));
        q.push('a', 2);
        q.push('b', 2);
        assert_eq!(q.next_batch(), Some(vec!['a', 'b']));
    }

    #[test]
    fn deadline_flushes_a_lone_item() {
        let q = AdmissionQueue::new(policy(1_000, 10));
        q.push(7u32, 1);
        let batch = q.next_batch();
        assert_eq!(batch, Some(vec![7]));
    }

    #[test]
    fn items_are_never_split_and_stay_fifo() {
        let q = AdmissionQueue::new(policy(4, 60_000));
        q.push("first", 3);
        q.push("second", 3);
        q.push("third", 1);
        q.close();
        // 3 + 3 > 4: the second item must wait for the next batch.
        assert_eq!(q.next_batch(), Some(vec!["first"]));
        assert_eq!(q.next_batch(), Some(vec!["second", "third"]));
        assert_eq!(q.next_batch(), None);
    }

    #[test]
    fn oversized_item_dispatches_alone() {
        let q = AdmissionQueue::new(policy(4, 60_000));
        q.push("huge", 100);
        q.push("next", 1);
        q.close();
        assert_eq!(q.next_batch(), Some(vec!["huge"]));
        assert_eq!(q.next_batch(), Some(vec!["next"]));
        assert_eq!(q.next_batch(), None);
    }

    #[test]
    fn close_rejects_pushes_and_drains() {
        let q = AdmissionQueue::new(policy(8, 60_000));
        assert!(q.push(1, 1));
        q.close();
        assert!(!q.push(2, 1), "closed queue must reject pushes");
        assert_eq!(q.next_batch(), Some(vec![1]));
        assert_eq!(q.next_batch(), None);
        assert_eq!(q.next_batch(), None, "stays None after drain");
    }

    #[test]
    fn zero_weight_counts_as_one() {
        let q = AdmissionQueue::new(policy(2, 60_000));
        q.push('x', 0);
        q.push('y', 0);
        assert_eq!(q.next_batch(), Some(vec!['x', 'y']));
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let q = Arc::new(AdmissionQueue::new(policy(8, 5)));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        assert!(q.push(p * 1000 + i, 1));
                    }
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(batch) = q.next_batch() {
                    assert!(batch.len() <= 8, "batch overflow: {}", batch.len());
                    seen.extend(batch);
                }
                seen
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut seen = consumer.join().unwrap();
        seen.sort_unstable();
        let mut expect: Vec<i32> = (0..4)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    #[should_panic(expected = "max batch weight must be positive")]
    fn zero_max_weight_rejected() {
        BatchPolicy::new(0, Duration::from_millis(1));
    }
}
