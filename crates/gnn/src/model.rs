//! GNN models for power regression.
//!
//! [`PowerModel`] implements the paper's HEC-GNN (Eq. 4–7) and the four
//! baseline convolutions it is compared against (GCN, GraphSAGE, GraphConv,
//! GINE), sharing the outer architecture: `layers` graph convolutions,
//! jumping-knowledge sum pooling over *all* layer outputs (Eq. 6), an
//! optional metadata MLP (HLS-report globals), and a two-layer regression
//! head (Eq. 7). Ablation switches (edge features / directionality /
//! heterogeneity / metadata) reproduce the variants of Table II.
//!
//! The HEC-GNN aggregation exploits linearity: `Σ_u W_r W_E e_{u,v,r}` is
//! computed as `W_r · W_E · Σ_u e_{u,v,r}` — edge features are scatter-added
//! per relation *before* the two projections, which is mathematically
//! identical to Eq. 5 and far cheaper.

use crate::batch::{GraphBatch, RelEdges};
use pg_graphcon::{PowerGraph, Relation};
use pg_tensor::{init, Matrix, ParamStore, Tape, Var};
use pg_util::Rng64;

/// Convolution architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// The paper's heterogeneous edge-centric convolution (Eq. 4–5).
    Hec,
    /// Kipf & Welling GCN (baseline \[13\]).
    Gcn,
    /// GraphSAGE with mean aggregation (baseline \[14\]).
    Sage,
    /// Morris et al. GraphConv with edge weights (baseline \[16\]).
    GraphConv,
    /// GINE with edge-feature injection (baseline \[15\]).
    Gine,
}

/// Graph readout (pooling) mode for the jumping-knowledge stage (Eq. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pool {
    /// Sum pooling — the paper's readout.
    Add,
    /// Mean pooling (sum scaled by 1/|V_g| per graph).
    Mean,
    /// Elementwise max pooling (gradient routes to the argmax node).
    Max,
}

impl Pool {
    /// All pooling modes, in a fixed sweep order.
    pub const ALL: [Pool; 3] = [Pool::Add, Pool::Mean, Pool::Max];

    /// CLI/sweep name.
    pub fn name(self) -> &'static str {
        match self {
            Pool::Add => "add",
            Pool::Mean => "mean",
            Pool::Max => "max",
        }
    }

    /// Parses a CLI/sweep name.
    pub fn parse(s: &str) -> Option<Pool> {
        match s {
            "add" | "sum" => Some(Pool::Add),
            "mean" => Some(Pool::Mean),
            "max" => Some(Pool::Max),
            _ => None,
        }
    }
}

/// Model hyperparameters and ablation switches.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Convolution type.
    pub arch: Arch,
    /// Hidden dimension (paper: 128; scaled defaults are smaller).
    pub hidden: usize,
    /// Number of convolution layers (paper: 3).
    pub layers: usize,
    /// Graph readout mode (paper: sum).
    pub pool: Pool,
    /// Attention heads for the HEC edge aggregation; `0` disables
    /// attention (the paper's unweighted scatter-sum). When nonzero,
    /// `hidden` must be divisible by `heads`.
    pub heads: usize,
    /// Dropout rate (paper: 0.2).
    pub dropout: f32,
    /// Use edge features in aggregation (HEC `w/o e.f.` ablation).
    pub use_edge_feats: bool,
    /// Respect edge direction (HEC `w/o dir.` ablation aggregates both
    /// ways).
    pub directed: bool,
    /// Separate weights per relation type (HEC `w/o hetr.` ablation).
    pub heterogeneous: bool,
    /// Use the metadata MLP (HEC `w/o md.` ablation).
    pub use_metadata: bool,
    /// Node feature width.
    pub node_dim: usize,
    /// Metadata feature width.
    pub meta_dim: usize,
}

impl ModelConfig {
    /// The full HEC-GNN configuration of the paper, at the given hidden
    /// width.
    pub fn hec(hidden: usize) -> Self {
        ModelConfig {
            arch: Arch::Hec,
            hidden,
            layers: 3,
            pool: Pool::Add,
            heads: 0,
            dropout: 0.2,
            use_edge_feats: true,
            directed: true,
            heterogeneous: true,
            use_metadata: true,
            node_dim: PowerGraph::NODE_FEATS,
            meta_dim: 10,
        }
    }

    /// A baseline GNN configuration (node-centric; no metadata branch, as
    /// the baselines in Table I).
    pub fn baseline(arch: Arch, hidden: usize) -> Self {
        ModelConfig {
            arch,
            hidden,
            layers: 3,
            pool: Pool::Add,
            heads: 0,
            dropout: 0.2,
            use_edge_feats: matches!(arch, Arch::GraphConv | Arch::Gine),
            directed: true,
            heterogeneous: false,
            use_metadata: false,
            node_dim: PowerGraph::NODE_FEATS,
            meta_dim: 10,
        }
    }

    /// Returns the config with a different readout mode.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Returns the config with a different convolution depth.
    pub fn with_layers(mut self, layers: usize) -> Self {
        self.layers = layers;
        self
    }

    /// Returns the config with multi-head edge attention enabled (HEC
    /// only; `0` disables it).
    pub fn with_heads(mut self, heads: usize) -> Self {
        self.heads = heads;
        self
    }

    /// Short zoo identifier, e.g. `hec-p_add-l3-h0`, used in sweep tables.
    pub fn zoo_name(&self) -> String {
        let arch = match self.arch {
            Arch::Hec => "hec",
            Arch::Gcn => "gcn",
            Arch::Sage => "sage",
            Arch::GraphConv => "graphconv",
            Arch::Gine => "gine",
        };
        format!(
            "{arch}-p_{}-l{}-h{}",
            self.pool.name(),
            self.layers,
            self.heads
        )
    }
}

#[derive(Debug, Clone, Default, PartialEq)]
struct Slots {
    wv: Vec<usize>,
    we: Vec<usize>,
    /// Per-layer, per-head attention score vectors (HEC, `heads > 0`).
    wa: Vec<Vec<usize>>,
    /// Per-layer, per-head edge projections (HEC, `heads > 0`).
    weh: Vec<Vec<usize>>,
    wr: Vec<Vec<usize>>,
    w2: Vec<usize>,
    w3: Vec<usize>,
    bias: Vec<usize>,
    meta_w: usize,
    meta_b: usize,
    head_w1: usize,
    head_b1: usize,
    head_w2: usize,
    head_b2: usize,
}

/// A trainable power-regression model.
///
/// The network regresses *normalized* labels: for a raw network output `z`
/// the absolute prediction is `z * target_scale + target_shift`. With
/// `target_shift == 0` this is the paper's mean-scaled MAPE regression; a
/// nonzero shift selects standardized (z-score) MSE regression, which keeps
/// small-epoch training well-conditioned for targets dominated by a large
/// constant offset (total power = dynamic + mostly-constant static).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Hyperparameters.
    pub config: ModelConfig,
    /// Parameters.
    pub store: ParamStore,
    slots: Slots,
    /// Output scale: the model regresses `(power - target_shift) /
    /// target_scale`.
    pub target_scale: f32,
    /// Output shift (0 for the paper's pure mean-scaled regression).
    pub target_shift: f32,
}

impl PowerModel {
    /// Creates a model with Glorot-initialized weights.
    pub fn new(config: ModelConfig, seed: u64) -> Self {
        let mut rng = Rng64::new(seed ^ 0x9e37_79b9);
        let mut store = ParamStore::new();
        let mut slots = Slots::default();
        let h = config.hidden;
        let attention = config.arch == Arch::Hec && config.heads > 0;
        if attention {
            assert!(
                h % config.heads == 0,
                "hidden ({h}) must be divisible by heads ({})",
                config.heads
            );
        }
        for l in 0..config.layers {
            let ind = if l == 0 { config.node_dim } else { h };
            slots
                .wv
                .push(store.register(&format!("wv{l}"), init::glorot(ind, h, &mut rng)));
            // Edge-message input width: raw activity features, or gathered
            // source embeddings when the edge-feature ablation is off.
            let edge_in = if config.use_edge_feats {
                PowerGraph::EDGE_FEATS
            } else {
                ind
            };
            let we_dims = match config.arch {
                Arch::Hec if attention => None, // per-head weh replaces we
                Arch::Hec => Some((edge_in, h)),
                Arch::Gine => Some((PowerGraph::EDGE_FEATS, ind)),
                _ => None,
            };
            if let Some((r, c)) = we_dims {
                slots
                    .we
                    .push(store.register(&format!("we{l}"), init::glorot(r, c, &mut rng)));
            } else {
                slots.we.push(usize::MAX);
            }
            if attention {
                let (mut wa, mut weh) = (Vec::new(), Vec::new());
                for k in 0..config.heads {
                    wa.push(store.register(
                        &format!("wa{l}_{k}"),
                        init::glorot(edge_in, 1, &mut rng),
                    ));
                    weh.push(store.register(
                        &format!("weh{l}_{k}"),
                        init::glorot(edge_in, h / config.heads, &mut rng),
                    ));
                }
                slots.wa.push(wa);
                slots.weh.push(weh);
            } else {
                slots.wa.push(Vec::new());
                slots.weh.push(Vec::new());
            }
            if config.arch == Arch::Hec && config.heterogeneous {
                let mut per_rel = Vec::new();
                for r in 0..Relation::COUNT {
                    per_rel
                        .push(store.register(&format!("wr{l}_{r}"), init::glorot(h, h, &mut rng)));
                }
                slots.wr.push(per_rel);
            } else {
                slots.wr.push(Vec::new());
            }
            if matches!(config.arch, Arch::Sage | Arch::GraphConv) {
                slots
                    .w2
                    .push(store.register(&format!("w2_{l}"), init::glorot(ind, h, &mut rng)));
            } else {
                slots.w2.push(usize::MAX);
            }
            if config.arch == Arch::Gine {
                slots
                    .w3
                    .push(store.register(&format!("w3_{l}"), init::glorot(h, h, &mut rng)));
            } else {
                slots.w3.push(usize::MAX);
            }
            slots
                .bias
                .push(store.register(&format!("b{l}"), init::zeros(1, h)));
        }
        slots.meta_w = store.register("meta_w", init::glorot(config.meta_dim, h, &mut rng));
        slots.meta_b = store.register("meta_b", init::zeros(1, h));
        let head_in = if config.use_metadata { 2 * h } else { h };
        slots.head_w1 = store.register("head_w1", init::glorot(head_in, h, &mut rng));
        slots.head_b1 = store.register("head_b1", init::zeros(1, h));
        slots.head_w2 = store.register("head_w2", init::glorot(h, 1, &mut rng));
        slots.head_b2 = store.register("head_b2", init::constant(1, 1, 1.0));
        PowerModel {
            config,
            store,
            slots,
            target_scale: 1.0,
            target_shift: 0.0,
        }
    }

    fn p(&self, tape: &mut Tape, slot: usize) -> Var {
        tape.param(slot, self.store.get(slot).clone())
    }

    /// Forward pass over a batch; returns the `G × 1` normalized-power
    /// prediction node.
    pub fn forward(
        &self,
        tape: &mut Tape,
        batch: &GraphBatch,
        train: bool,
        rng: &mut Rng64,
    ) -> Var {
        let n = batch.num_nodes;
        let mut x = tape.leaf(batch.node_feats.clone());
        let mut layer_outputs = Vec::with_capacity(self.config.layers);
        for l in 0..self.config.layers {
            let h = match self.config.arch {
                Arch::Hec => self.hec_layer(tape, batch, x, l, n),
                Arch::Gcn => self.gcn_layer(tape, batch, x, l, n),
                Arch::Sage => self.sage_layer(tape, batch, x, l, n),
                Arch::GraphConv => self.graphconv_layer(tape, batch, x, l, n),
                Arch::Gine => self.gine_layer(tape, batch, x, l, n),
            };
            let h = tape.dropout(h, self.config.dropout, train, rng);
            layer_outputs.push(h);
            x = h;
        }
        // Eq. 6: jumping-knowledge pooling over all conv layers (the
        // paper uses sum; mean and max are zoo variants).
        let inv_counts: Vec<f32> = if self.config.pool == Pool::Mean {
            let mut counts = vec![0.0f32; batch.num_graphs];
            for &g in &batch.graph_of {
                counts[g as usize] += 1.0;
            }
            counts.iter().map(|&c| 1.0 / c.max(1.0)).collect()
        } else {
            Vec::new()
        };
        let pooled: Vec<Var> = layer_outputs
            .into_iter()
            .map(|h| match self.config.pool {
                Pool::Add => tape.scatter_add(h, &batch.graph_of, batch.num_graphs),
                Pool::Mean => {
                    let s = tape.scatter_add(h, &batch.graph_of, batch.num_graphs);
                    tape.scale_rows(s, &inv_counts)
                }
                Pool::Max => tape.scatter_max(h, &batch.graph_of, batch.num_graphs),
            })
            .collect();
        let hg = tape.add_n(pooled);
        // Eq. 7: optional metadata embedding, then the regression head.
        let joint = if self.config.use_metadata {
            assert_eq!(
                batch.meta.cols, self.config.meta_dim,
                "metadata width mismatch: batch has {}, model expects {}",
                batch.meta.cols, self.config.meta_dim
            );
            let meta = tape.leaf(batch.meta.clone());
            let mw = self.p(tape, self.slots.meta_w);
            let mb = self.p(tape, self.slots.meta_b);
            let hm = tape.linear_bias_relu(meta, mw, mb);
            tape.concat_cols(hg, hm)
        } else {
            hg
        };
        let w1 = self.p(tape, self.slots.head_w1);
        let b1 = self.p(tape, self.slots.head_b1);
        let z1r = tape.linear_bias_relu(joint, w1, b1);
        let w2 = self.p(tape, self.slots.head_w2);
        let b2 = self.p(tape, self.slots.head_b2);
        let out = tape.matmul(z1r, w2);
        tape.add_row(out, b2)
    }

    /// Relation groups the HEC layer aggregates over, honoring the
    /// heterogeneity and directionality switches.
    fn hec_groups<'a>(&self, batch: &'a GraphBatch) -> Vec<(usize, &'a RelEdges)> {
        let mut groups: Vec<(usize, &RelEdges)> = Vec::new();
        if self.config.heterogeneous {
            for (r, e) in batch.rel.iter().enumerate() {
                groups.push((r, e));
            }
            if !self.config.directed {
                for (r, e) in batch.rel_rev.iter().enumerate() {
                    groups.push((r, e));
                }
            }
        } else {
            groups.push((0, &batch.all));
            if !self.config.directed {
                groups.push((0, &batch.all_rev));
            }
        }
        groups
    }

    fn hec_layer(&self, tape: &mut Tape, batch: &GraphBatch, x: Var, l: usize, n: usize) -> Var {
        let wv = self.p(tape, self.slots.wv[l]);
        let mut terms = vec![tape.matmul(x, wv)];
        let we = if self.config.heads == 0 {
            Some(self.p(tape, self.slots.we[l]))
        } else {
            None // attention path projects per head instead
        };
        for (r, edges) in self.hec_groups(batch) {
            if edges.is_empty() {
                continue;
            }
            let agg = if let Some(we) = we {
                if self.config.use_edge_feats {
                    // Σ_u e_{u,v,r} first (linearity of Eq. 5), then W_E, W_r.
                    let ef = tape.leaf(edges.feats.clone());
                    let summed = tape.scatter_add(ef, &edges.dst, n);
                    tape.matmul(summed, we)
                } else {
                    let hs = tape.gather(x, &edges.src);
                    let summed = tape.scatter_add(hs, &edges.dst, n);
                    tape.matmul(summed, we)
                }
            } else {
                self.attention_agg(tape, x, edges, l, n)
            };
            let msg = if self.config.heterogeneous {
                let wr = self.p(tape, self.slots.wr[l][r]);
                tape.matmul(agg, wr)
            } else {
                agg
            };
            terms.push(msg);
        }
        let s = tape.add_n(terms);
        let b = self.p(tape, self.slots.bias[l]);
        tape.add_row_relu(s, b)
    }

    /// Multi-head attention-weighted edge aggregation for one relation
    /// group: per head, edge messages are softmax-weighted per destination
    /// node before the scatter-sum, and head outputs are concatenated back
    /// to the hidden width. Weighting breaks the linearity shortcut of
    /// Eq. 5, so messages are projected after the weighted sum per head.
    fn attention_agg(
        &self,
        tape: &mut Tape,
        x: Var,
        edges: &RelEdges,
        l: usize,
        n: usize,
    ) -> Var {
        let ein = if self.config.use_edge_feats {
            tape.leaf(edges.feats.clone())
        } else {
            tape.gather(x, &edges.src)
        };
        let mut acc: Option<Var> = None;
        for k in 0..self.config.heads {
            let wa = self.p(tape, self.slots.wa[l][k]);
            let score = tape.matmul(ein, wa);
            let alpha = tape.segment_softmax(score, &edges.dst, n);
            let weighted = tape.mul_col(ein, alpha);
            let summed = tape.scatter_add(weighted, &edges.dst, n);
            let weh = self.p(tape, self.slots.weh[l][k]);
            let head = tape.matmul(summed, weh);
            acc = Some(match acc {
                None => head,
                Some(prev) => tape.concat_cols(prev, head),
            });
        }
        acc.expect("heads > 0 on the attention path")
    }

    fn gcn_layer(&self, tape: &mut Tape, batch: &GraphBatch, x: Var, l: usize, n: usize) -> Var {
        let hs = tape.gather(x, &batch.gcn_src);
        let hw = tape.scale_rows(hs, &batch.gcn_coeff);
        let agg = tape.scatter_add(hw, &batch.gcn_dst, n);
        let wv = self.p(tape, self.slots.wv[l]);
        let b = self.p(tape, self.slots.bias[l]);
        tape.linear_bias_relu(agg, wv, b)
    }

    fn sage_layer(&self, tape: &mut Tape, batch: &GraphBatch, x: Var, l: usize, n: usize) -> Var {
        let inv_deg: Vec<f32> = batch.in_degree.iter().map(|&d| 1.0 / d.max(1.0)).collect();
        let hs = tape.gather(x, &batch.all.src);
        let agg = tape.scatter_add(hs, &batch.all.dst, n);
        let mean = tape.scale_rows(agg, &inv_deg);
        let wv = self.p(tape, self.slots.wv[l]);
        let w2 = self.p(tape, self.slots.w2[l]);
        let self_term = tape.matmul(x, wv);
        let neigh_term = tape.matmul(mean, w2);
        let s = tape.add(self_term, neigh_term);
        let b = self.p(tape, self.slots.bias[l]);
        tape.add_row_relu(s, b)
    }

    fn graphconv_layer(
        &self,
        tape: &mut Tape,
        batch: &GraphBatch,
        x: Var,
        l: usize,
        n: usize,
    ) -> Var {
        // Edge weight = mean of the 4 activity features (GraphConv consumes
        // scalar edge weights).
        let ew: Vec<f32> = (0..batch.all.len())
            .map(|e| batch.all.feats.row(e).iter().sum::<f32>() / 4.0)
            .collect();
        let hs = tape.gather(x, &batch.all.src);
        let hw = tape.scale_rows(hs, &ew);
        let agg = tape.scatter_add(hw, &batch.all.dst, n);
        let wv = self.p(tape, self.slots.wv[l]);
        let w2 = self.p(tape, self.slots.w2[l]);
        let self_term = tape.matmul(x, wv);
        let neigh_term = tape.matmul(agg, w2);
        let s = tape.add(self_term, neigh_term);
        let b = self.p(tape, self.slots.bias[l]);
        tape.add_row_relu(s, b)
    }

    fn gine_layer(&self, tape: &mut Tape, batch: &GraphBatch, x: Var, l: usize, n: usize) -> Var {
        if batch.all.is_empty() {
            let wv = self.p(tape, self.slots.wv[l]);
            let b = self.p(tape, self.slots.bias[l]);
            return tape.linear_bias_relu(x, wv, b);
        }
        let hs = tape.gather(x, &batch.all.src);
        let ef = tape.leaf(batch.all.feats.clone());
        let we = self.p(tape, self.slots.we[l]);
        let ep = tape.matmul(ef, we);
        let s = tape.add(hs, ep);
        let r = tape.relu(s);
        let agg = tape.scatter_add(r, &batch.all.dst, n);
        let tot = tape.add(x, agg); // ε = 0
        let wv = self.p(tape, self.slots.wv[l]);
        let b = self.p(tape, self.slots.bias[l]);
        let m1r = tape.linear_bias_relu(tot, wv, b);
        let w3 = self.p(tape, self.slots.w3[l]);
        tape.matmul(m1r, w3)
    }

    /// One training step's loss and gradients for a batch.
    ///
    /// With `target_shift == 0` this is the paper's MAPE loss on
    /// mean-scaled labels; with a shift the labels are standardized and can
    /// straddle zero, so the loss switches to MSE (MAPE is undefined there).
    pub fn loss_and_grads(
        &self,
        batch: &GraphBatch,
        rng: &mut Rng64,
    ) -> (f64, Vec<Option<Matrix>>) {
        let mut tape = Tape::new();
        self.loss_and_grads_in(batch, rng, &mut tape)
    }

    /// [`PowerModel::loss_and_grads`] recording onto a caller-owned tape.
    ///
    /// The tape is [`Tape::reset`] first, so a training loop can hold one
    /// long-lived tape per worker and reuse its arenas every step instead
    /// of reallocating the whole graph.
    pub fn loss_and_grads_in(
        &self,
        batch: &GraphBatch,
        rng: &mut Rng64,
        tape: &mut Tape,
    ) -> (f64, Vec<Option<Matrix>>) {
        tape.reset();
        let pred = self.forward(tape, batch, true, rng);
        let scaled: Vec<f32> = batch
            .targets
            .iter()
            .map(|&t| (t - self.target_shift) / self.target_scale)
            .collect();
        let loss = if self.target_shift == 0.0 {
            tape.mape_loss(pred, &scaled)
        } else {
            tape.mse_loss(pred, &scaled)
        };
        let value = tape.value(loss).data[0] as f64;
        (value, tape.backward(loss))
    }

    /// Predicts absolute power for a set of graphs (eval mode).
    pub fn predict(&self, graphs: &[&PowerGraph]) -> Vec<f64> {
        let targets = vec![0.0; graphs.len()];
        let batch = GraphBatch::new(graphs, &targets);
        self.predict_prebuilt(&batch)
    }

    /// Predicts on an already-assembled batch (lets ensembles share one
    /// batch across members). Power is strictly positive, so raw network
    /// outputs are floored at 1 mW.
    pub fn predict_prebuilt(&self, batch: &GraphBatch) -> Vec<f64> {
        let mut tape = Tape::new();
        self.predict_prebuilt_in(batch, &mut tape)
    }

    /// [`PowerModel::predict_prebuilt`] recording onto a caller-owned tape
    /// (reset first), so serving workers can reuse one tape per shard.
    pub fn predict_prebuilt_in(&self, batch: &GraphBatch, tape: &mut Tape) -> Vec<f64> {
        tape.reset();
        let mut rng = Rng64::new(0);
        let pred = self.forward(tape, batch, false, &mut rng);
        tape.value(pred)
            .data
            .iter()
            .map(|&v| ((v * self.target_scale + self.target_shift) as f64).max(1e-3))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph(seed: u64) -> PowerGraph {
        let mut rng = Rng64::new(seed);
        let nodes = 5 + rng.below(4);
        let f = PowerGraph::NODE_FEATS;
        let mut node_feats = vec![0.0f32; nodes * f];
        for n in 0..nodes {
            node_feats[n * f + rng.below(5)] = 1.0;
            node_feats[n * f + 28 + rng.below(6)] = rng.f32();
        }
        let edges: Vec<(u32, u32)> = (1..nodes as u32).map(|d| (d - 1, d)).collect();
        let ne = edges.len();
        PowerGraph {
            kernel: "t".into(),
            design_id: format!("t{seed}"),
            num_nodes: nodes,
            node_feats,
            edges,
            edge_feats: (0..ne)
                .map(|_| [rng.f32(), rng.f32(), rng.f32() * 0.5, rng.f32() * 0.5])
                .collect(),
            edge_rel: (0..ne)
                .map(|i| match i % 4 {
                    0 => Relation::AA,
                    1 => Relation::AN,
                    2 => Relation::NA,
                    _ => Relation::NN,
                })
                .collect(),
            meta: (0..10).map(|k| 0.1 * k as f32).collect(),
        }
    }

    fn all_archs() -> Vec<ModelConfig> {
        vec![
            ModelConfig::hec(16),
            ModelConfig::baseline(Arch::Gcn, 16),
            ModelConfig::baseline(Arch::Sage, 16),
            ModelConfig::baseline(Arch::GraphConv, 16),
            ModelConfig::baseline(Arch::Gine, 16),
        ]
    }

    #[test]
    fn forward_shapes_for_every_arch() {
        let graphs: Vec<PowerGraph> = (0..3).map(tiny_graph).collect();
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let batch = GraphBatch::new(&refs, &[1.0, 2.0, 3.0]);
        for cfg in all_archs() {
            let model = PowerModel::new(cfg.clone(), 1);
            let mut tape = Tape::new();
            let mut rng = Rng64::new(0);
            let out = model.forward(&mut tape, &batch, false, &mut rng);
            let v = tape.value(out);
            assert_eq!((v.rows, v.cols), (3, 1), "arch {:?}", cfg.arch);
            assert!(v.is_finite(), "arch {:?}", cfg.arch);
        }
    }

    #[test]
    fn gradients_flow_to_all_used_params() {
        let graphs: Vec<PowerGraph> = (0..4).map(tiny_graph).collect();
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let batch = GraphBatch::new(&refs, &[1.0, 1.5, 0.5, 2.0]);
        let model = PowerModel::new(ModelConfig::hec(16), 2);
        let mut rng = Rng64::new(3);
        let (loss, grads) = model.loss_and_grads(&batch, &mut rng);
        assert!(loss.is_finite() && loss > 0.0);
        let with_grad = grads.iter().filter(|g| g.is_some()).count();
        // wv, we, 4 wr, bias per layer x3 + meta 2 + head 4
        assert!(
            with_grad >= 3 * 3 + 2 + 4,
            "only {with_grad} params received gradients"
        );
    }

    #[test]
    fn ablation_switches_change_param_count() {
        let full = PowerModel::new(ModelConfig::hec(16), 1);
        let mut no_het = ModelConfig::hec(16);
        no_het.heterogeneous = false;
        let nh = PowerModel::new(no_het, 1);
        assert!(full.store.len() > nh.store.len());
        let mut no_md = ModelConfig::hec(16);
        no_md.use_metadata = false;
        let nm = PowerModel::new(no_md, 1);
        // metadata params still registered but head shrinks
        assert!(nm.store.get(nm.slots.head_w1).rows < full.store.get(full.slots.head_w1).rows);
    }

    #[test]
    fn zoo_axes_forward_and_train() {
        let graphs: Vec<PowerGraph> = (0..3).map(tiny_graph).collect();
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let batch = GraphBatch::new(&refs, &[1.0, 2.0, 3.0]);
        let mut zoo = Vec::new();
        for pool in Pool::ALL {
            zoo.push(ModelConfig::hec(16).with_pool(pool));
        }
        for layers in [1, 2, 4] {
            zoo.push(ModelConfig::hec(16).with_layers(layers));
        }
        for heads in [1, 2, 4] {
            zoo.push(ModelConfig::hec(16).with_heads(heads));
        }
        zoo.push(
            ModelConfig::hec(16)
                .with_pool(Pool::Max)
                .with_layers(2)
                .with_heads(2),
        );
        zoo.push(ModelConfig::baseline(Arch::Gcn, 16).with_pool(Pool::Mean));
        for cfg in zoo {
            let name = cfg.zoo_name();
            let model = PowerModel::new(cfg, 7);
            let mut rng = Rng64::new(3);
            let mut tape = Tape::new();
            let out = model.forward(&mut tape, &batch, false, &mut rng);
            let v = tape.value(out);
            assert_eq!((v.rows, v.cols), (3, 1), "{name}");
            assert!(v.is_finite(), "{name}");
            let (loss, grads) = model.loss_and_grads(&batch, &mut rng);
            assert!(loss.is_finite(), "{name}");
            assert!(
                grads.iter().any(|g| g.is_some()),
                "{name}: no gradients flowed"
            );
        }
    }

    #[test]
    fn attention_gradients_reach_every_head() {
        let graphs: Vec<PowerGraph> = (0..4).map(tiny_graph).collect();
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let batch = GraphBatch::new(&refs, &[1.0, 1.5, 0.5, 2.0]);
        let cfg = ModelConfig::hec(16).with_heads(2);
        let model = PowerModel::new(cfg, 2);
        let mut rng = Rng64::new(3);
        let (_, grads) = model.loss_and_grads(&batch, &mut rng);
        for l in 0..model.config.layers {
            for k in 0..model.config.heads {
                assert!(
                    grads[model.slots.wa[l][k]].is_some(),
                    "no gradient for wa{l}_{k}"
                );
                assert!(
                    grads[model.slots.weh[l][k]].is_some(),
                    "no gradient for weh{l}_{k}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "divisible by heads")]
    fn heads_must_divide_hidden() {
        PowerModel::new(ModelConfig::hec(16).with_heads(3), 1);
    }

    #[test]
    fn zoo_names_are_distinct() {
        let configs = [
            ModelConfig::hec(16),
            ModelConfig::hec(16).with_pool(Pool::Mean),
            ModelConfig::hec(16).with_pool(Pool::Max),
            ModelConfig::hec(16).with_layers(2),
            ModelConfig::hec(16).with_heads(2),
            ModelConfig::baseline(Arch::Gcn, 16),
            ModelConfig::baseline(Arch::Sage, 16),
        ];
        let mut names: Vec<String> = configs.iter().map(|c| c.zoo_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), configs.len(), "zoo names collide: {names:?}");
    }

    #[test]
    fn undirected_variant_runs() {
        let graphs: Vec<PowerGraph> = (0..2).map(tiny_graph).collect();
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let batch = GraphBatch::new(&refs, &[1.0, 2.0]);
        let mut cfg = ModelConfig::hec(16);
        cfg.directed = false;
        let model = PowerModel::new(cfg, 1);
        let mut tape = Tape::new();
        let mut rng = Rng64::new(0);
        let out = model.forward(&mut tape, &batch, false, &mut rng);
        assert!(tape.value(out).is_finite());
    }

    #[test]
    fn overfits_two_graphs() {
        // sanity: HEC-GNN can fit two targets exactly
        let graphs: Vec<PowerGraph> = (0..2).map(tiny_graph).collect();
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let batch = GraphBatch::new(&refs, &[0.5, 2.0]);
        let mut cfg = ModelConfig::hec(16);
        cfg.dropout = 0.0;
        let mut model = PowerModel::new(cfg, 4);
        model.target_scale = 1.0;
        let mut opt = pg_tensor::Adam::new(0.01);
        let mut rng = Rng64::new(5);
        let mut last = f64::MAX;
        for _ in 0..300 {
            let (loss, grads) = model.loss_and_grads(&batch, &mut rng);
            opt.step(&mut model.store, &grads);
            last = loss;
        }
        assert!(last < 0.05, "failed to overfit: loss {last}");
        let preds = model.predict(&refs);
        assert!((preds[0] - 0.5).abs() < 0.15, "pred {:?}", preds);
        assert!((preds[1] - 2.0).abs() < 0.3, "pred {:?}", preds);
    }

    #[test]
    fn predict_scales_output() {
        let graphs: Vec<PowerGraph> = (0..2).map(tiny_graph).collect();
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let mut model = PowerModel::new(ModelConfig::hec(16), 1);
        let p1 = model.predict(&refs);
        model.target_scale = 2.0;
        let p2 = model.predict(&refs);
        for (a, b) in p1.iter().zip(&p2) {
            // scaling holds wherever the positive-power floor is inactive
            if *a > 1e-3 && *b > 1e-3 {
                assert!((b - 2.0 * a).abs() < 1e-4);
            }
        }
    }
}
