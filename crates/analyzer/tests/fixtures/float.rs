//~ path: crates/gnn/src/train.rs
// Seeded D-family violations: float casts and reductions in a threaded module
// (the fixture borrows pg_gnn::train's path, which is on the threaded list).

pub fn mean(v: &[f64]) -> f64 {
    let total: f64 = v.iter().sum(); //~ float_fold
    total / v.len() as f64 //~ float_cast
}

pub fn scale(x: u32) -> f32 {
    x as f32 //~ float_cast
}

pub fn integer_math(v: &[u64]) -> u64 {
    // Integer reductions are order-free; only float folds are flagged.
    v.iter().sum() //~ float_fold (rule is type-blind; suppress when integer)
}
