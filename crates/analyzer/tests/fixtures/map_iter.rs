//~ path: crates/x/src/lib.rs
// Seeded D-family violations: hash-collection iteration in lib code.
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Mutex;

pub struct Cache {
    map: Mutex<HashMap<u64, u32>>,
}

pub fn direct_iter(m: HashMap<u32, u32>) -> u32 {
    m.iter().map(|(_, v)| *v).sum() //~ map_iter
}

pub fn for_loop(m: HashMap<u32, u32>) -> u32 {
    let mut acc = 0;
    for (_k, v) in &m {
        //~ map_iter (reported on the `m` after `in &`)
        acc += v;
    }
    acc
}

pub fn set_drain(mut s: HashSet<u32>) -> Vec<u32> {
    s.drain().collect() //~ map_iter
}

impl Cache {
    pub fn values(&self) -> Vec<u32> {
        let map = self.map.lock().unwrap();
        map.values().copied().collect() //~ map_iter (wrapped in Mutex)
    }
}

// Negative cases: none of these may fire.
pub fn lookup_only(m: HashMap<u32, u32>) -> Option<u32> {
    m.get(&3).copied()
}

// (named `b`, not `m`: name-to-type resolution is file-scoped, so reusing a
// name that is a hash collection elsewhere in the file would be flagged)
pub fn ordered(b: BTreeMap<u32, u32>) -> u32 {
    b.values().sum()
}

pub fn suppressed(m: HashMap<u32, u32>) -> u32 {
    // pg-lint: allow(map_iter, reason = "summed; addition order cannot change the integer result")
    m.values().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn in_tests_maps_are_fine() {
        let m: HashMap<u32, u32> = HashMap::new();
        for _ in &m {}
        let _ = m.iter();
    }
}
