//~ path: crates/x/src/lib.rs
// Seeded H-family violations: metric names off the house convention
// (lowercase snake_case; counters end `_total`; histograms carry a unit
// suffix; `_total` is reserved for counters).
use pg_util::metrics::{self, buckets};

pub fn register() {
    // Violations.
    let _ = metrics::counter("requestsServed"); //~ metric_name (not snake_case)
    let _ = metrics::counter("serve_requests"); //~ metric_name (counter w/o _total)
    let _ = metrics::counter_with("Serve_Total", &[("model", "m")]); //~ metric_name
    let _ = metrics::histogram("service_time", buckets::LATENCY_US); //~ metric_name (no unit)
    let _ = metrics::gauge("queue_total"); //~ metric_name (_total on a gauge)

    // Compliant names stay silent.
    let _ = metrics::counter("serve_requests_total");
    let _ = metrics::counter_with("serve_graphs_total", &[("model", "m")]);
    let _ = metrics::histogram("serve_service_time_us", buckets::LATENCY_US);
    let _ = metrics::histogram_with("serve_batch_size_graphs", &[], buckets::SIZE_POW2);
    let _ = metrics::gauge("serve_queue_depth");

    // Runtime-built names are out of reach for a token-level rule.
    let name = format!("dyn_{}", 1);
    let _ = metrics::counter(&name);

    // Suppressible like every other rule.
    // pg-lint: allow(metric_name, reason = "legacy v1 name kept for dashboard compat")
    let _ = metrics::counter("legacyRequests");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_scratch_names() {
        let _ = pg_util::metrics::counter("ScratchName");
    }
}
