//~ path: crates/x/src/lib.rs
// Seeded D-family violations: wall-clock reads in library code.
use std::time::Instant; //~ wall_clock
use std::time::SystemTime; //~ wall_clock

pub fn timed<F: FnOnce()>(f: F) -> u64 {
    let t0 = Instant::now(); //~ wall_clock
    f();
    t0.elapsed().as_nanos() as u64
}

pub fn stamp() -> u64 {
    SystemTime::now() //~ wall_clock
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

pub fn allowed() -> u64 {
    // pg-lint: allow(wall_clock, reason = "telemetry only; value never reaches an artifact")
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_things() {
        let _ = std::time::Instant::now();
    }
}
