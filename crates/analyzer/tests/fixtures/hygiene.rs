//~ path: crates/x/src/lib.rs
// Seeded H-family violations: prints in lib code, allow without reason,
// malformed suppressions.

pub fn noisy() {
    println!("progress"); //~ print_hygiene
    eprintln!("warning"); //~ print_hygiene
}

#[allow(dead_code)] //~ allow_no_reason
fn unused() {}

// reason: retained to keep the v1 trait object layout stable.
#[allow(dead_code)]
fn justified() {}

// pg-lint: allow(print_hygiene) //~ bad_suppression (missing reason)
pub fn still_noisy() {
    println!("not actually suppressed"); //~ print_hygiene
}
