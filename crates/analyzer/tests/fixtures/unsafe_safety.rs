//~ path: crates/x/src/lib.rs
// Seeded S-family violations: unsafe without a SAFETY comment.

pub fn raw_read(p: *const u8) -> u8 {
    unsafe { *p } //~ unsafe_no_safety
}

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points into a live allocation of at
    // least one byte.
    unsafe { *p }
}

// SAFETY: all fields are plain-old-data; no drop glue, no references.
pub unsafe fn transmute_like() {}

pub unsafe fn undocumented_fn() {} //~ unsafe_no_safety
