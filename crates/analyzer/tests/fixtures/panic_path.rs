//~ path: crates/store/src/fixture.rs
// Seeded S-family violations: panics in a panic-audited scope (pg_store).

pub fn load(bytes: &[u8]) -> u32 {
    let first = bytes.first().unwrap(); //~ panic_path
    let second = bytes.get(1).expect("second byte"); //~ panic_path
    if bytes.len() > 9 {
        panic!("too long"); //~ panic_path
    }
    (*first as u32) << 8 | *second as u32
}

pub fn load_checked(bytes: &[u8]) -> Option<u32> {
    let first = *bytes.first()? as u32;
    let second = *bytes.get(1)? as u32;
    Some(first << 8 | second)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
