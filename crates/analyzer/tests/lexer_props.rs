//! Property tests for the pg_lint lexer: on *arbitrary* input it must never
//! panic, and its tokens must tile the input exactly — contiguous,
//! non-overlapping spans from byte 0 to `len`, with line numbers
//! non-decreasing. These two invariants are what the rule engine relies on.

use pg_lint::lexer::lex;
use proptest::prelude::*;

fn assert_tiles(src: &str) {
    let toks = lex(src);
    let mut pos = 0usize;
    let mut line = 1u32;
    for t in &toks {
        assert_eq!(t.start, pos, "gap or overlap at byte {pos} in {src:?}");
        assert!(t.end > t.start, "empty token at byte {pos} in {src:?}");
        assert!(t.line >= line, "line went backwards in {src:?}");
        assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "span not on char boundary in {src:?}"
        );
        line = t.line;
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tokens do not cover {src:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes (lossily decoded): never panic, always tile.
    #[test]
    fn lexer_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..160)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_tiles(&src);
    }

    /// Random concatenations of adversarial Rust fragments — unterminated
    /// literals, nested comments, raw strings, lifetimes — stressing every
    /// lexer mode boundary.
    #[test]
    fn lexer_total_on_tricky_fragments(
        picks in prop::collection::vec(0usize..16, 0..12)
    ) {
        const FRAGMENTS: [&str; 16] = [
            "r#\"raw \" string\"#",
            "r##\"nested \"# inner\"##",
            "'a>",
            "'x'",
            "b'\\n'",
            "\"unterminated",
            "/* nested /* block */ comment */",
            "/* unterminated",
            "// line comment\n",
            "0..5",
            "1.5e-3f64",
            "ident_1::path->x",
            "#[cfg(test)]",
            "r#fn",
            "\"esc \\\" aped\"",
            "..=",
        ];
        let mut src = String::new();
        for p in &picks {
            src.push_str(FRAGMENTS[*p]);
            src.push(' ');
        }
        assert_tiles(&src);
    }
}

#[test]
fn lexer_total_on_own_sources() {
    // The analyzer's own crate is a convenient corpus of real Rust.
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut checked = 0;
    let mut stack = vec![dir];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let p = entry.unwrap().path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                assert_tiles(&std::fs::read_to_string(&p).unwrap());
                checked += 1;
            }
        }
    }
    assert!(checked >= 7, "expected to lex the analyzer's own modules");
}
