//! Fixture-driven rule tests: every `tests/fixtures/<name>.rs` holds seeded
//! violations (and negative cases that must stay silent); the sibling
//! `<name>.expected` snapshot lists the findings as sorted `rule:line`
//! lines. The fixture's first line, `//~ path: <workspace path>`, sets the
//! synthetic path the file is checked under, which drives rule scoping.

use std::path::PathBuf;

use pg_lint::check::{check_file, Config};
use pg_lint::source::{FileClass, SourceFile};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run_fixture(name: &str) -> (Vec<String>, Vec<String>) {
    let dir = fixtures_dir();
    let src = std::fs::read_to_string(dir.join(format!("{name}.rs")))
        .unwrap_or_else(|e| panic!("read fixture {name}.rs: {e}"));
    let expected_text = std::fs::read_to_string(dir.join(format!("{name}.expected")))
        .unwrap_or_else(|e| panic!("read snapshot {name}.expected: {e}"));

    let synthetic_path = src
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("//~ path:"))
        .map(|p| p.trim().to_string())
        .unwrap_or_else(|| panic!("fixture {name}.rs must start with `//~ path: <path>`"));
    let class = if synthetic_path.contains("/src/bin/") {
        FileClass::Bin
    } else if synthetic_path.contains("/tests/") {
        FileClass::Test
    } else {
        FileClass::Lib
    };

    let file = SourceFile::new(synthetic_path, class, src);
    let mut findings = Vec::new();
    check_file(&file, &Config::house(), &mut findings);

    let mut got: Vec<String> = findings
        .iter()
        .map(|f| format!("{}:{}", f.rule, f.line))
        .collect();
    got.sort();
    let mut expected: Vec<String> = expected_text
        .lines()
        .map(|l| l.trim().to_string())
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    expected.sort();
    (got, expected)
}

macro_rules! fixture_test {
    ($name:ident) => {
        #[test]
        fn $name() {
            let (got, expected) = run_fixture(stringify!($name));
            assert_eq!(
                got,
                expected,
                "findings for fixture `{}` diverged from the snapshot",
                stringify!($name)
            );
        }
    };
}

fixture_test!(map_iter);
fixture_test!(wall_clock);
fixture_test!(float);
fixture_test!(unsafe_safety);
fixture_test!(panic_path);
fixture_test!(hygiene);
fixture_test!(metric_name);

/// The A-family rules are manifest-level, so their "fixtures" are inline
/// TOML: one seeded back-edge, one seeded external dependency.
#[test]
fn dag_fixture_back_edge() {
    let m = pg_lint::manifest::parse_manifest(
        "crates/util/Cargo.toml",
        "[package]\nname = \"pg_util\"\n[dependencies]\npg_gnn.workspace = true\n",
    );
    let mut f = Vec::new();
    pg_lint::arch::check_manifest(&m, &mut f);
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].rule, "dag");
}

#[test]
fn dag_fixture_external_dep() {
    let m = pg_lint::manifest::parse_manifest(
        "crates/gnn/Cargo.toml",
        "[package]\nname = \"pg_gnn\"\n[dependencies]\nrayon = \"1\"\n",
    );
    let mut f = Vec::new();
    pg_lint::arch::check_manifest(&m, &mut f);
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].rule, "external_dep");
}
