//! `pg-lint` — run the workspace static analyzer.
//!
//! ```text
//! pg-lint --workspace [--deny-warnings] [--json out.jsonl]
//!         [--baseline pg-lint.baseline] [--write-baseline] [--root DIR]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use pg_lint::engine::{apply_baseline, parse_baseline, render_baseline, run_workspace};
use pg_lint::Config;

fn usage() -> &'static str {
    "usage: pg-lint --workspace [--deny-warnings] [--json PATH] \
     [--baseline PATH] [--write-baseline] [--root DIR]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut deny_warnings = false;
    let mut json_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut root: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--deny-warnings" => deny_warnings = true,
            "--write-baseline" => write_baseline = true,
            "--json" => match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("pg-lint: --json needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("pg-lint: --baseline needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("pg-lint: --root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pg-lint: unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if !workspace {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    }

    // Default root: walk up from CWD to the first directory whose Cargo.toml
    // declares a [workspace], so the bin works from any crate dir.
    let root = match root {
        Some(r) => r,
        None => {
            let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            loop {
                let m = dir.join("Cargo.toml");
                let is_ws = std::fs::read_to_string(&m)
                    .map(|t| t.contains("[workspace]"))
                    .unwrap_or(false);
                if is_ws {
                    break dir;
                }
                if !dir.pop() {
                    eprintln!("pg-lint: no workspace root found above the current directory");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let baseline_path = baseline_path.unwrap_or_else(|| root.join("pg-lint.baseline"));
    let cfg = Config::house();
    let (findings, files, manifests) = run_workspace(&root, &cfg);

    if write_baseline {
        let text = render_baseline(&findings);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("pg-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "pg-lint: wrote {} ({} finding class(es)); fill in the reasons",
            baseline_path.display(),
            text.lines().filter(|l| !l.starts_with('#')).count()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("pg-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Vec::new(), // no baseline file = empty baseline
    };

    let mut report = apply_baseline(findings, &baseline);
    report.files_scanned = files;
    report.manifests_scanned = manifests;

    if let Some(jp) = &json_path {
        if let Err(e) = std::fs::write(jp, report.render_jsonl()) {
            eprintln!("pg-lint: cannot write {}: {e}", jp.display());
            return ExitCode::from(2);
        }
    }

    print!("{}", report.render_text(deny_warnings));
    if report.is_clean(deny_warnings) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
