//! Finding model, baseline handling, report rendering and the workspace
//! driver that walks every crate and applies all rule families.
//!
//! The library never writes to stdout/stderr itself — all output is returned
//! as strings and printed by the `pg-lint` bin (the analyzer must pass its
//! own `print_hygiene` rule).

use std::fs;
use std::path::{Path, PathBuf};

use crate::arch;
use crate::check::{check_file, Config};
use crate::manifest::parse_manifest;
use crate::source::{FileClass, SourceFile};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One rule violation at one source location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub line: u32,
    pub message: String,
    /// Trimmed text of the offending line (baseline fingerprint input).
    pub snippet: String,
}

impl Finding {
    /// Stable fingerprint: hashes the line *text*, not the line number, so a
    /// baselined finding survives unrelated edits above it.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(self.snippet.trim().as_bytes())
    }

    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
            json_escape(&self.rule),
            self.severity.as_str(),
            json_escape(&self.path),
            self.line,
            json_escape(&self.message),
            json_escape(&self.snippet),
        )
    }
}

pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One grandfathered finding class in the checked-in baseline file.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    pub rule: String,
    pub path: String,
    pub fingerprint: u64,
    /// How many findings with this (rule, path, fingerprint) are tolerated.
    pub count: u32,
    pub reason: String,
}

/// Parses `pg-lint.baseline`: tab-separated
/// `rule<TAB>path<TAB>fingerprint-hex<TAB>count<TAB>reason` lines,
/// `#`-comments and blank lines ignored.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 5 {
            return Err(format!(
                "baseline line {}: expected 5 tab-separated columns, got {}",
                i + 1,
                cols.len()
            ));
        }
        let fingerprint = u64::from_str_radix(cols[2].trim_start_matches("0x"), 16)
            .map_err(|e| format!("baseline line {}: bad fingerprint: {e}", i + 1))?;
        let count: u32 = cols[3]
            .parse()
            .map_err(|e| format!("baseline line {}: bad count: {e}", i + 1))?;
        if cols[4].trim().is_empty() {
            return Err(format!("baseline line {}: empty reason", i + 1));
        }
        out.push(BaselineEntry {
            rule: cols[0].to_string(),
            path: cols[1].to_string(),
            fingerprint,
            count,
            reason: cols[4].to_string(),
        });
    }
    Ok(out)
}

/// Renders findings back out in baseline format (for `--write-baseline`).
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut grouped: Vec<(String, String, u64, u32)> = Vec::new();
    for f in findings {
        let fp = f.fingerprint();
        if let Some(g) = grouped
            .iter_mut()
            .find(|(r, p, h, _)| *r == f.rule && *p == f.path && *h == fp)
        {
            g.3 += 1;
        } else {
            grouped.push((f.rule.clone(), f.path.clone(), fp, 1));
        }
    }
    grouped.sort();
    let mut out = String::from(
        "# pg-lint baseline: grandfathered findings.\n\
         # rule<TAB>path<TAB>line-fingerprint<TAB>count<TAB>reason\n\
         # Shrink this file over time; never grow it without a written reason.\n",
    );
    for (rule, path, fp, count) in grouped {
        out.push_str(&format!(
            "{rule}\t{path}\t{fp:016x}\t{count}\tTODO: justify or fix\n"
        ));
    }
    out
}

/// Result of a workspace run, split into live findings and baselined ones.
pub struct Report {
    pub findings: Vec<Finding>,
    pub baselined: Vec<(Finding, String)>,
    /// Baseline entries that matched nothing — stale, should be pruned.
    pub stale_baseline: Vec<BaselineEntry>,
    pub files_scanned: usize,
    pub manifests_scanned: usize,
}

impl Report {
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    pub fn warning_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// Human-readable report.
    pub fn render_text(&self, deny_warnings: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}: [{}] {}:{}: {}\n",
                f.severity.as_str(),
                f.rule,
                f.path,
                f.line,
                f.message
            ));
            if !f.snippet.is_empty() {
                out.push_str(&format!("    | {}\n", f.snippet));
            }
        }
        for e in &self.stale_baseline {
            out.push_str(&format!(
                "warning: [baseline] stale entry `{}\t{}\t{:016x}` matched no finding; prune it\n",
                e.rule, e.path, e.fingerprint
            ));
        }
        let errors = self.error_count();
        let warnings = self.warning_count();
        out.push_str(&format!(
            "pg-lint: {} file(s), {} manifest(s) scanned; {} error(s), {} warning(s), {} baselined, {} stale baseline entr(ies)\n",
            self.files_scanned,
            self.manifests_scanned,
            errors,
            warnings,
            self.baselined.len(),
            self.stale_baseline.len()
        ));
        if errors > 0 || (deny_warnings && warnings > 0) || !self.stale_baseline.is_empty() {
            out.push_str("pg-lint: FAIL\n");
        } else {
            out.push_str("pg-lint: ok\n");
        }
        out
    }

    /// JSON-lines rendering of live findings (one object per line).
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_json());
            out.push('\n');
        }
        out
    }

    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        self.error_count() == 0
            && (!deny_warnings || self.warning_count() == 0)
            && self.stale_baseline.is_empty()
    }
}

/// Splits raw findings against the baseline: each baseline entry absorbs up
/// to `count` findings with the matching (rule, path, fingerprint).
pub fn apply_baseline(findings: Vec<Finding>, baseline: &[BaselineEntry]) -> Report {
    let mut remaining: Vec<(BaselineEntry, u32)> =
        baseline.iter().map(|e| (e.clone(), e.count)).collect();
    let mut live = Vec::new();
    let mut absorbed = Vec::new();
    for f in findings {
        let fp = f.fingerprint();
        let slot = remaining.iter_mut().find(|(e, left)| {
            *left > 0 && e.rule == f.rule && e.path == f.path && e.fingerprint == fp
        });
        match slot {
            Some((e, left)) => {
                *left -= 1;
                absorbed.push((f, e.reason.clone()));
            }
            None => live.push(f),
        }
    }
    let stale = remaining
        .into_iter()
        .filter(|(e, left)| *left == e.count)
        .map(|(e, _)| e)
        .collect();
    Report {
        findings: live,
        baselined: absorbed,
        stale_baseline: stale,
        files_scanned: 0,
        manifests_scanned: 0,
    }
}

/// Recursively collects `.rs` files under `dir` in sorted order.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Classifies a workspace-relative source path.
fn classify(rel: &str) -> FileClass {
    if rel.contains("/src/bin/") {
        FileClass::Bin
    } else if rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.starts_with("tests/")
    {
        FileClass::Test
    } else {
        FileClass::Lib
    }
}

/// Directories whose sources are outside pg-lint's jurisdiction: vendored
/// shims mimic external crates' APIs, and rule-test fixtures contain seeded
/// violations on purpose.
fn source_excluded(rel: &str) -> bool {
    rel.starts_with("vendor/")
        || rel.starts_with("target/")
        || rel.starts_with("crates/analyzer/tests/fixtures/")
}

/// Runs every rule family over the workspace rooted at `root`.
/// Returns raw findings (baseline not yet applied) plus scan counts.
pub fn run_workspace(root: &Path, cfg: &Config) -> (Vec<Finding>, usize, usize) {
    let mut findings = Vec::new();
    let mut files = 0usize;
    let mut manifests = 0usize;

    let rel_of = |p: &Path| -> String {
        p.strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/")
    };

    // Architecture pass: root manifest + every member manifest.
    let root_manifest_path = root.join("Cargo.toml");
    if let Ok(text) = fs::read_to_string(&root_manifest_path) {
        manifests += 1;
        let m = parse_manifest("Cargo.toml", &text);
        arch::check_root(&m, &mut findings);
        arch::check_manifest(&m, &mut findings);
        for member in &m.members {
            let mp = root.join(member).join("Cargo.toml");
            let rel = rel_of(&mp);
            match fs::read_to_string(&mp) {
                Ok(t) => {
                    manifests += 1;
                    let mm = parse_manifest(&rel, &t);
                    arch::check_manifest(&mm, &mut findings);
                }
                Err(_) => findings.push(Finding {
                    rule: "dag".to_string(),
                    severity: Severity::Error,
                    path: rel,
                    line: 1,
                    message: format!("workspace member `{member}` has no readable Cargo.toml"),
                    snippet: String::new(),
                }),
            }
        }
    } else {
        findings.push(Finding {
            rule: "dag".to_string(),
            severity: Severity::Error,
            path: "Cargo.toml".to_string(),
            line: 1,
            message: "workspace root Cargo.toml is missing or unreadable".to_string(),
            snippet: String::new(),
        });
    }

    // Source pass: src/, tests/, benches/ of every crate dir plus the root
    // package, in sorted order for deterministic output.
    let mut rs_files = Vec::new();
    collect_rs(&root.join("src"), &mut rs_files);
    collect_rs(&root.join("tests"), &mut rs_files);
    collect_rs(&root.join("crates"), &mut rs_files);
    rs_files.sort();

    for path in rs_files {
        let rel = rel_of(&path);
        if source_excluded(&rel) {
            continue;
        }
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        files += 1;
        let sf = SourceFile::new(rel, classify_with_root(&path, root), text);
        check_file(&sf, cfg, &mut findings);
    }

    (findings, files, manifests)
}

fn classify_with_root(path: &Path, root: &Path) -> FileClass {
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    classify(&rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, path: &str, snippet: &str) -> Finding {
        Finding {
            rule: rule.into(),
            severity: Severity::Error,
            path: path.into(),
            line: 10,
            message: "m".into(),
            snippet: snippet.into(),
        }
    }

    #[test]
    fn baseline_roundtrip() {
        let f = finding("print_hygiene", "crates/x/src/lib.rs", "eprintln!(\"hi\");");
        let text = render_baseline(std::slice::from_ref(&f)).replace("TODO: justify or fix", "ok");
        let entries = parse_baseline(&text).unwrap();
        assert_eq!(entries.len(), 1);
        let rep = apply_baseline(vec![f], &entries);
        assert!(rep.findings.is_empty());
        assert_eq!(rep.baselined.len(), 1);
        assert!(rep.stale_baseline.is_empty());
    }

    #[test]
    fn baseline_count_is_a_cap() {
        let f = finding("x", "p.rs", "line");
        let entries =
            parse_baseline(&format!("x\tp.rs\t{:016x}\t1\tr\n", f.fingerprint())).unwrap();
        let rep = apply_baseline(vec![f.clone(), f], &entries);
        assert_eq!(rep.baselined.len(), 1);
        assert_eq!(rep.findings.len(), 1);
    }

    #[test]
    fn stale_baseline_detected() {
        let entries = parse_baseline("x\tp.rs\t00000000deadbeef\t1\tr\n").unwrap();
        let rep = apply_baseline(Vec::new(), &entries);
        assert_eq!(rep.stale_baseline.len(), 1);
        assert!(!rep.is_clean(false));
    }

    #[test]
    fn fingerprint_ignores_line_number() {
        let a = finding("x", "p.rs", "let y = 1;");
        let mut b = a.clone();
        b.line = 99;
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn baseline_rejects_empty_reason() {
        assert!(parse_baseline("x\tp.rs\t0\t1\t \n").is_err());
        assert!(parse_baseline("x\tp.rs\t0\t1\n").is_err());
    }

    #[test]
    fn json_escaping() {
        let f = finding("x", "p.rs", "say \"hi\"\\");
        let j = f.to_json();
        assert!(j.contains("say \\\"hi\\\"\\\\"));
    }

    #[test]
    fn deny_warnings_gates_cleanliness() {
        let mut f = finding("x", "p.rs", "s");
        f.severity = Severity::Warning;
        let rep = apply_baseline(vec![f], &[]);
        assert!(rep.is_clean(false));
        assert!(!rep.is_clean(true));
    }
}
