//! Source-level rule implementations (the D/S/H families).
//!
//! Every check walks the significant-token stream of a [`SourceFile`]; none
//! of them look at raw text, so identifiers inside strings and comments can
//! never trigger a finding.

use crate::engine::{Finding, Severity};
use crate::source::{FileClass, SourceFile};

/// Per-workspace rule configuration: which modules count as threaded, which
/// paths are panic-audited, which files are exempt from clock/print rules.
pub struct Config {
    /// Files where float-determinism rules apply (threads may interleave).
    pub threaded_modules: Vec<String>,
    /// Path prefixes where `unwrap`/`expect`/`panic!` is banned in lib code.
    pub panic_scopes: Vec<String>,
    /// Path suffixes exempt from the `wall_clock` rule.
    pub time_exempt: Vec<String>,
    /// Path suffixes exempt from the `print_hygiene` rule.
    pub print_exempt: Vec<String>,
}

impl Config {
    /// The configuration for *this* workspace, mirroring the ROADMAP
    /// standing constraints.
    pub fn house() -> Self {
        Config {
            threaded_modules: vec![
                "crates/gnn/src/serve.rs".to_string(),
                "crates/gnn/src/train.rs".to_string(),
                "crates/datasets/src/build.rs".to_string(),
            ],
            panic_scopes: vec![
                "crates/store/src/".to_string(),
                "crates/gnn/src/serve.rs".to_string(),
                "crates/gnn/src/admission.rs".to_string(),
                "crates/core/src/daemon.rs".to_string(),
            ],
            // prof and metrics are the sanctioned timing seams; bench
            // exists to measure.
            time_exempt: vec![
                "crates/util/src/prof.rs".to_string(),
                "crates/util/src/metrics.rs".to_string(),
                "crates/bench/".to_string(),
            ],
            print_exempt: vec!["crates/util/src/prof.rs".to_string()],
        }
    }
}

fn push(
    findings: &mut Vec<Finding>,
    f: &SourceFile,
    rule: &str,
    severity: Severity,
    line: u32,
    message: String,
) {
    if f.suppressed(rule, line) {
        return;
    }
    findings.push(Finding {
        rule: rule.to_string(),
        severity,
        path: f.path.clone(),
        line,
        message,
        snippet: f.line_text(line).to_string(),
    });
}

/// Runs every source-level rule over one file.
pub fn check_file(f: &SourceFile, cfg: &Config, findings: &mut Vec<Finding>) {
    for (line, msg) in &f.bad_suppressions {
        // Deliberately not suppressible: a broken suppression must never be
        // able to silence itself.
        findings.push(Finding {
            rule: "bad_suppression".to_string(),
            severity: Severity::Error,
            path: f.path.clone(),
            line: *line,
            message: msg.clone(),
            snippet: f.line_text(*line).to_string(),
        });
    }
    check_map_iter(f, findings);
    check_wall_clock(f, cfg, findings);
    check_float(f, cfg, findings);
    check_unsafe(f, findings);
    check_panic(f, cfg, findings);
    check_print(f, cfg, findings);
    check_allow_reason(f, findings);
    check_metric_name(f, findings);
}

/// `map_iter` (D): iterating a `HashMap`/`HashSet` in non-test library code.
///
/// Two passes. Pass one records identifiers bound to hash collections, via
/// `name: ... HashMap<...>` field/param declarations and
/// `name = HashMap::new()` / `HashSet::with_capacity(...)` initialisers,
/// walking back over wrapper types (`Mutex<HashMap<..>>` etc). Pass two
/// flags order-dependent traversals: `for .. in &name`, `name.iter()`,
/// `.keys()`, `.values()`, `.into_values()`, `.into_keys()`, `.drain()`,
/// `.into_iter()` — and any such call chained directly onto a `HashMap`/
/// `HashSet` expression.
fn check_map_iter(f: &SourceFile, findings: &mut Vec<Finding>) {
    if f.class != FileClass::Lib {
        return;
    }
    let sig = f.significant();
    let word = |i: usize| f.tok_text(&f.tokens[sig[i]]);
    let n = sig.len();

    const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
    const ITER_METHODS: [&str; 7] = [
        "iter",
        "keys",
        "values",
        "into_values",
        "into_keys",
        "drain",
        "into_iter",
    ];

    // Pass 1: names declared as hash collections.
    let mut hash_names: Vec<String> = Vec::new();
    for i in 0..n {
        if !HASH_TYPES.contains(&word(i)) {
            continue;
        }
        // Walk back over `<`, wrapper idents, `::`, to find `name :` or
        // `name =`. Example: `map: Mutex<HashMap<K, V>>`.
        let mut j = i;
        let mut hops = 0;
        while j > 0 && hops < 8 {
            let prev = word(j - 1);
            match prev {
                "<" | "::" | "&" | "&&" | "mut" => {
                    j -= 1;
                    hops += 1;
                }
                _ if prev
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_') =>
                {
                    // Wrapper type ident (Mutex, Arc, Option, std, ...)
                    // only if it is itself followed by `<` or `::`.
                    if j >= 1 && (word(j) == "<" || word(j) == "::") {
                        j -= 1;
                        hops += 1;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        if j >= 2 && (word(j - 1) == ":" || word(j - 1) == "=") {
            let name = word(j - 2);
            if name
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
                && !hash_names.iter().any(|h| h == name)
            {
                hash_names.push(name.to_string());
            }
        }
    }

    // Pass 2: flag traversals.
    for i in 0..n {
        let t = &f.tokens[sig[i]];
        if f.in_test_region(t.start) {
            continue;
        }
        let w = f.tok_text(t);

        // `name.iter()` / `name.drain()` ... where name is a known hash name.
        if hash_names.iter().any(|h| h == w)
            && i + 3 < n
            && word(i + 1) == "."
            && ITER_METHODS.contains(&word(i + 2))
            && word(i + 3) == "("
        {
            push(
                findings,
                f,
                "map_iter",
                Severity::Error,
                t.line,
                format!(
                    "`{w}.{}()` iterates a hash collection in library code; \
                     iteration order is process-random — use BTreeMap/BTreeSet \
                     or sort before iterating",
                    word(i + 2)
                ),
            );
            continue;
        }

        // `for pat in [&[mut]] name` — direct loop over a hash collection.
        if w == "for" {
            // find the matching `in` before the loop body `{`
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < n {
                match word(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    "in" if depth == 0 => {
                        // expression head after `in`, skipping borrows
                        let mut k = j + 1;
                        while k < n && matches!(word(k), "&" | "&&" | "mut") {
                            k += 1;
                        }
                        if k < n && hash_names.iter().any(|h| h == word(k)) {
                            // plain `for x in &map` (not `map.something`)
                            let next = if k + 1 < n { word(k + 1) } else { "" };
                            if next == "{" {
                                push(
                                    findings,
                                    f,
                                    "map_iter",
                                    Severity::Error,
                                    f.tokens[sig[k]].line,
                                    format!(
                                        "`for .. in {}` iterates a hash collection in \
                                         library code; iteration order is process-random",
                                        word(k)
                                    ),
                                );
                            }
                        }
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }

        // `HashMap::from(..).into_iter()`-style direct chains.
        if HASH_TYPES.contains(&w) && i + 2 < n && word(i + 1) == "::" {
            // scan forward to the end of the call and check for an
            // immediate iteration method.
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut seen_call = false;
            while j < n {
                match word(j) {
                    "(" => {
                        depth += 1;
                        seen_call = true;
                    }
                    ")" => {
                        depth -= 1;
                        if depth == 0 && seen_call {
                            if j + 3 < n
                                && word(j + 1) == "."
                                && ITER_METHODS.contains(&word(j + 2))
                                && word(j + 3) == "("
                                && !f.in_test_region(f.tokens[sig[j + 2]].start)
                            {
                                push(
                                    findings,
                                    f,
                                    "map_iter",
                                    Severity::Error,
                                    f.tokens[sig[j + 2]].line,
                                    format!(
                                        "`{w}::..().{}()` iterates a hash collection \
                                         in library code",
                                        word(j + 2)
                                    ),
                                );
                            }
                            break;
                        }
                    }
                    ";" | "{" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
        }
    }
}

/// `wall_clock` (D): `Instant`/`SystemTime` outside the profiling seam.
fn check_wall_clock(f: &SourceFile, cfg: &Config, findings: &mut Vec<Finding>) {
    if f.class != FileClass::Lib {
        return;
    }
    if cfg.time_exempt.iter().any(|p| f.path.starts_with(p)) {
        return;
    }
    let sig = f.significant();
    for &ti in &sig {
        let t = &f.tokens[ti];
        if f.in_test_region(t.start) {
            continue;
        }
        let w = f.tok_text(t);
        if w == "Instant" || w == "SystemTime" {
            push(
                findings,
                f,
                "wall_clock",
                Severity::Error,
                t.line,
                format!(
                    "`{w}` in library code: wall-clock time is nondeterministic; \
                     route timing through pg_util::prof or move it to a bin"
                ),
            );
        }
    }
}

/// `float_cast` / `float_fold` (D): lossy float as-casts and non-fixed-order
/// float reductions in modules that run under threads.
fn check_float(f: &SourceFile, cfg: &Config, findings: &mut Vec<Finding>) {
    if !cfg.threaded_modules.iter().any(|m| &f.path == m) {
        return;
    }
    let sig = f.significant();
    let word = |i: usize| f.tok_text(&f.tokens[sig[i]]);
    let n = sig.len();
    for i in 0..n {
        let t = &f.tokens[sig[i]];
        if f.in_test_region(t.start) {
            continue;
        }
        let w = f.tok_text(t);
        // `as f32` / `as f64`
        if w == "as" && i + 1 < n && matches!(word(i + 1), "f32" | "f64") {
            push(
                findings,
                f,
                "float_cast",
                Severity::Warning,
                t.line,
                format!(
                    "`as {}` in a threaded module: float conversions are fine \
                     only when the operand order is fixed; confirm the cast \
                     does not depend on thread interleaving",
                    word(i + 1)
                ),
            );
        }
        // `.sum::<f32>()` / `.sum()` / `.product()` after iterator chains, and
        // `fold` with a float accumulator, in threaded modules.
        if (w == "sum" || w == "product") && i >= 1 && word(i - 1) == "." {
            push(
                findings,
                f,
                "float_fold",
                Severity::Warning,
                t.line,
                format!(
                    "iterator `.{w}()` in a threaded module: ensure the \
                     reduction order is fixed (chunk then combine in index \
                     order) or the result is integer-valued"
                ),
            );
        }
    }
}

/// `unsafe_no_safety` (S): every `unsafe` block/impl/fn needs a `// SAFETY:`
/// comment on one of the three preceding token positions.
fn check_unsafe(f: &SourceFile, findings: &mut Vec<Finding>) {
    use crate::lexer::TokKind;
    for (i, t) in f.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || f.tok_text(t) != "unsafe" {
            continue;
        }
        if f.in_test_region(t.start) {
            continue;
        }
        // Look back a few tokens (skipping whitespace) for a SAFETY comment.
        let mut ok = false;
        let mut back = 0;
        let mut j = i;
        while j > 0 && back < 6 {
            j -= 1;
            let p = &f.tokens[j];
            match p.kind {
                TokKind::Ws => continue,
                TokKind::LineComment | TokKind::BlockComment => {
                    if f.tok_text(p).contains("SAFETY:") {
                        ok = true;
                        break;
                    }
                    back += 1;
                }
                _ => {
                    back += 1;
                }
            }
        }
        if !ok {
            push(
                findings,
                f,
                "unsafe_no_safety",
                Severity::Error,
                t.line,
                "`unsafe` without a preceding `// SAFETY:` comment explaining \
                 the invariant that makes it sound"
                    .to_string(),
            );
        }
    }
}

/// `panic_path` (S): `unwrap()`, `expect()` and `panic!` in non-test lib code
/// of the panic-audited scopes (persistence + serving).
fn check_panic(f: &SourceFile, cfg: &Config, findings: &mut Vec<Finding>) {
    if f.class != FileClass::Lib {
        return;
    }
    if !cfg.panic_scopes.iter().any(|p| f.path.starts_with(p)) {
        return;
    }
    let sig = f.significant();
    let word = |i: usize| f.tok_text(&f.tokens[sig[i]]);
    let n = sig.len();
    for i in 0..n {
        let t = &f.tokens[sig[i]];
        if f.in_test_region(t.start) {
            continue;
        }
        let w = f.tok_text(t);
        let is_method_call = i >= 1 && word(i - 1) == "." && i + 1 < n && word(i + 1) == "(";
        if (w == "unwrap" || w == "expect") && is_method_call {
            push(
                findings,
                f,
                "panic_path",
                Severity::Error,
                t.line,
                format!(
                    "`.{w}()` in a panic-audited scope: return a typed error \
                     (StoreError / ServeError) instead of aborting"
                ),
            );
        }
        if w == "panic" && i + 1 < n && word(i + 1) == "!" {
            push(
                findings,
                f,
                "panic_path",
                Severity::Error,
                t.line,
                "`panic!` in a panic-audited scope: return a typed error instead".to_string(),
            );
        }
    }
}

/// `print_hygiene` (H): `println!`/`eprintln!`/`print!`/`eprint!` belong in
/// bins (and the profiling seam), not library code.
fn check_print(f: &SourceFile, cfg: &Config, findings: &mut Vec<Finding>) {
    if f.class != FileClass::Lib {
        return;
    }
    if cfg.print_exempt.iter().any(|p| f.path.starts_with(p)) {
        return;
    }
    let sig = f.significant();
    let word = |i: usize| f.tok_text(&f.tokens[sig[i]]);
    let n = sig.len();
    for i in 0..n {
        let t = &f.tokens[sig[i]];
        if f.in_test_region(t.start) {
            continue;
        }
        let w = f.tok_text(t);
        if matches!(w, "println" | "eprintln" | "print" | "eprint")
            && i + 1 < n
            && word(i + 1) == "!"
        {
            push(
                findings,
                f,
                "print_hygiene",
                Severity::Warning,
                t.line,
                format!(
                    "`{w}!` in library code: route user-facing output through \
                     the caller (bin) or a returned report"
                ),
            );
        }
    }
}

/// `metric_name` (H): names registered through `pg_util::metrics` must be
/// lowercase snake_case, counters must end in `_total`, and histograms
/// must carry a unit suffix — the scrape endpoint and `StatsV2` clients
/// key on these conventions, and a registry name is frozen at first use.
///
/// Flags `counter("NAME")` / `gauge_with("name", ..)` /
/// `histogram(..)`-style calls whose first argument is a string literal;
/// names built at runtime are out of reach (and out of house style
/// anyway).
fn check_metric_name(f: &SourceFile, findings: &mut Vec<Finding>) {
    use crate::lexer::TokKind;
    const HIST_UNITS: [&str; 5] = ["_us", "_s", "_bytes", "_graphs", "_ratio"];
    let sig = f.significant();
    let n = sig.len();
    for i in 0..n {
        let t = &f.tokens[sig[i]];
        if f.in_test_region(t.start) {
            continue;
        }
        let w = f.tok_text(t);
        let kind = match w {
            "counter" | "counter_with" => "counter",
            "gauge" | "gauge_with" => "gauge",
            "histogram" | "histogram_with" => "histogram",
            _ => continue,
        };
        // Registration is a plain call with a literal first argument:
        // `counter("name")`, `metrics::histogram_with("name", ...)`.
        // Method calls (`snapshot.histogram("name", ..)`) are lookups,
        // not registrations, but hold the same names to the same style.
        if i + 2 >= n || f.tok_text(&f.tokens[sig[i + 1]]) != "(" {
            continue;
        }
        let arg = &f.tokens[sig[i + 2]];
        if arg.kind != TokKind::Str {
            continue;
        }
        let name = f.tok_text(arg).trim_matches('"');
        let snake = name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            && name.starts_with(|c: char| c.is_ascii_lowercase());
        let problem = if !snake {
            Some("must be lowercase snake_case starting with a letter".to_string())
        } else if kind == "counter" && !name.ends_with("_total") {
            Some("counters must end in `_total`".to_string())
        } else if kind == "histogram" && !HIST_UNITS.iter().any(|u| name.ends_with(u)) {
            Some(format!(
                "histograms must end in a unit suffix ({})",
                HIST_UNITS.join(", ")
            ))
        } else if kind == "gauge" && name.ends_with("_total") {
            Some("`_total` is reserved for counters".to_string())
        } else {
            None
        };
        if let Some(problem) = problem {
            push(
                findings,
                f,
                "metric_name",
                Severity::Warning,
                t.line,
                format!("metric name {name:?} breaks house style: {problem}"),
            );
        }
    }
}

/// `allow_no_reason` (H): every `#[allow(..)]` needs an adjacent
/// `// reason:` comment justifying it.
fn check_allow_reason(f: &SourceFile, findings: &mut Vec<Finding>) {
    use crate::lexer::TokKind;
    let sig = f.significant();
    let word = |i: usize| f.tok_text(&f.tokens[sig[i]]);
    let n = sig.len();
    for i in 0..n {
        if word(i) != "#" || i + 2 >= n || word(i + 1) != "[" || word(i + 2) != "allow" {
            continue;
        }
        let t = &f.tokens[sig[i]];
        if f.in_test_region(t.start) {
            continue;
        }
        // Search backwards in the raw token stream for a `// reason:` comment
        // directly above the attribute (only whitespace/doc comments between).
        let raw_idx = f
            .tokens
            .iter()
            .position(|tok| tok.start == t.start)
            .unwrap_or(0);
        let mut ok = false;
        let mut j = raw_idx;
        let mut non_ws = 0;
        while j > 0 && non_ws < 4 {
            j -= 1;
            let p = &f.tokens[j];
            match p.kind {
                TokKind::Ws => continue,
                TokKind::LineComment | TokKind::BlockComment => {
                    if f.tok_text(p).contains("reason:") {
                        ok = true;
                        break;
                    }
                    non_ws += 1;
                }
                _ => break,
            }
        }
        if !ok {
            push(
                findings,
                f,
                "allow_no_reason",
                Severity::Warning,
                t.line,
                "`#[allow(..)]` without an adjacent `// reason:` comment".to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, class: FileClass, src: &str) -> Vec<Finding> {
        let f = SourceFile::new(path.into(), class, src.into());
        let mut out = Vec::new();
        check_file(&f, &Config::house(), &mut out);
        out
    }

    #[test]
    fn hashmap_iteration_flagged() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: HashMap<u32, u32>) -> u32 {\n\
                   \x20   m.iter().map(|(_, v)| v).sum()\n\
                   }\n";
        let f = lint("crates/x/src/lib.rs", FileClass::Lib, src);
        assert!(f.iter().any(|x| x.rule == "map_iter"), "{f:?}");
    }

    #[test]
    fn hashmap_for_loop_flagged() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: HashMap<u32, u32>) {\n\
                   \x20   for x in &m {}\n\
                   }\n";
        // `m` declared via param `m: HashMap<..>`; `for x in &m`.
        let f = lint("crates/x/src/lib.rs", FileClass::Lib, src);
        assert!(f.iter().any(|x| x.rule == "map_iter"), "{f:?}");
    }

    #[test]
    fn wrapped_hashmap_flagged() {
        let src = "use std::collections::HashMap;\nuse std::sync::Mutex;\n\
                   struct C { map: Mutex<HashMap<u64, u32>> }\n\
                   impl C { fn all(&self) -> Vec<u32> {\n\
                   \x20 let map = self.map.lock().unwrap();\n\
                   \x20 map.values().copied().collect() } }\n";
        let f = lint("crates/x/src/lib.rs", FileClass::Lib, src);
        assert!(f.iter().any(|x| x.rule == "map_iter"), "{f:?}");
    }

    #[test]
    fn lookup_only_hashmap_ok() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: HashMap<u32, u32>) -> Option<u32> {\n\
                   \x20   m.get(&3).copied()\n\
                   }\n";
        let f = lint("crates/x/src/lib.rs", FileClass::Lib, src);
        assert!(f.iter().all(|x| x.rule != "map_iter"), "{f:?}");
    }

    #[test]
    fn btreemap_iteration_ok() {
        let src = "use std::collections::BTreeMap;\n\
                   fn f(m: BTreeMap<u32, u32>) -> u32 {\n\
                   \x20   m.values().sum()\n\
                   }\n";
        let f = lint("crates/x/src/lib.rs", FileClass::Lib, src);
        assert!(f.iter().all(|x| x.rule != "map_iter"), "{f:?}");
    }

    #[test]
    fn test_code_exempt() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\nmod tests {\n\
                   \x20 fn f(m: HashMap<u32, u32>) { for x in &m {} let _ = m.iter(); }\n\
                   }\n";
        let f = lint("crates/x/src/lib.rs", FileClass::Lib, src);
        assert!(f.iter().all(|x| x.rule != "map_iter"), "{f:?}");
    }

    #[test]
    fn suppression_silences() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: HashMap<u32, u32>) -> u32 {\n\
                   \x20 // pg-lint: allow(map_iter, reason = \"summed; order-free\")\n\
                   \x20   m.values().sum()\n\
                   }\n";
        let f = lint("crates/x/src/lib.rs", FileClass::Lib, src);
        assert!(f.iter().all(|x| x.rule != "map_iter"), "{f:?}");
    }

    #[test]
    fn instant_flagged_outside_prof() {
        let src = "use std::time::Instant;\nfn f() { let _t = Instant::now(); }\n";
        let f = lint("crates/x/src/lib.rs", FileClass::Lib, src);
        assert!(f.iter().any(|x| x.rule == "wall_clock"), "{f:?}");
        let f2 = lint("crates/util/src/prof.rs", FileClass::Lib, src);
        assert!(f2.iter().all(|x| x.rule != "wall_clock"), "{f2:?}");
        let f3 = lint("crates/x/src/bin/t.rs", FileClass::Bin, src);
        assert!(f3.iter().all(|x| x.rule != "wall_clock"), "{f3:?}");
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let good = "fn f(p: *const u8) -> u8 {\n\
                    \x20 // SAFETY: caller guarantees p is valid for reads.\n\
                    \x20 unsafe { *p } }\n";
        assert!(lint("crates/x/src/lib.rs", FileClass::Lib, bad)
            .iter()
            .any(|x| x.rule == "unsafe_no_safety"));
        assert!(lint("crates/x/src/lib.rs", FileClass::Lib, good)
            .iter()
            .all(|x| x.rule != "unsafe_no_safety"));
    }

    #[test]
    fn panic_scoped_to_store_and_serve() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint("crates/store/src/codec.rs", FileClass::Lib, src)
            .iter()
            .any(|x| x.rule == "panic_path"));
        assert!(lint("crates/gnn/src/serve.rs", FileClass::Lib, src)
            .iter()
            .any(|x| x.rule == "panic_path"));
        // unwrap is tolerated elsewhere (clippy's job, not pg-lint's).
        assert!(lint("crates/hls/src/lower.rs", FileClass::Lib, src)
            .iter()
            .all(|x| x.rule != "panic_path"));
    }

    #[test]
    fn println_flagged_in_lib_only() {
        let src = "fn f() { println!(\"hi\"); }\n";
        assert!(lint("crates/x/src/lib.rs", FileClass::Lib, src)
            .iter()
            .any(|x| x.rule == "print_hygiene"));
        assert!(lint("crates/x/src/bin/t.rs", FileClass::Bin, src)
            .iter()
            .all(|x| x.rule != "print_hygiene"));
    }

    #[test]
    fn allow_needs_reason() {
        let bad = "#[allow(dead_code)]\nfn f() {}\n";
        let good = "// reason: kept for the v2 codec migration.\n#[allow(dead_code)]\nfn f() {}\n";
        assert!(lint("crates/x/src/lib.rs", FileClass::Lib, bad)
            .iter()
            .any(|x| x.rule == "allow_no_reason"));
        assert!(lint("crates/x/src/lib.rs", FileClass::Lib, good)
            .iter()
            .all(|x| x.rule != "allow_no_reason"));
    }

    #[test]
    fn metric_names_follow_house_style() {
        let bad = "fn f() {\n\
                   \x20 let _ = pg_util::metrics::counter(\"served\");\n\
                   \x20 let _ = pg_util::metrics::histogram(\"latency\", B);\n\
                   \x20 let _ = pg_util::metrics::gauge(\"depth_total\");\n\
                   \x20 let _ = pg_util::metrics::counter_with(\"CamelTotal\", &[]);\n\
                   }\n";
        let f = lint("crates/x/src/lib.rs", FileClass::Lib, bad);
        assert_eq!(
            f.iter().filter(|x| x.rule == "metric_name").count(),
            4,
            "{f:?}"
        );
        let good = "fn f() {\n\
                    \x20 let _ = pg_util::metrics::counter(\"served_total\");\n\
                    \x20 let _ = pg_util::metrics::histogram(\"latency_us\", B);\n\
                    \x20 let _ = pg_util::metrics::gauge(\"queue_depth\");\n\
                    \x20 let _ = pg_util::metrics::counter(&dynamic_name);\n\
                    }\n";
        let f2 = lint("crates/x/src/lib.rs", FileClass::Lib, good);
        assert!(f2.iter().all(|x| x.rule != "metric_name"), "{f2:?}");
    }

    #[test]
    fn float_rules_only_in_threaded_modules() {
        let src =
            "fn f(v: &[f64], x: u32) -> f64 { let y = x as f64; v.iter().sum::<f64>() + y }\n";
        let f = lint("crates/gnn/src/train.rs", FileClass::Lib, src);
        assert!(f.iter().any(|x| x.rule == "float_cast"), "{f:?}");
        assert!(f.iter().any(|x| x.rule == "float_fold"), "{f:?}");
        let f2 = lint("crates/gnn/src/model.rs", FileClass::Lib, src);
        assert!(f2
            .iter()
            .all(|x| x.rule != "float_cast" && x.rule != "float_fold"));
    }

    #[test]
    fn identifiers_in_strings_ignored() {
        let src = "fn f() -> &'static str { \"Instant HashMap println! unwrap()\" }\n";
        let f = lint("crates/store/src/x.rs", FileClass::Lib, src);
        assert!(f.is_empty(), "{f:?}");
    }
}
