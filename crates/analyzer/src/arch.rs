//! Architecture rules: every `Cargo.toml` dependency edge must appear in the
//! ROADMAP dependency DAG below, the graph must stay acyclic, and no crate
//! may pull in an external (non-workspace, non-vendored) dependency.
//!
//! The table is the single source of truth for the intended layering:
//!
//! ```text
//! pg_util ── pg_tensor
//! pg_ir ── pg_hls ── pg_activity ── pg_graphcon ──┬── pg_powersim
//!                                                 ├── pg_hlpow
//!                                                 └── pg_gnn ── pg_store ──┬── pg_datasets
//!                                                                          └── pg_dse
//!                                  powergear / powergear_bench / powergear_repro on top
//! ```

use crate::engine::{Finding, Severity};
use crate::manifest::Manifest;

/// `(crate, allowed [dependencies])` — must match the ROADMAP DAG exactly.
/// An edge absent from this table is a finding even if the build works.
pub const ALLOWED_DEPS: &[(&str, &[&str])] = &[
    ("pg_util", &[]),
    ("pg_ir", &[]),
    ("pg_tensor", &["pg_util"]),
    ("pg_hls", &["pg_ir", "pg_util"]),
    ("pg_activity", &["pg_hls", "pg_ir", "pg_util"]),
    (
        "pg_graphcon",
        &["pg_activity", "pg_hls", "pg_ir", "pg_util"],
    ),
    (
        "pg_powersim",
        &["pg_activity", "pg_graphcon", "pg_hls", "pg_ir", "pg_util"],
    ),
    ("pg_hlpow", &["pg_graphcon", "pg_util"]),
    ("pg_gnn", &["pg_graphcon", "pg_tensor", "pg_util"]),
    (
        "pg_store",
        &[
            "pg_gnn",
            "pg_graphcon",
            "pg_hls",
            "pg_ir",
            "pg_tensor",
            "pg_util",
        ],
    ),
    (
        "pg_datasets",
        &[
            "pg_activity",
            "pg_graphcon",
            "pg_hls",
            "pg_ir",
            "pg_powersim",
            "pg_store",
            "pg_util",
        ],
    ),
    ("pg_dse", &["pg_gnn", "pg_graphcon", "pg_util"]),
    (
        "powergear",
        &[
            "pg_activity",
            "pg_datasets",
            "pg_dse",
            "pg_gnn",
            "pg_graphcon",
            "pg_hls",
            "pg_ir",
            "pg_powersim",
            "pg_store",
            "pg_util",
        ],
    ),
    (
        "powergear_bench",
        &[
            "pg_activity",
            "pg_datasets",
            "pg_dse",
            "pg_gnn",
            "pg_graphcon",
            "pg_hlpow",
            "pg_hls",
            "pg_powersim",
            "pg_store",
            "pg_tensor",
            "pg_util",
            // loadgen drives the powergear serve daemon over real sockets
            "powergear",
        ],
    ),
    (
        "powergear_repro",
        &[
            "pg_activity",
            "pg_datasets",
            "pg_dse",
            "pg_gnn",
            "pg_graphcon",
            "pg_hlpow",
            "pg_hls",
            "pg_ir",
            "pg_powersim",
            "pg_store",
            "pg_tensor",
            "pg_util",
            "powergear",
        ],
    ),
    // The analyzer is a dependency-free leaf by design: it must be buildable
    // and runnable even when the rest of the workspace is broken.
    ("pg_lint", &[]),
    // Offline shims for the two external dev-dependencies.
    ("criterion", &[]),
    ("proptest", &[]),
];

/// Dev-dependencies get a slightly wider allowance: the vendored test
/// harnesses plus (for the umbrella crate) the analyzer itself.
pub const ALLOWED_DEV_DEPS: &[(&str, &[&str])] = &[
    ("powergear_repro", &["proptest", "pg_lint"]),
    ("powergear_bench", &["criterion"]),
    ("pg_lint", &["proptest"]),
    ("pg_tensor", &["proptest"]),
    ("pg_store", &["proptest"]),
];

fn allowed_for<'a>(table: &[(&str, &'a [&'a str])], name: &str) -> Option<&'a [&'a str]> {
    table
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, deps)| &**deps)
}

/// Checks one crate manifest against the DAG table.
pub fn check_manifest(m: &Manifest, findings: &mut Vec<Finding>) {
    fn dag_finding(path: &str, line: u32, message: String) -> Finding {
        Finding {
            rule: "dag".to_string(),
            severity: Severity::Error,
            path: path.to_string(),
            line,
            message,
            snippet: String::new(),
        }
    }

    for (line, text) in &m.unparsed {
        findings.push(Finding {
            rule: "dag".to_string(),
            severity: Severity::Error,
            path: m.path.clone(),
            line: *line,
            message: format!(
                "manifest line outside the supported TOML subset; extend pg_lint before using it: `{text}`"
            ),
            snippet: text.clone(),
        });
    }

    if m.name.is_empty() {
        // Virtual manifests carry no [package]; only the root is allowed one
        // here, and the root *does* declare powergear_repro, so an unnamed
        // manifest means the parse went wrong.
        findings.push(dag_finding(
            &m.path,
            1,
            "manifest has no `package.name`".to_string(),
        ));
        return;
    }

    let Some(allowed) = allowed_for(ALLOWED_DEPS, &m.name) else {
        findings.push(dag_finding(
            &m.path,
            1,
            format!(
                "crate `{}` is not in the ROADMAP dependency DAG; add it to \
                 ALLOWED_DEPS in crates/analyzer/src/arch.rs and to the \
                 ROADMAP standing constraints",
                m.name
            ),
        ));
        return;
    };

    for dep in &m.deps {
        if !allowed.contains(&dep.as_str()) {
            let known_crate = ALLOWED_DEPS.iter().any(|(n, _)| n == dep);
            let msg = if known_crate {
                format!(
                    "dependency edge `{}` -> `{dep}` is not in the ROADMAP DAG \
                     (back-edge or undocumented layering violation)",
                    m.name
                )
            } else {
                format!(
                    "`{}` depends on `{dep}`, which is not a workspace crate; \
                     external dependencies are banned (offline build)",
                    m.name
                )
            };
            findings.push(Finding {
                rule: if known_crate { "dag" } else { "external_dep" }.to_string(),
                severity: Severity::Error,
                path: m.path.clone(),
                line: 1,
                message: msg,
                snippet: dep.clone(),
            });
        }
    }

    let dev_allowed = allowed_for(ALLOWED_DEV_DEPS, &m.name).unwrap_or(&[]);
    for dep in &m.dev_deps {
        // A dev-dep is fine if it would be fine as a regular dep, or if the
        // dev table grants it.
        if allowed.contains(&dep.as_str()) || dev_allowed.contains(&dep.as_str()) {
            continue;
        }
        let known_crate = ALLOWED_DEPS.iter().any(|(n, _)| n == dep);
        findings.push(Finding {
            rule: if known_crate { "dag" } else { "external_dep" }.to_string(),
            severity: Severity::Error,
            path: m.path.clone(),
            line: 1,
            message: format!(
                "dev-dependency edge `{}` -> `{dep}` is not allowed by the DAG tables",
                m.name
            ),
            snippet: dep.clone(),
        });
    }
}

/// Checks the root manifest: members list must cover every DAG crate, and the
/// table itself must be acyclic (a self-test that runs on every invocation).
pub fn check_root(root: &Manifest, findings: &mut Vec<Finding>) {
    // Every allowed edge endpoint must be a declared workspace crate.
    for (name, deps) in ALLOWED_DEPS {
        for d in *deps {
            if !ALLOWED_DEPS.iter().any(|(n, _)| n == d) {
                findings.push(Finding {
                    rule: "dag".to_string(),
                    severity: Severity::Error,
                    path: "crates/analyzer/src/arch.rs".to_string(),
                    line: 1,
                    message: format!(
                        "ALLOWED_DEPS edge `{name}` -> `{d}` targets an unknown crate"
                    ),
                    snippet: String::new(),
                });
            }
        }
    }

    if let Some(cycle) = find_cycle() {
        findings.push(Finding {
            rule: "dag".to_string(),
            severity: Severity::Error,
            path: "crates/analyzer/src/arch.rs".to_string(),
            line: 1,
            message: format!(
                "ALLOWED_DEPS table contains a cycle: {}",
                cycle.join(" -> ")
            ),
            snippet: String::new(),
        });
    }

    // The members list and the DAG table must agree (root package itself is
    // declared by the root manifest, not the members array).
    for (name, _) in ALLOWED_DEPS {
        if *name == "powergear_repro" {
            continue;
        }
        let expected_dir = dir_of(name);
        if !root.members.iter().any(|mem| mem == expected_dir) {
            findings.push(Finding {
                rule: "dag".to_string(),
                severity: Severity::Error,
                path: root.path.clone(),
                line: 1,
                message: format!("workspace members is missing `{expected_dir}` (crate `{name}`)"),
                snippet: String::new(),
            });
        }
    }
    for mem in &root.members {
        if !ALLOWED_DEPS.iter().any(|(n, _)| dir_of(n) == mem.as_str()) {
            findings.push(Finding {
                rule: "dag".to_string(),
                severity: Severity::Error,
                path: root.path.clone(),
                line: 1,
                message: format!("workspace member `{mem}` has no entry in the ROADMAP DAG table"),
                snippet: String::new(),
            });
        }
    }
}

/// Maps a crate name to its workspace directory.
pub fn dir_of(name: &str) -> &'static str {
    match name {
        "pg_util" => "crates/util",
        "pg_ir" => "crates/ir",
        "pg_tensor" => "crates/tensor",
        "pg_hls" => "crates/hls",
        "pg_activity" => "crates/activity",
        "pg_graphcon" => "crates/graphcon",
        "pg_powersim" => "crates/powersim",
        "pg_hlpow" => "crates/hlpow",
        "pg_gnn" => "crates/gnn",
        "pg_store" => "crates/store",
        "pg_datasets" => "crates/datasets",
        "pg_dse" => "crates/dse",
        "powergear" => "crates/core",
        "powergear_bench" => "crates/bench",
        "powergear_repro" => ".",
        "pg_lint" => "crates/analyzer",
        "criterion" => "vendor/criterion",
        "proptest" => "vendor/proptest",
        _ => "",
    }
}

/// DFS cycle check over the static table; returns a witness path if cyclic.
fn find_cycle() -> Option<Vec<String>> {
    fn visit(name: &str, stack: &mut Vec<String>, done: &mut Vec<String>) -> Option<Vec<String>> {
        if done.iter().any(|d| d == name) {
            return None;
        }
        if let Some(pos) = stack.iter().position(|s| s == name) {
            let mut cycle: Vec<String> = stack[pos..].to_vec();
            cycle.push(name.to_string());
            return Some(cycle);
        }
        stack.push(name.to_string());
        if let Some(deps) = ALLOWED_DEPS
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| d)
        {
            for d in *deps {
                if let Some(c) = visit(d, stack, done) {
                    return Some(c);
                }
            }
        }
        stack.pop();
        done.push(name.to_string());
        None
    }
    let mut done = Vec::new();
    for (name, _) in ALLOWED_DEPS {
        let mut stack = Vec::new();
        if let Some(c) = visit(name, &mut stack, &mut done) {
            return Some(c);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::parse_manifest;

    #[test]
    fn table_is_acyclic() {
        assert!(find_cycle().is_none());
    }

    #[test]
    fn table_is_closed() {
        for (name, deps) in ALLOWED_DEPS {
            for d in *deps {
                assert!(
                    ALLOWED_DEPS.iter().any(|(n, _)| n == d),
                    "{name} -> {d} targets unknown crate"
                );
            }
        }
    }

    #[test]
    fn back_edge_rejected() {
        let m = parse_manifest(
            "crates/util/Cargo.toml",
            "[package]\nname = \"pg_util\"\n[dependencies]\npg_hls.workspace = true\n",
        );
        let mut f = Vec::new();
        check_manifest(&m, &mut f);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "dag");
        assert!(f[0].message.contains("back-edge"));
    }

    #[test]
    fn external_dep_rejected() {
        let m = parse_manifest(
            "crates/util/Cargo.toml",
            "[package]\nname = \"pg_util\"\n[dependencies]\nserde = \"1\"\n",
        );
        let mut f = Vec::new();
        check_manifest(&m, &mut f);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "external_dep");
    }

    #[test]
    fn conforming_manifest_passes() {
        let m = parse_manifest(
            "crates/hls/Cargo.toml",
            "[package]\nname = \"pg_hls\"\n[dependencies]\npg_ir.workspace = true\npg_util.workspace = true\n",
        );
        let mut f = Vec::new();
        check_manifest(&m, &mut f);
        assert!(f.is_empty(), "{f:?}");
    }
}
