//! Minimal parser for the subset of TOML the workspace manifests use:
//! `[section]` headers, `key = "string"`, `key.workspace = true`,
//! `key = { path = "..." }` inline tables, and multi-line string arrays.
//!
//! This is deliberately not a general TOML parser — it only has to read
//! manifests this repository itself checks in, and the architecture rule
//! fails loudly when a manifest drifts outside the subset.

/// A parsed `Cargo.toml`, reduced to the facts the architecture rules need.
#[derive(Debug, Default)]
pub struct Manifest {
    /// Workspace-relative path of the manifest (e.g. `crates/hls/Cargo.toml`).
    pub path: String,
    /// `package.name`, empty for a virtual manifest.
    pub name: String,
    /// `[dependencies]` keys in file order.
    pub deps: Vec<String>,
    /// `[dev-dependencies]` keys in file order.
    pub dev_deps: Vec<String>,
    /// `workspace.members` entries (root manifest only).
    pub members: Vec<String>,
    /// `workspace.dependencies` keys (root manifest only).
    pub workspace_deps: Vec<String>,
    /// Lines the parser could not classify, surfaced as findings so drift
    /// outside the supported subset never passes silently.
    pub unparsed: Vec<(u32, String)>,
}

/// Strips a trailing `#` comment that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// Extracts `"..."` string items from an array body fragment.
fn string_items(fragment: &str, out: &mut Vec<String>) {
    let mut rest = fragment;
    while let Some(open) = rest.find('"') {
        let Some(close_rel) = rest[open + 1..].find('"') else {
            break;
        };
        out.push(rest[open + 1..open + 1 + close_rel].to_string());
        rest = &rest[open + close_rel + 2..];
    }
}

pub fn parse_manifest(path: &str, text: &str) -> Manifest {
    let mut m = Manifest {
        path: path.to_string(),
        ..Manifest::default()
    };
    #[derive(PartialEq)]
    enum Sect {
        Package,
        Deps,
        DevDeps,
        Workspace,
        WorkspaceDeps,
        Other,
    }
    let mut sect = Sect::Other;
    // Which array key a multi-line `[` ... `]` block is feeding, if any.
    let mut open_array: Option<&'static str> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }

        if let Some(key) = open_array {
            let done = line.contains(']');
            let body = line.split(']').next().unwrap_or("");
            if key == "members" {
                string_items(body, &mut m.members);
            }
            if done {
                open_array = None;
            }
            continue;
        }

        if line.starts_with('[') {
            sect = match line {
                "[package]" => Sect::Package,
                "[dependencies]" => Sect::Deps,
                "[dev-dependencies]" => Sect::DevDeps,
                "[workspace]" => Sect::Workspace,
                "[workspace.dependencies]" => Sect::WorkspaceDeps,
                "[lib]" | "[[bin]]" | "[[bench]]" | "[workspace.package]" => Sect::Other,
                _ => {
                    m.unparsed.push((line_no, raw.trim().to_string()));
                    Sect::Other
                }
            };
            continue;
        }

        let Some(eq) = line.find('=') else {
            m.unparsed.push((line_no, raw.trim().to_string()));
            continue;
        };
        let key = line[..eq].trim();
        let val = line[eq + 1..].trim();
        // `pg_util.workspace = true` — the dependency name is the first
        // dotted segment.
        let base = key.split('.').next().unwrap_or(key).trim();

        match sect {
            Sect::Package => {
                if base == "name" {
                    let mut v = Vec::new();
                    string_items(val, &mut v);
                    if let Some(n) = v.into_iter().next() {
                        m.name = n;
                    }
                }
            }
            Sect::Deps => m.deps.push(base.to_string()),
            Sect::DevDeps => m.dev_deps.push(base.to_string()),
            Sect::WorkspaceDeps => m.workspace_deps.push(base.to_string()),
            Sect::Workspace => {
                if base == "members" {
                    if val == "[" || (val.starts_with('[') && !val.contains(']')) {
                        string_items(val, &mut m.members);
                        open_array = Some("members");
                    } else {
                        string_items(val, &mut m.members);
                    }
                }
            }
            Sect::Other => {}
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[workspace]
resolver = "2"
members = [
    "crates/a",   # trailing comment
    "crates/b",
]

[workspace.dependencies]
pg_a = { path = "crates/a" }

[package]
name = "demo"
version.workspace = true

[dependencies]
pg_util.workspace = true
pg_hls = { path = "../hls" }

[dev-dependencies]
proptest.workspace = true
"#;

    #[test]
    fn parses_sections() {
        let m = parse_manifest("Cargo.toml", SAMPLE);
        assert_eq!(m.name, "demo");
        assert_eq!(m.members, vec!["crates/a", "crates/b"]);
        assert_eq!(m.workspace_deps, vec!["pg_a"]);
        assert_eq!(m.deps, vec!["pg_util", "pg_hls"]);
        assert_eq!(m.dev_deps, vec!["proptest"]);
        assert!(m.unparsed.is_empty());
    }

    #[test]
    fn comments_inside_strings_survive() {
        let m = parse_manifest("Cargo.toml", "[package]\nname = \"has#hash\"\n");
        assert_eq!(m.name, "has#hash");
    }

    #[test]
    fn unknown_section_is_flagged() {
        let m = parse_manifest("Cargo.toml", "[features]\nfoo = []\n");
        assert_eq!(m.unparsed.len(), 1);
    }
}
