//! A small hand-rolled Rust lexer.
//!
//! The rule engine needs just enough token structure to tell identifiers
//! apart from the insides of comments and string literals — a naive
//! `grep` would flag `//! println!(...)` doc examples and `"HashMap"`
//! string payloads. The lexer therefore recognizes comments (line, block
//! with nesting, doc), string/char/byte literals (including raw strings
//! with `#` fences), lifetimes, numbers, identifiers and punctuation.
//!
//! Guarantees (property-tested in `tests/lexer_props.rs`):
//!
//! * never panics, on any input string;
//! * tokens are non-empty, contiguous and cover the input exactly, so
//!   `tokens.map(|t| &src[t.start..t.end])` concatenates back to `src`;
//! * every token's `line` is the 1-based line its first byte sits on.
//!
//! Unterminated literals or comments extend to end-of-input rather than
//! erroring: the lexer's job is to classify bytes, not validate Rust.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Whitespace run (including newlines).
    Ws,
    /// `// ...` to end of line (covers `///` and `//!` doc comments).
    LineComment,
    /// `/* ... */`, nesting-aware (covers `/** ... */`).
    BlockComment,
    /// Identifier or keyword, including raw `r#ident`.
    Ident,
    /// Lifetime such as `'a` (but not a char literal).
    Lifetime,
    /// Numeric literal, with radix prefix / float part / suffix attached.
    Num,
    /// String literal: `"..."`, `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`.
    Str,
    /// Character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// Punctuation. Multi-char sequences `::`, `->`, `=>`, `..`, `..=`
    /// are single tokens; everything else is one char per token.
    Punct,
}

/// One token: classification plus byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

/// Character cursor: `(byte offset, char)` pairs plus an end sentinel,
/// so every position arithmetic stays on char boundaries by construction.
struct Cursor<'s> {
    src: &'s str,
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
    line: u32,
}

impl<'s> Cursor<'s> {
    fn new(src: &'s str) -> Self {
        Cursor {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, idx: usize) -> usize {
        self.chars.get(idx).map_or(self.src.len(), |&(b, _)| b)
    }

    /// Advances one char, tracking newlines.
    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.pos) {
            if c == '\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a complete, contiguous token stream.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while !cur.at_end() {
        let start_idx = cur.pos;
        let line = cur.line;
        let kind = next_kind(&mut cur);
        debug_assert!(cur.pos > start_idx, "lexer must always make progress");
        out.push(Token {
            kind,
            start: cur.byte_at(start_idx),
            end: cur.byte_at(cur.pos),
            line,
        });
    }
    out
}

/// Consumes one token's chars and returns its kind.
fn next_kind(cur: &mut Cursor<'_>) -> TokKind {
    let c = cur.peek(0).unwrap_or('\0');
    if c.is_whitespace() {
        while cur.peek(0).is_some_and(|c| c.is_whitespace()) {
            cur.bump();
        }
        return TokKind::Ws;
    }
    if c == '/' && cur.peek(1) == Some('/') {
        while cur.peek(0).is_some_and(|c| c != '\n') {
            cur.bump();
        }
        return TokKind::LineComment;
    }
    if c == '/' && cur.peek(1) == Some('*') {
        cur.bump_n(2);
        let mut depth = 1usize;
        while !cur.at_end() && depth > 0 {
            match (cur.peek(0), cur.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    cur.bump_n(2);
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    cur.bump_n(2);
                }
                _ => cur.bump(),
            }
        }
        return TokKind::BlockComment;
    }
    // Raw strings, byte strings, raw identifiers: r" r#" r#ident b" b' br"
    if c == 'r' || c == 'b' {
        if let Some(kind) = try_prefixed_literal(cur) {
            return kind;
        }
    }
    if is_ident_start(c) {
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        return TokKind::Ident;
    }
    if c.is_ascii_digit() {
        lex_number(cur);
        return TokKind::Num;
    }
    if c == '"' {
        cur.bump();
        lex_quoted(cur, '"');
        return TokKind::Str;
    }
    if c == '\'' {
        // Lifetime `'a` vs char `'a'`: a lifetime is `'` + ident chars NOT
        // followed by a closing quote.
        if cur.peek(1).is_some_and(is_ident_start) {
            let mut j = 2;
            while cur.peek(j).is_some_and(is_ident_continue) {
                j += 1;
            }
            if cur.peek(j) != Some('\'') {
                cur.bump(); // '
                cur.bump_n(j - 1);
                return TokKind::Lifetime;
            }
        }
        cur.bump();
        lex_quoted(cur, '\'');
        return TokKind::Char;
    }
    // Multi-char punctuation the rule engine cares about.
    match (c, cur.peek(1), cur.peek(2)) {
        (':', Some(':'), _) | ('-', Some('>'), _) | ('=', Some('>'), _) => {
            cur.bump_n(2);
            return TokKind::Punct;
        }
        ('.', Some('.'), Some('=')) => {
            cur.bump_n(3);
            return TokKind::Punct;
        }
        ('.', Some('.'), _) => {
            cur.bump_n(2);
            return TokKind::Punct;
        }
        _ => {}
    }
    cur.bump();
    TokKind::Punct
}

/// Consumes the body of a quoted literal after the opening quote, honoring
/// backslash escapes, up to the closing quote or end of input.
fn lex_quoted(cur: &mut Cursor<'_>, close: char) {
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            cur.bump_n(2);
            continue;
        }
        cur.bump();
        if c == close {
            return;
        }
    }
}

/// Tries `r#ident`, `r"..."`, `r#"..."#`, `b"..."`, `b'...'`, `br#"..."#`
/// at the cursor; consumes and classifies on success, leaves the cursor
/// untouched on failure (the caller falls through to plain ident lexing).
fn try_prefixed_literal(cur: &mut Cursor<'_>) -> Option<TokKind> {
    let c0 = cur.peek(0)?;
    // Offset of the char after the r/b/br prefix.
    let (raw, body): (bool, usize) = match (c0, cur.peek(1)) {
        ('r', Some('#')) | ('r', Some('"')) => (true, 1),
        ('b', Some('r')) if matches!(cur.peek(2), Some('#') | Some('"')) => (true, 2),
        ('b', Some('"')) => (false, 1),
        ('b', Some('\'')) => {
            cur.bump_n(2);
            lex_quoted(cur, '\'');
            return Some(TokKind::Char);
        }
        _ => return None,
    };
    if !raw {
        cur.bump_n(body + 1);
        lex_quoted(cur, '"');
        return Some(TokKind::Str);
    }
    // Count `#` fence.
    let mut fence = 0usize;
    while cur.peek(body + fence) == Some('#') {
        fence += 1;
    }
    if cur.peek(body + fence) != Some('"') {
        // `r#ident` (raw identifier) or bare `r#` — treat as ident if an
        // ident follows, otherwise not a literal.
        if c0 == 'r' && fence == 1 && cur.peek(2).is_some_and(is_ident_start) {
            cur.bump_n(2);
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            return Some(TokKind::Ident);
        }
        return None;
    }
    // Raw string: consume prefix + fence + quote, then scan for `"` + fence.
    cur.bump_n(body + fence + 1);
    'scan: while let Some(c) = cur.peek(0) {
        cur.bump();
        if c == '"' {
            for k in 0..fence {
                if cur.peek(k) != Some('#') {
                    continue 'scan;
                }
            }
            cur.bump_n(fence);
            return Some(TokKind::Str);
        }
    }
    Some(TokKind::Str) // unterminated: runs to end of input
}

/// Consumes a numeric literal: radix prefixes, `_` separators, a float
/// part (only when the dot is followed by a digit — `0..5` stays a range),
/// exponents, and trailing type suffixes (`1.0f32`, `0xFFu8`).
fn lex_number(cur: &mut Cursor<'_>) {
    // Leading digits (covers radix prefixes since `x`/`o`/`b` and hex
    // digits fall under ident-continue).
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    // Fractional part: `.` followed by a digit.
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
    }
    // Exponent sign: `1e-3` — the `e` was consumed as ident-continue, the
    // sign and exponent digits were not.
    if matches!(cur.peek(0), Some('+') | Some('-'))
        && cur
            .chars
            .get(cur.pos.wrapping_sub(1))
            .is_some_and(|&(_, c)| c == 'e' || c == 'E')
    {
        cur.bump();
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    fn sig(src: &str) -> Vec<(TokKind, &str)> {
        kinds(src)
            .into_iter()
            .filter(|(k, _)| {
                !matches!(
                    k,
                    TokKind::Ws | TokKind::LineComment | TokKind::BlockComment
                )
            })
            .collect()
    }

    #[test]
    fn covers_input_exactly() {
        let src = "fn main() { let x = 1.0; // hi\n }";
        let toks = lex(src);
        assert_eq!(toks.first().map(|t| t.start), Some(0));
        assert_eq!(toks.last().map(|t| t.end), Some(src.len()));
        for w in toks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn comments_hide_identifiers() {
        let src = "// HashMap here\n/* println! */ let x = 0;";
        let idents: Vec<_> = sig(src)
            .into_iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(idents, vec!["let", "x"]);
    }

    #[test]
    fn strings_hide_identifiers() {
        let src = r##"let s = "HashMap::new()"; let r = r#"Instant"# ;"##;
        let idents: Vec<_> = sig(src)
            .into_iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(idents, vec!["let", "s", "let", "r"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let toks = sig(src);
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn ranges_are_not_floats() {
        let src = "for i in 0..5 { let x = 1.5e-3f64; }";
        let toks = sig(src);
        assert!(toks.contains(&(TokKind::Punct, "..")));
        assert!(toks.contains(&(TokKind::Num, "1.5e-3f64")));
    }

    #[test]
    fn path_sep_is_one_token() {
        let toks = sig("std::collections::HashMap");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "std"),
                (TokKind::Punct, "::"),
                (TokKind::Ident, "collections"),
                (TokKind::Punct, "::"),
                (TokKind::Ident, "HashMap"),
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ c */ x";
        let toks = sig(src);
        assert_eq!(toks, vec![(TokKind::Ident, "x")]);
    }

    #[test]
    fn line_numbers() {
        let src = "a\nb\n  c";
        let toks: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.line)
            .collect();
        assert_eq!(toks, vec![1, 2, 3]);
    }

    #[test]
    fn unterminated_literals_run_to_eof() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'"] {
            let toks = lex(src);
            assert_eq!(toks.last().map(|t| t.end), Some(src.len()), "src={src:?}");
        }
    }
}
