//! # pg_lint — workspace-native static analyzer
//!
//! Enforces the determinism and architecture invariants this reproduction
//! depends on, directly over the workspace's own Rust sources and Cargo
//! manifests. No external dependencies, no syn/quote — a small hand-rolled
//! lexer ([`lexer`]), a line-aware rule engine ([`check`], [`engine`]) and a
//! minimal manifest reader ([`manifest`], [`arch`]).
//!
//! ## Rule catalog
//!
//! | rule | family | severity | scope | what it catches |
//! |------|--------|----------|-------|-----------------|
//! | `map_iter` | D determinism | error | lib code, non-test | iterating `HashMap`/`HashSet` (`.iter()`, `.keys()`, `.values()`, `.drain()`, `.into_iter()`, `for .. in &map`) — iteration order is process-random |
//! | `wall_clock` | D determinism | error | lib code outside `pg_util::prof` and `powergear_bench` | `Instant` / `SystemTime` — wall-clock reads leak nondeterminism into artifacts |
//! | `float_cast` | D determinism | warning | threaded modules (`pg_gnn::serve`, `pg_gnn::train`, `pg_datasets::build`) | `as f32` / `as f64` casts whose operand order may depend on thread interleaving |
//! | `float_fold` | D determinism | warning | threaded modules | iterator `.sum()` / `.product()` reductions without a fixed combine order |
//! | `dag` | A architecture | error | every `Cargo.toml` | dependency edges missing from the ROADMAP DAG (back-edges, undocumented layering), members/table drift, cyclic table |
//! | `external_dep` | A architecture | error | every `Cargo.toml` | any non-workspace, non-vendored dependency (the build is offline) |
//! | `unsafe_no_safety` | S safety | error | all non-test code | `unsafe` without a preceding `// SAFETY:` comment |
//! | `panic_path` | S safety | error | `pg_store` lib + `pg_gnn::serve`, non-test | `.unwrap()` / `.expect()` / `panic!` where typed errors are required |
//! | `print_hygiene` | H hygiene | warning | lib code outside `pg_util::prof` | `println!` / `eprintln!` / `print!` / `eprint!` in library code |
//! | `allow_no_reason` | H hygiene | warning | all non-test code | `#[allow(..)]` without an adjacent `// reason:` comment |
//! | `bad_suppression` | H hygiene | error | everywhere | malformed or reason-less `// pg-lint: allow(..)` comments (not suppressible) |
//!
//! ## Suppressions and baseline
//!
//! A finding can be silenced at the site with
//! `// pg-lint: allow(<rule>, reason = "...")` on the same or preceding
//! line — the reason is mandatory. Pre-existing findings are grandfathered
//! in `pg-lint.baseline` (tab-separated `rule / path / line-fingerprint /
//! count / reason`); the fingerprint hashes the offending line's text, so
//! entries survive unrelated edits but die with the line they excuse. Stale
//! entries fail the run so the baseline can only shrink.
//!
//! ## CLI
//!
//! ```text
//! cargo run -p pg_lint -- --workspace [--deny-warnings] [--json out.jsonl]
//!                         [--baseline pg-lint.baseline] [--write-baseline]
//!                         [--root DIR]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage/IO error.

pub mod arch;
pub mod check;
pub mod engine;
pub mod lexer;
pub mod manifest;
pub mod source;

pub use check::Config;
pub use engine::{
    apply_baseline, parse_baseline, render_baseline, run_workspace, Finding, Report, Severity,
};
