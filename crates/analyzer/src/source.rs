//! Source-file model: lexed text plus the structural facts rules need —
//! file class (library / binary / test), `#[cfg(test)]` and `#[test]`
//! regions, and inline `// pg-lint: allow(...)` suppressions.

use crate::lexer::{lex, TokKind, Token};

/// How a file participates in the build; several rules scope by class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code: `src/**` of a crate (minus `src/bin/**`).
    Lib,
    /// Binary targets: `src/bin/**` and declared `[[bin]]` paths.
    Bin,
    /// Integration tests, benches and examples.
    Test,
}

/// An inline suppression parsed from `// pg-lint: allow(rule, reason = "...")`.
/// It silences `rule` on the comment's own line and on the following line.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: String,
    pub reason: String,
    pub line: u32,
}

/// A lexed workspace source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub class: FileClass,
    pub text: String,
    pub tokens: Vec<Token>,
    /// Byte ranges covered by `#[cfg(test)]` items and `#[test]` functions.
    pub test_regions: Vec<(usize, usize)>,
    pub suppressions: Vec<Suppression>,
    /// Suppression comments that failed to parse (missing reason, bad
    /// syntax); reported as `bad_suppression` findings.
    pub bad_suppressions: Vec<(u32, String)>,
}

impl SourceFile {
    pub fn new(path: String, class: FileClass, text: String) -> Self {
        let tokens = lex(&text);
        let test_regions = find_test_regions(&tokens, &text);
        let (suppressions, bad_suppressions) = find_suppressions(&tokens, &text);
        SourceFile {
            path,
            class,
            text,
            tokens,
            test_regions,
            suppressions,
            bad_suppressions,
        }
    }

    /// Indices of significant tokens (not whitespace, not comments).
    pub fn significant(&self) -> Vec<usize> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokKind::Ws | TokKind::LineComment | TokKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Text of a token.
    pub fn tok_text(&self, t: &Token) -> &str {
        &self.text[t.start..t.end]
    }

    /// `true` when the byte offset falls inside a `#[cfg(test)]` / `#[test]`
    /// region (or the whole file is test-classified).
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.class == FileClass::Test
            || self
                .test_regions
                .iter()
                .any(|&(s, e)| offset >= s && offset < e)
    }

    /// The trimmed source line `line` (1-based) sits on, for snippets and
    /// baseline fingerprints.
    pub fn line_text(&self, line: u32) -> &str {
        self.text
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
    }

    /// `true` when `rule` is suppressed on `line` by an inline allow on the
    /// same or the preceding line.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.rule == rule && (s.line == line || s.line + 1 == line))
    }
}

/// Finds byte ranges of test-only code: an item (with braces) following a
/// `#[cfg(test)]` or `#[test]` attribute.
fn find_test_regions(tokens: &[Token], text: &str) -> Vec<(usize, usize)> {
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokKind::Ws | TokKind::LineComment | TokKind::BlockComment
            )
        })
        .collect();
    let word = |t: &Token| &text[t.start..t.end];
    let mut regions = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        // `#` `[` ... `]` — attribute; check whether it marks test code.
        if word(sig[i]) == "#" && i + 1 < sig.len() && word(sig[i + 1]) == "[" {
            let attr_start = i;
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut is_test_attr = false;
            let mut saw_cfg = false;
            while j < sig.len() && depth > 0 {
                match word(sig[j]) {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "cfg" => saw_cfg = true,
                    "test" => is_test_attr = true,
                    _ => {}
                }
                j += 1;
            }
            // `#[test]` or `#[cfg(test)]` (incl. `#[cfg(all(test, ...))]`).
            let bare_test = is_test_attr && !saw_cfg && j == attr_start + 4;
            if is_test_attr && (bare_test || saw_cfg) {
                // Skip any further attributes between this one and the item.
                let mut k = j;
                while k + 1 < sig.len() && word(sig[k]) == "#" && word(sig[k + 1]) == "[" {
                    let mut d = 1i32;
                    k += 2;
                    while k < sig.len() && d > 0 {
                        match word(sig[k]) {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                // Scan to the item's opening brace (or `;` for `mod x;`).
                let item_start = sig.get(attr_start).map(|t| t.start).unwrap_or(0);
                let mut brace = None;
                while k < sig.len() {
                    match word(sig[k]) {
                        "{" => {
                            brace = Some(k);
                            break;
                        }
                        ";" => break,
                        _ => k += 1,
                    }
                }
                if let Some(open) = brace {
                    let mut d = 0i32;
                    let mut m = open;
                    while m < sig.len() {
                        match word(sig[m]) {
                            "{" => d += 1,
                            "}" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    let end = sig.get(m).map(|t| t.end).unwrap_or(text.len());
                    regions.push((item_start, end));
                    i = m + 1;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

/// Parses `pg-lint: allow(rule, reason = "...")` comments.
fn find_suppressions(tokens: &[Token], text: &str) -> (Vec<Suppression>, Vec<(u32, String)>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        // Only a comment that *begins* with `pg-lint:` (after the comment
        // leader) is a directive — prose that merely mentions the syntax,
        // like this analyzer's own docs, is not.
        let body = &text[t.start..t.end];
        let content = body
            .trim_start_matches(['/', '*', '!'])
            .trim_start()
            .trim_end_matches(['*', '/'])
            .trim_end();
        let Some(rest) = content.strip_prefix("pg-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        match parse_allow(rest) {
            Some((rule, Some(reason))) if !reason.trim().is_empty() => ok.push(Suppression {
                rule,
                reason,
                line: t.line,
            }),
            Some((rule, _)) => bad.push((
                t.line,
                format!("suppression of `{rule}` is missing a non-empty reason"),
            )),
            None => bad.push((
                t.line,
                "malformed pg-lint comment; expected `pg-lint: allow(<rule>, reason = \"...\")`"
                    .to_string(),
            )),
        }
    }
    (ok, bad)
}

/// Parses `allow(rule, reason = "...")`; returns `(rule, reason)`.
fn parse_allow(s: &str) -> Option<(String, Option<String>)> {
    let s = s.strip_prefix("allow")?.trim_start();
    let s = s.strip_prefix('(')?;
    let close = s.rfind(')')?;
    let inner = &s[..close];
    let (rule, rest) = match inner.find(',') {
        Some(c) => (&inner[..c], Some(&inner[c + 1..])),
        None => (inner, None),
    };
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c == '_' || c.is_ascii_alphanumeric()) {
        return None;
    }
    let reason = rest.and_then(|r| {
        let r = r.trim().strip_prefix("reason")?.trim_start();
        let r = r.strip_prefix('=')?.trim_start();
        let r = r.strip_prefix('"')?;
        let end = r.rfind('"')?;
        Some(r[..end].to_string())
    });
    Some((rule.to_string(), reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_region_detected() {
        let src = "pub fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.iter(); }\n}\n";
        let f = SourceFile::new("x.rs".into(), FileClass::Lib, src.into());
        assert_eq!(f.test_regions.len(), 1);
        let iter_at = src.find("x.iter").unwrap();
        assert!(f.in_test_region(iter_at));
        assert!(!f.in_test_region(src.find("pub fn a").unwrap()));
    }

    #[test]
    fn test_fn_region_detected() {
        let src = "fn lib() {}\n#[test]\nfn t() { boom(); }\nfn lib2() {}\n";
        let f = SourceFile::new("x.rs".into(), FileClass::Lib, src.into());
        assert!(f.in_test_region(src.find("boom").unwrap()));
        assert!(!f.in_test_region(src.find("lib2").unwrap()));
    }

    #[test]
    fn cfg_not_test_ignored() {
        let src = "#[cfg(feature = \"x\")]\nmod m { fn a() {} }\n";
        let f = SourceFile::new("x.rs".into(), FileClass::Lib, src.into());
        assert!(f.test_regions.is_empty());
    }

    #[test]
    fn suppression_parses() {
        let src = "// pg-lint: allow(map_iter, reason = \"sorted right after\")\nlet x = 1;\n";
        let f = SourceFile::new("x.rs".into(), FileClass::Lib, src.into());
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].rule, "map_iter");
        assert!(f.suppressed("map_iter", 1));
        assert!(f.suppressed("map_iter", 2));
        assert!(!f.suppressed("map_iter", 3));
        assert!(!f.suppressed("wall_clock", 2));
    }

    #[test]
    fn suppression_without_reason_is_bad() {
        let src = "// pg-lint: allow(map_iter)\n// pg-lint: allow(x, reason = \"\")\n";
        let f = SourceFile::new("x.rs".into(), FileClass::Lib, src.into());
        assert!(f.suppressions.is_empty());
        assert_eq!(f.bad_suppressions.len(), 2);
    }
}
