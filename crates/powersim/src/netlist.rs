//! RTL netlist surrogate.
//!
//! The paper measures ground-truth power on a ZCU102 after running the full
//! RTL implementation flow. With no board available, this module synthesizes
//! the post-implementation netlist the board would run: the bound hardware
//! graph (functional units after resource sharing, buffer banks, the FSM
//! controller and clock network) with per-net traced switching activities.
//! The [`crate::power`] oracle evaluates Eq. 1 over this netlist.

use pg_activity::ExecutionTrace;
use pg_graphcon::{buffers::insert_buffers, build::build_raw, merge::merge_datapaths, trim::trim};
use pg_graphcon::{NodeKind, WorkGraph};
use pg_hls::{FuKind, HlsDesign};

/// Kind of a netlist component.
#[derive(Debug, Clone, PartialEq)]
pub enum CompKind {
    /// A functional unit (shared instance).
    Fu(FuKind),
    /// A BRAM bank.
    Bram {
        /// Backing array.
        array: String,
        /// Bank index.
        bank: usize,
    },
    /// The FSM controller.
    Fsm,
    /// The clock network root.
    Clock,
}

/// One placed component.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// What the component is.
    pub kind: CompKind,
    /// LUT area (drives placement footprint).
    pub lut: u32,
    /// Flip-flops (clock load).
    pub ff: u32,
    /// DSP blocks.
    pub dsp: u32,
    /// BRAM blocks.
    pub bram: u32,
    /// Internal per-cycle toggle intensity (traced; 0 for vector-less).
    pub internal_sa: f64,
    /// Activation rate (fraction of cycles the component is exercised).
    pub ar: f64,
}

/// A two-terminal net between components.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Driving component index.
    pub src: usize,
    /// Receiving component index.
    pub dst: usize,
    /// Bus width in bits.
    pub bits: u32,
    /// Traced switching activity (Hamming bits per cycle; 0 vector-less).
    pub sa: f64,
    /// Traced activation rate.
    pub ar: f64,
    /// Net class for capacitance modeling.
    pub class: NetClass,
}

/// Net classes with different capacitance profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetClass {
    /// Datapath bus.
    Data,
    /// FSM enable/select fan-out.
    Control,
    /// Clock tree branch.
    Clock,
}

/// The complete netlist surrogate.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    /// Components (placement assigns coordinates by index).
    pub components: Vec<Component>,
    /// Nets.
    pub nets: Vec<Net>,
    /// Design latency in cycles (for utilization-derived defaults).
    pub latency: u64,
}

impl Netlist {
    /// Total LUT area (placement grid sizing).
    pub fn total_lut(&self) -> u64 {
        self.components.iter().map(|c| c.lut as u64).sum()
    }

    /// Total flip-flop count (clock load).
    pub fn total_ff(&self) -> u64 {
        self.components.iter().map(|c| c.ff as u64).sum()
    }
}

/// Builds the netlist for `design`. Pass a real trace for the board oracle
/// or [`ExecutionTrace::empty`] for vector-less estimation.
pub fn build_netlist(design: &HlsDesign, trace: &ExecutionTrace) -> Netlist {
    // The bound hardware graph: buffers inserted, shared datapaths merged,
    // cast noise trimmed (casts are wires with negligible capacitance).
    let mut g: WorkGraph = build_raw(design, trace);
    insert_buffers(&mut g, design);
    merge_datapaths(&mut g, design);
    trim(&mut g);
    build_netlist_from_graph(design, &g)
}

/// Builds the netlist from an already-constructed (fully optimized) work
/// graph — the exact graph [`build_netlist`] would build internally. The
/// dataset builder constructs one work graph per design point and shares
/// it between the GNN sample and this oracle netlist, so the construction
/// passes run once instead of twice.
///
/// The graph must have gone through **all** passes (buffers, merge, trim);
/// a partially-built graph would silently change the physics, so pass one
/// built by `GraphFlow::new()` (all passes on) or by [`build_netlist`]'s
/// own sequence.
pub fn build_netlist_from_graph(design: &HlsDesign, g: &WorkGraph) -> Netlist {
    let lib = &design.lib;
    let mut components = Vec::new();
    let mut node_to_comp = vec![usize::MAX; g.nodes.len()];
    for (ni, node) in g.nodes.iter().enumerate() {
        if !node.alive {
            continue;
        }
        let comp = match &node.kind {
            NodeKind::Op(op) => {
                let kind = lib.kind_of(*op);
                let spec = lib.spec(kind);
                Component {
                    kind: CompKind::Fu(kind),
                    lut: spec.lut,
                    ff: spec.ff,
                    dsp: spec.dsp,
                    bram: 0,
                    internal_sa: node.activity.sa_overall,
                    ar: node.activity.ar,
                }
            }
            NodeKind::BufferIo | NodeKind::BufferInternal => Component {
                kind: CompKind::Bram {
                    array: node.array.clone().unwrap_or_default(),
                    bank: node.bank,
                },
                lut: 8,
                ff: 16,
                dsp: 0,
                bram: node.bram.round() as u32,
                internal_sa: node.activity.sa_overall,
                ar: node.activity.ar,
            },
        };
        node_to_comp[ni] = components.len();
        components.push(comp);
    }

    // Controller and clock root.
    let states = design.fsmd.num_states() as u32;
    let fsm = components.len();
    components.push(Component {
        kind: CompKind::Fsm,
        lut: 40 + states * 3,
        ff: 32 + states,
        dsp: 0,
        bram: 0,
        internal_sa: 1.0, // state register toggles nearly every cycle
        ar: 1.0,
    });
    let clock = components.len();
    components.push(Component {
        kind: CompKind::Clock,
        lut: 0,
        ff: 0,
        dsp: 0,
        bram: 0,
        internal_sa: 1.0,
        ar: 1.0,
    });

    let mut nets = Vec::new();
    // Datapath nets from graph edges; SA/AR folded straight over the
    // compressed runs (bit-identical to the slice math of Eq. 2/3), each
    // distinct stream folded once (fan-out shares refs across edges).
    let mut fold_memo: std::collections::BTreeMap<(u32, u32), (f64, f64)> =
        std::collections::BTreeMap::new();
    for e in g.edges.iter().filter(|e| e.alive) {
        let (s, d) = (node_to_comp[e.src], node_to_comp[e.dst]);
        if s == usize::MAX || d == usize::MAX {
            continue;
        }
        let (sa, ar) = g.events.sa_ar_memo(e.src_ev, g.latency, &mut fold_memo);
        nets.push(Net {
            src: s,
            dst: d,
            bits: 32,
            sa,
            ar,
            class: NetClass::Data,
        });
    }
    // Control enables: FSM -> every sequenced component.
    for (ci, comp) in components.iter().enumerate() {
        if ci == fsm || ci == clock {
            continue;
        }
        if matches!(comp.kind, CompKind::Fu(FuKind::Wire)) {
            continue;
        }
        nets.push(Net {
            src: fsm,
            dst: ci,
            bits: 2,
            sa: comp.ar,
            ar: comp.ar,
            class: NetClass::Control,
        });
    }
    // Clock branches to every sequential component.
    let clocked: Vec<usize> = components
        .iter()
        .enumerate()
        .filter(|(_, c)| c.ff > 0 || c.bram > 0)
        .map(|(i, _)| i)
        .collect();
    for ci in clocked {
        if ci != clock {
            nets.push(Net {
                src: clock,
                dst: ci,
                bits: 1,
                sa: 1.0,
                ar: 1.0,
                class: NetClass::Clock,
            });
        }
    }

    Netlist {
        components,
        nets,
        latency: g.latency.max(1),
    }
}

/// Did the netlist come from a pipelined design? (diagnostic helper)
pub fn is_pipelined(design: &HlsDesign) -> bool {
    design.ir.blocks.iter().any(|b| b.pipelined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_activity::{execute, Stimuli};
    use pg_hls::{Directives, HlsFlow};
    use pg_ir::expr::aff;
    use pg_ir::{ArrayKind, Expr, Kernel, KernelBuilder};

    fn axpy() -> Kernel {
        KernelBuilder::new("axpy")
            .array("a", &[16], ArrayKind::Input)
            .array("x", &[16], ArrayKind::Input)
            .array("y", &[16], ArrayKind::Output)
            .loop_("i", 16, |b| {
                b.assign(
                    ("y", vec![aff("i")]),
                    Expr::load("y", vec![aff("i")])
                        + Expr::load("a", vec![aff("i")]) * Expr::load("x", vec![aff("i")]),
                );
            })
            .build()
            .unwrap()
    }

    fn netlist(d: &Directives) -> Netlist {
        let k = axpy();
        let design = HlsFlow::new().run(&k, d).unwrap();
        let trace = execute(&design, &Stimuli::for_kernel(&k, 0));
        build_netlist(&design, &trace)
    }

    #[test]
    fn has_fus_brams_fsm_clock() {
        let n = netlist(&Directives::new());
        assert!(n
            .components
            .iter()
            .any(|c| matches!(c.kind, CompKind::Fu(FuKind::FAddSub))));
        assert_eq!(
            n.components
                .iter()
                .filter(|c| matches!(c.kind, CompKind::Bram { .. }))
                .count(),
            3
        );
        assert_eq!(
            n.components
                .iter()
                .filter(|c| matches!(c.kind, CompKind::Fsm))
                .count(),
            1
        );
        assert_eq!(
            n.components
                .iter()
                .filter(|c| matches!(c.kind, CompKind::Clock))
                .count(),
            1
        );
    }

    #[test]
    fn nets_have_all_classes() {
        let n = netlist(&Directives::new());
        for class in [NetClass::Data, NetClass::Control, NetClass::Clock] {
            assert!(
                n.nets.iter().any(|e| e.class == class),
                "missing {class:?} nets"
            );
        }
        for e in &n.nets {
            assert!(e.src < n.components.len() && e.dst < n.components.len());
        }
    }

    #[test]
    fn traced_netlist_has_activity() {
        let n = netlist(&Directives::new());
        let data_sa: f64 = n
            .nets
            .iter()
            .filter(|e| e.class == NetClass::Data)
            .map(|e| e.sa)
            .sum();
        assert!(data_sa > 0.0, "traced data nets must toggle");
    }

    #[test]
    fn vectorless_netlist_same_structure_zero_activity() {
        let k = axpy();
        let design = HlsFlow::new().run(&k, &Directives::new()).unwrap();
        let traced = build_netlist(&design, &execute(&design, &Stimuli::for_kernel(&k, 0)));
        let empty = build_netlist(&design, &ExecutionTrace::empty(&design));
        assert_eq!(traced.components.len(), empty.components.len());
        assert_eq!(traced.nets.len(), empty.nets.len());
        assert!(empty
            .nets
            .iter()
            .filter(|e| e.class == NetClass::Data)
            .all(|e| e.sa == 0.0));
    }

    #[test]
    fn unrolled_design_has_more_components() {
        let base = netlist(&Directives::new());
        let mut d = Directives::new();
        d.pipeline("i")
            .unroll("i", 4)
            .partition("a", 4)
            .partition("x", 4)
            .partition("y", 4);
        let unrolled = netlist(&d);
        assert!(unrolled.components.len() > base.components.len());
        assert!(unrolled.total_lut() > 0);
    }
}
