//! Placement surrogate.
//!
//! Per-net capacitance in Eq. 1 "is decided by the FPGA placement and
//! routing algorithms". This module stands in for them: components are
//! placed on a square grid in connectivity BFS order (neighbors in the
//! netlist land near each other, as a real placer achieves), wirelength is
//! the Manhattan distance, and capacitance follows a
//! `C0 + c_len·dist·width + c_fan·(fanout−1)` model with deterministic
//! per-design routing jitter.

use crate::netlist::{Net, NetClass, Netlist};
use pg_util::rng::hash64;
use pg_util::Rng64;

/// A placed netlist: coordinates per component and capacitance per net.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// `(x, y)` per component.
    pub coords: Vec<(f64, f64)>,
    /// Capacitance (farads) per net, aligned with `Netlist::nets`.
    pub cap: Vec<f64>,
    /// Grid side length used.
    pub grid: usize,
}

/// Base capacitance per net class (farads). Values are effective lumped
/// capacitances of a 32-bit bundle plus its sinks, sized so that typical
/// kernels land in the paper's 0.05–0.3 W dynamic range (Fig. 4).
fn base_cap(class: NetClass) -> f64 {
    match class {
        NetClass::Data => 2.0e-12,
        NetClass::Control => 0.8e-12,
        NetClass::Clock => 1.5e-12,
    }
}

const CAP_PER_UNIT_LEN: f64 = 0.45e-12;
const CAP_PER_FANOUT: f64 = 0.9e-12;

/// Places `netlist` and extracts per-net capacitances. `design_id` seeds the
/// deterministic routing jitter so every design gets a stable, unique
/// layout.
pub fn place(netlist: &Netlist, design_id: &str) -> Placement {
    let n = netlist.components.len();
    let grid = (n as f64).sqrt().ceil() as usize + 1;

    // Connectivity BFS from the highest-degree component.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for net in &netlist.nets {
        adj[net.src].push(net.dst);
        adj[net.dst].push(net.src);
    }
    let start = (0..n).max_by_key(|&i| adj[i].len()).unwrap_or(0);
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    seen[start] = true;
    while let Some(c) = queue.pop_front() {
        order.push(c);
        for &m in &adj[c] {
            if !seen[m] {
                seen[m] = true;
                queue.push_back(m);
            }
        }
        if queue.is_empty() {
            if let Some(next) = (0..n).find(|&i| !seen[i]) {
                seen[next] = true;
                queue.push_back(next);
            }
        }
    }

    // Snake-fill the grid in BFS order with deterministic jitter.
    let mut rng = Rng64::new(hash64(design_id.as_bytes()));
    let mut coords = vec![(0.0, 0.0); n];
    for (slot, &comp) in order.iter().enumerate() {
        let row = slot / grid;
        let col_raw = slot % grid;
        let col = if row.is_multiple_of(2) {
            col_raw
        } else {
            grid - 1 - col_raw
        };
        let jx = rng.uniform(-0.3, 0.3);
        let jy = rng.uniform(-0.3, 0.3);
        coords[comp] = (col as f64 + jx, row as f64 + jy);
    }

    // Fanout per driver.
    let mut fanout = vec![0usize; n];
    for net in &netlist.nets {
        fanout[net.src] += 1;
    }

    let cap = netlist
        .nets
        .iter()
        .map(|net| net_cap(net, &coords, &fanout, &mut rng))
        .collect();

    Placement { coords, cap, grid }
}

fn net_cap(net: &Net, coords: &[(f64, f64)], fanout: &[usize], rng: &mut Rng64) -> f64 {
    let (x1, y1) = coords[net.src];
    let (x2, y2) = coords[net.dst];
    let dist = (x1 - x2).abs() + (y1 - y2).abs();
    let width_scale = (net.bits as f64 / 32.0).max(0.05);
    let routing_jitter = 1.0 + 0.1 * rng.normal().clamp(-2.5, 2.5);
    (base_cap(net.class)
        + CAP_PER_UNIT_LEN * dist * width_scale
        + CAP_PER_FANOUT * (fanout[net.src].saturating_sub(1)) as f64 / 8.0)
        * routing_jitter.max(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{CompKind, Component};
    use pg_hls::FuKind;

    fn chain_netlist(n: usize) -> Netlist {
        let components: Vec<Component> = (0..n)
            .map(|_| Component {
                kind: CompKind::Fu(FuKind::FAddSub),
                lut: 100,
                ff: 100,
                dsp: 0,
                bram: 0,
                internal_sa: 0.1,
                ar: 0.1,
            })
            .collect();
        let nets: Vec<Net> = (1..n)
            .map(|d| Net {
                src: d - 1,
                dst: d,
                bits: 32,
                sa: 0.5,
                ar: 0.2,
                class: NetClass::Data,
            })
            .collect();
        Netlist {
            components,
            nets,
            latency: 100,
        }
    }

    #[test]
    fn places_all_components_uniquely_enough() {
        let nl = chain_netlist(20);
        let p = place(&nl, "d1");
        assert_eq!(p.coords.len(), 20);
        assert_eq!(p.cap.len(), 19);
        // all caps positive and finite
        assert!(p.cap.iter().all(|&c| c > 0.0 && c.is_finite()));
    }

    #[test]
    fn connected_components_are_nearby() {
        let nl = chain_netlist(40);
        let p = place(&nl, "d2");
        // mean distance along chain nets must be far below random (grid/2)
        let mean_dist: f64 = nl
            .nets
            .iter()
            .map(|n| {
                let (x1, y1) = p.coords[n.src];
                let (x2, y2) = p.coords[n.dst];
                (x1 - x2).abs() + (y1 - y2).abs()
            })
            .sum::<f64>()
            / nl.nets.len() as f64;
        assert!(
            mean_dist < p.grid as f64 / 2.0,
            "BFS placement should keep neighbors close (mean {mean_dist}, grid {})",
            p.grid
        );
    }

    #[test]
    fn deterministic_per_design_id() {
        let nl = chain_netlist(10);
        assert_eq!(place(&nl, "x"), place(&nl, "x"));
        assert_ne!(place(&nl, "x").cap, place(&nl, "y").cap);
    }

    #[test]
    fn longer_wires_cost_more() {
        let mut nl = chain_netlist(2);
        nl.nets[0].bits = 32;
        let p = place(&nl, "z");
        let short = p.cap[0];
        // same net but endpoints artificially far: recompute via helper
        let coords = vec![(0.0, 0.0), (10.0, 10.0)];
        let fanout = vec![1usize, 0];
        let mut rng = Rng64::new(1);
        let far = net_cap(&nl.nets[0], &coords, &fanout, &mut rng);
        assert!(far > short);
    }

    #[test]
    fn clock_nets_cheaper_than_wide_data() {
        assert!(base_cap(NetClass::Clock) < base_cap(NetClass::Data));
        assert!(base_cap(NetClass::Control) < base_cap(NetClass::Data));
    }
}
