//! Vivado power-estimator surrogate.
//!
//! The paper compares against the Vivado integrated power estimator fed
//! with post-implementation netlists, observes that it "neglects the impact
//! of power gating on unused hard blocks, leading to a severe deviation
//! from real power consumption", and therefore calibrates its output with a
//! linear regression model — and *still* measures ~21.8 % total-power error
//! (Table I). This surrogate reproduces both the failure mode and the cost
//! profile:
//!
//! * **activities**: vector-less — a default toggle rate refined by an
//!   iterative propagation sweep over the expanded cell list (the compute-
//!   heavy part of the real estimator; it is what the runtime-speedup
//!   column of Table I measures);
//! * **static power**: full-chip leakage, *ignoring power gating*;
//! * **calibration**: least-squares linear regression fitted on training
//!   kernels' `(raw estimate, measurement)` pairs, as the paper does.

use crate::netlist::{build_netlist, CompKind, Netlist};
use crate::place::place;
use crate::power::PowerBreakdown;
use pg_activity::ExecutionTrace;
use pg_hls::HlsDesign;

/// Ungated full-chip leakage the estimator assumes (W).
const UNGATED_STATIC: f64 = 0.92;
/// Default vector-less toggle rate.
const DEFAULT_TOGGLE: f64 = 0.125;
/// Effective switched capacitance per expanded cell (F).
const CELL_CAP: f64 = 1.1e-12;
/// Propagation sweeps (the real engine iterates to a fixpoint).
const SWEEPS: usize = 96;
/// Gate-level cells per LUT (technology-mapping granularity).
const CELLS_PER_LUT: usize = 3;
/// Annealing moves per component in the implementation-flow surrogate.
const PLACE_MOVES_PER_COMP: usize = 400;
/// Cycles of vector-based gate-level simulation (.saif generation) the
/// estimator runs; the paper feeds Vivado "activity files via vector-based
/// simulation", which walks the netlist for every simulated cycle.
const SAIF_MAX_CYCLES: u64 = 1 << 62;

/// The estimator with optional linear calibration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VivadoEstimator {
    /// `(gain, offset)` applied to raw total power after calibration.
    pub calibration: Option<(f64, f64)>,
}

impl VivadoEstimator {
    /// Uncalibrated estimator.
    pub fn new() -> Self {
        VivadoEstimator::default()
    }

    /// Raw (uncalibrated) estimate. This is the deliberately expensive
    /// path: netlist synthesis, placement, gate-level expansion and the
    /// vector-less propagation sweeps all run here.
    pub fn estimate_raw(&self, design: &HlsDesign) -> PowerBreakdown {
        let netlist = build_netlist(design, &ExecutionTrace::empty(design));
        let mut placement = place(&netlist, &design.design_id());
        // The real flow runs placement & routing before power analysis;
        // PowerGear's whole pitch is skipping this step.
        refine_placement(&netlist, &mut placement);

        // Vector-based .saif generation: gate-level simulation over the
        // design's full execution (cost ∝ latency × netlist size), exactly
        // the step PowerGear's IR-level tracing replaces.
        let saif_bias = saif_simulation(&netlist);

        // Expand components into pseudo gate-level cells and iterate the
        // vector-less activity propagation (cost ∝ design size).
        let mut activities = propagate_activities(&netlist);
        for (i, a) in activities.iter_mut().enumerate() {
            *a *= 1.0 + 0.05 * saif_bias[i % saif_bias.len()];
        }
        let mean_activity = activities.iter().sum::<f64>() / activities.len().max(1) as f64;

        let vdd = 0.85;
        let v2f = vdd * vdd * 100.0e6;
        // Interconnect with default toggle (no knowledge of real traffic).
        let mut nets_w = 0.0;
        for &cap in &placement.cap {
            nets_w += DEFAULT_TOGGLE * cap * v2f;
        }
        // Cell-level dynamic power from propagated activities.
        let cells_w: f64 = activities.iter().map(|&a| a * CELL_CAP * v2f).sum();
        // Clock estimated from FF count.
        let clock_w = netlist.total_ff() as f64 * 0.012e-12 * v2f;
        let bundle = 18.0; // same lumping convention as the oracle
        let dynamic = (nets_w + cells_w * mean_activity.max(0.5) + clock_w) * bundle * 0.5;

        PowerBreakdown {
            total: dynamic + UNGATED_STATIC,
            dynamic,
            static_: UNGATED_STATIC,
            nets: nets_w * bundle,
            internal: cells_w * bundle,
            clock: clock_w * bundle,
        }
    }

    /// Fits the linear calibration from `(raw_total, measured_total)` pairs
    /// (ordinary least squares), as the paper does against training
    /// kernels.
    pub fn calibrate(&mut self, pairs: &[(f64, f64)]) {
        if pairs.len() < 2 {
            self.calibration = Some((1.0, 0.0));
            return;
        }
        let n = pairs.len() as f64;
        let sx: f64 = pairs.iter().map(|p| p.0).sum();
        let sy: f64 = pairs.iter().map(|p| p.1).sum();
        let sxx: f64 = pairs.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pairs.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        let (a, b) = if denom.abs() < 1e-12 {
            (1.0, (sy - sx) / n)
        } else {
            let a = (n * sxy - sx * sy) / denom;
            (a, (sy - a * sx) / n)
        };
        self.calibration = Some((a, b));
    }

    /// Calibrated estimate (raw when no calibration was fitted).
    pub fn estimate(&self, design: &HlsDesign) -> PowerBreakdown {
        let raw = self.estimate_raw(design);
        match self.calibration {
            None => raw,
            Some((a, b)) => {
                let total = (a * raw.total + b).max(1e-3);
                // dynamic/static split scaled proportionally
                let scale = total / raw.total.max(1e-9);
                PowerBreakdown {
                    total,
                    dynamic: raw.dynamic * scale,
                    static_: raw.static_ * scale,
                    nets: raw.nets * scale,
                    internal: raw.internal * scale,
                    clock: raw.clock * scale,
                }
            }
        }
    }
}

/// Vector-less activity propagation over the expanded cell list. Each
/// component becomes `lut` cells; activities start at the default toggle
/// rate seeded by component activation structure and diffuse for
/// [`SWEEPS`] iterations — deliberately mirroring the cost of the real
/// estimator's fixpoint engine.
/// Simulated-annealing-style placement refinement: the implementation-flow
/// surrogate whose wall-clock the speedup column charges to the Vivado
/// path. Deterministic (seedless hill-descent over HPWL).
fn refine_placement(netlist: &Netlist, placement: &mut crate::place::Placement) {
    let n = placement.coords.len();
    if n < 3 {
        return;
    }
    let moves = n * PLACE_MOVES_PER_COMP;
    let mut state: u64 = 0x1234_5678_9abc_def0;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let hpwl = |coords: &[(f64, f64)], nets: &[crate::netlist::Net], comp: usize| -> f64 {
        nets.iter()
            .filter(|e| e.src == comp || e.dst == comp)
            .map(|e| {
                let (x1, y1) = coords[e.src];
                let (x2, y2) = coords[e.dst];
                (x1 - x2).abs() + (y1 - y2).abs()
            })
            .sum()
    };
    for _ in 0..moves {
        let a = (next() % n as u64) as usize;
        let b = (next() % n as u64) as usize;
        if a == b {
            continue;
        }
        let before =
            hpwl(&placement.coords, &netlist.nets, a) + hpwl(&placement.coords, &netlist.nets, b);
        placement.coords.swap(a, b);
        let after =
            hpwl(&placement.coords, &netlist.nets, a) + hpwl(&placement.coords, &netlist.nets, b);
        if after > before {
            placement.coords.swap(a, b); // reject uphill move
        }
    }
}

/// Gate-level vector simulation surrogate: walks every net of the netlist
/// once per simulated cycle, accumulating toggle statistics. This is the
/// dominant cost of the real Vivado estimation flow (the paper's runtime
/// baseline) and scales with design latency like the real .saif generation.
fn saif_simulation(netlist: &Netlist) -> Vec<f64> {
    let cycles = netlist.latency.min(SAIF_MAX_CYCLES);
    let n = netlist.nets.len().max(1);
    let mut toggles = vec![0.0f64; n];
    let mut lfsr: u64 = 0xACE1_u64;
    for _cycle in 0..cycles {
        for (i, t) in toggles.iter_mut().enumerate() {
            lfsr ^= lfsr << 7;
            lfsr ^= lfsr >> 9;
            *t += ((lfsr >> (i & 31)) & 1) as f64;
        }
    }
    let c = cycles.max(1) as f64;
    for t in &mut toggles {
        *t /= c;
    }
    toggles
}

fn propagate_activities(netlist: &Netlist) -> Vec<f64> {
    let mut cells: Vec<f64> = Vec::new();
    for comp in &netlist.components {
        let seed_activity = match comp.kind {
            CompKind::Fsm => 0.5,
            CompKind::Clock => 1.0,
            _ => DEFAULT_TOGGLE,
        };
        let n = (comp.lut.max(1) as usize) * CELLS_PER_LUT;
        for k in 0..n {
            cells.push(seed_activity * (1.0 + 0.1 * ((k % 7) as f64 - 3.0) / 3.0));
        }
    }
    let n = cells.len();
    if n < 2 {
        return cells;
    }
    let mut next = cells.clone();
    for sweep in 0..SWEEPS {
        for i in 0..n {
            // pseudo-topology: mix with a near and a strided "fanin"
            let a = cells[(i + 1) % n];
            let b = cells[(i * 7 + sweep) % n];
            next[i] = 0.6 * cells[i] + 0.25 * a + 0.15 * b;
        }
        std::mem::swap(&mut cells, &mut next);
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::BoardOracle;
    use pg_activity::{execute, Stimuli};
    use pg_hls::{Directives, HlsFlow};
    use pg_ir::expr::aff;
    use pg_ir::{ArrayKind, Expr, Kernel, KernelBuilder};

    fn axpy() -> Kernel {
        KernelBuilder::new("axpy")
            .array("a", &[32], ArrayKind::Input)
            .array("x", &[32], ArrayKind::Input)
            .array("y", &[32], ArrayKind::Output)
            .loop_("i", 32, |b| {
                b.assign(
                    ("y", vec![aff("i")]),
                    Expr::load("y", vec![aff("i")])
                        + Expr::load("a", vec![aff("i")]) * Expr::load("x", vec![aff("i")]),
                );
            })
            .build()
            .unwrap()
    }

    fn design_points() -> Vec<Directives> {
        let mut out = vec![Directives::new()];
        let mut d1 = Directives::new();
        d1.pipeline("i");
        out.push(d1);
        let mut d2 = Directives::new();
        d2.pipeline("i")
            .unroll("i", 4)
            .partition("a", 4)
            .partition("x", 4)
            .partition("y", 4);
        out.push(d2);
        let mut d3 = Directives::new();
        d3.unroll("i", 2).partition("a", 2);
        out.push(d3);
        out
    }

    #[test]
    fn raw_overestimates_static_no_gating() {
        let k = axpy();
        let design = HlsFlow::new().run(&k, &Directives::new()).unwrap();
        let est = VivadoEstimator::new().estimate_raw(&design);
        let truth =
            BoardOracle::default().measure(&design, &execute(&design, &Stimuli::for_kernel(&k, 0)));
        assert!(
            est.static_ > truth.static_ * 1.5,
            "ungated static {} should far exceed gated {}",
            est.static_,
            truth.static_
        );
    }

    #[test]
    fn calibration_reduces_total_error() {
        let k = axpy();
        let oracle = BoardOracle::default();
        let flow = HlsFlow::new();
        let mut est = VivadoEstimator::new();
        let mut pairs = Vec::new();
        let mut raw_errs = Vec::new();
        for d in design_points() {
            let design = flow.run(&k, &d).unwrap();
            let truth = oracle.measure(&design, &execute(&design, &Stimuli::for_kernel(&k, 0)));
            let raw = est.estimate_raw(&design);
            pairs.push((raw.total, truth.total));
            raw_errs.push(((raw.total - truth.total) / truth.total).abs());
        }
        est.calibrate(&pairs);
        let mut cal_errs = Vec::new();
        for d in design_points() {
            let design = flow.run(&k, &d).unwrap();
            let truth = oracle.measure(&design, &execute(&design, &Stimuli::for_kernel(&k, 0)));
            let cal = est.estimate(&design);
            cal_errs.push(((cal.total - truth.total) / truth.total).abs());
        }
        let raw_mean = raw_errs.iter().sum::<f64>() / raw_errs.len() as f64;
        let cal_mean = cal_errs.iter().sum::<f64>() / cal_errs.len() as f64;
        assert!(
            cal_mean < raw_mean,
            "calibration should help: raw {raw_mean:.3} vs cal {cal_mean:.3}"
        );
    }

    #[test]
    fn calibrated_error_still_substantial() {
        // the paper's point: even calibrated, Vivado misses design-specific
        // dynamic behaviour (its activities are data-independent)
        let k = axpy();
        let oracle = BoardOracle::default();
        let flow = HlsFlow::new();
        let mut est = VivadoEstimator::new();
        let pairs: Vec<(f64, f64)> = design_points()
            .iter()
            .map(|d| {
                let design = flow.run(&k, d).unwrap();
                let truth = oracle.measure(&design, &execute(&design, &Stimuli::for_kernel(&k, 0)));
                (est.estimate_raw(&design).total, truth.total)
            })
            .collect();
        est.calibrate(&pairs);
        // evaluate on a held-out configuration
        let mut d = Directives::new();
        d.pipeline("i")
            .unroll("i", 8)
            .partition("a", 8)
            .partition("x", 8)
            .partition("y", 8);
        let design = flow.run(&k, &d).unwrap();
        let truth = oracle.measure(&design, &execute(&design, &Stimuli::for_kernel(&k, 0)));
        let cal = est.estimate(&design);
        // the calibrated *total* can land close by luck on one point, but
        // the data-independent dynamic estimate keeps a residual error
        let err_dyn = ((cal.dynamic - truth.dynamic) / truth.dynamic).abs();
        assert!(
            err_dyn > 0.02,
            "dynamic estimate should keep a residual error, got {err_dyn}"
        );
    }

    #[test]
    fn least_squares_exact_on_linear_data() {
        let mut est = VivadoEstimator::new();
        let pairs: Vec<(f64, f64)> = (0..10)
            .map(|i| {
                let x = i as f64;
                (x, 0.5 * x + 2.0)
            })
            .collect();
        est.calibrate(&pairs);
        let (a, b) = est.calibration.unwrap();
        assert!((a - 0.5).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_calibration_guarded() {
        let mut est = VivadoEstimator::new();
        est.calibrate(&[(1.0, 2.0)]);
        assert_eq!(est.calibration, Some((1.0, 0.0)));
        est.calibrate(&[(3.0, 2.0), (3.0, 4.0)]);
        let (a, b) = est.calibration.unwrap();
        assert!(a.is_finite() && b.is_finite());
    }
}
