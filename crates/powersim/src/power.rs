//! The board-measurement oracle.
//!
//! Ground truth in the paper comes from on-board measurement (ZCU102 +
//! Power Advantage Tool). This oracle evaluates the same physics the paper
//! cites: **Eq. 1**, `P_dyn = Σ_i α_i·C_i·V²·f` over every net of the
//! placed netlist surrogate, plus functional-unit internal switching, BRAM
//! access energy and the clock tree — and a static component with
//! UltraScale-style power gating (only used resources leak), which is
//! exactly the effect the paper observes the Vivado estimator to ignore.
//! A small deterministic per-design jitter stands in for measurement noise.
//!
//! Absolute watts are surrogate values tuned to the paper's reported ranges
//! (dynamic ≈ 0.05–0.3 W in Fig. 4); every comparative claim downstream
//! depends only on consistent relative behaviour.

use crate::netlist::{build_netlist, CompKind, Netlist};
use crate::place::{place, Placement};
use pg_activity::ExecutionTrace;
use pg_hls::{FuKind, HlsDesign};
use pg_util::rng::hash64;

/// Power report in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Total power.
    pub total: f64,
    /// Dynamic power (activity-driven).
    pub dynamic: f64,
    /// Static (leakage) power.
    pub static_: f64,
    /// Dynamic sub-part: interconnect nets.
    pub nets: f64,
    /// Dynamic sub-part: FU internal switching.
    pub internal: f64,
    /// Dynamic sub-part: clock network.
    pub clock: f64,
}

/// The simulated measurement setup.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardOracle {
    /// Core supply voltage (V).
    pub vdd: f64,
    /// Programmable-logic clock (Hz); the paper runs at 100 MHz.
    pub freq_hz: f64,
    /// Relative measurement noise (1σ).
    pub jitter: f64,
    /// Gate-level bundle factor: each hardware-graph net stands for the
    /// fan-out tree / internal wiring that implements it after technology
    /// mapping.
    pub bundle: f64,
}

impl Default for BoardOracle {
    fn default() -> Self {
        BoardOracle {
            vdd: 0.85,
            freq_hz: 100.0e6,
            jitter: 0.015,
            bundle: 18.0,
        }
    }
}

/// Effective internal switching capacitance per FU kind (farads/activation).
fn internal_cap(kind: FuKind) -> f64 {
    match kind {
        FuKind::FAddSub => 40.0e-12,
        FuKind::FMul => 55.0e-12,
        FuKind::FDiv => 120.0e-12,
        FuKind::FCmp => 8.0e-12,
        FuKind::IntAlu => 6.0e-12,
        FuKind::IntMul => 25.0e-12,
        FuKind::MemPort => 5.0e-12,
        FuKind::Wire => 0.5e-12,
        FuKind::Control => 2.0e-12,
    }
}

const BRAM_ACCESS_CAP: f64 = 35.0e-12;
const FF_CLOCK_CAP: f64 = 0.012e-12;
const CLOCK_BRANCH_CAP: f64 = 0.8e-12;

/// Leakage per used resource (W).
const LEAK_BASE: f64 = 0.248;
const LEAK_LUT: f64 = 2.1e-6;
const LEAK_FF: f64 = 0.8e-6;
const LEAK_DSP: f64 = 9.0e-5;
const LEAK_BRAM: f64 = 3.3e-4;

impl BoardOracle {
    /// Measures a design end-to-end: netlist synthesis, placement, Eq. 1.
    pub fn measure(&self, design: &HlsDesign, trace: &ExecutionTrace) -> PowerBreakdown {
        let netlist = build_netlist(design, trace);
        let design_id = design.design_id();
        let placement = place(&netlist, &design_id);
        self.measure_netlist(&netlist, &placement, &design_id)
    }

    /// [`BoardOracle::measure`] over an already-built, fully-optimized work
    /// graph (see `build_netlist_from_graph`); bit-identical to `measure`
    /// on the trace the graph was built from.
    pub fn measure_graph(
        &self,
        design: &HlsDesign,
        graph: &pg_graphcon::WorkGraph,
    ) -> PowerBreakdown {
        let netlist = crate::netlist::build_netlist_from_graph(design, graph);
        let design_id = design.design_id();
        let placement = place(&netlist, &design_id);
        self.measure_netlist(&netlist, &placement, &design_id)
    }

    /// Evaluates power over an already-placed netlist.
    pub fn measure_netlist(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        design_id: &str,
    ) -> PowerBreakdown {
        let v2f = self.vdd * self.vdd * self.freq_hz;

        // Eq. 1 over interconnect: α is the per-bit toggle fraction.
        let mut nets_w = 0.0;
        for (net, &cap) in netlist.nets.iter().zip(&placement.cap) {
            let alpha = (net.sa / net.bits.max(1) as f64).min(2.0);
            nets_w += alpha * cap * v2f;
        }

        // FU-internal switching and BRAM access energy.
        let mut internal_w = 0.0;
        let mut ff_total = 0u64;
        let mut clocked = 0usize;
        for comp in &netlist.components {
            ff_total += comp.ff as u64;
            if comp.ff > 0 || comp.bram > 0 {
                clocked += 1;
            }
            match &comp.kind {
                CompKind::Fu(kind) => {
                    let alpha = (comp.internal_sa / 64.0).min(1.5);
                    internal_w += alpha * internal_cap(*kind) * v2f;
                }
                CompKind::Bram { .. } => {
                    internal_w +=
                        comp.ar.min(1.5) * BRAM_ACCESS_CAP * v2f * comp.bram.max(1) as f64;
                }
                CompKind::Fsm => {
                    internal_w += 0.4 * internal_cap(FuKind::Control) * v2f;
                }
                CompKind::Clock => {}
            }
        }

        // Clock network: toggles every cycle.
        let clock_w = (ff_total as f64 * FF_CLOCK_CAP + clocked as f64 * CLOCK_BRANCH_CAP) * v2f;

        let dynamic_raw = (nets_w + internal_w + clock_w) * self.bundle;

        // Gated static power: only instantiated resources leak.
        let (mut lut, mut ff, mut dsp, mut bram) = (0u64, 0u64, 0u64, 0u64);
        for c in &netlist.components {
            lut += c.lut as u64;
            ff += c.ff as u64;
            dsp += c.dsp as u64;
            bram += c.bram as u64;
        }
        let static_w = LEAK_BASE
            + lut as f64 * LEAK_LUT
            + ff as f64 * LEAK_FF
            + dsp as f64 * LEAK_DSP
            + bram as f64 * LEAK_BRAM;

        // Deterministic measurement jitter.
        let noise = |tag: &str| {
            let h = hash64(format!("{design_id}/{tag}").as_bytes());
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            1.0 + self.jitter * (2.0 * u - 1.0) * 1.7
        };
        let dynamic = dynamic_raw * noise("dyn");
        let static_m = static_w * noise("sta");

        PowerBreakdown {
            total: dynamic + static_m,
            dynamic,
            static_: static_m,
            nets: nets_w * self.bundle,
            internal: internal_w * self.bundle,
            clock: clock_w * self.bundle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_activity::{execute, Stimuli};
    use pg_hls::{Directives, HlsFlow};
    use pg_ir::expr::aff;
    use pg_ir::{ArrayKind, Expr, Kernel, KernelBuilder};

    fn axpy(n: usize) -> Kernel {
        KernelBuilder::new("axpy")
            .array("a", &[n], ArrayKind::Input)
            .array("x", &[n], ArrayKind::Input)
            .array("y", &[n], ArrayKind::Output)
            .loop_("i", n, |b| {
                b.assign(
                    ("y", vec![aff("i")]),
                    Expr::load("y", vec![aff("i")])
                        + Expr::load("a", vec![aff("i")]) * Expr::load("x", vec![aff("i")]),
                );
            })
            .build()
            .unwrap()
    }

    fn measure(kernel: &Kernel, d: &Directives) -> PowerBreakdown {
        let design = HlsFlow::new().run(kernel, d).unwrap();
        let trace = execute(&design, &Stimuli::for_kernel(kernel, 0));
        BoardOracle::default().measure(&design, &trace)
    }

    #[test]
    fn power_in_papers_range() {
        let p = measure(&axpy(32), &Directives::new());
        assert!(
            p.dynamic > 0.003 && p.dynamic < 1.5,
            "dynamic {} W out of range",
            p.dynamic
        );
        assert!(
            p.static_ > 0.2 && p.static_ < 1.0,
            "static {} W out of range",
            p.static_
        );
        assert!((p.total - p.dynamic - p.static_).abs() < 1e-9);
        assert!(p.nets > 0.0 && p.internal > 0.0 && p.clock > 0.0);
    }

    #[test]
    fn parallel_hardware_burns_more_power() {
        let k = axpy(32);
        let base = measure(&k, &Directives::new());
        let mut d = Directives::new();
        d.pipeline("i")
            .unroll("i", 4)
            .partition("a", 4)
            .partition("x", 4)
            .partition("y", 4);
        let fast = measure(&k, &d);
        assert!(
            fast.dynamic > base.dynamic,
            "pipelined+unrolled {} W should exceed baseline {} W",
            fast.dynamic,
            base.dynamic
        );
        // and static grows with instantiated resources
        assert!(fast.static_ > base.static_);
    }

    #[test]
    fn deterministic_measurement() {
        let k = axpy(16);
        let a = measure(&k, &Directives::new());
        let b = measure(&k, &Directives::new());
        assert_eq!(a, b);
    }

    #[test]
    fn different_designs_different_jitter() {
        let k = axpy(16);
        let a = measure(&k, &Directives::new());
        let mut d = Directives::new();
        d.partition("a", 2);
        let b = measure(&k, &d);
        assert_ne!(a.total, b.total);
    }

    #[test]
    fn static_depends_on_design_scale() {
        let small = measure(&axpy(8), &Directives::new());
        let k = axpy(64);
        let mut d = Directives::new();
        d.pipeline("i")
            .unroll("i", 8)
            .partition("a", 8)
            .partition("x", 8)
            .partition("y", 8);
        let big = measure(&k, &d);
        assert!(big.static_ > small.static_ + 1e-4);
    }
}
