//! Power substrate: RTL-implementation surrogate, board-measurement oracle
//! and Vivado-estimator surrogate.
//!
//! The paper's ground truth requires a ZCU102 board and the full RTL
//! implementation flow; its strongest commercial baseline is the Vivado
//! power estimator. Neither is available here, so this crate simulates both
//! ends (see DESIGN.md §2 for the substitution argument):
//!
//! * [`netlist`] — maps the bound HLS design to a component/net netlist
//!   (shared FUs, BRAM banks, FSM, clock tree) with traced per-net
//!   switching activities;
//! * [`mod@place`] — a placement/routing surrogate assigning per-net
//!   capacitances (`C_i` of Eq. 1);
//! * [`BoardOracle`] — evaluates `P_dyn = Σ α_i·C_i·V²·f` plus gated
//!   static power and deterministic measurement jitter: the "measured
//!   power" of Fig. 1;
//! * [`VivadoEstimator`] — a vector-less estimator that ignores power
//!   gating (the miscalibration the paper reports) and is linear-regression
//!   calibrated exactly as the paper does; its deliberately heavy
//!   propagation engine is the runtime baseline for Table I's speedup
//!   column.
//!
//! # Examples
//!
//! ```
//! use pg_activity::{execute, Stimuli};
//! use pg_hls::{Directives, HlsFlow};
//! use pg_ir::{ArrayKind, KernelBuilder};
//! use pg_ir::expr::{aff, Expr};
//! use pg_powersim::BoardOracle;
//!
//! let k = KernelBuilder::new("scale")
//!     .array("x", &[8], ArrayKind::Input)
//!     .array("y", &[8], ArrayKind::Output)
//!     .loop_("i", 8, |b| {
//!         b.assign(("y", vec![aff("i")]),
//!                  Expr::load("x", vec![aff("i")]) * Expr::Const(2.0));
//!     })
//!     .build()?;
//! let design = HlsFlow::new().run(&k, &Directives::new())?;
//! let trace = execute(&design, &Stimuli::for_kernel(&k, 0));
//! let power = BoardOracle::default().measure(&design, &trace);
//! assert!(power.total > power.dynamic);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod netlist;
pub mod place;
pub mod power;
pub mod vivado;

pub use netlist::{
    build_netlist, build_netlist_from_graph, CompKind, Component, Net, NetClass, Netlist,
};
pub use place::{place, Placement};
pub use power::{BoardOracle, PowerBreakdown};
pub use vivado::VivadoEstimator;
