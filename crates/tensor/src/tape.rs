//! Reverse-mode automatic differentiation on matrices.
//!
//! A [`Tape`] records a computation graph of matrix ops; [`Tape::backward`]
//! walks it in reverse, producing gradients for every parameter leaf. The op
//! set is exactly what the GNN models need: matmul, broadcast bias, ReLU,
//! dropout, column concatenation, row summation, row gather/scatter (the
//! message-passing primitives), per-row scaling (normalized adjacency), and
//! two fused ops — [`Tape::linear_bias_relu`] (`relu(x·W + b)`) and
//! [`Tape::add_row_relu`] (`relu(a + b)`) — that collapse the per-layer
//! `matmul → add_row → relu` chain into one node without materializing the
//! intermediates.
//!
//! # Arena reuse
//!
//! Tapes recycle their buffers: [`Tape::reset`] returns every node value,
//! dropout mask, index list and loss-target buffer to internal pools, and
//! subsequent ops draw from those pools instead of the allocator. A
//! training loop keeps one long-lived tape per worker and calls `reset`
//! each step, so steady-state forward/backward passes perform no value
//! allocations. Reuse never changes results: every op writes its full
//! output before the node is published.
//!
//! # Tape-boundary finiteness checks
//!
//! The matmul kernels in [`crate::matrix`] are dense and IEEE-faithful —
//! NaN/Inf propagate instead of being masked by sparsity short-circuits.
//! To catch poisoned inputs at the boundary where data enters the graph,
//! [`Tape::leaf`] and [`Tape::param`] `debug_assert` that the incoming
//! matrix is finite, and [`Tape::backward`] asserts the loss value is
//! finite in debug builds.
//!
//! # Examples
//!
//! ```
//! use pg_tensor::{Matrix, Tape};
//! let mut t = Tape::new();
//! let x = t.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
//! let w = t.param(0, Matrix::from_vec(2, 1, vec![0.5, -0.25]));
//! let y = t.matmul(x, w);
//! let loss = t.mse_loss(y, &[1.0]);
//! let grads = t.backward(loss);
//! assert!(grads[0].is_some());
//! ```

use crate::matrix::Matrix;
use pg_util::Rng64;

/// Handle to a tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf {
        param: Option<usize>,
    },
    MatMul(Var, Var),
    Add(Var, Var),
    AddRow(Var, Var),
    AddN(Vec<Var>),
    Relu(Var),
    /// `relu(a · w + bias)` in one node (no intermediate materialization).
    LinearBiasRelu(Var, Var, Var),
    /// `relu(a + bias)` in one node, for pre-summed layer inputs.
    AddRowRelu(Var, Var),
    /// An empty mask means identity (eval mode) — no per-element buffer.
    Dropout(Var, Vec<f32>),
    ConcatCols(Var, Var),
    SumRows(Var),
    Gather(Var, Vec<u32>),
    ScatterAdd(Var, Vec<u32>),
    ScaleRows(Var, Vec<f32>),
    Scale(Var, f32),
    MapeLoss(Var, Vec<f32>),
    MseLoss(Var, Vec<f32>),
    /// Segment max with argmax routing: second index buffer records, per
    /// output element, the winning input row (`u32::MAX` = empty segment).
    ScatterMax(Var, Vec<u32>, Vec<u32>),
    /// Per-segment softmax over a single-column input.
    SegmentSoftmax(Var, Vec<u32>),
    /// Row-broadcast product: `out[r][c] = a[r][c] * w[r][0]`.
    MulCol(Var, Var),
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    op: Op,
}

/// A reverse-mode autodiff tape with pooled (arena-reused) buffers.
#[derive(Debug, Clone, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    num_params: usize,
    /// Recycled `f32` buffers (node values, masks, loss targets).
    f32_pool: Vec<Vec<f32>>,
    /// Recycled index buffers (gather/scatter).
    u32_pool: Vec<Vec<u32>>,
}

/// Pops a buffer from `pool` (or allocates) and resizes it to `len` zeros.
fn take_f32(pool: &mut Vec<Vec<f32>>, len: usize) -> Vec<f32> {
    let mut b = pool.pop().unwrap_or_default();
    b.clear();
    b.resize(len, 0.0);
    b
}

/// Pops a buffer from `pool` (or allocates) and copies `src` into it.
fn copy_f32(pool: &mut Vec<Vec<f32>>, src: &[f32]) -> Vec<f32> {
    let mut b = pool.pop().unwrap_or_default();
    b.clear();
    b.extend_from_slice(src);
    b
}

fn copy_u32(pool: &mut Vec<Vec<u32>>, src: &[u32]) -> Vec<u32> {
    let mut b = pool.pop().unwrap_or_default();
    b.clear();
    b.extend_from_slice(src);
    b
}

/// Pops a buffer from `pool` (or allocates) and resizes it to `len` copies
/// of `fill`.
fn take_u32(pool: &mut Vec<Vec<u32>>, len: usize, fill: u32) -> Vec<u32> {
    let mut b = pool.pop().unwrap_or_default();
    b.clear();
    b.resize(len, fill);
    b
}

impl Tape {
    /// Empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Clears the recorded graph, returning every node value and op buffer
    /// to the internal pools for reuse by the next step. Parameter slots
    /// reset too; the tape is indistinguishable from a fresh one except
    /// that subsequent ops allocate from the pools.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            self.f32_pool.push(node.value.data);
            match node.op {
                Op::Dropout(_, m)
                | Op::ScaleRows(_, m)
                | Op::MapeLoss(_, m)
                | Op::MseLoss(_, m) => self.f32_pool.push(m),
                Op::Gather(_, i) | Op::ScatterAdd(_, i) | Op::SegmentSoftmax(_, i) => {
                    self.u32_pool.push(i)
                }
                Op::ScatterMax(_, i, am) => {
                    self.u32_pool.push(i);
                    self.u32_pool.push(am);
                }
                _ => {}
            }
        }
        self.num_params = 0;
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Constant leaf (no gradient).
    ///
    /// Debug builds assert the input is finite — the matmul kernels are
    /// IEEE-faithful, so a NaN entering here poisons everything downstream.
    pub fn leaf(&mut self, m: Matrix) -> Var {
        debug_assert!(m.is_finite(), "non-finite leaf entered the tape");
        self.push(m, Op::Leaf { param: None })
    }

    /// Parameter leaf; `slot` indexes the gradient vector returned by
    /// [`Tape::backward`]. Debug builds assert the parameter is finite.
    pub fn param(&mut self, slot: usize, m: Matrix) -> Var {
        debug_assert!(m.is_finite(), "non-finite parameter entered the tape");
        self.num_params = self.num_params.max(slot + 1);
        self.push(m, Op::Leaf { param: Some(slot) })
    }

    /// `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (rows, cols) = (self.nodes[a.0].value.rows, self.nodes[b.0].value.cols);
        let mut out = Matrix {
            rows: 0,
            cols: 0,
            data: take_f32(&mut self.f32_pool, rows * cols),
        };
        self.nodes[a.0]
            .value
            .matmul_into(&self.nodes[b.0].value, &mut out);
        self.push(out, Op::MatMul(a, b))
    }

    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut data = copy_f32(&mut self.f32_pool, &self.nodes[a.0].value.data);
        let av = &self.nodes[a.0].value;
        let mut v = Matrix {
            rows: av.rows,
            cols: av.cols,
            data: std::mem::take(&mut data),
        };
        v.add_assign(&self.nodes[b.0].value);
        self.push(v, Op::Add(a, b))
    }

    /// Broadcast add of a `1 × d` row vector to every row of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × a.cols`.
    pub fn add_row(&mut self, a: Var, bias: Var) -> Var {
        let data = copy_f32(&mut self.f32_pool, &self.nodes[a.0].value.data);
        let av = &self.nodes[a.0].value;
        let b = &self.nodes[bias.0].value;
        assert_eq!(b.rows, 1, "bias must be a row vector");
        assert_eq!(b.cols, av.cols, "bias width mismatch");
        let mut v = Matrix {
            rows: av.rows,
            cols: av.cols,
            data,
        };
        for r in 0..v.rows {
            for (x, &bv) in v.row_mut(r).iter_mut().zip(&b.data) {
                *x += bv;
            }
        }
        self.push(v, Op::AddRow(a, bias))
    }

    /// Sum of several same-shape nodes.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty or shapes differ.
    pub fn add_n(&mut self, vars: Vec<Var>) -> Var {
        assert!(!vars.is_empty(), "add_n needs at least one input");
        let data = copy_f32(&mut self.f32_pool, &self.nodes[vars[0].0].value.data);
        let first = &self.nodes[vars[0].0].value;
        let mut v = Matrix {
            rows: first.rows,
            cols: first.cols,
            data,
        };
        for x in &vars[1..] {
            v.add_assign(&self.nodes[x.0].value);
        }
        self.push(v, Op::AddN(vars))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let data = copy_f32(&mut self.f32_pool, &self.nodes[a.0].value.data);
        let av = &self.nodes[a.0].value;
        let mut v = Matrix {
            rows: av.rows,
            cols: av.cols,
            data,
        };
        for x in &mut v.data {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
        self.push(v, Op::Relu(a))
    }

    /// Fused `relu(a · w + bias)`: the per-layer `matmul → add_row → relu`
    /// chain as a single node, materializing only the final activation.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or if `bias` is not `1 × w.cols`.
    pub fn linear_bias_relu(&mut self, a: Var, w: Var, bias: Var) -> Var {
        let (rows, cols) = (self.nodes[a.0].value.rows, self.nodes[w.0].value.cols);
        let b = &self.nodes[bias.0].value;
        assert_eq!(b.rows, 1, "bias must be a row vector");
        assert_eq!(b.cols, cols, "bias width mismatch");
        let mut out = Matrix {
            rows: 0,
            cols: 0,
            data: take_f32(&mut self.f32_pool, rows * cols),
        };
        self.nodes[a.0]
            .value
            .matmul_into(&self.nodes[w.0].value, &mut out);
        let bdata = &self.nodes[bias.0].value.data;
        for r in 0..rows {
            for (x, &bv) in out.row_mut(r).iter_mut().zip(bdata) {
                let z = *x + bv;
                *x = if z > 0.0 { z } else { 0.0 };
            }
        }
        self.push(out, Op::LinearBiasRelu(a, w, bias))
    }

    /// Fused `relu(a + bias)` for layers whose pre-activation is already
    /// summed (HEC/SAGE/GraphConv aggregation outputs).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × a.cols`.
    pub fn add_row_relu(&mut self, a: Var, bias: Var) -> Var {
        let data = copy_f32(&mut self.f32_pool, &self.nodes[a.0].value.data);
        let av = &self.nodes[a.0].value;
        let b = &self.nodes[bias.0].value;
        assert_eq!(b.rows, 1, "bias must be a row vector");
        assert_eq!(b.cols, av.cols, "bias width mismatch");
        let mut v = Matrix {
            rows: av.rows,
            cols: av.cols,
            data,
        };
        for r in 0..v.rows {
            for (x, &bv) in v.row_mut(r).iter_mut().zip(&b.data) {
                let z = *x + bv;
                *x = if z > 0.0 { z } else { 0.0 };
            }
        }
        self.push(v, Op::AddRowRelu(a, bias))
    }

    /// Inverted dropout with keep-probability `1 - p`; pass `train = false`
    /// for identity.
    pub fn dropout(&mut self, a: Var, p: f32, train: bool, rng: &mut Rng64) -> Var {
        if !train || p <= 0.0 {
            let data = copy_f32(&mut self.f32_pool, &self.nodes[a.0].value.data);
            let av = &self.nodes[a.0].value;
            let v = Matrix {
                rows: av.rows,
                cols: av.cols,
                data,
            };
            // Empty mask = identity; avoids an n-element buffer per call.
            return self.push(v, Op::Dropout(a, Vec::new()));
        }
        let keep = 1.0 - p;
        let n = self.nodes[a.0].value.len();
        let mut mask = take_f32(&mut self.f32_pool, n);
        for m in &mut mask {
            *m = if rng.f32() < keep { 1.0 / keep } else { 0.0 };
        }
        let data = copy_f32(&mut self.f32_pool, &self.nodes[a.0].value.data);
        let av = &self.nodes[a.0].value;
        let mut v = Matrix {
            rows: av.rows,
            cols: av.cols,
            data,
        };
        for (x, m) in v.data.iter_mut().zip(&mask) {
            *x *= m;
        }
        self.push(v, Op::Dropout(a, mask))
    }

    /// Concatenates columns: `[a | b]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (rows, ca, cb) = {
            let (ma, mb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            assert_eq!(ma.rows, mb.rows, "concat_cols row mismatch");
            (ma.rows, ma.cols, mb.cols)
        };
        let data = take_f32(&mut self.f32_pool, rows * (ca + cb));
        let (ma, mb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        let mut v = Matrix {
            rows,
            cols: ca + cb,
            data,
        };
        for r in 0..rows {
            v.row_mut(r)[..ca].copy_from_slice(ma.row(r));
            v.row_mut(r)[ca..].copy_from_slice(mb.row(r));
        }
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Column-wise sum over rows: `[n, d] → [1, d]`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let cols = self.nodes[a.0].value.cols;
        let data = take_f32(&mut self.f32_pool, cols);
        let m = &self.nodes[a.0].value;
        let mut v = Matrix {
            rows: 1,
            cols,
            data,
        };
        for r in 0..m.rows {
            for (o, &x) in v.data.iter_mut().zip(m.row(r)) {
                *o += x;
            }
        }
        self.push(v, Op::SumRows(a))
    }

    /// Gathers rows: `out[i] = a[idx[i]]`.
    pub fn gather(&mut self, a: Var, idx: &[u32]) -> Var {
        let cols = self.nodes[a.0].value.cols;
        let data = take_f32(&mut self.f32_pool, idx.len() * cols);
        let owned_idx = copy_u32(&mut self.u32_pool, idx);
        let m = &self.nodes[a.0].value;
        let mut v = Matrix {
            rows: idx.len(),
            cols,
            data,
        };
        for (i, &j) in idx.iter().enumerate() {
            v.row_mut(i).copy_from_slice(m.row(j as usize));
        }
        self.push(v, Op::Gather(a, owned_idx))
    }

    /// Scatter-add rows: `out[idx[i]] += a[i]`, `out` has `rows` rows.
    pub fn scatter_add(&mut self, a: Var, idx: &[u32], rows: usize) -> Var {
        let cols = self.nodes[a.0].value.cols;
        let data = take_f32(&mut self.f32_pool, rows * cols);
        let owned_idx = copy_u32(&mut self.u32_pool, idx);
        let m = &self.nodes[a.0].value;
        let mut v = Matrix { rows, cols, data };
        for (i, &j) in idx.iter().enumerate() {
            let dst = v.row_mut(j as usize);
            for (o, &x) in dst.iter_mut().zip(m.row(i)) {
                *o += x;
            }
        }
        self.push(v, Op::ScatterAdd(a, owned_idx))
    }

    /// Scatter-max rows: `out[idx[i]] = max(out[idx[i]], a[i])` per column,
    /// with `out` having `rows` rows. Empty segments yield `0.0` and pass
    /// no gradient. Ties route the gradient to the first contributing row
    /// (strict `>` comparison), so results are order-deterministic.
    pub fn scatter_max(&mut self, a: Var, idx: &[u32], rows: usize) -> Var {
        let cols = self.nodes[a.0].value.cols;
        let data = take_f32(&mut self.f32_pool, rows * cols);
        let owned_idx = copy_u32(&mut self.u32_pool, idx);
        let mut argmax = take_u32(&mut self.u32_pool, rows * cols, u32::MAX);
        let m = &self.nodes[a.0].value;
        let mut v = Matrix { rows, cols, data };
        for (i, &j) in idx.iter().enumerate() {
            let src = m.row(i);
            let dst = v.row_mut(j as usize);
            for c in 0..cols {
                let slot = j as usize * cols + c;
                if argmax[slot] == u32::MAX || src[c] > dst[c] {
                    dst[c] = src[c];
                    argmax[slot] = i as u32;
                }
            }
        }
        self.push(v, Op::ScatterMax(a, owned_idx, argmax))
    }

    /// Per-segment softmax over a single-column input: row `i` belongs to
    /// segment `seg[i]`, and within each segment the outputs form a softmax
    /// of the inputs (max-subtracted for stability). Rows are visited in
    /// order, so results are deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not a column or `seg.len() != a.rows`.
    pub fn segment_softmax(&mut self, a: Var, seg: &[u32], segments: usize) -> Var {
        let m = &self.nodes[a.0].value;
        assert_eq!(m.cols, 1, "segment_softmax input must be a column");
        assert_eq!(seg.len(), m.rows, "segment index count mismatch");
        let owned_seg = copy_u32(&mut self.u32_pool, seg);
        let mut data = copy_f32(&mut self.f32_pool, &self.nodes[a.0].value.data);
        let mut maxes = take_f32(&mut self.f32_pool, segments);
        maxes.iter_mut().for_each(|x| *x = f32::NEG_INFINITY);
        let mut sums = take_f32(&mut self.f32_pool, segments);
        for (i, &s) in seg.iter().enumerate() {
            let s = s as usize;
            if data[i] > maxes[s] {
                maxes[s] = data[i];
            }
        }
        for (i, &s) in seg.iter().enumerate() {
            data[i] = (data[i] - maxes[s as usize]).exp();
            sums[s as usize] += data[i];
        }
        for (i, &s) in seg.iter().enumerate() {
            data[i] /= sums[s as usize];
        }
        self.f32_pool.push(maxes);
        self.f32_pool.push(sums);
        let rows = data.len();
        let v = Matrix { rows, cols: 1, data };
        self.push(v, Op::SegmentSoftmax(a, owned_seg))
    }

    /// Row-broadcast product: `out[r][c] = a[r][c] * w[r][0]`, where `w`
    /// is a column with one weight per row of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not `a.rows × 1`.
    pub fn mul_col(&mut self, a: Var, w: Var) -> Var {
        let data = copy_f32(&mut self.f32_pool, &self.nodes[a.0].value.data);
        let (av, wv) = (&self.nodes[a.0].value, &self.nodes[w.0].value);
        assert_eq!(wv.cols, 1, "mul_col weights must be a column");
        assert_eq!(wv.rows, av.rows, "mul_col weight count mismatch");
        let mut v = Matrix {
            rows: av.rows,
            cols: av.cols,
            data,
        };
        for (r, &k) in wv.data.iter().enumerate() {
            for x in v.row_mut(r) {
                *x *= k;
            }
        }
        self.push(v, Op::MulCol(a, w))
    }

    /// Multiplies row `i` by `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != a.rows`.
    pub fn scale_rows(&mut self, a: Var, weights: &[f32]) -> Var {
        let data = copy_f32(&mut self.f32_pool, &self.nodes[a.0].value.data);
        let owned_w = copy_f32(&mut self.f32_pool, weights);
        let m = &self.nodes[a.0].value;
        assert_eq!(weights.len(), m.rows, "scale_rows weight count mismatch");
        let mut v = Matrix {
            rows: m.rows,
            cols: m.cols,
            data,
        };
        for (r, &w) in weights.iter().enumerate() {
            for x in v.row_mut(r) {
                *x *= w;
            }
        }
        self.push(v, Op::ScaleRows(a, owned_w))
    }

    /// Scalar multiplication.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let data = copy_f32(&mut self.f32_pool, &self.nodes[a.0].value.data);
        let av = &self.nodes[a.0].value;
        let mut v = Matrix {
            rows: av.rows,
            cols: av.cols,
            data,
        };
        v.scale_assign(k);
        self.push(v, Op::Scale(a, k))
    }

    /// Mean absolute percentage error between the single-column prediction
    /// and `targets`; returns a `1 × 1` loss node.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn mape_loss(&mut self, pred: Var, targets: &[f32]) -> Var {
        let owned_t = copy_f32(&mut self.f32_pool, targets);
        let mut data = take_f32(&mut self.f32_pool, 1);
        let p = &self.nodes[pred.0].value;
        assert_eq!(p.cols, 1, "predictions must be a column");
        assert_eq!(p.rows, targets.len(), "target count mismatch");
        let mut acc = 0.0f32;
        for (i, &t) in targets.iter().enumerate() {
            if t.abs() > 1e-12 {
                acc += ((p.data[i] - t) / t).abs();
            }
        }
        data[0] = acc / targets.len().max(1) as f32;
        let v = Matrix {
            rows: 1,
            cols: 1,
            data,
        };
        self.push(v, Op::MapeLoss(pred, owned_t))
    }

    /// Mean squared error; returns a `1 × 1` loss node.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn mse_loss(&mut self, pred: Var, targets: &[f32]) -> Var {
        let owned_t = copy_f32(&mut self.f32_pool, targets);
        let mut data = take_f32(&mut self.f32_pool, 1);
        let p = &self.nodes[pred.0].value;
        assert_eq!(p.cols, 1, "predictions must be a column");
        assert_eq!(p.rows, targets.len(), "target count mismatch");
        let mut acc = 0.0f32;
        for (i, &t) in targets.iter().enumerate() {
            let d = p.data[i] - t;
            acc += d * d;
        }
        data[0] = acc / targets.len().max(1) as f32;
        let v = Matrix {
            rows: 1,
            cols: 1,
            data,
        };
        self.push(v, Op::MseLoss(pred, owned_t))
    }

    /// Runs backpropagation from `loss` (must be `1 × 1`), returning one
    /// gradient slot per parameter index used (missing slots are `None`).
    ///
    /// Intermediate gradient buffers are recycled into the tape pools as
    /// they are consumed, so steady-state backward passes allocate only
    /// the returned parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not scalar.
    pub fn backward(&mut self, loss: Var) -> Vec<Option<Matrix>> {
        assert_eq!(self.nodes[loss.0].value.len(), 1, "loss must be scalar");
        debug_assert!(
            self.nodes[loss.0].value.is_finite(),
            "non-finite loss at the tape boundary"
        );
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Matrix::scalar(1.0));
        let mut out: Vec<Option<Matrix>> = vec![None; self.num_params];

        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &self.nodes[i].op {
                Op::Leaf { param } => {
                    if let Some(slot) = param {
                        match &mut out[*slot] {
                            Some(acc) => {
                                acc.add_assign(&g);
                                self.f32_pool.push(g.data);
                            }
                            slot_ref => *slot_ref = Some(g),
                        }
                    } else {
                        self.f32_pool.push(g.data);
                    }
                }
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    let ga = {
                        let mut ga = Matrix {
                            rows: 0,
                            cols: 0,
                            data: take_f32(&mut self.f32_pool, 0),
                        };
                        g.matmul_nt_into(&self.nodes[b.0].value, &mut ga);
                        ga
                    };
                    let gb = {
                        let mut gb = Matrix {
                            rows: 0,
                            cols: 0,
                            data: take_f32(&mut self.f32_pool, 0),
                        };
                        self.nodes[a.0].value.matmul_tn_into(&g, &mut gb);
                        gb
                    };
                    self.f32_pool.push(g.data);
                    accumulate(&mut self.f32_pool, &mut grads, a, ga);
                    accumulate(&mut self.f32_pool, &mut grads, b, gb);
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    let gc = self.clone_grad(&g);
                    accumulate(&mut self.f32_pool, &mut grads, a, gc);
                    accumulate(&mut self.f32_pool, &mut grads, b, g);
                }
                Op::AddRow(a, bias) => {
                    let (a, bias) = (*a, *bias);
                    let gb = self.colsum(&g);
                    accumulate(&mut self.f32_pool, &mut grads, bias, gb);
                    accumulate(&mut self.f32_pool, &mut grads, a, g);
                }
                Op::AddN(vars) => {
                    let vars = vars.clone();
                    for v in &vars[1..] {
                        let gc = self.clone_grad(&g);
                        accumulate(&mut self.f32_pool, &mut grads, *v, gc);
                    }
                    accumulate(&mut self.f32_pool, &mut grads, vars[0], g);
                }
                Op::Relu(a) => {
                    let a = *a;
                    let mut ga = g;
                    for (x, &v) in ga.data.iter_mut().zip(&self.nodes[i].value.data) {
                        if v <= 0.0 {
                            *x = 0.0;
                        }
                    }
                    accumulate(&mut self.f32_pool, &mut grads, a, ga);
                }
                Op::LinearBiasRelu(a, w, bias) => {
                    let (a, w, bias) = (*a, *w, *bias);
                    // Mask by the fused output (post-ReLU), then split into
                    // the three operand gradients exactly as the unfused
                    // relu → add_row → matmul chain would.
                    let mut gm = g;
                    for (x, &v) in gm.data.iter_mut().zip(&self.nodes[i].value.data) {
                        if v <= 0.0 {
                            *x = 0.0;
                        }
                    }
                    let gb = self.colsum(&gm);
                    let ga = {
                        let mut ga = Matrix {
                            rows: 0,
                            cols: 0,
                            data: take_f32(&mut self.f32_pool, 0),
                        };
                        gm.matmul_nt_into(&self.nodes[w.0].value, &mut ga);
                        ga
                    };
                    let gw = {
                        let mut gw = Matrix {
                            rows: 0,
                            cols: 0,
                            data: take_f32(&mut self.f32_pool, 0),
                        };
                        self.nodes[a.0].value.matmul_tn_into(&gm, &mut gw);
                        gw
                    };
                    self.f32_pool.push(gm.data);
                    accumulate(&mut self.f32_pool, &mut grads, bias, gb);
                    accumulate(&mut self.f32_pool, &mut grads, a, ga);
                    accumulate(&mut self.f32_pool, &mut grads, w, gw);
                }
                Op::AddRowRelu(a, bias) => {
                    let (a, bias) = (*a, *bias);
                    let mut gm = g;
                    for (x, &v) in gm.data.iter_mut().zip(&self.nodes[i].value.data) {
                        if v <= 0.0 {
                            *x = 0.0;
                        }
                    }
                    let gb = self.colsum(&gm);
                    accumulate(&mut self.f32_pool, &mut grads, bias, gb);
                    accumulate(&mut self.f32_pool, &mut grads, a, gm);
                }
                Op::Dropout(a, mask) => {
                    let a = *a;
                    let mut ga = g;
                    if !mask.is_empty() {
                        for (x, &m) in ga.data.iter_mut().zip(mask) {
                            *x *= m;
                        }
                    }
                    accumulate(&mut self.f32_pool, &mut grads, a, ga);
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (*a, *b);
                    let (ca, cb) = (self.nodes[a.0].value.cols, self.nodes[b.0].value.cols);
                    let mut ga = Matrix {
                        rows: g.rows,
                        cols: ca,
                        data: take_f32(&mut self.f32_pool, g.rows * ca),
                    };
                    let mut gb = Matrix {
                        rows: g.rows,
                        cols: cb,
                        data: take_f32(&mut self.f32_pool, g.rows * cb),
                    };
                    for r in 0..g.rows {
                        ga.row_mut(r).copy_from_slice(&g.row(r)[..ca]);
                        gb.row_mut(r).copy_from_slice(&g.row(r)[ca..]);
                    }
                    self.f32_pool.push(g.data);
                    accumulate(&mut self.f32_pool, &mut grads, a, ga);
                    accumulate(&mut self.f32_pool, &mut grads, b, gb);
                }
                Op::SumRows(a) => {
                    let a = *a;
                    let rows = self.nodes[a.0].value.rows;
                    let mut ga = Matrix {
                        rows,
                        cols: g.cols,
                        data: take_f32(&mut self.f32_pool, rows * g.cols),
                    };
                    for r in 0..rows {
                        ga.row_mut(r).copy_from_slice(g.row(0));
                    }
                    self.f32_pool.push(g.data);
                    accumulate(&mut self.f32_pool, &mut grads, a, ga);
                }
                Op::Gather(a, _) => {
                    let a = *a;
                    let (rows, cols) = {
                        let src = &self.nodes[a.0].value;
                        (src.rows, src.cols)
                    };
                    let mut ga = Matrix {
                        rows,
                        cols,
                        data: take_f32(&mut self.f32_pool, rows * cols),
                    };
                    let Op::Gather(_, idx) = &self.nodes[i].op else {
                        unreachable!()
                    };
                    for (r, &j) in idx.iter().enumerate() {
                        let dst = ga.row_mut(j as usize);
                        for (o, &x) in dst.iter_mut().zip(g.row(r)) {
                            *o += x;
                        }
                    }
                    self.f32_pool.push(g.data);
                    accumulate(&mut self.f32_pool, &mut grads, a, ga);
                }
                Op::ScatterAdd(a, _) => {
                    let a = *a;
                    let (rows, cols) = {
                        let src = &self.nodes[a.0].value;
                        (src.rows, src.cols)
                    };
                    let mut ga = Matrix {
                        rows,
                        cols,
                        data: take_f32(&mut self.f32_pool, rows * cols),
                    };
                    let Op::ScatterAdd(_, idx) = &self.nodes[i].op else {
                        unreachable!()
                    };
                    for (r, &j) in idx.iter().enumerate() {
                        ga.row_mut(r).copy_from_slice(g.row(j as usize));
                    }
                    self.f32_pool.push(g.data);
                    accumulate(&mut self.f32_pool, &mut grads, a, ga);
                }
                Op::ScaleRows(a, w) => {
                    let a = *a;
                    let mut ga = g;
                    for (r, &k) in w.iter().enumerate() {
                        for x in ga.row_mut(r) {
                            *x *= k;
                        }
                    }
                    accumulate(&mut self.f32_pool, &mut grads, a, ga);
                }
                Op::Scale(a, k) => {
                    let (a, k) = (*a, *k);
                    let mut ga = g;
                    ga.scale_assign(k);
                    accumulate(&mut self.f32_pool, &mut grads, a, ga);
                }
                Op::MapeLoss(pred, targets) => {
                    let pred = *pred;
                    let rows = self.nodes[pred.0].value.rows;
                    let n = targets.len().max(1) as f32;
                    let scale = g.data[0] / n;
                    let mut gp = Matrix {
                        rows,
                        cols: 1,
                        data: take_f32(&mut self.f32_pool, rows),
                    };
                    let Op::MapeLoss(_, targets) = &self.nodes[i].op else {
                        unreachable!()
                    };
                    let p = &self.nodes[pred.0].value;
                    for (r, &t) in targets.iter().enumerate() {
                        if t.abs() > 1e-12 {
                            let sign = if p.data[r] >= t { 1.0 } else { -1.0 };
                            gp.data[r] = scale * sign / t.abs();
                        }
                    }
                    self.f32_pool.push(g.data);
                    accumulate(&mut self.f32_pool, &mut grads, pred, gp);
                }
                Op::MseLoss(pred, targets) => {
                    let pred = *pred;
                    let rows = self.nodes[pred.0].value.rows;
                    let n = targets.len().max(1) as f32;
                    let scale = 2.0 * g.data[0] / n;
                    let mut gp = Matrix {
                        rows,
                        cols: 1,
                        data: take_f32(&mut self.f32_pool, rows),
                    };
                    let Op::MseLoss(_, targets) = &self.nodes[i].op else {
                        unreachable!()
                    };
                    let p = &self.nodes[pred.0].value;
                    for (r, &t) in targets.iter().enumerate() {
                        gp.data[r] = scale * (p.data[r] - t);
                    }
                    self.f32_pool.push(g.data);
                    accumulate(&mut self.f32_pool, &mut grads, pred, gp);
                }
                Op::ScatterMax(a, _, _) => {
                    let a = *a;
                    let (rows, cols) = {
                        let src = &self.nodes[a.0].value;
                        (src.rows, src.cols)
                    };
                    let mut ga = Matrix {
                        rows,
                        cols,
                        data: take_f32(&mut self.f32_pool, rows * cols),
                    };
                    let Op::ScatterMax(_, _, argmax) = &self.nodes[i].op else {
                        unreachable!()
                    };
                    // Route each output gradient to the row that won the max.
                    for (slot, &am) in argmax.iter().enumerate() {
                        if am != u32::MAX {
                            let c = slot % cols;
                            ga.row_mut(am as usize)[c] += g.data[slot];
                        }
                    }
                    self.f32_pool.push(g.data);
                    accumulate(&mut self.f32_pool, &mut grads, a, ga);
                }
                Op::SegmentSoftmax(a, _) => {
                    let a = *a;
                    let Op::SegmentSoftmax(_, seg) = &self.nodes[i].op else {
                        unreachable!()
                    };
                    let segments = seg.iter().max().map_or(0, |&m| m as usize + 1);
                    let mut dots = take_f32(&mut self.f32_pool, segments);
                    let y = &self.nodes[i].value;
                    for (r, &s) in seg.iter().enumerate() {
                        dots[s as usize] += y.data[r] * g.data[r];
                    }
                    // dL/dx_i = y_i * (g_i - Σ_{j in segment} y_j g_j)
                    let mut ga = g;
                    for (r, &s) in seg.iter().enumerate() {
                        ga.data[r] = y.data[r] * (ga.data[r] - dots[s as usize]);
                    }
                    self.f32_pool.push(dots);
                    accumulate(&mut self.f32_pool, &mut grads, a, ga);
                }
                Op::MulCol(a, w) => {
                    let (a, w) = (*a, *w);
                    let rows = g.rows;
                    let mut gw = Matrix {
                        rows,
                        cols: 1,
                        data: take_f32(&mut self.f32_pool, rows),
                    };
                    let av = &self.nodes[a.0].value;
                    for r in 0..rows {
                        let mut acc = 0.0f32;
                        for (&gx, &ax) in g.row(r).iter().zip(av.row(r)) {
                            acc += gx * ax;
                        }
                        gw.data[r] = acc;
                    }
                    let wv = &self.nodes[w.0].value;
                    let mut ga = g;
                    for (r, &k) in wv.data.iter().enumerate() {
                        for x in ga.row_mut(r) {
                            *x *= k;
                        }
                    }
                    accumulate(&mut self.f32_pool, &mut grads, a, ga);
                    accumulate(&mut self.f32_pool, &mut grads, w, gw);
                }
            }
        }
        out
    }

    /// Pool-backed copy of a gradient matrix.
    fn clone_grad(&mut self, g: &Matrix) -> Matrix {
        let data = copy_f32(&mut self.f32_pool, &g.data);
        Matrix {
            rows: g.rows,
            cols: g.cols,
            data,
        }
    }

    /// Pool-backed column sum `[n, d] → [1, d]` (bias gradient).
    fn colsum(&mut self, g: &Matrix) -> Matrix {
        let mut gb = Matrix {
            rows: 1,
            cols: g.cols,
            data: take_f32(&mut self.f32_pool, g.cols),
        };
        for r in 0..g.rows {
            for (o, &x) in gb.data.iter_mut().zip(g.row(r)) {
                *o += x;
            }
        }
        gb
    }

    /// Number of nodes recorded (for memory diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Adds `g` into the gradient slot for `v`, recycling `g`'s buffer into
/// the pool when the slot already holds an accumulator.
fn accumulate(pool: &mut Vec<Vec<f32>>, grads: &mut [Option<Matrix>], v: Var, g: Matrix) {
    match &mut grads[v.0] {
        Some(acc) => {
            acc.add_assign(&g);
            pool.push(g.data);
        }
        slot => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check for a scalar function of params.
    fn grad_check<F>(param: Matrix, f: F)
    where
        F: Fn(&mut Tape, Var) -> Var,
    {
        let mut tape = Tape::new();
        let p = tape.param(0, param.clone());
        let loss = f(&mut tape, p);
        let grads = tape.backward(loss);
        let analytic = grads[0].as_ref().expect("param grad");

        let eps = 1e-3f32;
        for k in 0..param.len() {
            let mut plus = param.clone();
            plus.data[k] += eps;
            let mut tp = Tape::new();
            let vp = tp.param(0, plus);
            let lp = f(&mut tp, vp);
            let fp = tp.value(lp).data[0];

            let mut minus = param.clone();
            minus.data[k] -= eps;
            let mut tm = Tape::new();
            let vm = tm.param(0, minus);
            let lm = f(&mut tm, vm);
            let fm = tm.value(lm).data[0];

            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.data[k];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "grad[{k}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_matmul_mse() {
        let w = Matrix::from_vec(2, 2, vec![0.3, -0.2, 0.5, 0.7]);
        grad_check(w, |t, p| {
            let x = t.leaf(Matrix::from_vec(3, 2, vec![1.0, 2.0, -1.0, 0.5, 0.3, -0.7]));
            let h = t.matmul(x, p);
            let w2 = t.leaf(Matrix::from_vec(2, 1, vec![1.0, -1.0]));
            let y = t.matmul(h, w2);
            t.mse_loss(y, &[0.5, -0.2, 0.1])
        });
    }

    #[test]
    fn grad_relu_chain() {
        let w = Matrix::from_vec(2, 1, vec![0.8, -0.6]);
        grad_check(w, |t, p| {
            let x = t.leaf(Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 1.5]));
            let h = t.matmul(x, p);
            let r = t.relu(h);
            t.mse_loss(r, &[1.0, 0.0])
        });
    }

    #[test]
    fn grad_linear_bias_relu_weight() {
        let w = Matrix::from_vec(2, 3, vec![0.3, -0.2, 0.5, 0.7, -0.4, 0.1]);
        grad_check(w, |t, p| {
            let x = t.leaf(Matrix::from_vec(3, 2, vec![1.0, 2.0, -1.0, 0.5, 0.3, -0.7]));
            let b = t.leaf(Matrix::from_vec(1, 3, vec![0.05, -0.1, 0.2]));
            let h = t.linear_bias_relu(x, p, b);
            let v = t.leaf(Matrix::from_vec(3, 1, vec![1.0, -0.5, 0.25]));
            let y = t.matmul(h, v);
            t.mse_loss(y, &[0.5, -0.2, 0.1])
        });
    }

    #[test]
    fn grad_linear_bias_relu_bias() {
        let b = Matrix::from_vec(1, 2, vec![0.15, -0.35]);
        grad_check(b, |t, p| {
            let x = t.leaf(Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 1.5]));
            let w = t.leaf(Matrix::from_vec(2, 2, vec![0.6, -0.3, 0.2, 0.9]));
            let h = t.linear_bias_relu(x, w, p);
            let v = t.leaf(Matrix::from_vec(2, 1, vec![1.0, -1.0]));
            let y = t.matmul(h, v);
            t.mse_loss(y, &[0.3, -0.6])
        });
    }

    #[test]
    fn grad_add_row_relu() {
        let w = Matrix::from_vec(1, 3, vec![0.1, -0.2, 0.3]);
        grad_check(w, |t, p| {
            let x = t.leaf(Matrix::from_vec(
                2,
                3,
                vec![0.4, -0.6, 1.0, -0.2, 0.8, -1.1],
            ));
            let h = t.add_row_relu(x, p);
            let s = t.sum_rows(h);
            let v = t.leaf(Matrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]));
            let y = t.matmul(s, v);
            t.mse_loss(y, &[1.0])
        });
    }

    #[test]
    fn fused_ops_match_unfused_chain() {
        let x = Matrix::from_vec(3, 2, vec![1.0, 2.0, -1.0, 0.5, 0.3, -0.7]);
        let w = Matrix::from_vec(2, 2, vec![0.3, -0.2, 0.5, 0.7]);
        let b = Matrix::from_vec(1, 2, vec![0.1, -0.4]);

        let v = Matrix::from_vec(2, 1, vec![1.0, -0.75]);

        let mut fused = Tape::new();
        let (xf, wf, bf) = (
            fused.leaf(x.clone()),
            fused.param(0, w.clone()),
            fused.param(1, b.clone()),
        );
        let hf = fused.linear_bias_relu(xf, wf, bf);
        let vf = fused.leaf(v.clone());
        let yf = fused.matmul(hf, vf);
        let lf = fused.mse_loss(yf, &[1.0, 0.0, -0.5]);
        let fused_val = fused.value(hf).clone();
        let fused_grads = fused.backward(lf);

        let mut plain = Tape::new();
        let (xp, wp, bp) = (plain.leaf(x), plain.param(0, w), plain.param(1, b));
        let mm = plain.matmul(xp, wp);
        let ar = plain.add_row(mm, bp);
        let hp = plain.relu(ar);
        let vp = plain.leaf(v);
        let yp = plain.matmul(hp, vp);
        let lp = plain.mse_loss(yp, &[1.0, 0.0, -0.5]);
        assert_eq!(fused_val, *plain.value(hp));
        let plain_grads = plain.backward(lp);
        for (f, p) in fused_grads.iter().zip(&plain_grads) {
            assert_eq!(f, p, "fused gradient diverged from unfused chain");
        }
    }

    #[test]
    fn reset_reuses_buffers_and_preserves_results() {
        let mut t = Tape::new();
        let mut reference: Option<Vec<f32>> = None;
        for _ in 0..3 {
            t.reset();
            let x = t.leaf(Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 1.5]));
            let w = t.param(0, Matrix::from_vec(2, 1, vec![0.8, -0.6]));
            let b = t.param(1, Matrix::from_vec(1, 1, vec![0.1]));
            let h = t.linear_bias_relu(x, w, b);
            let loss = t.mse_loss(h, &[1.0, 0.0]);
            let grads = t.backward(loss);
            let gw = grads[0].as_ref().expect("weight grad").data.clone();
            match &reference {
                None => reference = Some(gw),
                Some(r) => assert_eq!(r, &gw, "tape reuse changed gradients"),
            }
        }
        assert!(t.len() > 0);
        t.reset();
        assert!(t.is_empty());
    }

    #[test]
    fn grad_gather_scatter() {
        let w = Matrix::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        grad_check(w, |t, p| {
            let g = t.gather(p, &[0, 2, 2, 1]);
            let s = t.scatter_add(g, &[1, 0, 1, 1], 2);
            let v = t.leaf(Matrix::from_vec(2, 1, vec![1.0, -1.0]));
            let y = t.matmul(s, v);
            t.mse_loss(y, &[0.2, -0.1])
        });
    }

    #[test]
    fn grad_sum_rows_concat() {
        let w = Matrix::from_vec(2, 2, vec![0.4, -0.1, 0.2, 0.9]);
        grad_check(w, |t, p| {
            let s = t.sum_rows(p); // [1,2]
            let c = t.concat_cols(s, s); // [1,4]
            let v = t.leaf(Matrix::from_vec(4, 1, vec![1.0, 0.5, -0.5, 2.0]));
            let y = t.matmul(c, v);
            t.mse_loss(y, &[0.3])
        });
    }

    #[test]
    fn grad_scale_rows_bias() {
        let w = Matrix::from_vec(1, 3, vec![0.1, -0.2, 0.3]);
        grad_check(w, |t, p| {
            let x = t.leaf(Matrix::from_vec(2, 3, vec![1.0; 6]));
            let h = t.add_row(x, p);
            let sc = t.scale_rows(h, &[0.5, 2.0]);
            let s = t.sum_rows(sc);
            let v = t.leaf(Matrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]));
            let y = t.matmul(s, v);
            t.mse_loss(y, &[1.0])
        });
    }

    #[test]
    fn grad_mape() {
        let w = Matrix::from_vec(1, 1, vec![0.9]);
        grad_check(w, |t, p| {
            let x = t.leaf(Matrix::from_vec(2, 1, vec![1.0, 2.0]));
            let y = t.matmul(x, p);
            t.mape_loss(y, &[1.2, 1.5])
        });
    }

    #[test]
    fn grad_add_n_and_scale() {
        let w = Matrix::from_vec(2, 2, vec![0.2, 0.3, -0.4, 0.6]);
        grad_check(w, |t, p| {
            let a = t.scale(p, 0.5);
            let b = t.relu(p);
            let s = t.add_n(vec![a, b, p]);
            let sr = t.sum_rows(s);
            let v = t.leaf(Matrix::from_vec(2, 1, vec![1.0, -2.0]));
            let y = t.matmul(sr, v);
            t.mse_loss(y, &[0.1])
        });
    }

    #[test]
    fn grad_scatter_max() {
        // Values are well-separated so the argmax is stable under the
        // finite-difference epsilon.
        let w = Matrix::from_vec(4, 2, vec![0.9, 0.1, 0.2, 0.8, 0.5, -0.4, -0.3, 0.6]);
        grad_check(w, |t, p| {
            let s = t.scatter_max(p, &[0, 1, 0, 1], 2);
            let v = t.leaf(Matrix::from_vec(2, 1, vec![1.0, -1.0]));
            let y = t.matmul(s, v);
            t.mse_loss(y, &[0.2, -0.1])
        });
    }

    #[test]
    fn scatter_max_routes_ties_to_first_row_and_zeroes_empty_segments() {
        let mut t = Tape::new();
        let x = t.param(0, Matrix::from_vec(3, 1, vec![2.0, 2.0, 1.0]));
        // Rows 0 and 1 tie in segment 0; segment 1 is empty.
        let s = t.scatter_max(x, &[0, 0, 0], 2);
        assert_eq!(t.value(s).data, vec![2.0, 0.0]);
        let loss = t.mse_loss(s, &[0.0, 0.0]);
        let g = t.backward(loss);
        let gx = g[0].as_ref().expect("param grad");
        assert!(gx.data[0] != 0.0, "first tying row must take the gradient");
        assert_eq!(gx.data[1], 0.0, "later tying row must get none");
        assert_eq!(gx.data[2], 0.0, "non-max row must get none");
    }

    #[test]
    fn grad_segment_softmax() {
        let w = Matrix::from_vec(5, 1, vec![0.4, -0.6, 1.1, 0.2, -0.9]);
        grad_check(w, |t, p| {
            let a = t.segment_softmax(p, &[0, 1, 0, 1, 1], 2);
            let v = t.leaf(Matrix::from_vec(5, 2, vec![1.0, 0.3, -0.5, 0.8, 0.2, -0.7, 0.6, 0.1, -0.2, 0.9]));
            let wsum = t.mul_col(v, a);
            let s = t.sum_rows(wsum);
            let u = t.leaf(Matrix::from_vec(2, 1, vec![1.0, -1.0]));
            let y = t.matmul(s, u);
            t.mse_loss(y, &[0.25])
        });
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(4, 1, vec![10.0, -3.0, 10.5, 0.0]));
        let y = t.segment_softmax(x, &[1, 0, 1, 0], 2);
        let d = &t.value(y).data;
        assert!((d[1] + d[3] - 1.0).abs() < 1e-6, "segment 0 sums to 1");
        assert!((d[0] + d[2] - 1.0).abs() < 1e-6, "segment 1 sums to 1");
        assert!(d.iter().all(|&p| p > 0.0 && p < 1.0));
    }

    #[test]
    fn grad_mul_col_weights() {
        let w = Matrix::from_vec(3, 1, vec![0.7, -0.2, 1.3]);
        grad_check(w, |t, p| {
            let a = t.leaf(Matrix::from_vec(3, 2, vec![1.0, 2.0, -1.0, 0.5, 0.3, -0.7]));
            let m = t.mul_col(a, p);
            let s = t.sum_rows(m);
            let v = t.leaf(Matrix::from_vec(2, 1, vec![1.0, -0.5]));
            let y = t.matmul(s, v);
            t.mse_loss(y, &[0.4])
        });
    }

    #[test]
    fn grad_mul_col_matrix() {
        let w = Matrix::from_vec(2, 3, vec![0.3, -0.2, 0.5, 0.7, -0.4, 0.1]);
        grad_check(w, |t, p| {
            let k = t.leaf(Matrix::from_vec(2, 1, vec![0.6, -1.2]));
            let m = t.mul_col(p, k);
            let s = t.sum_rows(m);
            let v = t.leaf(Matrix::from_vec(3, 1, vec![1.0, 0.5, -0.5]));
            let y = t.matmul(s, v);
            t.mse_loss(y, &[0.1])
        });
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut rng = Rng64::new(0);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let d = t.dropout(x, 0.5, false, &mut rng);
        assert_eq!(t.value(d).data, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dropout_train_masks_and_scales() {
        let mut rng = Rng64::new(7);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 1000, vec![1.0; 1000]));
        let d = t.dropout(x, 0.4, true, &mut rng);
        let kept = t.value(d).data.iter().filter(|&&v| v > 0.0).count();
        assert!((450..750).contains(&kept), "kept {kept}");
        for &v in &t.value(d).data {
            assert!(v == 0.0 || (v - 1.0 / 0.6).abs() < 1e-5);
        }
    }

    #[test]
    fn unused_params_get_none() {
        let mut t = Tape::new();
        let p0 = t.param(0, Matrix::scalar(1.0));
        let _p1 = t.param(1, Matrix::scalar(2.0));
        let loss = t.mse_loss(p0, &[0.0]);
        let grads = t.backward(loss);
        assert!(grads[0].is_some());
        assert!(grads[1].is_none());
    }

    #[test]
    fn shared_param_accumulates() {
        let mut t = Tape::new();
        let p = t.param(0, Matrix::scalar(3.0));
        let s = t.add(p, p); // y = 2p, dy/dp = 2
        let loss = t.mse_loss(s, &[0.0]); // L = (2p)^2, dL/dp = 8p = 24
        let g = t.backward(loss);
        assert!((g[0].as_ref().unwrap().data[0] - 24.0).abs() < 1e-4);
    }
}
