//! Reverse-mode automatic differentiation on matrices.
//!
//! A [`Tape`] records a computation graph of matrix ops; [`Tape::backward`]
//! walks it in reverse, producing gradients for every parameter leaf. The op
//! set is exactly what the GNN models need: matmul, broadcast bias, ReLU,
//! dropout, column concatenation, row summation, row gather/scatter (the
//! message-passing primitives) and per-row scaling (normalized adjacency).
//!
//! # Examples
//!
//! ```
//! use pg_tensor::{Matrix, Tape};
//! let mut t = Tape::new();
//! let x = t.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
//! let w = t.param(0, Matrix::from_vec(2, 1, vec![0.5, -0.25]));
//! let y = t.matmul(x, w);
//! let loss = t.mse_loss(y, &[1.0]);
//! let grads = t.backward(loss);
//! assert!(grads[0].is_some());
//! ```

use crate::matrix::Matrix;
use pg_util::Rng64;

/// Handle to a tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf { param: Option<usize> },
    MatMul(Var, Var),
    Add(Var, Var),
    AddRow(Var, Var),
    AddN(Vec<Var>),
    Relu(Var),
    Dropout(Var, Vec<f32>),
    ConcatCols(Var, Var),
    SumRows(Var),
    Gather(Var, Vec<u32>),
    ScatterAdd(Var, Vec<u32>, usize),
    ScaleRows(Var, Vec<f32>),
    Scale(Var, f32),
    MapeLoss(Var, Vec<f32>),
    MseLoss(Var, Vec<f32>),
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    op: Op,
}

/// A reverse-mode autodiff tape.
#[derive(Debug, Clone, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    num_params: usize,
}

impl Tape {
    /// Empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Constant leaf (no gradient).
    pub fn leaf(&mut self, m: Matrix) -> Var {
        self.push(m, Op::Leaf { param: None })
    }

    /// Parameter leaf; `slot` indexes the gradient vector returned by
    /// [`Tape::backward`].
    pub fn param(&mut self, slot: usize, m: Matrix) -> Var {
        self.num_params = self.num_params.max(slot + 1);
        self.push(m, Op::Leaf { param: Some(slot) })
    }

    /// `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a, b))
    }

    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut v = self.nodes[a.0].value.clone();
        v.add_assign(&self.nodes[b.0].value);
        self.push(v, Op::Add(a, b))
    }

    /// Broadcast add of a `1 × d` row vector to every row of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × a.cols`.
    pub fn add_row(&mut self, a: Var, bias: Var) -> Var {
        let b = &self.nodes[bias.0].value;
        let av = &self.nodes[a.0].value;
        assert_eq!(b.rows, 1, "bias must be a row vector");
        assert_eq!(b.cols, av.cols, "bias width mismatch");
        let mut v = av.clone();
        for r in 0..v.rows {
            for c in 0..v.cols {
                v.data[r * v.cols + c] += b.data[c];
            }
        }
        self.push(v, Op::AddRow(a, bias))
    }

    /// Sum of several same-shape nodes.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty or shapes differ.
    pub fn add_n(&mut self, vars: Vec<Var>) -> Var {
        assert!(!vars.is_empty(), "add_n needs at least one input");
        let mut v = self.nodes[vars[0].0].value.clone();
        for x in &vars[1..] {
            v.add_assign(&self.nodes[x.0].value);
        }
        self.push(v, Op::AddN(vars))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let mut v = self.nodes[a.0].value.clone();
        for x in &mut v.data {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
        self.push(v, Op::Relu(a))
    }

    /// Inverted dropout with keep-probability `1 - p`; pass `train = false`
    /// for identity.
    pub fn dropout(&mut self, a: Var, p: f32, train: bool, rng: &mut Rng64) -> Var {
        if !train || p <= 0.0 {
            let v = self.nodes[a.0].value.clone();
            let n = v.len();
            return self.push(v, Op::Dropout(a, vec![1.0; n]));
        }
        let keep = 1.0 - p;
        let src = self.nodes[a.0].value.clone();
        let mask: Vec<f32> = (0..src.len())
            .map(|_| if rng.f32() < keep { 1.0 / keep } else { 0.0 })
            .collect();
        let mut v = src;
        for (x, m) in v.data.iter_mut().zip(&mask) {
            *x *= m;
        }
        self.push(v, Op::Dropout(a, mask))
    }

    /// Concatenates columns: `[a | b]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (ma, mb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ma.rows, mb.rows, "concat_cols row mismatch");
        let mut v = Matrix::zeros(ma.rows, ma.cols + mb.cols);
        for r in 0..ma.rows {
            v.row_mut(r)[..ma.cols].copy_from_slice(ma.row(r));
            v.row_mut(r)[ma.cols..].copy_from_slice(mb.row(r));
        }
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Column-wise sum over rows: `[n, d] → [1, d]`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let m = &self.nodes[a.0].value;
        let mut v = Matrix::zeros(1, m.cols);
        for r in 0..m.rows {
            for (o, &x) in v.data.iter_mut().zip(m.row(r)) {
                *o += x;
            }
        }
        self.push(v, Op::SumRows(a))
    }

    /// Gathers rows: `out[i] = a[idx[i]]`.
    pub fn gather(&mut self, a: Var, idx: &[u32]) -> Var {
        let m = &self.nodes[a.0].value;
        let mut v = Matrix::zeros(idx.len(), m.cols);
        for (i, &j) in idx.iter().enumerate() {
            v.row_mut(i).copy_from_slice(m.row(j as usize));
        }
        self.push(v, Op::Gather(a, idx.to_vec()))
    }

    /// Scatter-add rows: `out[idx[i]] += a[i]`, `out` has `rows` rows.
    pub fn scatter_add(&mut self, a: Var, idx: &[u32], rows: usize) -> Var {
        let m = &self.nodes[a.0].value;
        let mut v = Matrix::zeros(rows, m.cols);
        for (i, &j) in idx.iter().enumerate() {
            let dst = v.row_mut(j as usize);
            for (o, &x) in dst.iter_mut().zip(m.row(i)) {
                *o += x;
            }
        }
        self.push(v, Op::ScatterAdd(a, idx.to_vec(), rows))
    }

    /// Multiplies row `i` by `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != a.rows`.
    pub fn scale_rows(&mut self, a: Var, weights: &[f32]) -> Var {
        let m = &self.nodes[a.0].value;
        assert_eq!(weights.len(), m.rows, "scale_rows weight count mismatch");
        let mut v = m.clone();
        for (r, &w) in weights.iter().enumerate() {
            for x in v.row_mut(r) {
                *x *= w;
            }
        }
        self.push(v, Op::ScaleRows(a, weights.to_vec()))
    }

    /// Scalar multiplication.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let mut v = self.nodes[a.0].value.clone();
        v.scale_assign(k);
        self.push(v, Op::Scale(a, k))
    }

    /// Mean absolute percentage error between the single-column prediction
    /// and `targets`; returns a `1 × 1` loss node.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn mape_loss(&mut self, pred: Var, targets: &[f32]) -> Var {
        let p = &self.nodes[pred.0].value;
        assert_eq!(p.cols, 1, "predictions must be a column");
        assert_eq!(p.rows, targets.len(), "target count mismatch");
        let mut acc = 0.0f32;
        for (i, &t) in targets.iter().enumerate() {
            if t.abs() > 1e-12 {
                acc += ((p.data[i] - t) / t).abs();
            }
        }
        let v = Matrix::scalar(acc / targets.len().max(1) as f32);
        self.push(v, Op::MapeLoss(pred, targets.to_vec()))
    }

    /// Mean squared error; returns a `1 × 1` loss node.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn mse_loss(&mut self, pred: Var, targets: &[f32]) -> Var {
        let p = &self.nodes[pred.0].value;
        assert_eq!(p.cols, 1, "predictions must be a column");
        assert_eq!(p.rows, targets.len(), "target count mismatch");
        let mut acc = 0.0f32;
        for (i, &t) in targets.iter().enumerate() {
            let d = p.data[i] - t;
            acc += d * d;
        }
        let v = Matrix::scalar(acc / targets.len().max(1) as f32);
        self.push(v, Op::MseLoss(pred, targets.to_vec()))
    }

    /// Runs backpropagation from `loss` (must be `1 × 1`), returning one
    /// gradient slot per parameter index used (missing slots are `None`).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not scalar.
    pub fn backward(&self, loss: Var) -> Vec<Option<Matrix>> {
        assert_eq!(self.nodes[loss.0].value.len(), 1, "loss must be scalar");
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Matrix::scalar(1.0));
        let mut out: Vec<Option<Matrix>> = vec![None; self.num_params];

        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &self.nodes[i].op {
                Op::Leaf { param } => {
                    if let Some(slot) = param {
                        match &mut out[*slot] {
                            Some(acc) => acc.add_assign(&g),
                            slot_ref => *slot_ref = Some(g),
                        }
                    }
                }
                Op::MatMul(a, b) => {
                    let (ma, mb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                    accumulate(&mut grads, *a, g.matmul_nt(mb));
                    accumulate(&mut grads, *b, ma.matmul_tn(&g));
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g);
                }
                Op::AddRow(a, bias) => {
                    let mut gb = Matrix::zeros(1, g.cols);
                    for r in 0..g.rows {
                        for (o, &x) in gb.data.iter_mut().zip(g.row(r)) {
                            *o += x;
                        }
                    }
                    accumulate(&mut grads, *bias, gb);
                    accumulate(&mut grads, *a, g);
                }
                Op::AddN(vars) => {
                    for v in vars {
                        accumulate(&mut grads, *v, g.clone());
                    }
                }
                Op::Relu(a) => {
                    let mut ga = g;
                    for (x, &v) in ga.data.iter_mut().zip(&self.nodes[i].value.data) {
                        if v <= 0.0 {
                            *x = 0.0;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::Dropout(a, mask) => {
                    let mut ga = g;
                    for (x, &m) in ga.data.iter_mut().zip(mask) {
                        *x *= m;
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::ConcatCols(a, b) => {
                    let (ca, cb) = (self.nodes[a.0].value.cols, self.nodes[b.0].value.cols);
                    let mut ga = Matrix::zeros(g.rows, ca);
                    let mut gb = Matrix::zeros(g.rows, cb);
                    for r in 0..g.rows {
                        ga.row_mut(r).copy_from_slice(&g.row(r)[..ca]);
                        gb.row_mut(r).copy_from_slice(&g.row(r)[ca..]);
                    }
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::SumRows(a) => {
                    let rows = self.nodes[a.0].value.rows;
                    let mut ga = Matrix::zeros(rows, g.cols);
                    for r in 0..rows {
                        ga.row_mut(r).copy_from_slice(g.row(0));
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::Gather(a, idx) => {
                    let src = &self.nodes[a.0].value;
                    let mut ga = Matrix::zeros(src.rows, src.cols);
                    for (r, &j) in idx.iter().enumerate() {
                        let dst = ga.row_mut(j as usize);
                        for (o, &x) in dst.iter_mut().zip(g.row(r)) {
                            *o += x;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::ScatterAdd(a, idx, _rows) => {
                    let src = &self.nodes[a.0].value;
                    let mut ga = Matrix::zeros(src.rows, src.cols);
                    for (r, &j) in idx.iter().enumerate() {
                        ga.row_mut(r).copy_from_slice(g.row(j as usize));
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::ScaleRows(a, w) => {
                    let mut ga = g;
                    for (r, &k) in w.iter().enumerate() {
                        for x in ga.row_mut(r) {
                            *x *= k;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::Scale(a, k) => {
                    let mut ga = g;
                    ga.scale_assign(*k);
                    accumulate(&mut grads, *a, ga);
                }
                Op::MapeLoss(pred, targets) => {
                    let p = &self.nodes[pred.0].value;
                    let n = targets.len().max(1) as f32;
                    let scale = g.data[0] / n;
                    let mut gp = Matrix::zeros(p.rows, 1);
                    for (r, &t) in targets.iter().enumerate() {
                        if t.abs() > 1e-12 {
                            let sign = if p.data[r] >= t { 1.0 } else { -1.0 };
                            gp.data[r] = scale * sign / t.abs();
                        }
                    }
                    accumulate(&mut grads, *pred, gp);
                }
                Op::MseLoss(pred, targets) => {
                    let p = &self.nodes[pred.0].value;
                    let n = targets.len().max(1) as f32;
                    let scale = 2.0 * g.data[0] / n;
                    let mut gp = Matrix::zeros(p.rows, 1);
                    for (r, &t) in targets.iter().enumerate() {
                        gp.data[r] = scale * (p.data[r] - t);
                    }
                    accumulate(&mut grads, *pred, gp);
                }
            }
        }
        out
    }

    /// Number of nodes recorded (for memory diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

fn accumulate(grads: &mut [Option<Matrix>], v: Var, g: Matrix) {
    match &mut grads[v.0] {
        Some(acc) => acc.add_assign(&g),
        slot => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check for a scalar function of params.
    fn grad_check<F>(param: Matrix, f: F)
    where
        F: Fn(&mut Tape, Var) -> Var,
    {
        let mut tape = Tape::new();
        let p = tape.param(0, param.clone());
        let loss = f(&mut tape, p);
        let grads = tape.backward(loss);
        let analytic = grads[0].as_ref().expect("param grad");

        let eps = 1e-3f32;
        for k in 0..param.len() {
            let mut plus = param.clone();
            plus.data[k] += eps;
            let mut tp = Tape::new();
            let vp = tp.param(0, plus);
            let lp = f(&mut tp, vp);
            let fp = tp.value(lp).data[0];

            let mut minus = param.clone();
            minus.data[k] -= eps;
            let mut tm = Tape::new();
            let vm = tm.param(0, minus);
            let lm = f(&mut tm, vm);
            let fm = tm.value(lm).data[0];

            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.data[k];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "grad[{k}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_matmul_mse() {
        let w = Matrix::from_vec(2, 2, vec![0.3, -0.2, 0.5, 0.7]);
        grad_check(w, |t, p| {
            let x = t.leaf(Matrix::from_vec(3, 2, vec![1.0, 2.0, -1.0, 0.5, 0.3, -0.7]));
            let h = t.matmul(x, p);
            let w2 = t.leaf(Matrix::from_vec(2, 1, vec![1.0, -1.0]));
            let y = t.matmul(h, w2);
            t.mse_loss(y, &[0.5, -0.2, 0.1])
        });
    }

    #[test]
    fn grad_relu_chain() {
        let w = Matrix::from_vec(2, 1, vec![0.8, -0.6]);
        grad_check(w, |t, p| {
            let x = t.leaf(Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 1.5]));
            let h = t.matmul(x, p);
            let r = t.relu(h);
            t.mse_loss(r, &[1.0, 0.0])
        });
    }

    #[test]
    fn grad_gather_scatter() {
        let w = Matrix::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        grad_check(w, |t, p| {
            let g = t.gather(p, &[0, 2, 2, 1]);
            let s = t.scatter_add(g, &[1, 0, 1, 1], 2);
            let v = t.leaf(Matrix::from_vec(2, 1, vec![1.0, -1.0]));
            let y = t.matmul(s, v);
            t.mse_loss(y, &[0.2, -0.1])
        });
    }

    #[test]
    fn grad_sum_rows_concat() {
        let w = Matrix::from_vec(2, 2, vec![0.4, -0.1, 0.2, 0.9]);
        grad_check(w, |t, p| {
            let s = t.sum_rows(p); // [1,2]
            let c = t.concat_cols(s, s); // [1,4]
            let v = t.leaf(Matrix::from_vec(4, 1, vec![1.0, 0.5, -0.5, 2.0]));
            let y = t.matmul(c, v);
            t.mse_loss(y, &[0.3])
        });
    }

    #[test]
    fn grad_scale_rows_bias() {
        let w = Matrix::from_vec(1, 3, vec![0.1, -0.2, 0.3]);
        grad_check(w, |t, p| {
            let x = t.leaf(Matrix::from_vec(2, 3, vec![1.0; 6]));
            let h = t.add_row(x, p);
            let sc = t.scale_rows(h, &[0.5, 2.0]);
            let s = t.sum_rows(sc);
            let v = t.leaf(Matrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]));
            let y = t.matmul(s, v);
            t.mse_loss(y, &[1.0])
        });
    }

    #[test]
    fn grad_mape() {
        let w = Matrix::from_vec(1, 1, vec![0.9]);
        grad_check(w, |t, p| {
            let x = t.leaf(Matrix::from_vec(2, 1, vec![1.0, 2.0]));
            let y = t.matmul(x, p);
            t.mape_loss(y, &[1.2, 1.5])
        });
    }

    #[test]
    fn grad_add_n_and_scale() {
        let w = Matrix::from_vec(2, 2, vec![0.2, 0.3, -0.4, 0.6]);
        grad_check(w, |t, p| {
            let a = t.scale(p, 0.5);
            let b = t.relu(p);
            let s = t.add_n(vec![a, b, p]);
            let sr = t.sum_rows(s);
            let v = t.leaf(Matrix::from_vec(2, 1, vec![1.0, -2.0]));
            let y = t.matmul(sr, v);
            t.mse_loss(y, &[0.1])
        });
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut rng = Rng64::new(0);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let d = t.dropout(x, 0.5, false, &mut rng);
        assert_eq!(t.value(d).data, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dropout_train_masks_and_scales() {
        let mut rng = Rng64::new(7);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 1000, vec![1.0; 1000]));
        let d = t.dropout(x, 0.4, true, &mut rng);
        let kept = t.value(d).data.iter().filter(|&&v| v > 0.0).count();
        assert!((450..750).contains(&kept), "kept {kept}");
        for &v in &t.value(d).data {
            assert!(v == 0.0 || (v - 1.0 / 0.6).abs() < 1e-5);
        }
    }

    #[test]
    fn unused_params_get_none() {
        let mut t = Tape::new();
        let p0 = t.param(0, Matrix::scalar(1.0));
        let _p1 = t.param(1, Matrix::scalar(2.0));
        let loss = t.mse_loss(p0, &[0.0]);
        let grads = t.backward(loss);
        assert!(grads[0].is_some());
        assert!(grads[1].is_none());
    }

    #[test]
    fn shared_param_accumulates() {
        let mut t = Tape::new();
        let p = t.param(0, Matrix::scalar(3.0));
        let s = t.add(p, p); // y = 2p, dy/dp = 2
        let loss = t.mse_loss(s, &[0.0]); // L = (2p)^2, dL/dp = 8p = 24
        let g = t.backward(loss);
        assert!((g[0].as_ref().unwrap().data[0] - 24.0).abs() < 1e-4);
    }
}
