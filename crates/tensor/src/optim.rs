//! Adam optimizer and parameter storage.
//!
//! The paper trains with a learning rate of 5e-4 (§IV); [`Adam`] implements
//! the standard bias-corrected update. [`ParamStore`] owns named parameter
//! matrices and hands them to tapes by index.

use crate::matrix::Matrix;

/// A named collection of parameter matrices.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamStore {
    params: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers a parameter, returning its slot index.
    pub fn register(&mut self, name: &str, m: Matrix) -> usize {
        self.params.push(m);
        self.names.push(name.to_string());
        self.params.len() - 1
    }

    /// Parameter at `slot`.
    pub fn get(&self, slot: usize) -> &Matrix {
        &self.params[slot]
    }

    /// Mutable parameter at `slot`.
    pub fn get_mut(&mut self, slot: usize) -> &mut Matrix {
        &mut self.params[slot]
    }

    /// Name of `slot`.
    pub fn name(&self, slot: usize) -> &str {
        &self.names[slot]
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|m| m.len()).sum()
    }

    /// Immutable view of all parameters.
    pub fn all(&self) -> &[Matrix] {
        &self.params
    }
}

/// Sample-weighted gradient accumulator matching a [`ParamStore`] layout.
///
/// Each [`GradAccum::add`] contributes a *shard mean* gradient together
/// with the number of samples it averages over; internally the
/// accumulator keeps the sample-weighted sum `Σ nᵢ·gᵢ` and the total
/// sample count `Σ nᵢ`, so [`GradAccum::mean`] is the exact batch mean
/// regardless of how unevenly the batch was sharded. (An earlier
/// revision divided by the number of `add`/`merge` *calls*, which turned
/// uneven shards — e.g. a 5-graph tail split 3+2 — into an unweighted
/// mean of shard means.)
///
/// Buffers are reusable across steps: [`GradAccum::reset`] zeroes the
/// accumulated sums in place without freeing them, and
/// [`GradAccum::mean_in_place`] produces the mean without consuming the
/// accumulator.
#[derive(Debug, Clone, Default)]
pub struct GradAccum {
    grads: Vec<Option<Matrix>>,
    samples: usize,
}

impl GradAccum {
    /// Accumulator for `n` parameter slots.
    pub fn new(n: usize) -> Self {
        GradAccum {
            grads: vec![None; n],
            samples: 0,
        }
    }

    /// Adds a shard's mean gradient (from [`crate::Tape::backward`] over a
    /// `samples`-sample batch), weighted by its sample count.
    pub fn add(&mut self, shard_mean: Vec<Option<Matrix>>, samples: usize) {
        if self.grads.len() < shard_mean.len() {
            self.grads.resize(shard_mean.len(), None);
        }
        let w = samples as f32;
        for (slot, g) in shard_mean.into_iter().enumerate() {
            if let Some(mut g) = g {
                match &mut self.grads[slot] {
                    Some(acc) => acc.add_scaled(&g, w),
                    s => {
                        g.scale_assign(w);
                        *s = Some(g);
                    }
                }
            }
        }
        self.samples += samples;
    }

    /// Merges another accumulator's weighted sums into `self`, leaving
    /// `other` untouched (reset it with [`GradAccum::reset`] for reuse).
    /// Merge order is caller-controlled: merging shards in ascending shard
    /// index keeps parallel reduction bit-identical to sequential.
    pub fn merge_from(&mut self, other: &GradAccum) {
        if self.grads.len() < other.grads.len() {
            self.grads.resize(other.grads.len(), None);
        }
        for (slot, g) in other.grads.iter().enumerate() {
            if let Some(g) = g {
                match &mut self.grads[slot] {
                    Some(acc) => acc.add_assign(g),
                    s => *s = Some(g.clone()),
                }
            }
        }
        self.samples += other.samples;
    }

    /// Merges another accumulator (consuming form of
    /// [`GradAccum::merge_from`]).
    pub fn merge(&mut self, other: GradAccum) {
        self.merge_from(&other);
    }

    /// Zeroes the accumulated sums in place, keeping the buffers for the
    /// next accumulation round.
    pub fn reset(&mut self) {
        for g in self.grads.iter_mut().flatten() {
            g.fill_zero();
        }
        self.samples = 0;
    }

    /// Sample-weighted mean gradients (`Σ nᵢ·gᵢ / Σ nᵢ`); `None` slots
    /// stay `None`.
    pub fn mean(mut self) -> Vec<Option<Matrix>> {
        self.scale_to_mean();
        self.grads
    }

    /// Scales the weighted sums to the mean in place and returns a view.
    /// The accumulator must be [`GradAccum::reset`] before the next round.
    pub fn mean_in_place(&mut self) -> &[Option<Matrix>] {
        self.scale_to_mean();
        &self.grads
    }

    fn scale_to_mean(&mut self) {
        let k = 1.0 / self.samples.max(1) as f32;
        for g in self.grads.iter_mut().flatten() {
            g.scale_assign(k);
        }
    }

    /// Total number of samples accumulated.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Total number of samples accumulated (alias kept for older call
    /// sites).
    pub fn count(&self) -> usize {
        self.samples
    }
}

/// Adam optimizer state.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: i32,
}

impl Adam {
    /// Adam with the paper's learning rate (5e-4) unless overridden.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Applies one update step with mean gradients `grads` (slots align with
    /// `store`). `None` slots are skipped.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[Option<Matrix>]) {
        if self.m.len() < store.len() {
            for i in self.m.len()..store.len() {
                let shape = store.get(i);
                self.m.push(Matrix::zeros(shape.rows, shape.cols));
                self.v.push(Matrix::zeros(shape.rows, shape.cols));
            }
        }
        self.t += 1;
        let b1c = 1.0 - self.beta1.powi(self.t);
        let b2c = 1.0 - self.beta2.powi(self.t);
        for (slot, g) in grads.iter().enumerate() {
            let Some(g) = g else { continue };
            let p = store.get_mut(slot);
            let m = &mut self.m[slot];
            let v = &mut self.v[slot];
            for k in 0..p.len() {
                let gk = g.data[k];
                m.data[k] = self.beta1 * m.data[k] + (1.0 - self.beta1) * gk;
                v.data[k] = self.beta2 * v.data[k] + (1.0 - self.beta2) * gk * gk;
                let mhat = m.data[k] / b1c;
                let vhat = v.data[k] / b2c;
                p.data[k] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    #[test]
    fn store_roundtrip() {
        let mut s = ParamStore::new();
        let a = s.register("w", Matrix::scalar(1.0));
        let b = s.register("b", Matrix::zeros(1, 4));
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(a), "w");
        assert_eq!(s.get(b).cols, 4);
        assert_eq!(s.num_scalars(), 5);
    }

    #[test]
    fn accum_means_gradients() {
        let mut acc = GradAccum::new(1);
        acc.add(vec![Some(Matrix::scalar(2.0))], 1);
        acc.add(vec![Some(Matrix::scalar(4.0))], 1);
        assert_eq!(acc.samples(), 2);
        let mean = acc.mean();
        assert!((mean[0].as_ref().unwrap().data[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn accum_weights_uneven_shards() {
        // Shard of 3 samples with mean 2.0 plus shard of 1 sample with
        // mean 6.0: the batch mean is (3·2 + 1·6)/4 = 3, not the
        // mean-of-means 4.
        let mut acc = GradAccum::new(1);
        acc.add(vec![Some(Matrix::scalar(2.0))], 3);
        acc.add(vec![Some(Matrix::scalar(6.0))], 1);
        assert_eq!(acc.samples(), 4);
        let mean = acc.mean();
        assert_eq!(mean[0].as_ref().unwrap().data[0], 3.0);
    }

    #[test]
    fn accum_merge_combines_counts() {
        let mut a = GradAccum::new(1);
        a.add(vec![Some(Matrix::scalar(1.0))], 1);
        let mut b = GradAccum::new(1);
        b.add(vec![Some(Matrix::scalar(3.0))], 1);
        a.merge(b);
        assert_eq!(a.samples(), 2);
        let mean = a.mean();
        assert!((mean[0].as_ref().unwrap().data[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn accum_merge_is_sample_weighted() {
        // 2-sample shard at mean 1.0 merged with 6-sample shard at mean
        // 5.0: batch mean is (2·1 + 6·5)/8 = 4.
        let mut a = GradAccum::new(1);
        a.add(vec![Some(Matrix::scalar(1.0))], 2);
        let mut b = GradAccum::new(1);
        b.add(vec![Some(Matrix::scalar(5.0))], 6);
        a.merge_from(&b);
        assert_eq!(a.samples(), 8);
        assert_eq!(a.mean()[0].as_ref().unwrap().data[0], 4.0);
    }

    #[test]
    fn accum_reset_reuses_buffers() {
        let mut acc = GradAccum::new(1);
        acc.add(vec![Some(Matrix::scalar(2.0))], 2);
        let first = acc.mean_in_place()[0].as_ref().unwrap().data[0];
        assert_eq!(first, 2.0);
        acc.reset();
        assert_eq!(acc.samples(), 0);
        acc.add(vec![Some(Matrix::scalar(7.0))], 1);
        assert_eq!(acc.mean_in_place()[0].as_ref().unwrap().data[0], 7.0);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // minimize (w - 3)^2 with Adam
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::scalar(0.0));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let mut tape = Tape::new();
            let p = tape.param(w, store.get(w).clone());
            let loss = tape.mse_loss(p, &[3.0]);
            let grads = tape.backward(loss);
            opt.step(&mut store, &grads);
        }
        let val = store.get(w).data[0];
        assert!((val - 3.0).abs() < 0.05, "converged to {val}");
    }

    #[test]
    fn adam_skips_none_slots() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::scalar(5.0));
        let mut opt = Adam::new(0.1);
        opt.step(&mut store, &[None]);
        assert_eq!(store.get(w).data[0], 5.0);
    }

    #[test]
    fn linear_regression_converges() {
        // y = 2x + 1 learned from 8 points
        let xs: Vec<f32> = (0..8).map(|i| i as f32 / 4.0).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::scalar(0.0));
        let b = store.register("b", Matrix::scalar(0.0));
        let mut opt = Adam::new(0.05);
        for _ in 0..2000 {
            let mut tape = Tape::new();
            let x = tape.leaf(Matrix::from_vec(8, 1, xs.clone()));
            let wv = tape.param(w, store.get(w).clone());
            let bv = tape.param(b, store.get(b).clone());
            let xw = tape.matmul(x, wv);
            let pred = tape.add_row(xw, bv);
            let loss = tape.mse_loss(pred, &ys);
            let grads = tape.backward(loss);
            opt.step(&mut store, &grads);
        }
        assert!((store.get(w).data[0] - 2.0).abs() < 0.1);
        assert!((store.get(b).data[0] - 1.0).abs() < 0.1);
    }
}
