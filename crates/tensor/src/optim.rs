//! Adam optimizer and parameter storage.
//!
//! The paper trains with a learning rate of 5e-4 (§IV); [`Adam`] implements
//! the standard bias-corrected update. [`ParamStore`] owns named parameter
//! matrices and hands them to tapes by index.

use crate::matrix::Matrix;

/// A named collection of parameter matrices.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamStore {
    params: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers a parameter, returning its slot index.
    pub fn register(&mut self, name: &str, m: Matrix) -> usize {
        self.params.push(m);
        self.names.push(name.to_string());
        self.params.len() - 1
    }

    /// Parameter at `slot`.
    pub fn get(&self, slot: usize) -> &Matrix {
        &self.params[slot]
    }

    /// Mutable parameter at `slot`.
    pub fn get_mut(&mut self, slot: usize) -> &mut Matrix {
        &mut self.params[slot]
    }

    /// Name of `slot`.
    pub fn name(&self, slot: usize) -> &str {
        &self.names[slot]
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|m| m.len()).sum()
    }

    /// Immutable view of all parameters.
    pub fn all(&self) -> &[Matrix] {
        &self.params
    }
}

/// Gradient accumulator matching a [`ParamStore`] layout.
#[derive(Debug, Clone, Default)]
pub struct GradAccum {
    grads: Vec<Option<Matrix>>,
    count: usize,
}

impl GradAccum {
    /// Accumulator for `n` parameter slots.
    pub fn new(n: usize) -> Self {
        GradAccum {
            grads: vec![None; n],
            count: 0,
        }
    }

    /// Adds one sample's gradients (from [`crate::Tape::backward`]).
    pub fn add(&mut self, sample: Vec<Option<Matrix>>) {
        if self.grads.len() < sample.len() {
            self.grads.resize(sample.len(), None);
        }
        for (slot, g) in sample.into_iter().enumerate() {
            if let Some(g) = g {
                match &mut self.grads[slot] {
                    Some(acc) => acc.add_assign(&g),
                    s => *s = Some(g),
                }
            }
        }
        self.count += 1;
    }

    /// Merges another accumulator (for data-parallel workers).
    pub fn merge(&mut self, other: GradAccum) {
        if self.grads.len() < other.grads.len() {
            self.grads.resize(other.grads.len(), None);
        }
        for (slot, g) in other.grads.into_iter().enumerate() {
            if let Some(g) = g {
                match &mut self.grads[slot] {
                    Some(acc) => acc.add_assign(&g),
                    s => *s = Some(g),
                }
            }
        }
        self.count += other.count;
    }

    /// Mean gradients (scaled by `1/count`); `None` slots stay `None`.
    pub fn mean(mut self) -> Vec<Option<Matrix>> {
        let k = 1.0 / self.count.max(1) as f32;
        for g in self.grads.iter_mut().flatten() {
            g.scale_assign(k);
        }
        self.grads
    }

    /// Number of samples accumulated.
    pub fn count(&self) -> usize {
        self.count
    }
}

/// Adam optimizer state.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: i32,
}

impl Adam {
    /// Adam with the paper's learning rate (5e-4) unless overridden.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Applies one update step with mean gradients `grads` (slots align with
    /// `store`). `None` slots are skipped.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[Option<Matrix>]) {
        if self.m.len() < store.len() {
            for i in self.m.len()..store.len() {
                let shape = store.get(i);
                self.m.push(Matrix::zeros(shape.rows, shape.cols));
                self.v.push(Matrix::zeros(shape.rows, shape.cols));
            }
        }
        self.t += 1;
        let b1c = 1.0 - self.beta1.powi(self.t);
        let b2c = 1.0 - self.beta2.powi(self.t);
        for (slot, g) in grads.iter().enumerate() {
            let Some(g) = g else { continue };
            let p = store.get_mut(slot);
            let m = &mut self.m[slot];
            let v = &mut self.v[slot];
            for k in 0..p.len() {
                let gk = g.data[k];
                m.data[k] = self.beta1 * m.data[k] + (1.0 - self.beta1) * gk;
                v.data[k] = self.beta2 * v.data[k] + (1.0 - self.beta2) * gk * gk;
                let mhat = m.data[k] / b1c;
                let vhat = v.data[k] / b2c;
                p.data[k] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    #[test]
    fn store_roundtrip() {
        let mut s = ParamStore::new();
        let a = s.register("w", Matrix::scalar(1.0));
        let b = s.register("b", Matrix::zeros(1, 4));
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(a), "w");
        assert_eq!(s.get(b).cols, 4);
        assert_eq!(s.num_scalars(), 5);
    }

    #[test]
    fn accum_means_gradients() {
        let mut acc = GradAccum::new(1);
        acc.add(vec![Some(Matrix::scalar(2.0))]);
        acc.add(vec![Some(Matrix::scalar(4.0))]);
        assert_eq!(acc.count(), 2);
        let mean = acc.mean();
        assert!((mean[0].as_ref().unwrap().data[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn accum_merge_combines_counts() {
        let mut a = GradAccum::new(1);
        a.add(vec![Some(Matrix::scalar(1.0))]);
        let mut b = GradAccum::new(1);
        b.add(vec![Some(Matrix::scalar(3.0))]);
        a.merge(b);
        assert_eq!(a.count(), 2);
        let mean = a.mean();
        assert!((mean[0].as_ref().unwrap().data[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // minimize (w - 3)^2 with Adam
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::scalar(0.0));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let mut tape = Tape::new();
            let p = tape.param(w, store.get(w).clone());
            let loss = tape.mse_loss(p, &[3.0]);
            let grads = tape.backward(loss);
            opt.step(&mut store, &grads);
        }
        let val = store.get(w).data[0];
        assert!((val - 3.0).abs() < 0.05, "converged to {val}");
    }

    #[test]
    fn adam_skips_none_slots() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::scalar(5.0));
        let mut opt = Adam::new(0.1);
        opt.step(&mut store, &[None]);
        assert_eq!(store.get(w).data[0], 5.0);
    }

    #[test]
    fn linear_regression_converges() {
        // y = 2x + 1 learned from 8 points
        let xs: Vec<f32> = (0..8).map(|i| i as f32 / 4.0).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::scalar(0.0));
        let b = store.register("b", Matrix::scalar(0.0));
        let mut opt = Adam::new(0.05);
        for _ in 0..2000 {
            let mut tape = Tape::new();
            let x = tape.leaf(Matrix::from_vec(8, 1, xs.clone()));
            let wv = tape.param(w, store.get(w).clone());
            let bv = tape.param(b, store.get(b).clone());
            let xw = tape.matmul(x, wv);
            let pred = tape.add_row(xw, bv);
            let loss = tape.mse_loss(pred, &ys);
            let grads = tape.backward(loss);
            opt.step(&mut store, &grads);
        }
        assert!((store.get(w).data[0] - 2.0).abs() < 0.1);
        assert!((store.get(b).data[0] - 1.0).abs() < 0.1);
    }
}
