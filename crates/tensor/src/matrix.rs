//! Dense row-major `f32` matrices with the handful of kernels the GNN
//! models need. Matmul uses the i-k-j loop order with row slicing, which on
//! the small hidden dimensions involved (16–128) runs within a small factor
//! of BLAS without any dependency.

use std::fmt;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Single-element matrix.
    pub fn scalar(v: f32) -> Self {
        Matrix::from_vec(1, 1, vec![v])
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &av) in arow.iter().enumerate() {
                if av != 0.0 {
                    let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
        out
    }

    /// `self · otherᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ · other`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = other.row(k);
            for (i, &av) in arow.iter().enumerate() {
                if av != 0.0 {
                    let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_assign shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self *= k`.
    pub fn scale_assign(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row: Vec<String> = self
                .row(r)
                .iter()
                .take(8)
                .map(|v| format!("{v:+.3}"))
                .collect();
            writeln!(f, "  {}", row.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_basic() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|v| v as f32).collect());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, (0..6).map(|v| v as f32).collect());
        let b = Matrix::from_vec(3, 4, (0..12).map(|v| v as f32).collect());
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![0.5, 0.5, 0.5]);
        a.add_assign(&b);
        a.scale_assign(2.0);
        assert_eq!(a.data, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn norm_and_finite() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        assert!(a.is_finite());
        let b = Matrix::from_vec(1, 1, vec![f32::NAN]);
        assert!(!b.is_finite());
    }
}
