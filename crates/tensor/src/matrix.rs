//! Dense row-major `f32` matrices with cache-blocked, register-tiled
//! matmul kernels.
//!
//! # Blocked layout
//!
//! All three matmul variants (`A·B`, `A·Bᵀ`, `Aᵀ·B`) walk the output in
//! fixed-size register tiles:
//!
//! * [`Matrix::matmul`] and [`Matrix::matmul_tn`] produce `MR × NR`
//!   (4 × 8) output tiles. The `NR`-wide accumulator rows are fixed-size
//!   arrays with a constant trip count, which the compiler autovectorizes
//!   to SIMD lanes on every target (8 × f32 = two SSE or one AVX
//!   register per row); `MR` output rows share each loaded `B` panel row,
//!   cutting `B` bandwidth 4×. Edge tiles (output fringes narrower than a
//!   full tile) fall back to a scalar loop *with the same k-ascending
//!   summation order*, so tile interior and fringe follow one contract.
//! * [`Matrix::matmul_nt`] is a row-dot kernel: each output element is a
//!   dot product of two contiguous rows, accumulated in `NR` independent
//!   lanes that are folded in fixed lane order, then the `< NR` remainder
//!   is added last.
//!
//! # Determinism and IEEE contract
//!
//! Every kernel sums `k` in ascending index order with a fixed lane
//! layout, so results are bit-identical across runs, platforms with the
//! same float semantics, and call sites — nothing depends on allocation
//! state or thread count.
//!
//! `matmul` and `matmul_tn` additionally exploit left-operand sparsity
//! (one-hot node features, post-ReLU activations) with a **guarded**
//! zero-skip: the right operand is scanned once per call, and only when
//! it is entirely finite are `a == 0.0` contributions skipped. Under that
//! guard the skip is *bitwise identical* to the dense k-ascending sum —
//! each skipped product is `±0.0` (zero times a finite value), an
//! accumulator initialized to `+0.0` can never become `-0.0` through
//! addition (IEEE round-to-nearest yields `-0.0` only from `-0.0 + -0.0`),
//! and `x + ±0.0 == x` bitwise for every `x ≠ -0.0`. When the right
//! operand contains NaN/Inf the dense path runs, so non-finite values
//! propagate exactly as written (`0 · NaN = NaN`, `0 · ∞ = NaN`). Earlier
//! revisions skipped zeros *unconditionally*, which silently dropped
//! NaN/Inf from the right operand; the tape boundary now also backstops
//! finiteness with debug assertions (see `pg_tensor::tape`).
//!
//! The `*_into` variants write into a caller-provided output matrix so
//! hot loops (the autodiff tape's arena) can recycle buffers instead of
//! reallocating every step.

use std::fmt;

/// Output-tile height shared by the blocked kernels.
const MR: usize = 4;
/// Output-tile width (f32 lanes) shared by the blocked kernels.
const NR: usize = 8;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Single-element matrix.
    pub fn scalar(v: f32) -> Self {
        Matrix::from_vec(1, 1, vec![v])
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes `self` to `rows × cols`, reusing the existing buffer.
    /// Contents are unspecified afterwards (callers overwrite).
    fn reshape_for_output(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_into(other, &mut out);
        out
    }

    /// `self · other`, written into `out` (reshaped and overwritten).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let (m, kk, n) = (self.rows, self.cols, other.cols);
        out.reshape_for_output(m, n);
        let a = &self.data;
        let b = &other.data;
        // Guarded zero-skip: exact (bitwise) only when b is all-finite;
        // see the module docs for the proof sketch.
        let skip = other.is_finite();
        let mut i = 0;
        while i < m {
            let ir = (m - i).min(MR);
            let mut j = 0;
            while j < n {
                let jr = (n - j).min(NR);
                if ir == MR && jr == NR {
                    // Register tile: MR×NR accumulators, k ascending.
                    let mut acc = [[0.0f32; NR]; MR];
                    for k in 0..kk {
                        let brow = &b[k * n + j..k * n + j + NR];
                        for (r, arow) in acc.iter_mut().enumerate() {
                            let av = a[(i + r) * kk + k];
                            if skip && av == 0.0 {
                                continue;
                            }
                            for (o, &bv) in arow.iter_mut().zip(brow) {
                                *o += av * bv;
                            }
                        }
                    }
                    for (r, arow) in acc.iter().enumerate() {
                        out.data[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(arow);
                    }
                } else {
                    // Fringe: scalar loop, identical k-ascending order.
                    for r in 0..ir {
                        for c in 0..jr {
                            let mut s = 0.0f32;
                            for k in 0..kk {
                                let av = a[(i + r) * kk + k];
                                if skip && av == 0.0 {
                                    continue;
                                }
                                s += av * b[k * n + j + c];
                            }
                            out.data[(i + r) * n + j + c] = s;
                        }
                    }
                }
                j += jr;
            }
            i += ir;
        }
    }

    /// `self · otherᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// `self · otherᵀ`, written into `out` (reshaped and overwritten).
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_nt dimension mismatch");
        let (m, n) = (self.rows, other.rows);
        out.reshape_for_output(m, n);
        for i in 0..m {
            let arow = self.row(i);
            let orow = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = dot(arow, other.row(j));
            }
        }
    }

    /// `selfᵀ · other`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// `selfᵀ · other`, written into `out` (reshaped and overwritten).
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "matmul_tn dimension mismatch");
        let (kk, m, n) = (self.rows, self.cols, other.cols);
        out.reshape_for_output(m, n);
        let a = &self.data;
        let b = &other.data;
        // Guarded zero-skip (see module docs); in the backward pass `self`
        // is a post-ReLU activation, so this prunes roughly half the rows.
        let skip = other.is_finite();
        // out[i][j] = Σ_k a[k][i] · b[k][j]; the k loop is innermost so
        // every output element sums k in ascending order, matching the
        // other kernels' contract. An MR×NR register tile amortizes the
        // strided a-column loads across NR output columns.
        let mut i = 0;
        while i < m {
            let ir = (m - i).min(MR);
            let mut j = 0;
            while j < n {
                let jr = (n - j).min(NR);
                if ir == MR && jr == NR {
                    let mut acc = [[0.0f32; NR]; MR];
                    for k in 0..kk {
                        let brow = &b[k * n + j..k * n + j + NR];
                        for (r, arow) in acc.iter_mut().enumerate() {
                            let av = a[k * m + i + r];
                            if skip && av == 0.0 {
                                continue;
                            }
                            for (o, &bv) in arow.iter_mut().zip(brow) {
                                *o += av * bv;
                            }
                        }
                    }
                    for (r, arow) in acc.iter().enumerate() {
                        out.data[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(arow);
                    }
                } else {
                    for r in 0..ir {
                        for c in 0..jr {
                            let mut s = 0.0f32;
                            for k in 0..kk {
                                let av = a[k * m + i + r];
                                if skip && av == 0.0 {
                                    continue;
                                }
                                s += av * b[k * n + j + c];
                            }
                            out.data[(i + r) * n + j + c] = s;
                        }
                    }
                }
                j += jr;
            }
            i += ir;
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_assign shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += k · other` (axpy; the gradient-accumulation primitive).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, k: f32) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_scaled shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// `self *= k`.
    pub fn scale_assign(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Dot product of two equal-length slices: `NR` independent lanes over the
/// `chunks_exact` body, folded in fixed lane order, remainder last. The
/// fixed shape keeps the reduction order deterministic while letting the
/// compiler lower the lane loop to SIMD.
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; NR];
    let ac = a.chunks_exact(NR);
    let bc = b.chunks_exact(NR);
    let (ra, rb) = (ac.remainder(), bc.remainder());
    for (ca, cb) in ac.zip(bc) {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane += ca[l] * cb[l];
        }
    }
    let mut s = 0.0f32;
    for &lane in &lanes {
        s += lane;
    }
    for (&x, &y) in ra.iter().zip(rb) {
        s += x * y;
    }
    s
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row: Vec<String> = self
                .row(r)
                .iter()
                .take(8)
                .map(|v| format!("{v:+.3}"))
                .collect();
            writeln!(f, "  {}", row.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive triple-loop reference (k ascending, matching the kernels'
    /// documented summation order).
    fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            for j in 0..b.cols {
                let mut s = 0.0f32;
                for k in 0..a.cols {
                    s += a.at(i, k) * b.at(k, j);
                }
                out.data[i * b.cols + j] = s;
            }
        }
        out
    }

    #[test]
    fn matmul_basic() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn tiled_matmul_matches_reference_across_tile_boundaries() {
        // Shapes straddling the MR×NR tile: interiors, fringes, both.
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 4, 8),
            (5, 3, 9),
            (8, 16, 8),
            (13, 7, 17),
            (3, 40, 11),
        ] {
            let a = Matrix::from_vec(m, k, (0..m * k).map(|v| (v as f32) * 0.37 - 1.0).collect());
            let b = Matrix::from_vec(k, n, (0..k * n).map(|v| (v as f32) * -0.11 + 2.0).collect());
            let got = a.matmul(&b);
            let want = reference_matmul(&a, &b);
            assert_eq!(got, want, "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|v| v as f32).collect());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, (0..6).map(|v| v as f32).collect());
        let b = Matrix::from_vec(3, 4, (0..12).map(|v| v as f32).collect());
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn into_variants_recycle_output_buffers() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        // Reuse one output across differently-shaped products.
        let mut out = Matrix::zeros(7, 7);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data, vec![58.0, 64.0, 139.0, 154.0]);
        a.matmul_nt_into(&a, &mut out);
        assert_eq!((out.rows, out.cols), (2, 2));
        assert_eq!(out, a.matmul(&a.transpose()));
        a.matmul_tn_into(&a, &mut out);
        assert_eq!((out.rows, out.cols), (3, 3));
        assert_eq!(out, a.transpose().matmul(&a));
    }

    #[test]
    fn empty_and_vector_edges() {
        // 0-row / 0-col operands must produce empty outputs, not panic.
        let e = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        assert_eq!(e.matmul(&b), Matrix::zeros(0, 4));
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]); // 1×N
        let c = Matrix::from_vec(3, 1, vec![4.0, 5.0, 6.0]); // N×1
        assert_eq!(a.matmul(&c).data, vec![32.0]);
        assert_eq!(c.matmul(&a).rows, 3);
        assert_eq!(c.matmul(&a), reference_matmul(&c, &a));
    }

    #[test]
    fn zero_skip_is_bitwise_identical_to_dense_sum() {
        // Mostly-zero left operand (one-hot-ish rows plus sign-varied
        // values, including -0.0) against a finite right operand: the
        // guarded fast path must reproduce the dense k-ascending sum
        // bit-for-bit, including on fringe tiles.
        let (m, k, n) = (9, 11, 13);
        let a = Matrix::from_vec(
            m,
            k,
            (0..m * k)
                .map(|v| match v % 7 {
                    0 => (v as f32) * 0.31 - 3.0,
                    3 => -0.0,
                    _ => 0.0,
                })
                .collect(),
        );
        let b = Matrix::from_vec(k, n, (0..k * n).map(|v| (v as f32) * -0.23 + 1.5).collect());
        let got = a.matmul(&b);
        let want = reference_matmul(&a, &b);
        for (g, w) in got.data.iter().zip(&want.data) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
        let at = a.transpose();
        let got_tn = at.matmul_tn(&b);
        for (g, w) in got_tn.data.iter().zip(&want.data) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn nan_propagates_through_zero_operands() {
        // The dense kernels must honor IEEE: 0 · NaN = NaN (the old
        // sparsity skip silently produced 0 here).
        let a = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        let b = Matrix::from_vec(2, 1, vec![f32::NAN, 1.0]);
        assert!(a.matmul(&b).data[0].is_nan());
        let at = Matrix::from_vec(2, 1, vec![0.0, 0.0]);
        assert!(at.matmul_tn(&b).data[0].is_nan());
        assert!(a
            .matmul_nt(&Matrix::from_vec(1, 2, vec![f32::NAN, 0.0]))
            .data[0]
            .is_nan());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![0.5, 0.5, 0.5]);
        a.add_assign(&b);
        a.scale_assign(2.0);
        assert_eq!(a.data, vec![3.0, 5.0, 7.0]);
        a.add_scaled(&b, 4.0);
        assert_eq!(a.data, vec![5.0, 7.0, 9.0]);
        a.fill_zero();
        assert_eq!(a.data, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn norm_and_finite() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        assert!(a.is_finite());
        let b = Matrix::from_vec(1, 1, vec![f32::NAN]);
        assert!(!b.is_finite());
    }
}
