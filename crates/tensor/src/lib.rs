//! Minimal tensor + reverse-mode autodiff substrate.
//!
//! The paper builds HEC-GNN and the baseline GNNs on PyTorch Geometric;
//! with no mature Rust equivalent (reproduction band: heavy porting
//! effort), this crate provides the exact numerical machinery those models
//! need and nothing more:
//!
//! * [`Matrix`] — dense row-major `f32` matrices with register-tiled,
//!   autovectorizable matmul kernels (plain, `·ᵀ`, `ᵀ·`) that sum in a
//!   fixed k-ascending order — results are bit-identical across runs,
//!   call sites and thread counts (contract in the [`matrix`] module
//!   docs);
//! * [`Tape`] — reverse-mode autodiff over matmul / bias / ReLU / dropout /
//!   concat / sum-pool / **gather & scatter-add rows** (the message-passing
//!   primitives) / row scaling, plus fused `linear_bias_relu` /
//!   `add_row_relu` nodes for the convolution hot path, with MAPE and MSE
//!   losses. [`Tape::reset`] recycles node, value and gradient buffers
//!   into arenas, so steady-state training and serving loops allocate
//!   nothing per step;
//! * [`Adam`], [`ParamStore`], [`GradAccum`] — optimization and
//!   sample-weighted data-parallel gradient accumulation (shard merges
//!   weight each shard by its sample count, so uneven shards average
//!   correctly);
//! * [`init`] — Glorot initialization.
//!
//! Every op's gradient is verified against central finite differences in
//! the test suite, and each fused op against its unfused chain bit for
//! bit.
//!
//! # Examples
//!
//! ```
//! use pg_tensor::{init, Adam, Matrix, ParamStore, Tape};
//! use pg_util::Rng64;
//!
//! let mut rng = Rng64::new(0);
//! let mut store = ParamStore::new();
//! let w = store.register("w", init::glorot(2, 1, &mut rng));
//! let mut opt = Adam::new(0.05);
//! for _ in 0..200 {
//!     let mut tape = Tape::new();
//!     let x = tape.leaf(Matrix::from_vec(4, 2, vec![1., 0., 0., 1., 1., 1., 0.5, 0.5]));
//!     let wv = tape.param(w, store.get(w).clone());
//!     let y = tape.matmul(x, wv);
//!     let loss = tape.mse_loss(y, &[1.0, 2.0, 3.0, 1.5]);
//!     let grads = tape.backward(loss);
//!     opt.step(&mut store, &grads);
//! }
//! assert!(store.get(w).is_finite());
//! ```

pub mod init;
pub mod matrix;
pub mod optim;
pub mod tape;

pub use matrix::Matrix;
pub use optim::{Adam, GradAccum, ParamStore};
pub use tape::{Tape, Var};
