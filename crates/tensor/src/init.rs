//! Weight initialization.

use crate::matrix::Matrix;
use pg_util::Rng64;

/// Glorot/Xavier uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Examples
///
/// ```
/// use pg_tensor::init::glorot;
/// use pg_util::Rng64;
/// let w = glorot(4, 8, &mut Rng64::new(0));
/// assert_eq!((w.rows, w.cols), (4, 8));
/// ```
pub fn glorot(rows: usize, cols: usize, rng: &mut Rng64) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| rng.uniform(-a, a) as f32)
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Zero-initialized matrix (biases).
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

/// Constant-filled matrix.
pub fn constant(rows: usize, cols: usize, v: f32) -> Matrix {
    Matrix::from_vec(rows, cols, vec![v; rows * cols])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_bounds_and_determinism() {
        let mut rng = Rng64::new(5);
        let w = glorot(10, 20, &mut rng);
        let a = (6.0f64 / 30.0).sqrt() as f32;
        assert!(w.data.iter().all(|v| v.abs() <= a));
        let w2 = glorot(10, 20, &mut Rng64::new(5));
        assert_eq!(w, w2);
    }

    #[test]
    fn glorot_nonzero_spread() {
        let w = glorot(16, 16, &mut Rng64::new(1));
        let distinct = w.data.iter().filter(|v| v.abs() > 1e-6).count();
        assert!(distinct > 200);
    }

    #[test]
    fn constant_fill() {
        let c = constant(2, 2, 0.5);
        assert!(c.data.iter().all(|&v| v == 0.5));
        assert!(zeros(2, 2).data.iter().all(|&v| v == 0.0));
    }
}
