//! Switching activity (Eq. 2) and activation rate (Eq. 3).
//!
//! Both metrics operate on a cycle-stamped sequence of bit vectors: the
//! switching activity sums the Hamming distance between consecutive
//! *changed* values normalized by design latency, and the activation rate
//! counts the changes themselves. They are computed separately for the
//! source (producer) and sink (consumer) direction of every graph edge,
//! giving the four-dimensional edge features of §III-A.

/// Eq. 2: `SA = Σ HD(v(i), v(i-1)) / L` over the cycles where the value
/// changes.
///
/// # Examples
///
/// ```
/// // 0b00 -> 0b11 -> 0b11 : one change of Hamming distance 2
/// let events = [(0u64, 0u32), (1, 3), (2, 3)];
/// let sa = pg_activity::switching_activity(&events, 10);
/// assert!((sa - 0.2).abs() < 1e-12);
/// ```
pub fn switching_activity(events: &[(u64, u32)], latency: u64) -> f64 {
    if latency == 0 || events.len() < 2 {
        return 0.0;
    }
    let mut total = 0u64;
    for w in events.windows(2) {
        total += (w[0].1 ^ w[1].1).count_ones() as u64;
    }
    total as f64 / latency as f64
}

/// Eq. 3: `AR = N_changes / L`, the fraction of cycles in which the value
/// toggles at all.
///
/// # Examples
///
/// ```
/// let events = [(0u64, 1u32), (1, 1), (2, 2), (3, 2)];
/// let ar = pg_activity::activation_rate(&events, 4);
/// assert!((ar - 0.25).abs() < 1e-12);
/// ```
pub fn activation_rate(events: &[(u64, u32)], latency: u64) -> f64 {
    if latency == 0 || events.len() < 2 {
        return 0.0;
    }
    let changes = events.windows(2).filter(|w| w[0].1 != w[1].1).count();
    changes as f64 / latency as f64
}

/// [`sa_ar`] over a bare value sequence (cycle stamps don't affect Eq. 2/3
/// — only the value order does). The trace interpreter folds raw column
/// buffers with this before they are encoded; bit-identical to folding
/// the encoded stream.
pub fn sa_ar_values(vals: &[u32], latency: u64) -> (f64, f64) {
    if latency == 0 || vals.len() < 2 {
        return (0.0, 0.0);
    }
    let mut hamming = 0u64;
    let mut changes = 0u64;
    for w in vals.windows(2) {
        let d = (w[0] ^ w[1]).count_ones();
        hamming += d as u64;
        changes += (d != 0) as u64;
    }
    (
        hamming as f64 / latency as f64,
        changes as f64 / latency as f64,
    )
}

/// [`switching_activity`] and [`activation_rate`] of one event sequence in
/// a single pass (graph finalization evaluates both on every edge
/// direction; walking the events once halves that cost). Bit-identical to
/// calling the two functions separately.
pub fn sa_ar(events: &[(u64, u32)], latency: u64) -> (f64, f64) {
    if latency == 0 || events.len() < 2 {
        return (0.0, 0.0);
    }
    let mut hamming = 0u64;
    let mut changes = 0u64;
    for w in events.windows(2) {
        let d = (w[0].1 ^ w[1].1).count_ones();
        hamming += d as u64;
        changes += (d != 0) as u64;
    }
    (
        hamming as f64 / latency as f64,
        changes as f64 / latency as f64,
    )
}

/// Per-node activity statistics used as numeric node features: "overall
/// activation rate, input, output and overall switching activities"
/// (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeActivity {
    /// Activation rate of the node's output.
    pub ar: f64,
    /// Mean switching activity over input operands.
    pub sa_in: f64,
    /// Switching activity of the output.
    pub sa_out: f64,
    /// Combined (input + output) switching activity.
    pub sa_overall: f64,
}

impl NodeActivity {
    /// Merges statistics of fused nodes (datapath merging averages the
    /// per-instance activities weighted equally; the merged node represents
    /// one hardware entity exercised by all instances).
    pub fn merge(stats: &[NodeActivity]) -> NodeActivity {
        if stats.is_empty() {
            return NodeActivity::default();
        }
        let n = stats.len() as f64;
        NodeActivity {
            ar: stats.iter().map(|s| s.ar).sum::<f64>() / n,
            sa_in: stats.iter().map(|s| s.sa_in).sum::<f64>() / n,
            sa_out: stats.iter().map(|s| s.sa_out).sum::<f64>() / n,
            sa_overall: stats.iter().map(|s| s.sa_overall).sum::<f64>() / n,
        }
    }
}

/// Merges two cycle-stamped event sequences by time (used when datapath
/// merging fuses edges: the merged wire carries both value streams).
pub fn merge_events(a: &[(u64, u32)], b: &[(u64, u32)]) -> Vec<(u64, u32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].0 <= b[j].0 {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sa_counts_hamming_distance() {
        // 0 -> 0xF (4 bits) -> 0x0 (4 bits): total 8 over latency 4
        let ev = [(0, 0x0), (1, 0xF), (2, 0x0)];
        assert!((switching_activity(&ev, 4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sa_ignores_repeats() {
        let ev = [(0, 5), (1, 5), (2, 5)];
        assert_eq!(switching_activity(&ev, 4), 0.0);
        assert_eq!(activation_rate(&ev, 4), 0.0);
    }

    #[test]
    fn short_or_zero_latency_is_zero() {
        assert_eq!(switching_activity(&[(0, 1)], 10), 0.0);
        assert_eq!(switching_activity(&[(0, 1), (1, 2)], 0), 0.0);
        assert_eq!(activation_rate(&[], 10), 0.0);
    }

    #[test]
    fn ar_counts_changes_only() {
        let ev = [(0, 1), (1, 2), (2, 2), (3, 3)];
        assert!((activation_rate(&ev, 8) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ar_bounded_by_sa_times_width() {
        // SA >= AR always (each change toggles >= 1 bit), SA <= 32*AR
        let ev = [(0, 0u32), (1, u32::MAX), (2, 1), (3, 1), (4, 0)];
        let sa = switching_activity(&ev, 5);
        let ar = activation_rate(&ev, 5);
        assert!(sa >= ar);
        assert!(sa <= 32.0 * ar);
    }

    #[test]
    fn merge_averages() {
        let a = NodeActivity {
            ar: 0.2,
            sa_in: 0.4,
            sa_out: 0.6,
            sa_overall: 1.0,
        };
        let b = NodeActivity::default();
        let m = NodeActivity::merge(&[a, b]);
        assert!((m.ar - 0.1).abs() < 1e-12);
        assert!((m.sa_overall - 0.5).abs() < 1e-12);
        assert_eq!(NodeActivity::merge(&[]), NodeActivity::default());
    }

    #[test]
    fn merge_events_sorted() {
        let a = [(0u64, 1u32), (4, 2)];
        let b = [(1u64, 3u32), (2, 4), (9, 5)];
        let m = merge_events(&a, &b);
        let times: Vec<u64> = m.iter().map(|e| e.0).collect();
        assert_eq!(times, vec![0, 1, 2, 4, 9]);
        assert_eq!(m.len(), 5);
    }
}
