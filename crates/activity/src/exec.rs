//! IR interpreter with cycle-stamped value tracing.
//!
//! Executes a scheduled [`HlsDesign`] over its block iteration spaces,
//! recording for every static op the `(cycle, bits)` sequence of values it
//! produces and consumes — the native equivalent of the paper's IR-level
//! detection probes. Cycle stamps follow the FSMD schedule: iteration `t` of
//! a pipelined block issues at `t × II`, of a sequential block at
//! `t × (depth + 1)`, and an op within the iteration fires at its scheduled
//! start cycle.
//!
//! Blocks execute in *distributed* order (all iterations of block 0, then
//! block 1, …). For the affine kernels modeled here this is semantics-
//! preserving loop distribution — each block's reads depend only on earlier
//! blocks' completed writes or its own earlier iterations.
//!
//! # Event storage
//!
//! Traced streams land in one flat per-design [`EventArena`] instead of
//! one `Vec<(u64, u32)>` per stream: the iteration loop appends raw values
//! to one column buffer per traced stream (4 bytes per event, recycled
//! allocations), and at block end every column is run-length encoded into
//! the arena as arithmetic-progression runs — within a block every op
//! fires exactly once per iteration, so a stream's cycle stamps are
//! affine (`block_base + op_start + it × stride`) by construction.
//! [`TraceScratch`] recycles all the buffers across design points, which
//! is what the dataset builder's work-stealing workers do.

use crate::events::{encode_affine, EventArena, EventRef};
use crate::sa::NodeActivity;
use crate::stimuli::Stimuli;
use pg_hls::HlsDesign;
use pg_ir::{Opcode, Operand, ValueId};
use std::collections::HashMap;
use std::sync::Arc;

/// A full execution trace of a design: one shared compressed arena plus
/// per-op stream refs (flat, no per-op allocations).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    /// Compressed event storage for every traced stream.
    pub arena: Arc<EventArena>,
    /// Per-op output stream, indexed by [`ValueId`] index.
    outputs: Vec<EventRef>,
    /// Per-operand input streams, flattened over all ops. Only streams a
    /// graph edge can reference are materialized (value operands);
    /// induction-variable and constant operand slots stay empty — their
    /// only consumer is the per-op activity, which is precomputed below.
    inputs_flat: Vec<EventRef>,
    /// Prefix index of each op's input refs (`ops.len() + 1` entries).
    input_start: Vec<u32>,
    /// Per-op activity statistics, folded from the raw value columns
    /// during execution (bit-identical to folding the encoded streams).
    activities: Vec<NodeActivity>,
    /// Design latency (cycles) used to normalize activities.
    pub latency: u64,
    /// Final array contents (for functional verification).
    pub final_arrays: HashMap<String, Vec<f32>>,
}

impl ExecutionTrace {
    /// Output stream of op `v`.
    pub fn output(&self, v: ValueId) -> EventRef {
        self.outputs[v.idx()]
    }

    /// Input streams of op `v`, one per operand (constant operands are
    /// empty streams).
    pub fn inputs(&self, v: ValueId) -> &[EventRef] {
        &self.inputs_flat
            [self.input_start[v.idx()] as usize..self.input_start[v.idx() + 1] as usize]
    }

    /// Activity statistics of op `v` (precomputed during execution).
    pub fn activity_of(&self, v: ValueId) -> NodeActivity {
        self.activities[v.idx()]
    }

    /// An event-free trace with the design's latency: used by vector-less
    /// estimators (the Vivado surrogate) that need the netlist structure but
    /// assume default toggle rates instead of simulating.
    pub fn empty(design: &HlsDesign) -> Self {
        let (input_start, total) = input_offsets(&design.ir.ops);
        ExecutionTrace {
            arena: Arc::new(EventArena::new()),
            outputs: vec![EventRef::EMPTY; design.ir.ops.len()],
            inputs_flat: vec![EventRef::EMPTY; total as usize],
            input_start,
            activities: vec![NodeActivity::default(); design.ir.ops.len()],
            latency: design.report.latency_cycles,
            final_arrays: HashMap::new(),
        }
    }
}

/// Prefix index of each op's operand slots in the flattened per-operand
/// input-ref table: returns `(input_start, total_slots)` with
/// `ops.len() + 1` prefix entries.
fn input_offsets(ops: &[pg_ir::IrOp]) -> (Vec<u32>, u32) {
    let mut input_start = Vec::with_capacity(ops.len() + 1);
    let mut total = 0u32;
    input_start.push(0);
    for op in ops {
        total += op.operands.len() as u32;
        input_start.push(total);
    }
    (input_start, total)
}

/// Reusable interpreter buffers. One instance per worker thread: the
/// per-stream column buffers and the arena's word buffer survive across
/// design points, so steady-state tracing performs no large allocations.
#[derive(Debug, Default)]
pub struct TraceScratch {
    /// One value buffer per traced stream of the current block — the
    /// iteration loop appends to each, the encode pass reads each
    /// sequentially.
    cols: Vec<Vec<u32>>,
    /// Recycled arena backing store.
    arena: Vec<u32>,
}

impl TraceScratch {
    /// A fresh scratch.
    pub fn new() -> Self {
        TraceScratch::default()
    }

    /// Takes the arena allocation back from a trace nobody else references
    /// (no-op when the arena is still shared, e.g. by a live work graph).
    pub fn reclaim(&mut self, trace: ExecutionTrace) {
        if let Ok(arena) = Arc::try_unwrap(trace.arena) {
            self.arena = arena.into_words();
        }
    }
}

/// Runtime value: integer (addresses, counters, flags) or float (data).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Val {
    I(i64),
    F(f32),
}

impl Val {
    fn bits(self) -> u32 {
        match self {
            Val::I(i) => i as i32 as u32,
            Val::F(f) => f.to_bits(),
        }
    }

    fn as_i(self) -> i64 {
        match self {
            Val::I(i) => i,
            Val::F(f) => f as i64,
        }
    }

    fn as_f(self) -> f32 {
        match self {
            Val::I(i) => i as f32,
            Val::F(f) => f,
        }
    }
}

/// A pre-resolved operand: every string lookup (induction variables,
/// scalar arguments) and [`ValueId`] indirection is resolved once per
/// block, so the iteration loop is pure index arithmetic.
#[derive(Debug, Clone, Copy)]
enum PreOperand {
    /// Result register of another op.
    Reg(usize),
    /// Integer constant (also unbound induction variables, which the
    /// interpreter has always read as 0).
    ConstI(i64),
    /// Float constant.
    ConstF(f32),
    /// Induction variable, as an index into the block's dense counters.
    Dim(usize),
    /// Scalar argument, resolved from the stimuli.
    Scalar(f32),
}

/// A memory address `offset + Σ coeff·counter[dim]`, precompiled from the
/// op's affine `linear` expression against the block's dimension order.
#[derive(Debug, Clone)]
struct PreAddr {
    slot: usize,
    terms: Vec<(usize, i64)>,
    offset: i64,
}

impl PreAddr {
    #[inline]
    fn eval(&self, counters: &[i64]) -> i64 {
        let mut acc = self.offset;
        for &(dim, coeff) in &self.terms {
            acc += coeff * counters[dim];
        }
        acc
    }
}

/// One op of a block, fully pre-resolved for the iteration loop.
#[derive(Debug, Clone)]
struct PreOp {
    /// Index into `per_op`/`regs` (the op's ValueId index).
    reg: usize,
    opcode: Opcode,
    /// Scheduled start cycle within the iteration.
    start: u64,
    operands: Vec<PreOperand>,
    /// Precompiled address for gep/load/store.
    addr: Option<PreAddr>,
}

/// Executes `design` with `stimuli`, producing the full activity trace.
/// Allocates fresh buffers; the dataset builder's hot path goes through
/// [`execute_in`] with a per-worker [`TraceScratch`].
///
/// # Panics
///
/// Panics if the design references arrays or scalars missing from the
/// stimuli (both come from the same kernel in normal use).
pub fn execute(design: &HlsDesign, stimuli: &Stimuli) -> ExecutionTrace {
    execute_in(design, stimuli, &mut TraceScratch::new())
}

/// [`execute`] against reusable buffers: the block row buffer and arena
/// words come from (and the row buffer returns to) `scratch`. Bit-identical
/// to `execute` — buffer reuse never leaks into trace contents.
///
/// # Panics
///
/// Panics if the design references arrays or scalars missing from the
/// stimuli.
pub fn execute_in(
    design: &HlsDesign,
    stimuli: &Stimuli,
    scratch: &mut TraceScratch,
) -> ExecutionTrace {
    let func = &design.ir;
    // Array storage resolved to dense slots once (the interpreter's inner
    // loop must not hash strings).
    let mut array_names: Vec<String> = Vec::new();
    let mut array_data: Vec<Vec<f32>> = Vec::new();
    let mut slot_of: HashMap<&str, usize> = HashMap::new();
    for (name, data) in &stimuli.arrays {
        slot_of.insert(name.as_str(), array_data.len());
        array_names.push(name.clone());
        array_data.push(data.clone());
    }

    // Flat stream-ref tables (filled per block below).
    let mut outputs: Vec<EventRef> = vec![EventRef::EMPTY; func.ops.len()];
    let (input_start, n_inputs) = input_offsets(&func.ops);
    let mut inputs_flat: Vec<EventRef> = vec![EventRef::EMPTY; n_inputs as usize];
    let mut activities: Vec<NodeActivity> = vec![NodeActivity::default(); func.ops.len()];

    let mut words = std::mem::take(&mut scratch.arena);
    words.clear();
    let cols = &mut scratch.cols;

    // Result registers; reset per block (ops never read across blocks —
    // dataflow between blocks goes through the arrays).
    let mut regs: Vec<Val> = vec![Val::I(0); func.ops.len()];
    let mut vals: Vec<Val> = Vec::with_capacity(8);

    let mut block_base: u64 = 0;
    for (bi, block) in func.blocks.iter().enumerate() {
        let bs = &design.schedule.blocks[bi];
        let iter_stride: u64 = if block.pipelined {
            bs.ii.max(1) as u64
        } else {
            bs.depth as u64 + 1
        };
        let trips: Vec<usize> = block.dims.iter().map(|d| d.trip).collect();
        let total: usize = trips.iter().product::<usize>().max(1);

        // Pre-resolve every op of the block once: operand kinds, scalar
        // values, dimension indices and affine addresses.
        let dim_of = |name: &str| block.dims.iter().position(|d| d.var == name);
        let pre_ops: Vec<PreOp> = block
            .ops
            .iter()
            .enumerate()
            .map(|(oi, &vid)| {
                let op = func.op(vid);
                let operands: Vec<PreOperand> = op
                    .operands
                    .iter()
                    .map(|operand| match operand {
                        Operand::Value(v) => PreOperand::Reg(v.idx()),
                        Operand::ConstF(c) => PreOperand::ConstF(*c as f32),
                        Operand::ConstI(c) => PreOperand::ConstI(*c),
                        Operand::IVar(name) => match dim_of(name) {
                            Some(d) => PreOperand::Dim(d),
                            None => PreOperand::ConstI(0),
                        },
                        Operand::Scalar(name) => PreOperand::Scalar(stimuli.scalar(name)),
                    })
                    .collect();
                let addr = match op.opcode {
                    Opcode::GetElementPtr | Opcode::Load | Opcode::Store => {
                        let m = op.mem.as_ref().expect("mem op has memref");
                        let slot = *slot_of
                            .get(m.array.as_str())
                            .unwrap_or_else(|| panic!("array `{}` missing from stimuli", m.array));
                        let terms = m
                            .linear
                            .terms
                            .iter()
                            .map(|(v, c)| {
                                let d = dim_of(v).unwrap_or_else(|| {
                                    panic!("unbound loop variable `{v}` in affine expression")
                                });
                                (d, *c)
                            })
                            .collect();
                        Some(PreAddr {
                            slot,
                            terms,
                            offset: m.linear.offset,
                        })
                    }
                    _ => None,
                };
                PreOp {
                    reg: vid.idx(),
                    opcode: op.opcode,
                    start: bs.start[oi] as u64,
                    operands,
                    addr,
                }
            })
            .collect();

        // One column buffer per traced stream. The iteration loop pushes
        // values in a fixed order — per op: traced inputs (operand order),
        // then the output — so buffer `s` holds stream `s`. Constant
        // operand streams (ConstI/ConstF/Scalar) are not traced: their
        // switching activity is identically zero, which is exactly what
        // downstream consumers compute from an empty stream, and no graph
        // edge ever reads them.
        let width: usize = pre_ops
            .iter()
            .map(|p| {
                1 + p
                    .operands
                    .iter()
                    .filter(|o| matches!(o, PreOperand::Reg(_) | PreOperand::Dim(_)))
                    .count()
            })
            .sum();
        while cols.len() < width {
            cols.push(Vec::new());
        }
        for c in cols[..width].iter_mut() {
            c.clear();
            c.reserve(total);
        }

        // Dense induction-variable counters, row-major decoded per iteration.
        let mut counters: Vec<i64> = vec![0; block.dims.len()];
        regs.fill(Val::I(0));

        for it in 0..total {
            let mut rem = it;
            for (d, &trip) in (0..counters.len()).zip(&trips).rev() {
                counters[d] = (rem % trip) as i64;
                rem /= trip;
            }
            let mut slot = 0usize;
            for pre in &pre_ops {
                vals.clear();
                for operand in &pre.operands {
                    let v = match *operand {
                        PreOperand::Reg(r) => regs[r],
                        PreOperand::ConstI(c) => {
                            vals.push(Val::I(c));
                            continue;
                        }
                        PreOperand::ConstF(c) => {
                            vals.push(Val::F(c));
                            continue;
                        }
                        PreOperand::Dim(d) => Val::I(counters[d]),
                        PreOperand::Scalar(s) => {
                            vals.push(Val::F(s));
                            continue;
                        }
                    };
                    cols[slot].push(v.bits());
                    slot += 1;
                    vals.push(v);
                }
                let result = step(pre, &vals, &counters, &mut array_data);
                regs[pre.reg] = result;
                cols[slot].push(result.bits());
                slot += 1;
            }
        }

        // Encode the edge-visible streams into the arena and fold every
        // op's activity from the raw columns. Induction-variable operand
        // streams are never referenced by a graph edge, so they are folded
        // but not encoded; constant operands contribute zero activity but
        // still count in the per-operand average (matching the empty
        // streams the naive path would fold).
        let latency = design.report.latency_cycles;
        let mut slot = 0usize;
        for pre in &pre_ops {
            let start_cycle = block_base + pre.start;
            let stride = iter_stride as u32;
            let base = input_start[pre.reg] as usize;
            let mut sa_in_sum = 0.0f64;
            for (k, operand) in pre.operands.iter().enumerate() {
                match operand {
                    PreOperand::Reg(_) => {
                        inputs_flat[base + k] =
                            encode_affine(&mut words, start_cycle, stride, &cols[slot]);
                        sa_in_sum += crate::sa::sa_ar_values(&cols[slot], latency).0;
                        slot += 1;
                    }
                    PreOperand::Dim(_) => {
                        sa_in_sum += crate::sa::sa_ar_values(&cols[slot], latency).0;
                        slot += 1;
                    }
                    _ => {}
                }
            }
            let (sa_out, ar) = crate::sa::sa_ar_values(&cols[slot], latency);
            outputs[pre.reg] = encode_affine(&mut words, start_cycle, stride, &cols[slot]);
            slot += 1;
            let sa_in = if pre.operands.is_empty() {
                0.0
            } else {
                sa_in_sum / pre.operands.len() as f64
            };
            activities[pre.reg] = NodeActivity {
                ar,
                sa_in,
                sa_out,
                sa_overall: sa_in + sa_out,
            };
        }
        debug_assert_eq!(slot, width);

        block_base += total as u64 * iter_stride + bs.depth as u64 + 1;
    }

    let final_arrays: HashMap<String, Vec<f32>> = array_names.into_iter().zip(array_data).collect();
    ExecutionTrace {
        arena: Arc::new(EventArena::from_words(words)),
        outputs,
        inputs_flat,
        input_start,
        activities,
        latency: design.report.latency_cycles,
        final_arrays,
    }
}

#[inline]
fn step(pre: &PreOp, vals: &[Val], counters: &[i64], arrays: &mut [Vec<f32>]) -> Val {
    match pre.opcode {
        Opcode::Alloca => Val::I(0),
        Opcode::GetElementPtr => {
            let a = pre.addr.as_ref().expect("gep has address");
            Val::I(a.eval(counters))
        }
        Opcode::Load => {
            let a = pre.addr.as_ref().expect("load has address");
            let addr = a.eval(counters);
            Val::F(arrays[a.slot][addr as usize])
        }
        Opcode::Store => {
            let a = pre.addr.as_ref().expect("store has address");
            let addr = a.eval(counters);
            let value = vals[0].as_f();
            arrays[a.slot][addr as usize] = value;
            Val::F(value)
        }
        Opcode::FAdd => Val::F(vals[0].as_f() + vals[1].as_f()),
        Opcode::FSub => Val::F(vals[0].as_f() - vals[1].as_f()),
        Opcode::FMul => Val::F(vals[0].as_f() * vals[1].as_f()),
        Opcode::FDiv => {
            let d = vals[1].as_f();
            Val::F(if d == 0.0 { 0.0 } else { vals[0].as_f() / d })
        }
        Opcode::FCmp => Val::I((vals[0].as_f() < vals[1].as_f()) as i64),
        Opcode::Add => Val::I(vals[0].as_i() + vals[1].as_i()),
        Opcode::Sub => Val::I(vals[0].as_i() - vals[1].as_i()),
        Opcode::Mul => Val::I(vals[0].as_i() * vals[1].as_i()),
        Opcode::ICmp => Val::I((vals[0].as_i() < vals[1].as_i()) as i64),
        Opcode::SExt | Opcode::ZExt | Opcode::Trunc | Opcode::BitCast => vals[0],
        Opcode::Phi => vals.get(1).copied().unwrap_or(Val::I(0)),
        Opcode::Br => vals.first().copied().unwrap_or(Val::I(0)),
        Opcode::Select => {
            if vals[0].as_i() != 0 {
                vals[1]
            } else {
                vals[2]
            }
        }
        Opcode::Ret => Val::I(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hls::{Directives, HlsFlow};
    use pg_ir::expr::aff;
    use pg_ir::{ArrayKind, Expr, Kernel, KernelBuilder};

    fn axpy() -> Kernel {
        KernelBuilder::new("axpy")
            .array("a", &[16], ArrayKind::Input)
            .array("x", &[16], ArrayKind::Input)
            .array("y", &[16], ArrayKind::Output)
            .loop_("i", 16, |b| {
                b.assign(
                    ("y", vec![aff("i")]),
                    Expr::load("y", vec![aff("i")])
                        + Expr::load("a", vec![aff("i")]) * Expr::load("x", vec![aff("i")]),
                );
            })
            .build()
            .unwrap()
    }

    fn run(kernel: &Kernel, d: &Directives) -> (HlsDesign, Stimuli, ExecutionTrace) {
        let design = HlsFlow::new().run(kernel, d).unwrap();
        let stim = Stimuli::for_kernel(kernel, 0);
        let trace = execute(&design, &stim);
        (design, stim, trace)
    }

    #[test]
    fn computes_axpy_correctly() {
        let k = axpy();
        let (_d, stim, trace) = run(&k, &Directives::new());
        let y = &trace.final_arrays["y"];
        for (i, &yi) in y.iter().enumerate().take(16) {
            let expect = stim.arrays["y"][i] + stim.arrays["a"][i] * stim.arrays["x"][i];
            assert!((yi - expect).abs() < 1e-6, "y[{i}] = {yi} != {expect}");
        }
    }

    #[test]
    fn unrolled_design_computes_same_result() {
        let k = axpy();
        let (_d0, _s0, t0) = run(&k, &Directives::new());
        let mut d = Directives::new();
        d.pipeline("i")
            .unroll("i", 4)
            .partition("a", 4)
            .partition("y", 2);
        let (_d1, _s1, t1) = run(&k, &d);
        assert_eq!(t0.final_arrays["y"], t1.final_arrays["y"]);
    }

    #[test]
    fn every_op_traced_per_iteration() {
        let k = axpy();
        let (design, _s, trace) = run(&k, &Directives::new());
        for op in &design.ir.ops {
            let trip = design.ir.blocks[op.block].trip_product();
            assert_eq!(
                trace.arena.count(trace.output(op.id)),
                trip,
                "{} executed wrong number of times",
                op.id
            );
            // Value operand streams carry one event per iteration;
            // constant streams are skipped (zero switching) and
            // induction-variable streams are folded into the activity
            // but never materialized (no graph edge reads them).
            for (k2, &inp) in trace.inputs(op.id).iter().enumerate() {
                let expected = match &op.operands[k2] {
                    pg_ir::Operand::Value(_) => trip,
                    _ => 0,
                };
                assert_eq!(
                    trace.arena.count(inp),
                    expected,
                    "operand {k2} of {}",
                    op.id
                );
            }
        }
    }

    #[test]
    fn cycle_stamps_monotone_per_op() {
        let k = axpy();
        let (design, _s, trace) = run(&k, &Directives::new());
        for op in &design.ir.ops {
            let ev = trace.arena.decode(trace.output(op.id));
            for w in ev.windows(2) {
                assert!(w[0].0 < w[1].0, "non-monotone cycle stamps");
            }
        }
    }

    #[test]
    fn pipelined_stamps_advance_by_ii() {
        let k = axpy();
        let mut dir = Directives::new();
        dir.pipeline("i");
        let (design, _s, trace) = run(&k, &dir);
        let bs = design.schedule.blocks.last().unwrap();
        // find a load op in the pipelined block
        let op = design
            .ir
            .ops
            .iter()
            .find(|o| o.opcode == Opcode::Load)
            .unwrap();
        let times: Vec<u64> = trace
            .arena
            .decode(trace.output(op.id))
            .iter()
            .map(|e| e.0)
            .collect();
        for w in times.windows(2) {
            assert_eq!(w[1] - w[0], bs.ii as u64);
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        let k = axpy();
        let design = HlsFlow::new().run(&k, &Directives::new()).unwrap();
        let stim = Stimuli::for_kernel(&k, 0);
        let fresh = execute(&design, &stim);
        let mut scratch = TraceScratch::new();
        // Dirty the scratch with a different design first.
        let mut d = Directives::new();
        d.unroll("i", 4);
        let other = HlsFlow::new().run(&k, &d).unwrap();
        let warmup = execute_in(&other, &stim, &mut scratch);
        scratch.reclaim(warmup);
        let reused = execute_in(&design, &stim, &mut scratch);
        assert_eq!(fresh, reused, "scratch reuse changed the trace");
        scratch.reclaim(reused);
        assert!(!scratch.arena.is_empty(), "arena buffer must be reclaimed");
    }

    #[test]
    fn matmul_matches_reference() {
        let k = KernelBuilder::new("mm")
            .array("a", &[6, 6], ArrayKind::Input)
            .array("b", &[6, 6], ArrayKind::Input)
            .array("c", &[6, 6], ArrayKind::Output)
            .loop_("i", 6, |bb| {
                bb.loop_("j", 6, |bb| {
                    bb.loop_("k", 6, |bb| {
                        bb.assign(
                            ("c", vec![aff("i"), aff("j")]),
                            Expr::load("c", vec![aff("i"), aff("j")])
                                + Expr::load("a", vec![aff("i"), aff("k")])
                                    * Expr::load("b", vec![aff("k"), aff("j")]),
                        );
                    });
                });
            })
            .build()
            .unwrap();
        let (_d, stim, trace) = run(&k, &Directives::new());
        let (a, b, c0) = (&stim.arrays["a"], &stim.arrays["b"], &stim.arrays["c"]);
        let c = &trace.final_arrays["c"];
        for i in 0..6 {
            for j in 0..6 {
                let mut acc = c0[i * 6 + j];
                for kk in 0..6 {
                    acc += a[i * 6 + kk] * b[kk * 6 + j];
                }
                assert!((c[i * 6 + j] - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn scalar_arguments_flow_through() {
        let k = KernelBuilder::new("sc")
            .array("x", &[4], ArrayKind::Input)
            .array("y", &[4], ArrayKind::Output)
            .scalar("alpha")
            .loop_("i", 4, |b| {
                b.assign(
                    ("y", vec![aff("i")]),
                    Expr::scalar("alpha") * Expr::load("x", vec![aff("i")]),
                );
            })
            .build()
            .unwrap();
        let (_d, stim, trace) = run(&k, &Directives::new());
        let alpha = stim.scalar("alpha");
        for i in 0..4 {
            assert!((trace.final_arrays["y"][i] - alpha * stim.arrays["x"][i]).abs() < 1e-6);
        }
    }
}
