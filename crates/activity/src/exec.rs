//! IR interpreter with cycle-stamped value tracing.
//!
//! Executes a scheduled [`HlsDesign`] over its block iteration spaces,
//! recording for every static op the `(cycle, bits)` sequence of values it
//! produces and consumes — the native equivalent of the paper's IR-level
//! detection probes. Cycle stamps follow the FSMD schedule: iteration `t` of
//! a pipelined block issues at `t × II`, of a sequential block at
//! `t × (depth + 1)`, and an op within the iteration fires at its scheduled
//! start cycle.
//!
//! Blocks execute in *distributed* order (all iterations of block 0, then
//! block 1, …). For the affine kernels modeled here this is semantics-
//! preserving loop distribution — each block's reads depend only on earlier
//! blocks' completed writes or its own earlier iterations.

use crate::stimuli::Stimuli;
use pg_hls::HlsDesign;
use pg_ir::{Opcode, Operand, ValueId};
use std::collections::HashMap;
use std::sync::Arc;

/// Traced values for one static op.
///
/// Event sequences are shared (`Arc`): graph construction copies an op's
/// output stream onto every consumer edge, and sharing makes those copies
/// reference bumps instead of multi-kilobyte memcpys.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpTrace {
    /// `(cycle, bits)` of every produced value, in execution order.
    pub outputs: Arc<Vec<(u64, u32)>>,
    /// Per-operand `(cycle, bits)` of every consumed value.
    pub inputs: Vec<Arc<Vec<(u64, u32)>>>,
}

/// A full execution trace of a design.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    /// Per-op traces, indexed by [`ValueId`].
    pub per_op: Vec<OpTrace>,
    /// Design latency (cycles) used to normalize activities.
    pub latency: u64,
    /// Final array contents (for functional verification).
    pub final_arrays: HashMap<String, Vec<f32>>,
}

impl ExecutionTrace {
    /// Trace of op `v`.
    pub fn of(&self, v: ValueId) -> &OpTrace {
        &self.per_op[v.idx()]
    }

    /// An event-free trace with the design's latency: used by vector-less
    /// estimators (the Vivado surrogate) that need the netlist structure but
    /// assume default toggle rates instead of simulating.
    pub fn empty(design: &HlsDesign) -> Self {
        let none: Arc<Vec<(u64, u32)>> = Arc::new(Vec::new());
        ExecutionTrace {
            per_op: design
                .ir
                .ops
                .iter()
                .map(|op| OpTrace {
                    outputs: Arc::clone(&none),
                    inputs: vec![Arc::clone(&none); op.operands.len()],
                })
                .collect(),
            latency: design.report.latency_cycles,
            final_arrays: HashMap::new(),
        }
    }
}

/// Runtime value: integer (addresses, counters, flags) or float (data).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Val {
    I(i64),
    F(f32),
}

impl Val {
    fn bits(self) -> u32 {
        match self {
            Val::I(i) => i as i32 as u32,
            Val::F(f) => f.to_bits(),
        }
    }

    fn as_i(self) -> i64 {
        match self {
            Val::I(i) => i,
            Val::F(f) => f as i64,
        }
    }

    fn as_f(self) -> f32 {
        match self {
            Val::I(i) => i as f32,
            Val::F(f) => f,
        }
    }
}

/// A pre-resolved operand: every string lookup (induction variables,
/// scalar arguments) and [`ValueId`] indirection is resolved once per
/// block, so the iteration loop is pure index arithmetic.
#[derive(Debug, Clone, Copy)]
enum PreOperand {
    /// Result register of another op.
    Reg(usize),
    /// Integer constant (also unbound induction variables, which the
    /// interpreter has always read as 0).
    ConstI(i64),
    /// Float constant.
    ConstF(f32),
    /// Induction variable, as an index into the block's dense counters.
    Dim(usize),
    /// Scalar argument, resolved from the stimuli.
    Scalar(f32),
}

/// A memory address `offset + Σ coeff·counter[dim]`, precompiled from the
/// op's affine `linear` expression against the block's dimension order.
#[derive(Debug, Clone)]
struct PreAddr {
    slot: usize,
    terms: Vec<(usize, i64)>,
    offset: i64,
}

impl PreAddr {
    #[inline]
    fn eval(&self, counters: &[i64]) -> i64 {
        let mut acc = self.offset;
        for &(dim, coeff) in &self.terms {
            acc += coeff * counters[dim];
        }
        acc
    }
}

/// One op of a block, fully pre-resolved for the iteration loop.
#[derive(Debug, Clone)]
struct PreOp {
    /// Index into `per_op`/`regs` (the op's ValueId index).
    reg: usize,
    opcode: Opcode,
    /// Scheduled start cycle within the iteration.
    start: u64,
    operands: Vec<PreOperand>,
    /// Precompiled address for gep/load/store.
    addr: Option<PreAddr>,
}

/// Executes `design` with `stimuli`, producing the full activity trace.
///
/// # Panics
///
/// Panics if the design references arrays or scalars missing from the
/// stimuli (both come from the same kernel in normal use).
pub fn execute(design: &HlsDesign, stimuli: &Stimuli) -> ExecutionTrace {
    let func = &design.ir;
    // Array storage resolved to dense slots once (the interpreter's inner
    // loop must not hash strings).
    let mut array_names: Vec<String> = Vec::new();
    let mut array_data: Vec<Vec<f32>> = Vec::new();
    let mut slot_of: HashMap<&str, usize> = HashMap::new();
    for (name, data) in &stimuli.arrays {
        slot_of.insert(name.as_str(), array_data.len());
        array_names.push(name.clone());
        array_data.push(data.clone());
    }
    // Raw (growable) accumulators; moved into shared `Arc`s at the end.
    struct RawOpTrace {
        outputs: Vec<(u64, u32)>,
        inputs: Vec<Vec<(u64, u32)>>,
    }
    let mut per_op: Vec<RawOpTrace> = func
        .ops
        .iter()
        .map(|op| RawOpTrace {
            outputs: Vec::new(),
            inputs: vec![Vec::new(); op.operands.len()],
        })
        .collect();

    // Result registers; reset per block (ops never read across blocks —
    // dataflow between blocks goes through the arrays).
    let mut regs: Vec<Val> = vec![Val::I(0); func.ops.len()];
    let mut vals: Vec<Val> = Vec::with_capacity(8);

    let mut block_base: u64 = 0;
    for (bi, block) in func.blocks.iter().enumerate() {
        let bs = &design.schedule.blocks[bi];
        let iter_stride: u64 = if block.pipelined {
            bs.ii.max(1) as u64
        } else {
            bs.depth as u64 + 1
        };
        let trips: Vec<usize> = block.dims.iter().map(|d| d.trip).collect();
        let total: usize = trips.iter().product::<usize>().max(1);

        // Pre-resolve every op of the block once: operand kinds, scalar
        // values, dimension indices and affine addresses.
        let dim_of = |name: &str| block.dims.iter().position(|d| d.var == name);
        let pre_ops: Vec<PreOp> = block
            .ops
            .iter()
            .enumerate()
            .map(|(oi, &vid)| {
                let op = func.op(vid);
                let operands: Vec<PreOperand> = op
                    .operands
                    .iter()
                    .map(|operand| match operand {
                        Operand::Value(v) => PreOperand::Reg(v.idx()),
                        Operand::ConstF(c) => PreOperand::ConstF(*c as f32),
                        Operand::ConstI(c) => PreOperand::ConstI(*c),
                        Operand::IVar(name) => match dim_of(name) {
                            Some(d) => PreOperand::Dim(d),
                            None => PreOperand::ConstI(0),
                        },
                        Operand::Scalar(name) => PreOperand::Scalar(stimuli.scalar(name)),
                    })
                    .collect();
                let addr = match op.opcode {
                    Opcode::GetElementPtr | Opcode::Load | Opcode::Store => {
                        let m = op.mem.as_ref().expect("mem op has memref");
                        let slot = *slot_of
                            .get(m.array.as_str())
                            .unwrap_or_else(|| panic!("array `{}` missing from stimuli", m.array));
                        let terms = m
                            .linear
                            .terms
                            .iter()
                            .map(|(v, c)| {
                                let d = dim_of(v).unwrap_or_else(|| {
                                    panic!("unbound loop variable `{v}` in affine expression")
                                });
                                (d, *c)
                            })
                            .collect();
                        Some(PreAddr {
                            slot,
                            terms,
                            offset: m.linear.offset,
                        })
                    }
                    _ => None,
                };
                // Reserve the exact event capacity up front: every op fires
                // once per iteration. Constant operand streams are never
                // recorded (see the iteration loop), so they reserve nothing.
                let ot = &mut per_op[vid.idx()];
                ot.outputs.reserve_exact(total);
                for (inp, operand) in ot.inputs.iter_mut().zip(operands.iter()) {
                    if matches!(*operand, PreOperand::Reg(_) | PreOperand::Dim(_)) {
                        inp.reserve_exact(total);
                    }
                }
                PreOp {
                    reg: vid.idx(),
                    opcode: op.opcode,
                    start: bs.start[oi] as u64,
                    operands,
                    addr,
                }
            })
            .collect();

        // Dense induction-variable counters, row-major decoded per iteration.
        let mut counters: Vec<i64> = vec![0; block.dims.len()];
        regs.fill(Val::I(0));

        for it in 0..total {
            let mut rem = it;
            for (d, &trip) in (0..counters.len()).zip(&trips).rev() {
                counters[d] = (rem % trip) as i64;
                rem /= trip;
            }
            let iter_time = block_base + it as u64 * iter_stride;
            for pre in &pre_ops {
                let t = iter_time + pre.start;
                vals.clear();
                let ot = &mut per_op[pre.reg];
                // Constant streams (ConstI/ConstF/Scalar) are not recorded:
                // their switching activity is identically zero, which is
                // exactly what downstream consumers compute from an empty
                // stream, and no graph edge ever reads them.
                for (inp, operand) in ot.inputs.iter_mut().zip(&pre.operands) {
                    let v = match *operand {
                        PreOperand::Reg(r) => regs[r],
                        PreOperand::ConstI(c) => {
                            vals.push(Val::I(c));
                            continue;
                        }
                        PreOperand::ConstF(c) => {
                            vals.push(Val::F(c));
                            continue;
                        }
                        PreOperand::Dim(d) => Val::I(counters[d]),
                        PreOperand::Scalar(s) => {
                            vals.push(Val::F(s));
                            continue;
                        }
                    };
                    inp.push((t, v.bits()));
                    vals.push(v);
                }
                let result = step(pre, &vals, &counters, &mut array_data);
                regs[pre.reg] = result;
                ot.outputs.push((t, result.bits()));
            }
        }
        block_base += total as u64 * iter_stride + bs.depth as u64 + 1;
    }

    let final_arrays: HashMap<String, Vec<f32>> = array_names.into_iter().zip(array_data).collect();
    ExecutionTrace {
        per_op: per_op
            .into_iter()
            .map(|raw| OpTrace {
                outputs: Arc::new(raw.outputs),
                inputs: raw.inputs.into_iter().map(Arc::new).collect(),
            })
            .collect(),
        latency: design.report.latency_cycles,
        final_arrays,
    }
}

#[inline]
fn step(pre: &PreOp, vals: &[Val], counters: &[i64], arrays: &mut [Vec<f32>]) -> Val {
    match pre.opcode {
        Opcode::Alloca => Val::I(0),
        Opcode::GetElementPtr => {
            let a = pre.addr.as_ref().expect("gep has address");
            Val::I(a.eval(counters))
        }
        Opcode::Load => {
            let a = pre.addr.as_ref().expect("load has address");
            let addr = a.eval(counters);
            Val::F(arrays[a.slot][addr as usize])
        }
        Opcode::Store => {
            let a = pre.addr.as_ref().expect("store has address");
            let addr = a.eval(counters);
            let value = vals[0].as_f();
            arrays[a.slot][addr as usize] = value;
            Val::F(value)
        }
        Opcode::FAdd => Val::F(vals[0].as_f() + vals[1].as_f()),
        Opcode::FSub => Val::F(vals[0].as_f() - vals[1].as_f()),
        Opcode::FMul => Val::F(vals[0].as_f() * vals[1].as_f()),
        Opcode::FDiv => {
            let d = vals[1].as_f();
            Val::F(if d == 0.0 { 0.0 } else { vals[0].as_f() / d })
        }
        Opcode::FCmp => Val::I((vals[0].as_f() < vals[1].as_f()) as i64),
        Opcode::Add => Val::I(vals[0].as_i() + vals[1].as_i()),
        Opcode::Sub => Val::I(vals[0].as_i() - vals[1].as_i()),
        Opcode::Mul => Val::I(vals[0].as_i() * vals[1].as_i()),
        Opcode::ICmp => Val::I((vals[0].as_i() < vals[1].as_i()) as i64),
        Opcode::SExt | Opcode::ZExt | Opcode::Trunc | Opcode::BitCast => vals[0],
        Opcode::Phi => vals.get(1).copied().unwrap_or(Val::I(0)),
        Opcode::Br => vals.first().copied().unwrap_or(Val::I(0)),
        Opcode::Select => {
            if vals[0].as_i() != 0 {
                vals[1]
            } else {
                vals[2]
            }
        }
        Opcode::Ret => Val::I(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hls::{Directives, HlsFlow};
    use pg_ir::expr::aff;
    use pg_ir::{ArrayKind, Expr, Kernel, KernelBuilder};

    fn axpy() -> Kernel {
        KernelBuilder::new("axpy")
            .array("a", &[16], ArrayKind::Input)
            .array("x", &[16], ArrayKind::Input)
            .array("y", &[16], ArrayKind::Output)
            .loop_("i", 16, |b| {
                b.assign(
                    ("y", vec![aff("i")]),
                    Expr::load("y", vec![aff("i")])
                        + Expr::load("a", vec![aff("i")]) * Expr::load("x", vec![aff("i")]),
                );
            })
            .build()
            .unwrap()
    }

    fn run(kernel: &Kernel, d: &Directives) -> (HlsDesign, Stimuli, ExecutionTrace) {
        let design = HlsFlow::new().run(kernel, d).unwrap();
        let stim = Stimuli::for_kernel(kernel, 0);
        let trace = execute(&design, &stim);
        (design, stim, trace)
    }

    #[test]
    fn computes_axpy_correctly() {
        let k = axpy();
        let (_d, stim, trace) = run(&k, &Directives::new());
        let y = &trace.final_arrays["y"];
        for (i, &yi) in y.iter().enumerate().take(16) {
            let expect = stim.arrays["y"][i] + stim.arrays["a"][i] * stim.arrays["x"][i];
            assert!((yi - expect).abs() < 1e-6, "y[{i}] = {yi} != {expect}");
        }
    }

    #[test]
    fn unrolled_design_computes_same_result() {
        let k = axpy();
        let (_d0, _s0, t0) = run(&k, &Directives::new());
        let mut d = Directives::new();
        d.pipeline("i")
            .unroll("i", 4)
            .partition("a", 4)
            .partition("y", 2);
        let (_d1, _s1, t1) = run(&k, &d);
        assert_eq!(t0.final_arrays["y"], t1.final_arrays["y"]);
    }

    #[test]
    fn every_op_traced_per_iteration() {
        let k = axpy();
        let (design, _s, trace) = run(&k, &Directives::new());
        for op in &design.ir.ops {
            let trip = design.ir.blocks[op.block].trip_product();
            assert_eq!(
                trace.of(op.id).outputs.len(),
                trip,
                "{} executed wrong number of times",
                op.id
            );
            // Value/induction operand streams carry one event per
            // iteration; constant streams are skipped (zero switching).
            for (k2, inp) in trace.of(op.id).inputs.iter().enumerate() {
                let expected = match &op.operands[k2] {
                    pg_ir::Operand::Value(_) | pg_ir::Operand::IVar(_) => trip,
                    _ => 0,
                };
                assert_eq!(inp.len(), expected, "operand {k2} of {}", op.id);
            }
        }
    }

    #[test]
    fn cycle_stamps_monotone_per_op() {
        let k = axpy();
        let (_d, _s, trace) = run(&k, &Directives::new());
        for ot in &trace.per_op {
            for w in ot.outputs.windows(2) {
                assert!(w[0].0 < w[1].0, "non-monotone cycle stamps");
            }
        }
    }

    #[test]
    fn pipelined_stamps_advance_by_ii() {
        let k = axpy();
        let mut dir = Directives::new();
        dir.pipeline("i");
        let (design, _s, trace) = run(&k, &dir);
        let bs = design.schedule.blocks.last().unwrap();
        // find a load op in the pipelined block
        let op = design
            .ir
            .ops
            .iter()
            .find(|o| o.opcode == Opcode::Load)
            .unwrap();
        let times: Vec<u64> = trace.of(op.id).outputs.iter().map(|e| e.0).collect();
        for w in times.windows(2) {
            assert_eq!(w[1] - w[0], bs.ii as u64);
        }
    }

    #[test]
    fn matmul_matches_reference() {
        let k = KernelBuilder::new("mm")
            .array("a", &[6, 6], ArrayKind::Input)
            .array("b", &[6, 6], ArrayKind::Input)
            .array("c", &[6, 6], ArrayKind::Output)
            .loop_("i", 6, |bb| {
                bb.loop_("j", 6, |bb| {
                    bb.loop_("k", 6, |bb| {
                        bb.assign(
                            ("c", vec![aff("i"), aff("j")]),
                            Expr::load("c", vec![aff("i"), aff("j")])
                                + Expr::load("a", vec![aff("i"), aff("k")])
                                    * Expr::load("b", vec![aff("k"), aff("j")]),
                        );
                    });
                });
            })
            .build()
            .unwrap();
        let (_d, stim, trace) = run(&k, &Directives::new());
        let (a, b, c0) = (&stim.arrays["a"], &stim.arrays["b"], &stim.arrays["c"]);
        let c = &trace.final_arrays["c"];
        for i in 0..6 {
            for j in 0..6 {
                let mut acc = c0[i * 6 + j];
                for kk in 0..6 {
                    acc += a[i * 6 + kk] * b[kk * 6 + j];
                }
                assert!((c[i * 6 + j] - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn scalar_arguments_flow_through() {
        let k = KernelBuilder::new("sc")
            .array("x", &[4], ArrayKind::Input)
            .array("y", &[4], ArrayKind::Output)
            .scalar("alpha")
            .loop_("i", 4, |b| {
                b.assign(
                    ("y", vec![aff("i")]),
                    Expr::scalar("alpha") * Expr::load("x", vec![aff("i")]),
                );
            })
            .build()
            .unwrap();
        let (_d, stim, trace) = run(&k, &Directives::new());
        let alpha = stim.scalar("alpha");
        for i in 0..4 {
            assert!((trace.final_arrays["y"][i] - alpha * stim.arrays["x"][i]).abs() < 1e-6);
        }
    }
}
