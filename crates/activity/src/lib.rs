//! Switching-activity tracing for HLS designs.
//!
//! The paper instruments detection probes at the IR level, links them with
//! the testbench, runs the executable, and derives per-edge switching
//! activities (Eq. 2) and activation rates (Eq. 3) from the traced variable
//! values. This crate reproduces that flow natively:
//!
//! * [`Stimuli`] — deterministic testbench inputs per kernel;
//! * [`execute`] — an IR interpreter that runs a scheduled design over its
//!   iteration spaces, stamping every produced/consumed value with the FSMD
//!   cycle it occurs in (the "detection probe" equivalent);
//! * [`switching_activity`] / [`activation_rate`] — the Eq. 2 / Eq. 3 math
//!   over traced bit vectors (Hamming distance between consecutive values,
//!   normalized by design latency);
//! * [`events`] — the flat per-design [`EventArena`] holding every traced
//!   stream in run-length/delta compressed form (`(offset, len)` refs
//!   instead of per-stream allocations), with streaming SA/AR folds that
//!   consume the compressed runs directly.
//!
//! # Examples
//!
//! ```
//! use pg_activity::{execute, Stimuli};
//! use pg_hls::{Directives, HlsFlow};
//! use pg_ir::{ArrayKind, KernelBuilder};
//! use pg_ir::expr::{aff, Expr};
//!
//! let k = KernelBuilder::new("scale")
//!     .array("x", &[8], ArrayKind::Input)
//!     .array("y", &[8], ArrayKind::Output)
//!     .loop_("i", 8, |b| {
//!         b.assign(("y", vec![aff("i")]),
//!                  Expr::load("x", vec![aff("i")]) * Expr::Const(2.0));
//!     })
//!     .build()?;
//! let design = HlsFlow::new().run(&k, &Directives::new())?;
//! let stim = Stimuli::for_kernel(&k, 0);
//! let trace = pg_activity::execute(&design, &stim);
//! assert_eq!(trace.latency, design.report.latency_cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod events;
pub mod exec;
pub mod sa;
pub mod stimuli;

pub use events::{EventArena, EventRef};
pub use exec::{execute, execute_in, ExecutionTrace, TraceScratch};
pub use sa::{activation_rate, sa_ar, switching_activity, NodeActivity};
pub use stimuli::Stimuli;
