//! Deterministic testbench stimuli.
//!
//! The paper links fixed testbenches with instrumented IR (§III-A); every
//! design point of a kernel sees the same input data, so activity
//! differences across design points come from structure, not data. Stimuli
//! here are derived deterministically from the kernel name and a seed.

use pg_ir::{ArrayKind, Kernel};
use pg_util::rng::hash64;
use pg_util::Rng64;
use std::collections::BTreeMap;

/// Input data for one kernel execution.
///
/// Both maps are ordered: the interpreter iterates `arrays` to lay out its
/// value slots, so iteration order must be a function of the kernel alone,
/// never of hash state.
#[derive(Debug, Clone, PartialEq)]
pub struct Stimuli {
    /// Initial contents per array (row-major flattened). `Temp` arrays are
    /// zero-initialized, matching C semantics of locals written before read.
    pub arrays: BTreeMap<String, Vec<f32>>,
    /// Scalar argument values.
    pub scalars: BTreeMap<String, f32>,
}

impl Stimuli {
    /// Generates the canonical stimuli for `kernel` (uniform values in
    /// `[-1, 1)`, ~12 % exact zeros to exercise data-dependent toggling).
    pub fn for_kernel(kernel: &Kernel, seed: u64) -> Self {
        let mut rng = Rng64::new(hash64(kernel.name.as_bytes()) ^ seed);
        let mut arrays = BTreeMap::new();
        for a in &kernel.arrays {
            let data: Vec<f32> = match a.kind {
                ArrayKind::Temp => vec![0.0; a.len()],
                _ => (0..a.len())
                    .map(|_| {
                        if rng.bool(0.12) {
                            0.0
                        } else {
                            rng.uniform(-1.0, 1.0) as f32
                        }
                    })
                    .collect(),
            };
            arrays.insert(a.name.clone(), data);
        }
        let mut scalars = BTreeMap::new();
        for s in &kernel.scalars {
            scalars.insert(s.clone(), rng.uniform(0.25, 2.0) as f32);
        }
        Stimuli { arrays, scalars }
    }

    /// Value of a scalar argument.
    ///
    /// # Panics
    ///
    /// Panics if the scalar was not declared by the kernel.
    pub fn scalar(&self, name: &str) -> f32 {
        *self
            .scalars
            .get(name)
            .unwrap_or_else(|| panic!("undeclared scalar `{name}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_ir::expr::aff;
    use pg_ir::{Expr, KernelBuilder};

    fn kernel() -> Kernel {
        KernelBuilder::new("stim")
            .array("x", &[64], ArrayKind::Input)
            .array("t", &[8], ArrayKind::Temp)
            .array("y", &[64], ArrayKind::Output)
            .scalar("alpha")
            .loop_("i", 64, |b| {
                b.assign(
                    ("y", vec![aff("i")]),
                    Expr::scalar("alpha") * Expr::load("x", vec![aff("i")]),
                );
            })
            .build()
            .unwrap()
    }

    #[test]
    fn deterministic_per_seed() {
        let k = kernel();
        let a = Stimuli::for_kernel(&k, 1);
        let b = Stimuli::for_kernel(&k, 1);
        assert_eq!(a, b);
        let c = Stimuli::for_kernel(&k, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn temps_zeroed_inputs_random() {
        let k = kernel();
        let s = Stimuli::for_kernel(&k, 0);
        assert!(s.arrays["t"].iter().all(|&v| v == 0.0));
        assert!(s.arrays["x"].iter().any(|&v| v != 0.0));
        assert!((0.25..2.0).contains(&s.scalar("alpha")));
    }

    #[test]
    fn values_bounded() {
        let k = kernel();
        let s = Stimuli::for_kernel(&k, 0);
        assert!(s.arrays["x"].iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn some_zeros_injected() {
        let k = kernel();
        let s = Stimuli::for_kernel(&k, 3);
        let zeros = s.arrays["x"].iter().filter(|&&v| v == 0.0).count();
        assert!(zeros >= 1, "expected sparsity, got {zeros} zeros");
    }

    #[test]
    #[should_panic]
    fn unknown_scalar_panics() {
        let k = kernel();
        Stimuli::for_kernel(&k, 0).scalar("nope");
    }
}
