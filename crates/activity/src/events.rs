//! Flat arenas of run-length/delta compressed event streams.
//!
//! The trace interpreter used to allocate one `Vec<(u64, u32)>` per traced
//! stream per design point — at paper scale (500–1000 points/kernel) those
//! per-edge allocations and the 16-byte-per-event folds dominated the cold
//! synthesis path. This module replaces them with a **flat per-design
//! [`EventArena`]**: one contiguous `u32` buffer per design point into
//! which every event stream is appended in compressed form, addressed by
//! copyable [`EventRef`] `(offset, len)` slices.
//!
//! # Stream format
//!
//! A stream is a sequence of *runs* in three shapes, tagged by the top two
//! header bits (bits 0..=29 hold the event count, always >= 1):
//!
//! ```text
//! const   (bit 31)  [header, start_lo, start_hi, stride, value]
//!                   `count` events at `start + i*stride`, one repeated
//!                   value — run-length + delta compression in 5 words
//! affine  (neither) [header, start_lo, start_hi, stride, v0..v_count-1]
//!                   arithmetic cycle progression, verbatim values
//! delta   (bit 30)  [header, start_lo, start_hi, v0, (d1,v1), (d2,v2)..]
//!                   explicit per-event cycle deltas — the shape stream
//!                   merges emit, because a time-interleave of two affine
//!                   streams has no single stride
//! ```
//!
//! Per-block interpreter streams fire once per loop iteration, so their
//! cycle side is exactly one arithmetic progression and constant value
//! stretches (outer induction variables, re-read addresses) collapse to
//! const runs. An empty stream is `len == 0`; worst case the encoding
//! costs 2 words/event (delta runs) versus 3 uncompressed.
//!
//! Everything downstream folds **directly over the compressed runs**
//! ([`fold_sa_ar`]): a constant run of any length contributes at most one
//! value transition, so SA/AR of heavily repetitive streams costs O(runs)
//! instead of O(events). Folds accumulate the same integer Hamming /
//! change counts in the same order as the naive slice math in
//! [`crate::sa`], so results are bit-identical.

/// Bit 31 of a run header: the payload is one repeated value.
const CONST_BIT: u32 = 1 << 31;
/// Bit 30 of a run header: explicit per-event cycle deltas.
const DELTA_BIT: u32 = 1 << 30;
/// Mask of the event count in a run header.
const COUNT_MASK: u32 = DELTA_BIT - 1;
/// A constant stretch shorter than this is not worth its own run.
const MIN_CONST_RUN: u32 = 4;

/// A flat buffer of compressed event streams.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventArena {
    words: Vec<u32>,
}

/// A `(offset, len)` slice of an [`EventArena`], in words. Copyable —
/// attaching a stream to another edge is two register moves, not an
/// allocation. Bit 31 of `off` is reserved for the owner to tag which of
/// two arenas the slice lives in (see `pg_graphcon`'s base/extension
/// split); the arena itself never sets it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventRef {
    /// Word offset of the stream start.
    pub off: u32,
    /// Stream length in words (0 = empty stream).
    pub len: u32,
}

impl EventRef {
    /// The empty stream.
    pub const EMPTY: EventRef = EventRef { off: 0, len: 0 };

    /// `true` when the stream holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl EventArena {
    /// An empty arena.
    pub fn new() -> Self {
        EventArena::default()
    }

    /// Wraps an existing word buffer (typically a recycled allocation).
    pub fn from_words(words: Vec<u32>) -> Self {
        EventArena { words }
    }

    /// Releases the word buffer for reuse.
    pub fn into_words(self) -> Vec<u32> {
        self.words
    }

    /// Raw words of the arena.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Mutable raw words (encoder entry point).
    pub fn words_mut(&mut self) -> &mut Vec<u32> {
        &mut self.words
    }

    /// Words of one stream.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn stream(&self, r: EventRef) -> &[u32] {
        &self.words[r.off as usize..(r.off + r.len) as usize]
    }

    /// Number of events in a stream.
    pub fn count(&self, r: EventRef) -> usize {
        event_count(self.stream(r))
    }

    /// Decodes a stream to raw `(cycle, bits)` events (tests, diagnostics).
    pub fn decode(&self, r: EventRef) -> Vec<(u64, u32)> {
        decode(self.stream(r))
    }

    /// Appends raw events as a compressed stream, returning its ref.
    pub fn push_events(&mut self, events: &[(u64, u32)]) -> EventRef {
        let mut enc = Encoder::new(&mut self.words);
        for &(c, v) in events {
            enc.push(c, v);
        }
        enc.finish()
    }

    /// Eq. 2 / Eq. 3 of one stream, folded over the compressed runs.
    pub fn sa_ar(&self, r: EventRef, latency: u64) -> (f64, f64) {
        fold_sa_ar(self.stream(r), latency)
    }
}

/// Size in words of the run starting at `words[i]`.
#[inline]
fn run_words(h: u32) -> usize {
    let count = (h & COUNT_MASK) as usize;
    if h & CONST_BIT != 0 {
        5
    } else if h & DELTA_BIT != 0 {
        4 + 2 * (count - 1)
    } else {
        4 + count
    }
}

/// Number of events in an encoded stream.
pub fn event_count(words: &[u32]) -> usize {
    let mut n = 0usize;
    let mut i = 0usize;
    while i < words.len() {
        let h = words[i];
        n += (h & COUNT_MASK) as usize;
        i += run_words(h);
    }
    n
}

/// Decodes an encoded stream to raw `(cycle, bits)` events.
pub fn decode(words: &[u32]) -> Vec<(u64, u32)> {
    let mut out = Vec::with_capacity(event_count(words));
    decode_into(&mut out, words);
    out
}

/// Appends the decoded events of `words` to `out`.
pub fn decode_into(out: &mut Vec<(u64, u32)>, words: &[u32]) {
    let mut i = 0usize;
    while i < words.len() {
        let h = words[i];
        let count = (h & COUNT_MASK) as u64;
        let start = words[i + 1] as u64 | ((words[i + 2] as u64) << 32);
        if h & CONST_BIT != 0 {
            let stride = words[i + 3] as u64;
            let v = words[i + 4];
            for k in 0..count {
                out.push((start + k * stride, v));
            }
            i += 5;
        } else if h & DELTA_BIT != 0 {
            let mut cycle = start;
            out.push((cycle, words[i + 3]));
            let mut j = i + 4;
            for _ in 1..count {
                cycle += words[j] as u64;
                out.push((cycle, words[j + 1]));
                j += 2;
            }
            i = j;
        } else {
            let stride = words[i + 3] as u64;
            for k in 0..count {
                out.push((start + k * stride, words[i + 4 + k as usize]));
            }
            i += 4 + count as usize;
        }
    }
}

/// [`switching_activity`](crate::switching_activity) and
/// [`activation_rate`](crate::activation_rate) of one compressed stream in
/// a single pass over its runs, without materializing events. Accumulates
/// the identical integer Hamming/change totals as the slice math, so the
/// result is bit-identical.
pub fn fold_sa_ar(words: &[u32], latency: u64) -> (f64, f64) {
    let mut hamming = 0u64;
    let mut changes = 0u64;
    let mut n = 0u64;
    let mut prev = 0u32;
    let mut have_prev = false;
    let mut i = 0usize;
    while i < words.len() {
        let h = words[i];
        let count = (h & COUNT_MASK) as u64;
        if h & CONST_BIT != 0 {
            // A constant run transitions at most once, at its boundary.
            let v = words[i + 4];
            if have_prev {
                let d = (prev ^ v).count_ones() as u64;
                hamming += d;
                changes += (d != 0) as u64;
            }
            prev = v;
            have_prev = true;
            i += 5;
        } else if h & DELTA_BIT != 0 {
            let v0 = words[i + 3];
            if have_prev {
                let d = (prev ^ v0).count_ones() as u64;
                hamming += d;
                changes += (d != 0) as u64;
            }
            prev = v0;
            have_prev = true;
            let mut j = i + 4;
            for _ in 1..count {
                let v = words[j + 1];
                let d = (prev ^ v).count_ones() as u64;
                hamming += d;
                changes += (d != 0) as u64;
                prev = v;
                j += 2;
            }
            i = j;
        } else {
            for k in 0..count as usize {
                let v = words[i + 4 + k];
                if have_prev {
                    let d = (prev ^ v).count_ones() as u64;
                    hamming += d;
                    changes += (d != 0) as u64;
                }
                prev = v;
                have_prev = true;
            }
            i += 4 + count as usize;
        }
        n += count;
    }
    if latency == 0 || n < 2 {
        return (0.0, 0.0);
    }
    (
        hamming as f64 / latency as f64,
        changes as f64 / latency as f64,
    )
}

/// Encodes one stream whose cycles are a known arithmetic progression
/// (`start + i * stride`) from a contiguous value buffer — the
/// interpreter's fast path: the cycle side needs no per-event delta
/// detection at all. Values are run-length segmented: a maximal equal
/// stretch of at least `MIN_CONST_RUN` becomes a const run, everything
/// else verbatim.
pub fn encode_affine(out: &mut Vec<u32>, start_cycle: u64, stride: u32, vals: &[u32]) -> EventRef {
    let begin = out.len();
    let n = vals.len();
    // Open verbatim run state: header index, or usize::MAX.
    let mut open = usize::MAX;
    let mut i = 0usize;
    while i < n {
        let v = vals[i];
        let mut j = i + 1;
        while j < n && vals[j] == v {
            j += 1;
        }
        let run_len = (j - i) as u32;
        if run_len >= MIN_CONST_RUN {
            if open != usize::MAX {
                out[open] = (out.len() - open - 4) as u32;
                open = usize::MAX;
            }
            let s = start_cycle + i as u64 * stride as u64;
            out.extend_from_slice(&[CONST_BIT | run_len, s as u32, (s >> 32) as u32, stride, v]);
        } else {
            if open == usize::MAX {
                open = out.len();
                let s = start_cycle + i as u64 * stride as u64;
                out.extend_from_slice(&[0, s as u32, (s >> 32) as u32, stride]);
            }
            for _ in 0..run_len {
                out.push(v);
            }
        }
        i = j;
    }
    if open != usize::MAX {
        out[open] = (out.len() - open - 4) as u32;
    }
    EventRef {
        off: begin as u32,
        len: (out.len() - begin) as u32,
    }
}

/// Streaming encoder for arbitrary `(cycle, bits)` sequences (stream
/// merges, tests). Detects arithmetic cycle progressions and constant
/// value stretches on the fly; any push order round-trips exactly, runs
/// just get shorter when cycles are non-decreasing.
pub struct Encoder<'a> {
    out: &'a mut Vec<u32>,
    begin: usize,
    /// Header index of the open run (`usize::MAX` = none).
    run: usize,
    is_const: bool,
    count: u32,
    last_cycle: u64,
    /// Established cycle stride (`None` until the second event).
    stride: Option<u32>,
    const_val: u32,
    last_val: u32,
    /// Trailing equal values inside a verbatim run.
    trail: u32,
}

impl<'a> Encoder<'a> {
    /// Starts a stream at the current end of `out`.
    pub fn new(out: &'a mut Vec<u32>) -> Self {
        let begin = out.len();
        Encoder {
            out,
            begin,
            run: usize::MAX,
            is_const: false,
            count: 0,
            last_cycle: 0,
            stride: None,
            const_val: 0,
            last_val: 0,
            trail: 0,
        }
    }

    fn close_run(&mut self) {
        if self.run != usize::MAX {
            self.out[self.run] = self.count | if self.is_const { CONST_BIT } else { 0 };
            self.out[self.run + 3] = self.stride.unwrap_or(0);
            self.run = usize::MAX;
        }
    }

    fn open_run(&mut self, cycle: u64, bits: u32) {
        self.run = self.out.len();
        self.out
            .extend_from_slice(&[0, cycle as u32, (cycle >> 32) as u32, 0, bits]);
        self.is_const = true;
        self.count = 1;
        self.stride = None;
        self.const_val = bits;
        self.trail = 1;
    }

    /// Appends one event.
    pub fn push(&mut self, cycle: u64, bits: u32) {
        if self.run == usize::MAX {
            self.open_run(cycle, bits);
            self.last_cycle = cycle;
            self.last_val = bits;
            return;
        }
        // Cycle side: the run continues only on a consistent stride.
        let delta = cycle.wrapping_sub(self.last_cycle);
        let fits = cycle >= self.last_cycle && delta <= u32::MAX as u64;
        let stride_ok = match (fits, self.stride) {
            (false, _) => false,
            (true, None) => {
                self.stride = Some(delta as u32);
                true
            }
            (true, Some(s)) => s as u64 == delta,
        };
        if !stride_ok {
            self.close_run();
            self.open_run(cycle, bits);
            self.last_cycle = cycle;
            self.last_val = bits;
            return;
        }
        if self.is_const {
            if bits == self.const_val {
                self.count += 1;
            } else if self.count >= MIN_CONST_RUN {
                // Long constant stretch: keep it as its own run.
                self.close_run();
                self.open_run(cycle, bits);
            } else {
                // Too short to pay a run header: demote to verbatim.
                for _ in 0..self.count - 1 {
                    self.out.push(self.const_val);
                }
                self.out.push(bits);
                self.is_const = false;
                self.count += 1;
                self.trail = 1;
            }
        } else {
            self.out.push(bits);
            self.count += 1;
            self.trail = if bits == self.last_val {
                self.trail + 1
            } else {
                1
            };
            // A constant stretch grew inside the verbatim run: split it out.
            if self.trail == MIN_CONST_RUN && self.count > MIN_CONST_RUN {
                let s = self.stride.expect("run with >1 event has a stride");
                self.out.truncate(self.out.len() - MIN_CONST_RUN as usize);
                self.count -= MIN_CONST_RUN;
                self.close_run();
                let start = cycle - (MIN_CONST_RUN as u64 - 1) * s as u64;
                self.open_run(start, bits);
                self.stride = Some(s);
                self.count = MIN_CONST_RUN;
            }
        }
        self.last_cycle = cycle;
        self.last_val = bits;
    }

    /// Closes the stream and returns its ref.
    pub fn finish(mut self) -> EventRef {
        self.close_run();
        EventRef {
            off: self.begin as u32,
            len: (self.out.len() - self.begin) as u32,
        }
    }
}

/// A read cursor over one encoded stream, yielding `(cycle, bits)` events
/// without materializing them — the stream-merge fast path reads both
/// inputs through cursors at 1–2 words per event.
struct StreamCursor<'a> {
    words: &'a [u32],
    /// Index of the next run header.
    i: usize,
    /// Remaining events in the current run.
    rem: u32,
    cycle: u64,
    stride: u64,
    /// 0 = affine verbatim, 1 = const, 2 = delta.
    mode: u8,
    /// Next value position (affine/delta payload walk).
    vpos: usize,
}

impl<'a> StreamCursor<'a> {
    fn new(words: &'a [u32]) -> Self {
        StreamCursor {
            words,
            i: 0,
            rem: 0,
            cycle: 0,
            stride: 0,
            mode: 0,
            vpos: 0,
        }
    }

    #[inline]
    fn next(&mut self) -> Option<(u64, u32)> {
        if self.rem == 0 {
            if self.i >= self.words.len() {
                return None;
            }
            let h = self.words[self.i];
            self.rem = h & COUNT_MASK;
            self.cycle = self.words[self.i + 1] as u64 | ((self.words[self.i + 2] as u64) << 32);
            if h & CONST_BIT != 0 {
                self.mode = 1;
                self.stride = self.words[self.i + 3] as u64;
                self.vpos = self.i + 4;
                self.i += 5;
            } else if h & DELTA_BIT != 0 {
                self.mode = 2;
                self.vpos = self.i + 3;
                self.i += 4 + 2 * (self.rem as usize - 1);
                self.rem -= 1;
                let ev = (self.cycle, self.words[self.vpos]);
                self.vpos += 1;
                return Some(ev);
            } else {
                self.mode = 0;
                self.stride = self.words[self.i + 3] as u64;
                self.vpos = self.i + 4;
                self.i += 4 + self.rem as usize;
            }
        }
        self.rem -= 1;
        match self.mode {
            1 => {
                let ev = (self.cycle, self.words[self.vpos]);
                self.cycle += self.stride;
                Some(ev)
            }
            2 => {
                self.cycle += self.words[self.vpos] as u64;
                let ev = (self.cycle, self.words[self.vpos + 1]);
                self.vpos += 2;
                Some(ev)
            }
            _ => {
                let ev = (self.cycle, self.words[self.vpos]);
                self.cycle += self.stride;
                self.vpos += 1;
                Some(ev)
            }
        }
    }
}

/// Appends one event to an open delta run (see [`MergeScratch`]); returns
/// the updated `(header_index, count, last_cycle)` state.
#[inline]
fn emit_delta(out: &mut Vec<u32>, state: (usize, u32, u64), c: u64, v: u32) -> (usize, u32, u64) {
    let (hdr, count, last_cycle) = state;
    let d = c.wrapping_sub(last_cycle);
    if hdr != usize::MAX && c >= last_cycle && d <= u32::MAX as u64 {
        out.extend_from_slice(&[d as u32, v]);
        (hdr, count + 1, c)
    } else {
        if hdr != usize::MAX {
            out[hdr] = DELTA_BIT | count;
        }
        let new_hdr = out.len();
        out.extend_from_slice(&[0, c as u32, (c >> 32) as u32, v]);
        (new_hdr, 1, c)
    }
}

/// Merges two encoded streams by cycle entirely in the compressed domain
/// (stable: ties take `a` first, like [`crate::sa::merge_events`]),
/// appending the interleave to `out` as delta runs. Both inputs must be
/// non-empty.
pub fn merge_streams(out: &mut Vec<u32>, a: &[u32], b: &[u32]) -> EventRef {
    let begin = out.len();
    let mut ca = StreamCursor::new(a);
    let mut cb = StreamCursor::new(b);
    let mut ea = ca.next();
    let mut eb = cb.next();
    let mut state = (usize::MAX, 0u32, 0u64);
    loop {
        match (ea, eb) {
            (Some((xc, xv)), Some((yc, _))) if xc <= yc => {
                state = emit_delta(out, state, xc, xv);
                ea = ca.next();
            }
            (_, Some((yc, yv))) => {
                state = emit_delta(out, state, yc, yv);
                eb = cb.next();
            }
            (Some((xc, xv)), None) => {
                state = emit_delta(out, state, xc, xv);
                ea = ca.next();
            }
            (None, None) => break,
        }
    }
    out[state.0] = DELTA_BIT | state.1;
    EventRef {
        off: begin as u32,
        len: (out.len() - begin) as u32,
    }
}

/// One input stream parsed as a single affine cycle progression:
/// possibly several const/affine runs back to back, all with one stride
/// and contiguous starts. This is the shape every interpreter stream has
/// (one arithmetic progression per block, values segmented into
/// const/verbatim runs); merged delta streams are not affine.
#[derive(Clone, Copy)]
struct AffineMeta {
    start: u64,
    stride: u32,
    count: u32,
}

fn parse_affine(words: &[u32]) -> Option<AffineMeta> {
    if words.is_empty() {
        return None;
    }
    let start = stream_first(words);
    let stride = words[3];
    let mut count = 0u64;
    let mut i = 0usize;
    while i < words.len() {
        let h = words[i];
        let run_count = (h & COUNT_MASK) as u64;
        // A one-event run's stride is meaningless; any other run must
        // continue the progression exactly.
        if h & DELTA_BIT != 0 || (run_count > 1 && words[i + 3] != stride) {
            return None;
        }
        let run_start = words[i + 1] as u64 | ((words[i + 2] as u64) << 32);
        if run_start != start + count * stride as u64 {
            return None;
        }
        count += run_count;
        i += run_words(h);
    }
    (count <= COUNT_MASK as u64).then_some(AffineMeta {
        start,
        stride,
        count: count as u32,
    })
}

/// Sequential value reader over an affine-progression stream (no cycle
/// bookkeeping — the aligned merge derives cycles algebraically).
struct AffineReader<'a> {
    words: &'a [u32],
    /// Next run header index.
    i: usize,
    /// Values left in the current run.
    rem: u32,
    is_const: bool,
    const_val: u32,
    vpos: usize,
}

impl<'a> AffineReader<'a> {
    fn new(words: &'a [u32]) -> Self {
        AffineReader {
            words,
            i: 0,
            rem: 0,
            is_const: false,
            const_val: 0,
            vpos: 0,
        }
    }

    #[inline]
    fn next(&mut self) -> u32 {
        if self.rem == 0 {
            let h = self.words[self.i];
            self.rem = h & COUNT_MASK;
            self.is_const = h & CONST_BIT != 0;
            if self.is_const {
                self.const_val = self.words[self.i + 4];
                self.i += 5;
            } else {
                self.vpos = self.i + 4;
                self.i += 4 + self.rem as usize;
            }
        }
        self.rem -= 1;
        if self.is_const {
            self.const_val
        } else {
            let v = self.words[self.vpos];
            self.vpos += 1;
            v
        }
    }
}

/// First event cycle of a non-empty encoded stream.
#[inline]
fn stream_first(words: &[u32]) -> u64 {
    words[1] as u64 | ((words[2] as u64) << 32)
}

/// Last event cycle of a non-empty encoded stream (walks runs; delta runs
/// cost one add per event).
fn stream_last(words: &[u32]) -> u64 {
    let mut i = 0usize;
    let mut last = 0u64;
    while i < words.len() {
        let h = words[i];
        let count = (h & COUNT_MASK) as u64;
        let start = words[i + 1] as u64 | ((words[i + 2] as u64) << 32);
        if h & DELTA_BIT != 0 {
            let mut c = start;
            let mut j = i + 4;
            for _ in 1..count {
                c += words[j] as u64;
                j += 2;
            }
            last = c;
        } else {
            last = start + (count - 1) * words[i + 3] as u64;
        }
        i += run_words(h);
    }
    last
}

/// Aligned-lane fast path: every input is one affine progression with the
/// same stride and count, and the start-cycle spread is smaller than the
/// stride — the shape datapath merging produces when it fuses the
/// parallel lanes of one block. The interleave is then perfectly
/// periodic: iteration `i` emits every lane's `i`-th event in
/// `(start, input index)` order, so the merge is a tight table walk with
/// no per-event comparisons. Returns `None` when the shape doesn't hold.
fn try_merge_aligned(out: &mut Vec<u32>, inputs: &[&[u32]]) -> Option<EventRef> {
    let k = inputs.len();
    let mut meta: [AffineMeta; MERGE_FAN_IN] = [AffineMeta {
        start: 0,
        stride: 0,
        count: 0,
    }; MERGE_FAN_IN];
    for (slot, w) in meta.iter_mut().zip(inputs.iter()) {
        *slot = parse_affine(w)?;
    }
    let (stride, count) = (meta[0].stride, meta[0].count);
    if count == 0 {
        return None;
    }
    for m in meta.iter().take(k) {
        if m.stride != stride || m.count != count {
            return None;
        }
    }
    // Emission order within one iteration: by (start, input index).
    let mut order: [usize; MERGE_FAN_IN] = [0; MERGE_FAN_IN];
    for (i, o) in order.iter_mut().enumerate() {
        *o = i;
    }
    order[..k].sort_by_key(|&i| (meta[i].start, i));
    let spread = meta[order[k - 1]].start - meta[order[0]].start;
    if spread >= stride as u64 {
        return None;
    }
    // Cycle deltas are periodic: within an iteration the start gaps, and
    // the wrap back to the next iteration's first lane.
    let mut deltas: [u32; MERGE_FAN_IN] = [0; MERGE_FAN_IN];
    for j in 1..k {
        deltas[j] = (meta[order[j]].start - meta[order[j - 1]].start) as u32;
    }
    let wrap = stride - spread as u32;
    let begin = out.len();
    let s0 = meta[order[0]].start;
    out.extend_from_slice(&[DELTA_BIT | (count * k as u32), s0 as u32, (s0 >> 32) as u32]);
    let mut readers: [AffineReader<'_>; MERGE_FAN_IN] =
        std::array::from_fn(|j| AffineReader::new(inputs[order[..k].get(j).copied().unwrap_or(0)]));
    out.push(readers[0].next());
    for j in 1..k {
        out.push(deltas[j]);
        out.push(readers[j].next());
    }
    for _ in 1..count {
        out.push(wrap);
        out.push(readers[0].next());
        for j in 1..k {
            out.push(deltas[j]);
            out.push(readers[j].next());
        }
    }
    Some(EventRef {
        off: begin as u32,
        len: (out.len() - begin) as u32,
    })
}

/// Merges one cluster of time-overlapping inputs (original member order):
/// aligned lanes when the shape allows, cursors otherwise.
fn merge_cluster(out: &mut Vec<u32>, inputs: &[&[u32]]) {
    if try_merge_aligned(out, inputs).is_some() {
        return;
    }
    if let [a, b] = *inputs {
        merge_streams(out, a, b);
        return;
    }
    let k = inputs.len();
    let mut cursors: [StreamCursor<'_>; MERGE_FAN_IN] =
        std::array::from_fn(|i| StreamCursor::new(inputs.get(i).copied().unwrap_or(&[])));
    let mut heads: [(u64, u32); MERGE_FAN_IN] = [(u64::MAX, 0); MERGE_FAN_IN];
    for (h, c) in heads.iter_mut().zip(cursors.iter_mut()) {
        if let Some(ev) = c.next() {
            *h = ev;
        }
    }
    let mut state = (usize::MAX, 0u32, 0u64);
    loop {
        // Strict `<` keeps the earliest stream first on cycle ties;
        // exhausted cursors park at u64::MAX.
        let mut best = 0usize;
        let mut best_c = heads[0].0;
        for (s, h) in heads.iter().enumerate().take(k).skip(1) {
            if h.0 < best_c {
                best_c = h.0;
                best = s;
            }
        }
        if best_c == u64::MAX {
            break;
        }
        state = emit_delta(out, state, heads[best].0, heads[best].1);
        heads[best] = cursors[best].next().unwrap_or((u64::MAX, 0));
    }
    out[state.0] = DELTA_BIT | state.1;
}

/// K-way compressed-domain merge of up to [`MERGE_FAN_IN`] non-empty
/// streams (stable: equal cycles take the earliest stream first —
/// bit-identical to a left-fold of pairwise [`crate::sa::merge_events`]).
/// Appends the interleave to `out`.
///
/// Inputs are first partitioned into clusters of time-overlapping
/// streams: streams of *different blocks* occupy disjoint cycle windows
/// (blocks execute in distributed order), so their merge is pure
/// concatenation of cluster results — singleton clusters are copied
/// verbatim, preserving const/affine runs, and only genuinely
/// interleaving streams pay for a real merge. Strict window disjointness
/// means cycle ties can only occur inside one cluster, where members keep
/// their original relative order — so the tie-break is identical to the
/// pairwise fold.
pub fn merge_streams_k(out: &mut Vec<u32>, inputs: &[&[u32]]) -> EventRef {
    debug_assert!((2..=MERGE_FAN_IN).contains(&inputs.len()));
    let k = inputs.len();
    let begin = out.len();
    let mut order: [(u64, usize); MERGE_FAN_IN] = [(0, 0); MERGE_FAN_IN];
    let mut last: [u64; MERGE_FAN_IN] = [0; MERGE_FAN_IN];
    for (i, w) in inputs.iter().enumerate() {
        order[i] = (stream_first(w), i);
        last[i] = stream_last(w);
    }
    order[..k].sort_unstable();
    let mut ci = 0usize;
    while ci < k {
        // Grow the cluster while the next stream's window starts at or
        // before the cluster's end (ties must stay inside one cluster).
        let mut cj = ci;
        let mut end = last[order[ci].1];
        while cj + 1 < k && order[cj + 1].0 <= end {
            cj += 1;
            end = end.max(last[order[cj].1]);
        }
        if ci == 0 && cj == k - 1 {
            // One cluster spanning everything: merge in the given order.
            merge_cluster(out, inputs);
            break;
        }
        if cj == ci {
            out.extend_from_slice(inputs[order[ci].1]);
        } else {
            // Cluster members in original member order.
            let mut idx: [usize; MERGE_FAN_IN] = [0; MERGE_FAN_IN];
            let m = cj - ci + 1;
            for (slot, &(_, i)) in idx.iter_mut().zip(order[ci..=cj].iter()) {
                *slot = i;
            }
            idx[..m].sort_unstable();
            let mut members: [&[u32]; MERGE_FAN_IN] = [&[]; MERGE_FAN_IN];
            for (slot, &i) in members.iter_mut().zip(idx[..m].iter()) {
                *slot = inputs[i];
            }
            merge_cluster(out, &members[..m]);
        }
        ci = cj + 1;
    }
    EventRef {
        off: begin as u32,
        len: (out.len() - begin) as u32,
    }
}

/// Maximum fan-in of [`merge_streams_k`]; wider groups fall back to the
/// decode-based [`MergeScratch`] path.
pub const MERGE_FAN_IN: usize = 16;

/// Reusable decode buffers for k-way stream merges (one per caller, so a
/// pass fusing hundreds of parallel-edge groups performs no per-merge
/// allocations and decodes every input exactly once — sequential pairwise
/// merging re-decodes the accumulating stream per pair, which is
/// quadratic). Two-phase because the common caller appends to the same
/// arena it reads from: [`MergeScratch::begin`] + [`MergeScratch::add`]
/// decode the inputs (immutable borrows end), then
/// [`MergeScratch::encode_merged`] writes the interleave.
#[derive(Debug, Default)]
pub struct MergeScratch {
    bufs: Vec<Vec<(u64, u32)>>,
    used: usize,
    heads: Vec<usize>,
    /// Staging for compressed-domain merges whose output arena is also an
    /// input (append while reading would alias).
    pub words_tmp: Vec<u32>,
}

impl MergeScratch {
    /// Starts a new merge, dropping previously added inputs (buffer
    /// capacity is kept).
    pub fn begin(&mut self) {
        self.used = 0;
    }

    /// Decodes one more input stream.
    pub fn add(&mut self, words: &[u32]) {
        if self.used == self.bufs.len() {
            self.bufs.push(Vec::new());
        }
        let buf = &mut self.bufs[self.used];
        buf.clear();
        decode_into(buf, words);
        self.used += 1;
    }

    /// Merges the decoded inputs by cycle (stable: equal cycles take the
    /// earliest-added stream first, matching a left-fold of
    /// [`crate::sa::merge_events`]) and encodes the interleave into `out`
    /// as delta runs — a time-interleave of affine streams has no single
    /// stride, and delta runs make the merge a plain pointer walk at
    /// 2 words per event.
    pub fn encode_merged(&mut self, out: &mut Vec<u32>) -> EventRef {
        let begin = out.len();
        let bufs = &self.bufs[..self.used];
        if bufs.iter().all(|b| b.is_empty()) {
            return EventRef {
                off: begin as u32,
                len: 0,
            };
        }
        // One shared delta-run emitter (see [`emit_delta`]).
        let mut state = (usize::MAX, 0u32, 0u64);
        if bufs.len() == 2 {
            // Two-pointer fast path (the overwhelmingly common group size).
            let (ea, eb) = (&bufs[0][..], &bufs[1][..]);
            let (mut i, mut j) = (0, 0);
            while i < ea.len() && j < eb.len() {
                if ea[i].0 <= eb[j].0 {
                    state = emit_delta(out, state, ea[i].0, ea[i].1);
                    i += 1;
                } else {
                    state = emit_delta(out, state, eb[j].0, eb[j].1);
                    j += 1;
                }
            }
            for &(c, v) in &ea[i..] {
                state = emit_delta(out, state, c, v);
            }
            for &(c, v) in &eb[j..] {
                state = emit_delta(out, state, c, v);
            }
        } else {
            // k-way linear-scan merge; strict `<` keeps the earliest-added
            // stream first on cycle ties.
            self.heads.clear();
            self.heads.resize(bufs.len(), 0);
            loop {
                let mut best = usize::MAX;
                let mut best_c = u64::MAX;
                for (s, buf) in bufs.iter().enumerate() {
                    if self.heads[s] < buf.len() {
                        let c = buf[self.heads[s]].0;
                        if c < best_c {
                            best_c = c;
                            best = s;
                        }
                    }
                }
                if best == usize::MAX {
                    break;
                }
                let (c, v) = bufs[best][self.heads[best]];
                state = emit_delta(out, state, c, v);
                self.heads[best] += 1;
            }
        }
        out[state.0] = DELTA_BIT | state.1;
        EventRef {
            off: begin as u32,
            len: (out.len() - begin) as u32,
        }
    }
}

/// One-shot [`MergeScratch`] merge of two encoded streams into `out`.
pub fn merge_encoded(
    out: &mut Vec<u32>,
    a: &[u32],
    b: &[u32],
    scratch: &mut MergeScratch,
) -> EventRef {
    scratch.begin();
    scratch.add(a);
    scratch.add(b);
    scratch.encode_merged(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::{activation_rate, merge_events, sa_ar, switching_activity};

    fn roundtrip(events: &[(u64, u32)]) -> Vec<(u64, u32)> {
        let mut arena = EventArena::new();
        let r = arena.push_events(events);
        arena.decode(r)
    }

    #[test]
    fn empty_stream() {
        let mut arena = EventArena::new();
        let r = arena.push_events(&[]);
        assert!(r.is_empty());
        assert_eq!(arena.count(r), 0);
        assert_eq!(arena.decode(r), vec![]);
        assert_eq!(arena.sa_ar(r, 10), (0.0, 0.0));
    }

    #[test]
    fn roundtrip_exact() {
        let cases: Vec<Vec<(u64, u32)>> = vec![
            vec![(0, 7)],
            vec![(0, 1), (1, 2), (2, 3)],
            vec![(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)],
            vec![(0, 5), (3, 5), (6, 9), (7, 9), (20, 1)],
            vec![
                (0, 0),
                (1, 0),
                (2, 0),
                (3, 0),
                (4, 1),
                (5, 1),
                (6, 1),
                (7, 1),
            ],
            vec![(10, 4), (12, 4), (14, 4), (16, 8), (18, 8), (21, 8)],
            // high-cycle start (start_hi path)
            vec![(1 << 40, 1), ((1 << 40) + 2, 2)],
        ];
        for ev in cases {
            assert_eq!(roundtrip(&ev), ev, "case {ev:?}");
        }
    }

    #[test]
    fn out_of_order_cycles_still_roundtrip() {
        let ev = vec![(5u64, 1u32), (2, 2), (9, 3), (9, 4)];
        assert_eq!(roundtrip(&ev), ev);
    }

    #[test]
    fn constant_stretches_compress() {
        let ev: Vec<(u64, u32)> = (0..1000u64).map(|c| (c, 42)).collect();
        let mut arena = EventArena::new();
        let r = arena.push_events(&ev);
        assert_eq!(r.len, 5, "one const run expected");
        assert_eq!(arena.count(r), 1000);
        assert_eq!(arena.decode(r), ev);
    }

    #[test]
    fn verbatim_trailing_repeats_promote() {
        let mut ev: Vec<(u64, u32)> = vec![(0, 1), (1, 2), (2, 3)];
        ev.extend((3..40u64).map(|c| (c, 9)));
        let rt = roundtrip(&ev);
        assert_eq!(rt, ev);
        let mut arena = EventArena::new();
        let r = arena.push_events(&ev);
        // verbatim prefix + const tail: far smaller than one value per event
        assert!(
            r.len < ev.len() as u32,
            "tail must compress: {} words",
            r.len
        );
    }

    #[test]
    fn fold_bitwise_matches_slice_math() {
        let ev: Vec<(u64, u32)> = vec![
            (0, 0),
            (1, 0xFF),
            (2, 0xFF),
            (3, 0xFF),
            (4, 0xFF),
            (5, 0xFF),
            (6, 0x0F),
            (9, 0xF0),
        ];
        let mut arena = EventArena::new();
        let r = arena.push_events(&ev);
        let (sa_c, ar_c) = arena.sa_ar(r, 13);
        let (sa_n, ar_n) = sa_ar(&ev, 13);
        assert_eq!(sa_c.to_bits(), sa_n.to_bits());
        assert_eq!(ar_c.to_bits(), ar_n.to_bits());
        assert_eq!(sa_c.to_bits(), switching_activity(&ev, 13).to_bits());
        assert_eq!(ar_c.to_bits(), activation_rate(&ev, 13).to_bits());
    }

    #[test]
    fn merge_encoded_matches_merge_events() {
        let cases: Vec<(Vec<(u64, u32)>, Vec<(u64, u32)>)> = vec![
            (vec![(0, 1), (4, 2), (8, 3)], vec![(1, 9), (4, 8), (20, 7)]),
            (vec![], vec![(1, 9), (2, 8)]),
            (vec![(5, 5)], vec![]),
            (
                (0..40u64).map(|c| (c * 2, c as u32)).collect(),
                (0..40u64).map(|c| (c * 2 + 1, 7)).collect(),
            ),
        ];
        let mut scratch = MergeScratch::default();
        for (a, b) in cases {
            let mut arena = EventArena::new();
            let ra = arena.push_events(&a);
            let rb = arena.push_events(&b);
            let mut out = Vec::new();
            let rm = merge_encoded(&mut out, arena.stream(ra), arena.stream(rb), &mut scratch);
            let merged = decode(&out[rm.off as usize..(rm.off + rm.len) as usize]);
            assert_eq!(merged, merge_events(&a, &b), "case a={a:?} b={b:?}");
        }
    }

    #[test]
    fn merged_stream_folds_bit_identically() {
        let a: Vec<(u64, u32)> = (0..30u64).map(|c| (c * 3, (c * 17) as u32)).collect();
        let b: Vec<(u64, u32)> = (0..30u64).map(|c| (c * 3 + 1, 0xF0)).collect();
        let naive = merge_events(&a, &b);
        let mut arena = EventArena::new();
        let ra = arena.push_events(&a);
        let rb = arena.push_events(&b);
        let mut out = Vec::new();
        let rm = merge_encoded(
            &mut out,
            arena.stream(ra),
            arena.stream(rb),
            &mut MergeScratch::default(),
        );
        let run = &out[rm.off as usize..(rm.off + rm.len) as usize];
        let (sa_c, ar_c) = fold_sa_ar(run, 97);
        let (sa_n, ar_n) = sa_ar(&naive, 97);
        assert_eq!(sa_c.to_bits(), sa_n.to_bits());
        assert_eq!(ar_c.to_bits(), ar_n.to_bits());
        assert_eq!(event_count(run), naive.len());
    }
}
