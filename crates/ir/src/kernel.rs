//! Kernel descriptions: structured affine loop nests over arrays.
//!
//! A [`Kernel`] is the C++-source-level view of an HLS design (Fig. 1 of the
//! paper): array declarations plus a tree of `for` loops containing
//! assignment statements. Directive application (pipelining, unrolling,
//! partitioning) happens later in the `pg-hls` crate, so one kernel spawns a
//! whole design space.

use crate::expr::{ArrayRef, Expr};
use std::collections::BTreeMap;
use std::fmt;

/// How an array interfaces with the outside of the kernel. The distinction
/// drives buffer-insertion node typing (I/O vs internal buffer) in the graph
/// construction flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayKind {
    /// Read-only input visible at the kernel interface.
    Input,
    /// Output written by the kernel (may also be read, e.g. accumulators).
    Output,
    /// Internal scratch buffer never exposed at the interface.
    Temp,
}

impl ArrayKind {
    /// `true` for interface (I/O) arrays.
    pub fn is_io(self) -> bool {
        matches!(self, ArrayKind::Input | ArrayKind::Output)
    }
}

/// A declared array with constant dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Array name, unique within the kernel.
    pub name: String,
    /// Constant extent per dimension.
    pub dims: Vec<usize>,
    /// Interface classification.
    pub kind: ArrayKind,
}

impl ArrayDecl {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// `true` when the array has zero elements (never valid after build).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An assignment statement `target = expr;`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Store destination.
    pub target: ArrayRef,
    /// Right-hand side.
    pub expr: Expr,
}

/// A counted loop `for var in 0..trip { body }`.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// Induction-variable name; also the label directives refer to.
    pub var: String,
    /// Constant trip count.
    pub trip: usize,
    /// Loop body.
    pub body: Vec<Block>,
}

/// A node in the kernel body tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// A nested loop.
    Loop(Loop),
    /// A straight-line statement.
    Stmt(Stmt),
}

/// A complete kernel: arrays, scalar arguments and the loop-nest body.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (e.g. `"gemm"`).
    pub name: String,
    /// Declared arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Scalar floating-point arguments (e.g. `alpha`, `beta`).
    pub scalars: Vec<String>,
    /// Top-level body.
    pub body: Vec<Block>,
}

impl Kernel {
    /// Looks up an array declaration by name.
    pub fn array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// All loop labels (induction-variable names) in pre-order.
    pub fn loop_labels(&self) -> Vec<String> {
        fn walk(blocks: &[Block], out: &mut Vec<String>) {
            for b in blocks {
                if let Block::Loop(l) = b {
                    out.push(l.var.clone());
                    walk(&l.body, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }

    /// Labels of *innermost* loops (loops containing no nested loop), the
    /// targets of pipeline/unroll directives.
    pub fn innermost_loops(&self) -> Vec<String> {
        fn walk(blocks: &[Block], out: &mut Vec<String>) {
            for b in blocks {
                if let Block::Loop(l) = b {
                    if l.body.iter().all(|c| matches!(c, Block::Stmt(_))) {
                        out.push(l.var.clone());
                    } else {
                        walk(&l.body, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }

    /// Trip count of the loop labelled `var`, if present.
    pub fn trip_of(&self, var: &str) -> Option<usize> {
        fn walk(blocks: &[Block], var: &str) -> Option<usize> {
            for b in blocks {
                if let Block::Loop(l) = b {
                    if l.var == var {
                        return Some(l.trip);
                    }
                    if let Some(t) = walk(&l.body, var) {
                        return Some(t);
                    }
                }
            }
            None
        }
        walk(&self.body, var)
    }

    /// Total number of statements in the kernel.
    pub fn stmt_count(&self) -> usize {
        fn walk(blocks: &[Block]) -> usize {
            blocks
                .iter()
                .map(|b| match b {
                    Block::Stmt(_) => 1,
                    Block::Loop(l) => walk(&l.body),
                })
                .sum()
        }
        walk(&self.body)
    }

    /// Validates structural well-formedness. Called by
    /// [`KernelBuilder::build`]; exposed for kernels assembled manually.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] describing the first violation found:
    /// duplicate array/loop names, references to undeclared arrays, subscript
    /// arity mismatches, out-of-bounds affine subscripts, or use of loop
    /// variables outside their scope.
    pub fn validate(&self) -> Result<(), KernelError> {
        let mut names = std::collections::HashSet::new();
        for a in &self.arrays {
            if !names.insert(a.name.clone()) {
                return Err(KernelError::DuplicateArray(a.name.clone()));
            }
            if a.dims.is_empty() || a.is_empty() {
                return Err(KernelError::EmptyArray(a.name.clone()));
            }
        }
        let mut loop_names = std::collections::HashSet::new();
        let mut trips: BTreeMap<String, usize> = BTreeMap::new();
        self.validate_blocks(&self.body, &mut loop_names, &mut trips)
    }

    fn validate_blocks(
        &self,
        blocks: &[Block],
        loop_names: &mut std::collections::HashSet<String>,
        trips: &mut BTreeMap<String, usize>,
    ) -> Result<(), KernelError> {
        for b in blocks {
            match b {
                Block::Loop(l) => {
                    if !loop_names.insert(l.var.clone()) {
                        return Err(KernelError::DuplicateLoop(l.var.clone()));
                    }
                    if l.trip == 0 {
                        return Err(KernelError::ZeroTrip(l.var.clone()));
                    }
                    trips.insert(l.var.clone(), l.trip);
                    self.validate_blocks(&l.body, loop_names, trips)?;
                    trips.remove(&l.var);
                }
                Block::Stmt(s) => {
                    self.validate_ref(&s.target, trips)?;
                    let mut refs = Vec::new();
                    s.expr.collect_arrays(&mut refs);
                    for r in refs {
                        self.validate_ref(r, trips)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_ref(
        &self,
        r: &ArrayRef,
        trips: &BTreeMap<String, usize>,
    ) -> Result<(), KernelError> {
        let decl = self
            .array(&r.array)
            .ok_or_else(|| KernelError::UnknownArray(r.array.clone()))?;
        if decl.dims.len() != r.indices.len() {
            return Err(KernelError::ArityMismatch {
                array: r.array.clone(),
                expected: decl.dims.len(),
                got: r.indices.len(),
            });
        }
        for (dim, (idx, &extent)) in r.indices.iter().zip(&decl.dims).enumerate() {
            for v in idx.vars() {
                if !trips.contains_key(v) {
                    return Err(KernelError::UnboundVar {
                        var: v.to_string(),
                        array: r.array.clone(),
                    });
                }
            }
            if idx.min_value(trips) < 0 || idx.max_value(trips) >= extent as i64 {
                return Err(KernelError::OutOfBounds {
                    array: r.array.clone(),
                    dim,
                    extent,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn walk(blocks: &[Block], depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let pad = "  ".repeat(depth);
            for b in blocks {
                match b {
                    Block::Loop(l) => {
                        writeln!(f, "{pad}for {} in 0..{} {{", l.var, l.trip)?;
                        walk(&l.body, depth + 1, f)?;
                        writeln!(f, "{pad}}}")?;
                    }
                    Block::Stmt(s) => writeln!(f, "{pad}{} = {};", s.target, s.expr)?,
                }
            }
            Ok(())
        }
        writeln!(f, "kernel {} {{", self.name)?;
        for a in &self.arrays {
            writeln!(f, "  {:?} {}{:?};", a.kind, a.name, a.dims)?;
        }
        walk(&self.body, 1, f)?;
        writeln!(f, "}}")
    }
}

/// Errors detected by [`Kernel::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Two arrays share a name.
    DuplicateArray(String),
    /// An array has no elements.
    EmptyArray(String),
    /// Two loops share an induction-variable name.
    DuplicateLoop(String),
    /// A loop has trip count zero.
    ZeroTrip(String),
    /// A statement references an undeclared array.
    UnknownArray(String),
    /// Subscript count differs from the array rank.
    ArityMismatch {
        /// Offending array.
        array: String,
        /// Declared rank.
        expected: usize,
        /// Referenced rank.
        got: usize,
    },
    /// A subscript uses a variable not bound by an enclosing loop.
    UnboundVar {
        /// The unbound variable.
        var: String,
        /// Array whose subscript used it.
        array: String,
    },
    /// A subscript can exceed the declared extent.
    OutOfBounds {
        /// Offending array.
        array: String,
        /// Dimension index.
        dim: usize,
        /// Declared extent.
        extent: usize,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::DuplicateArray(a) => write!(f, "duplicate array `{a}`"),
            KernelError::EmptyArray(a) => write!(f, "array `{a}` has no elements"),
            KernelError::DuplicateLoop(v) => write!(f, "duplicate loop variable `{v}`"),
            KernelError::ZeroTrip(v) => write!(f, "loop `{v}` has zero trip count"),
            KernelError::UnknownArray(a) => write!(f, "unknown array `{a}`"),
            KernelError::ArityMismatch {
                array,
                expected,
                got,
            } => write!(
                f,
                "array `{array}` expects {expected} subscripts, got {got}"
            ),
            KernelError::UnboundVar { var, array } => {
                write!(f, "variable `{var}` unbound in subscript of `{array}`")
            }
            KernelError::OutOfBounds { array, dim, extent } => write!(
                f,
                "subscript of `{array}` dimension {dim} can exceed extent {extent}"
            ),
        }
    }
}

impl std::error::Error for KernelError {}

/// Scope handle used inside [`KernelBuilder`] closures to emit loops and
/// statements.
#[derive(Debug)]
pub struct BodyBuilder {
    blocks: Vec<Block>,
}

impl BodyBuilder {
    fn new() -> Self {
        BodyBuilder { blocks: Vec::new() }
    }

    /// Opens a nested loop `for var in 0..trip`.
    pub fn loop_<F: FnOnce(&mut BodyBuilder)>(&mut self, var: &str, trip: usize, f: F) {
        let mut inner = BodyBuilder::new();
        f(&mut inner);
        self.blocks.push(Block::Loop(Loop {
            var: var.to_string(),
            trip,
            body: inner.blocks,
        }));
    }

    /// Emits `target = expr;`.
    pub fn assign<T: Into<ArrayRef>>(&mut self, target: T, expr: Expr) {
        self.blocks.push(Block::Stmt(Stmt {
            target: target.into(),
            expr,
        }));
    }
}

/// Fluent builder for [`Kernel`] values.
///
/// # Examples
///
/// ```
/// use pg_ir::{ArrayKind, KernelBuilder};
/// use pg_ir::expr::{aff, Expr};
/// let k = KernelBuilder::new("scale")
///     .array("x", &[8], ArrayKind::Input)
///     .array("y", &[8], ArrayKind::Output)
///     .scalar("alpha")
///     .loop_("i", 8, |b| {
///         b.assign(("y", vec![aff("i")]),
///                  Expr::scalar("alpha") * Expr::load("x", vec![aff("i")]));
///     })
///     .build()?;
/// assert_eq!(k.stmt_count(), 1);
/// # Ok::<(), pg_ir::KernelError>(())
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    kernel: Kernel,
    top: BodyBuilder,
}

impl KernelBuilder {
    /// Starts a kernel with the given name.
    pub fn new(name: &str) -> Self {
        KernelBuilder {
            kernel: Kernel {
                name: name.to_string(),
                arrays: Vec::new(),
                scalars: Vec::new(),
                body: Vec::new(),
            },
            top: BodyBuilder::new(),
        }
    }

    /// Declares an array.
    pub fn array(mut self, name: &str, dims: &[usize], kind: ArrayKind) -> Self {
        self.kernel.arrays.push(ArrayDecl {
            name: name.to_string(),
            dims: dims.to_vec(),
            kind,
        });
        self
    }

    /// Declares a scalar floating-point argument.
    pub fn scalar(mut self, name: &str) -> Self {
        self.kernel.scalars.push(name.to_string());
        self
    }

    /// Opens a top-level loop.
    pub fn loop_<F: FnOnce(&mut BodyBuilder)>(mut self, var: &str, trip: usize, f: F) -> Self {
        self.top.loop_(var, trip, f);
        self
    }

    /// Finishes and validates the kernel.
    ///
    /// # Errors
    ///
    /// Returns the first [`KernelError`] found by [`Kernel::validate`].
    pub fn build(mut self) -> Result<Kernel, KernelError> {
        self.kernel.body = self.top.blocks;
        self.kernel.validate()?;
        Ok(self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{aff, AffineExpr};

    fn axpy() -> Kernel {
        KernelBuilder::new("axpy")
            .array("a", &[16], ArrayKind::Input)
            .array("x", &[16], ArrayKind::Input)
            .array("y", &[16], ArrayKind::Output)
            .loop_("i", 16, |b| {
                b.assign(
                    ("y", vec![aff("i")]),
                    Expr::load("y", vec![aff("i")])
                        + Expr::load("a", vec![aff("i")]) * Expr::load("x", vec![aff("i")]),
                );
            })
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_validates() {
        let k = axpy();
        assert_eq!(k.loop_labels(), vec!["i"]);
        assert_eq!(k.innermost_loops(), vec!["i"]);
        assert_eq!(k.trip_of("i"), Some(16));
        assert_eq!(k.stmt_count(), 1);
    }

    #[test]
    fn rejects_unknown_array() {
        let err = KernelBuilder::new("bad")
            .array("x", &[4], ArrayKind::Input)
            .loop_("i", 4, |b| {
                b.assign(("nope", vec![aff("i")]), Expr::Const(0.0));
            })
            .build()
            .unwrap_err();
        assert_eq!(err, KernelError::UnknownArray("nope".to_string()));
    }

    #[test]
    fn rejects_out_of_bounds() {
        let err = KernelBuilder::new("bad")
            .array("x", &[4], ArrayKind::Output)
            .loop_("i", 8, |b| {
                b.assign(("x", vec![aff("i")]), Expr::Const(0.0));
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, KernelError::OutOfBounds { .. }));
    }

    #[test]
    fn rejects_unbound_variable() {
        let err = KernelBuilder::new("bad")
            .array("x", &[4], ArrayKind::Output)
            .loop_("i", 4, |b| {
                b.assign(("x", vec![aff("j")]), Expr::Const(0.0));
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, KernelError::UnboundVar { .. }));
    }

    #[test]
    fn rejects_duplicate_loop_var() {
        let err = KernelBuilder::new("bad")
            .array("x", &[4, 4], ArrayKind::Output)
            .loop_("i", 4, |b| {
                b.loop_("i", 4, |b2| {
                    b2.assign(("x", vec![aff("i"), aff("i")]), Expr::Const(0.0));
                });
            })
            .build()
            .unwrap_err();
        assert_eq!(err, KernelError::DuplicateLoop("i".to_string()));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let err = KernelBuilder::new("bad")
            .array("x", &[4, 4], ArrayKind::Output)
            .loop_("i", 4, |b| {
                b.assign(("x", vec![aff("i")]), Expr::Const(0.0));
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, KernelError::ArityMismatch { .. }));
    }

    #[test]
    fn rejects_zero_trip() {
        let err = KernelBuilder::new("bad")
            .array("x", &[4], ArrayKind::Output)
            .loop_("i", 0, |b| {
                b.assign(("x", vec![AffineExpr::constant(0)]), Expr::Const(0.0));
            })
            .build()
            .unwrap_err();
        assert_eq!(err, KernelError::ZeroTrip("i".to_string()));
    }

    #[test]
    fn nested_innermost_detection() {
        let k = KernelBuilder::new("mm")
            .array("c", &[4, 4], ArrayKind::Output)
            .loop_("i", 4, |b| {
                b.loop_("j", 4, |b| {
                    b.assign(("c", vec![aff("i"), aff("j")]), Expr::Const(0.0));
                });
            })
            .build()
            .unwrap();
        assert_eq!(k.loop_labels(), vec!["i", "j"]);
        assert_eq!(k.innermost_loops(), vec!["j"]);
    }

    #[test]
    fn display_renders_loops() {
        let s = axpy().to_string();
        assert!(s.contains("for i in 0..16"));
        assert!(s.contains("y[i]"));
    }
}
