//! The IR opcode taxonomy and the arithmetic/non-arithmetic classification
//! used to type graph edges.
//!
//! The paper classifies DFG nodes into **arithmetic (A)** and
//! **non-arithmetic (N)** nodes and annotates each edge with one of the four
//! source→sink relations A→A, A→N, N→A, N→N (§III-A). [`Opcode::is_arithmetic`]
//! implements that split; [`Opcode::index`] provides the stable position used
//! for one-hot feature encoding.

use std::fmt;

/// LLVM-like IR opcodes emitted by the HLS front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    /// Stack/local memory allocation for an array.
    Alloca,
    /// Address computation into an array.
    GetElementPtr,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Floating-point addition.
    FAdd,
    /// Floating-point subtraction.
    FSub,
    /// Floating-point multiplication.
    FMul,
    /// Floating-point division.
    FDiv,
    /// Floating-point comparison.
    FCmp,
    /// Integer addition (index/loop arithmetic).
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication (index arithmetic).
    Mul,
    /// Integer comparison (loop exit tests).
    ICmp,
    /// Sign extension (trimmed by the graph flow).
    SExt,
    /// Zero extension (trimmed by the graph flow).
    ZExt,
    /// Bit truncation (trimmed by the graph flow).
    Trunc,
    /// Bit-pattern reinterpretation (trimmed by the graph flow).
    BitCast,
    /// SSA phi for loop induction variables.
    Phi,
    /// Branch terminating a loop body.
    Br,
    /// Two-way select.
    Select,
    /// Function return.
    Ret,
}

/// Coarse structural class of an opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Compute units (adders, multipliers, comparators).
    Arithmetic,
    /// Memory interface operations.
    Memory,
    /// Bit-level casts producing trivial hardware.
    Cast,
    /// Control flow.
    Control,
}

impl Opcode {
    /// All opcodes in one-hot order.
    pub const ALL: [Opcode; 21] = [
        Opcode::Alloca,
        Opcode::GetElementPtr,
        Opcode::Load,
        Opcode::Store,
        Opcode::FAdd,
        Opcode::FSub,
        Opcode::FMul,
        Opcode::FDiv,
        Opcode::FCmp,
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::ICmp,
        Opcode::SExt,
        Opcode::ZExt,
        Opcode::Trunc,
        Opcode::BitCast,
        Opcode::Phi,
        Opcode::Br,
        Opcode::Select,
        Opcode::Ret,
    ];

    /// Number of distinct opcodes (one-hot width).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable one-hot index of this opcode.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|o| *o == self)
            .expect("opcode listed in ALL")
    }

    /// Structural class.
    pub fn class(self) -> OpClass {
        use Opcode::*;
        match self {
            Alloca | GetElementPtr | Load | Store => OpClass::Memory,
            FAdd | FSub | FMul | FDiv | FCmp | Add | Sub | Mul | ICmp => OpClass::Arithmetic,
            SExt | ZExt | Trunc | BitCast => OpClass::Cast,
            Phi | Br | Select | Ret => OpClass::Control,
        }
    }

    /// `true` for arithmetic (A) nodes in the paper's A/N edge typing.
    pub fn is_arithmetic(self) -> bool {
        self.class() == OpClass::Arithmetic
    }

    /// `true` for opcodes bypassed by graph trimming ("bit truncation and
    /// signed extension ... produce trivial hardware entities", §III-A),
    /// plus pure control flow that carries no datapath.
    pub fn is_trimmable(self) -> bool {
        matches!(
            self,
            Opcode::SExt
                | Opcode::ZExt
                | Opcode::Trunc
                | Opcode::BitCast
                | Opcode::Br
                | Opcode::Ret
        )
    }

    /// `true` for floating-point data operations.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv | Opcode::FCmp
        )
    }

    /// Mnemonic as it would appear in LLVM-style IR text.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Alloca => "alloca",
            GetElementPtr => "getelementptr",
            Load => "load",
            Store => "store",
            FAdd => "fadd",
            FSub => "fsub",
            FMul => "fmul",
            FDiv => "fdiv",
            FCmp => "fcmp",
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            ICmp => "icmp",
            SExt => "sext",
            ZExt => "zext",
            Trunc => "trunc",
            BitCast => "bitcast",
            Phi => "phi",
            Br => "br",
            Select => "select",
            Ret => "ret",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl OpClass {
    /// All classes in one-hot order.
    pub const ALL: [OpClass; 4] = [
        OpClass::Arithmetic,
        OpClass::Memory,
        OpClass::Cast,
        OpClass::Control,
    ];

    /// Number of classes (one-hot width, excluding the buffer class added by
    /// graph construction).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable one-hot index.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|c| *c == self)
            .expect("class listed in ALL")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = vec![false; Opcode::COUNT];
        for op in Opcode::ALL {
            let i = op.index();
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn arithmetic_split_matches_paper() {
        assert!(Opcode::FAdd.is_arithmetic());
        assert!(Opcode::FMul.is_arithmetic());
        assert!(Opcode::Add.is_arithmetic());
        assert!(Opcode::ICmp.is_arithmetic());
        assert!(!Opcode::Load.is_arithmetic());
        assert!(!Opcode::Store.is_arithmetic());
        assert!(!Opcode::SExt.is_arithmetic());
        assert!(!Opcode::Phi.is_arithmetic());
    }

    #[test]
    fn trimmables_are_casts_and_control() {
        assert!(Opcode::SExt.is_trimmable());
        assert!(Opcode::Trunc.is_trimmable());
        assert!(Opcode::Br.is_trimmable());
        assert!(!Opcode::FAdd.is_trimmable());
        assert!(!Opcode::Load.is_trimmable());
        // Phi is retained: the paper keeps recurrence structure visible.
        assert!(!Opcode::Phi.is_trimmable());
    }

    #[test]
    fn float_ops() {
        assert!(Opcode::FDiv.is_float());
        assert!(!Opcode::Mul.is_float());
    }

    #[test]
    fn class_indices_unique() {
        let idx: Vec<usize> = OpClass::ALL.iter().map(|c| c.index()).collect();
        let mut dedup = idx.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), OpClass::COUNT);
    }

    #[test]
    fn mnemonics_lowercase() {
        for op in Opcode::ALL {
            assert_eq!(op.mnemonic(), op.mnemonic().to_lowercase());
        }
    }
}
