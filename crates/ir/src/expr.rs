//! Affine index expressions and arithmetic expression trees.
//!
//! Polybench kernels (the paper's workload) are affine programs: every array
//! subscript is an affine function of the enclosing loop induction
//! variables. [`AffineExpr`] models those subscripts exactly, which lets the
//! HLS substrate reason statically about memory banks (array partitioning)
//! and lets the activity tracer evaluate addresses quickly.

use std::collections::BTreeMap;
use std::fmt;

/// An affine expression `sum(coeff_k * var_k) + offset` over loop induction
/// variables.
///
/// # Examples
///
/// ```
/// use pg_ir::expr::AffineExpr;
/// let e = AffineExpr::var("i").scaled(4).plus(3); // 4*i + 3
/// let mut env = std::collections::BTreeMap::new();
/// env.insert("i".to_string(), 2i64);
/// assert_eq!(e.eval(&env), 11);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    /// `(variable, coefficient)` pairs, sorted by variable name, no zero
    /// coefficients and no duplicate variables.
    pub terms: Vec<(String, i64)>,
    /// Constant offset.
    pub offset: i64,
}

impl AffineExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        AffineExpr {
            terms: Vec::new(),
            offset: c,
        }
    }

    /// The expression `1 * var`.
    pub fn var(name: &str) -> Self {
        AffineExpr {
            terms: vec![(name.to_string(), 1)],
            offset: 0,
        }
    }

    /// Returns `self * k`.
    pub fn scaled(mut self, k: i64) -> Self {
        if k == 0 {
            return AffineExpr::constant(0);
        }
        for t in &mut self.terms {
            t.1 *= k;
        }
        self.offset *= k;
        self
    }

    /// Returns `self + c`.
    pub fn plus(mut self, c: i64) -> Self {
        self.offset += c;
        self
    }

    /// Returns `self + other`, merging coefficients.
    pub fn add(&self, other: &AffineExpr) -> Self {
        let mut coeffs: BTreeMap<String, i64> = BTreeMap::new();
        for (v, c) in self.terms.iter().chain(other.terms.iter()) {
            *coeffs.entry(v.clone()).or_insert(0) += c;
        }
        AffineExpr {
            terms: coeffs.into_iter().filter(|(_, c)| *c != 0).collect(),
            offset: self.offset + other.offset,
        }
    }

    /// Substitutes `var := k * var' + delta` (used when a loop is unrolled by
    /// factor `k`: iteration `var` becomes `k*var' + lane`).
    pub fn substitute(&self, var: &str, k: i64, delta: i64) -> Self {
        let mut out = AffineExpr::constant(self.offset);
        for (v, c) in &self.terms {
            if v == var {
                out = out.add(&AffineExpr::var(var).scaled(c * k).plus(c * delta));
            } else {
                out = out.add(&AffineExpr {
                    terms: vec![(v.clone(), *c)],
                    offset: 0,
                });
            }
        }
        out
    }

    /// Evaluates with the given variable bindings.
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable is missing from `env`.
    pub fn eval(&self, env: &BTreeMap<String, i64>) -> i64 {
        let mut acc = self.offset;
        for (v, c) in &self.terms {
            let val = *env
                .get(v)
                .unwrap_or_else(|| panic!("unbound loop variable `{v}` in affine expression"));
            acc += c * val;
        }
        acc
    }

    /// Maximum value over `0..trip` ranges for each variable (used by bounds
    /// validation). Negative coefficients contribute at iteration 0.
    pub fn max_value(&self, trips: &BTreeMap<String, usize>) -> i64 {
        let mut acc = self.offset;
        for (v, c) in &self.terms {
            let trip = *trips.get(v).unwrap_or(&1) as i64;
            if *c > 0 {
                acc += c * (trip - 1).max(0);
            }
        }
        acc
    }

    /// Minimum value over the same ranges.
    pub fn min_value(&self, trips: &BTreeMap<String, usize>) -> i64 {
        let mut acc = self.offset;
        for (v, c) in &self.terms {
            let trip = *trips.get(v).unwrap_or(&1) as i64;
            if *c < 0 {
                acc += c * (trip - 1).max(0);
            }
        }
        acc
    }

    /// Variables referenced by this expression.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().map(|(v, _)| v.as_str())
    }

    /// `true` when the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            if *c == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{c}*{v}")?;
            }
            first = false;
        }
        if self.offset != 0 || first {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.offset)?;
        }
        Ok(())
    }
}

/// Shorthand for `AffineExpr::var(name)`.
///
/// # Examples
///
/// ```
/// use pg_ir::expr::aff;
/// assert_eq!(aff("i").to_string(), "i");
/// ```
pub fn aff(name: &str) -> AffineExpr {
    AffineExpr::var(name)
}

/// A subscripted array access `array[idx0][idx1]...`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    /// Array name (must be declared in the kernel).
    pub array: String,
    /// One affine subscript per dimension.
    pub indices: Vec<AffineExpr>,
}

impl ArrayRef {
    /// Creates a reference from an array name and subscripts.
    pub fn new(array: &str, indices: Vec<AffineExpr>) -> Self {
        ArrayRef {
            array: array.to_string(),
            indices,
        }
    }
}

impl From<(&str, Vec<AffineExpr>)> for ArrayRef {
    fn from((a, idx): (&str, Vec<AffineExpr>)) -> Self {
        ArrayRef::new(a, idx)
    }
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.array)?;
        for idx in &self.indices {
            write!(f, "[{idx}]")?;
        }
        Ok(())
    }
}

/// Binary arithmetic operators available in kernel statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Floating-point addition.
    Add,
    /// Floating-point subtraction.
    Sub,
    /// Floating-point multiplication.
    Mul,
    /// Floating-point division.
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// An arithmetic expression tree over array loads, scalar kernel arguments,
/// loop induction variables and constants.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Const(f64),
    /// A load from an array element.
    Load(ArrayRef),
    /// A scalar kernel argument (e.g. `alpha` in gemm).
    Scalar(String),
    /// The current value of a loop induction variable, cast to float.
    IVar(String),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for [`Expr::Load`].
    pub fn load(array: &str, indices: Vec<AffineExpr>) -> Self {
        Expr::Load(ArrayRef::new(array, indices))
    }

    /// Convenience constructor for [`Expr::Scalar`].
    pub fn scalar(name: &str) -> Self {
        Expr::Scalar(name.to_string())
    }

    /// Number of nodes in the expression tree.
    pub fn size(&self) -> usize {
        match self {
            Expr::Bin(_, l, r) => 1 + l.size() + r.size(),
            _ => 1,
        }
    }

    /// Collects every array referenced by the expression into `out`.
    pub fn collect_arrays<'a>(&'a self, out: &mut Vec<&'a ArrayRef>) {
        match self {
            Expr::Load(r) => out.push(r),
            Expr::Bin(_, l, r) => {
                l.collect_arrays(out);
                r.collect_arrays(out);
            }
            _ => {}
        }
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(self), Box::new(rhs))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Load(r) => write!(f, "{r}"),
            Expr::Scalar(s) => write!(f, "{s}"),
            Expr::IVar(v) => write!(f, "(float){v}"),
            Expr::Bin(op, l, r) => write!(f, "({l} {op} {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, i64)]) -> BTreeMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn affine_eval() {
        let e = aff("i").scaled(3).add(&aff("j")).plus(2);
        assert_eq!(e.eval(&env(&[("i", 2), ("j", 5)])), 13);
    }

    #[test]
    fn affine_add_merges_terms() {
        let e = aff("i").add(&aff("i").scaled(2));
        assert_eq!(e.terms, vec![("i".to_string(), 3)]);
    }

    #[test]
    fn affine_add_drops_zero_coeffs() {
        let e = aff("i").add(&aff("i").scaled(-1));
        assert!(e.is_constant());
        assert_eq!(e.offset, 0);
    }

    #[test]
    fn substitute_models_unrolling() {
        // index 2*j + 1, unroll j by 4 lane 3 -> 2*(4j'+3) + 1 = 8j' + 7
        let e = aff("j").scaled(2).plus(1);
        let s = e.substitute("j", 4, 3);
        assert_eq!(s.eval(&env(&[("j", 0)])), 7);
        assert_eq!(s.eval(&env(&[("j", 1)])), 15);
    }

    #[test]
    fn max_min_values() {
        let trips: BTreeMap<String, usize> = [("i".to_string(), 8usize)].into_iter().collect();
        let e = aff("i").scaled(2).plus(1);
        assert_eq!(e.max_value(&trips), 15);
        assert_eq!(e.min_value(&trips), 1);
        let neg = aff("i").scaled(-1).plus(7);
        assert_eq!(neg.max_value(&trips), 7);
        assert_eq!(neg.min_value(&trips), 0);
    }

    #[test]
    #[should_panic]
    fn eval_unbound_panics() {
        aff("q").eval(&env(&[]));
    }

    #[test]
    fn expr_operators_build_trees() {
        let e = Expr::Const(1.0) + Expr::Const(2.0) * Expr::scalar("alpha");
        assert_eq!(e.size(), 5);
        assert_eq!(e.to_string(), "(1 + (2 * alpha))");
    }

    #[test]
    fn collect_arrays_finds_loads() {
        let e = Expr::load("a", vec![aff("i")]) + Expr::load("b", vec![aff("i")]);
        let mut out = Vec::new();
        e.collect_arrays(&mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn display_affine() {
        assert_eq!(aff("i").scaled(4).plus(3).to_string(), "4*i + 3");
        assert_eq!(AffineExpr::constant(0).to_string(), "0");
    }
}
