//! SSA-form IR produced by the HLS front end.
//!
//! An [`IrFunction`] is organized as straight-line [`IrBlock`]s, one per
//! (possibly unrolled) loop body plus one per standalone statement region.
//! Each block carries its iteration space as a list of [`LoopDim`]s; an op
//! executes once per point of that space. Unrolling has already been applied
//! by the time an `IrFunction` exists: unrolled lanes appear as distinct
//! static ops whose affine subscripts encode the lane offset.

use crate::expr::AffineExpr;
use crate::opcode::Opcode;
use std::collections::BTreeMap;
use std::fmt;

/// Index of an [`IrOp`] inside its function's op arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The arena index as `usize`.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// An operand of an IR operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// The result of another op in the same block.
    Value(ValueId),
    /// Floating-point literal.
    ConstF(f64),
    /// Integer literal.
    ConstI(i64),
    /// A loop induction variable of the enclosing block.
    IVar(String),
    /// A scalar kernel argument.
    Scalar(String),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Value(v) => write!(f, "{v}"),
            Operand::ConstF(c) => write!(f, "{c:?}"),
            Operand::ConstI(c) => write!(f, "{c}"),
            Operand::IVar(v) => write!(f, "%iv.{v}"),
            Operand::Scalar(s) => write!(f, "%arg.{s}"),
        }
    }
}

/// A static memory reference attached to `getelementptr`/`load`/`store`/
/// `alloca` ops.
#[derive(Debug, Clone, PartialEq)]
pub struct MemRef {
    /// Referenced array.
    pub array: String,
    /// Per-dimension affine subscripts (post-unroll).
    pub indices: Vec<AffineExpr>,
    /// Flattened affine address (row-major).
    pub linear: AffineExpr,
    /// Statically resolved partition bank, when the subscript pattern pins
    /// the access to one bank; `None` means the access can touch any bank.
    pub bank: Option<usize>,
}

/// One static IR operation.
#[derive(Debug, Clone, PartialEq)]
pub struct IrOp {
    /// Arena id (also the SSA name).
    pub id: ValueId,
    /// Opcode.
    pub opcode: Opcode,
    /// Operands in positional order.
    pub operands: Vec<Operand>,
    /// Result bit width (32 for data, 1 for comparisons, 0 for stores/br).
    pub bits: u32,
    /// Owning block index.
    pub block: usize,
    /// Memory reference for memory opcodes.
    pub mem: Option<MemRef>,
    /// Unroll lane this op belongs to (0 when not unrolled); keeps unrolled
    /// copies distinguishable for binding and merging.
    pub lane: usize,
}

impl IrOp {
    /// Iterates over operand [`ValueId`]s (SSA uses).
    pub fn value_operands(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.operands.iter().filter_map(|o| match o {
            Operand::Value(v) => Some(*v),
            _ => None,
        })
    }
}

/// One dimension of a block's iteration space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopDim {
    /// Induction-variable name (post-unroll: the *outer* counter).
    pub var: String,
    /// Trip count of this dimension (post-unroll: original trip / factor).
    pub trip: usize,
    /// Label of the source loop in the kernel (for directive lookup).
    pub source_label: String,
}

/// A straight-line block executed over an iteration space.
#[derive(Debug, Clone, PartialEq)]
pub struct IrBlock {
    /// Human-readable label, e.g. `"gemm.i.j.k"`.
    pub label: String,
    /// Iteration space, outermost first. Empty for one-shot blocks.
    pub dims: Vec<LoopDim>,
    /// Ops in program order (indices into the function arena).
    pub ops: Vec<ValueId>,
    /// Whether the innermost loop of this block is pipelined.
    pub pipelined: bool,
    /// Unroll factor applied to the innermost source loop.
    pub unroll: usize,
}

impl IrBlock {
    /// Total dynamic iterations of the block.
    pub fn trip_product(&self) -> usize {
        self.dims.iter().map(|d| d.trip).product::<usize>().max(1)
    }
}

/// An SSA function: the op arena plus its blocks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IrFunction {
    /// Function name (kernel name + design-point id).
    pub name: String,
    /// All ops.
    pub ops: Vec<IrOp>,
    /// All blocks, in program order.
    pub blocks: Vec<IrBlock>,
}

impl IrFunction {
    /// Creates an empty function.
    pub fn new(name: &str) -> Self {
        IrFunction {
            name: name.to_string(),
            ops: Vec::new(),
            blocks: Vec::new(),
        }
    }

    /// Borrow an op by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn op(&self, id: ValueId) -> &IrOp {
        &self.ops[id.idx()]
    }

    /// Appends an op to the arena and to block `block`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not exist yet.
    pub fn push_op(
        &mut self,
        block: usize,
        opcode: Opcode,
        operands: Vec<Operand>,
        bits: u32,
        mem: Option<MemRef>,
        lane: usize,
    ) -> ValueId {
        let id = ValueId(self.ops.len() as u32);
        self.ops.push(IrOp {
            id,
            opcode,
            operands,
            bits,
            block,
            mem,
            lane,
        });
        self.blocks[block].ops.push(id);
        id
    }

    /// Appends an empty block, returning its index.
    pub fn push_block(
        &mut self,
        label: &str,
        dims: Vec<LoopDim>,
        pipelined: bool,
        unroll: usize,
    ) -> usize {
        self.blocks.push(IrBlock {
            label: label.to_string(),
            dims,
            ops: Vec::new(),
            pipelined,
            unroll,
        });
        self.blocks.len() - 1
    }

    /// Number of static ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the function has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Histogram of opcodes.
    pub fn opcode_counts(&self) -> BTreeMap<Opcode, usize> {
        let mut m = BTreeMap::new();
        for op in &self.ops {
            *m.entry(op.opcode).or_insert(0) += 1;
        }
        m
    }

    /// Total dynamic operation executions (static ops × their block trips).
    pub fn dynamic_op_count(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.ops.len() as u64 * b.trip_product() as u64)
            .sum()
    }

    /// Def-use edges `(def, use)` within blocks.
    pub fn def_use_edges(&self) -> Vec<(ValueId, ValueId)> {
        let mut edges = Vec::new();
        for op in &self.ops {
            for v in op.value_operands() {
                edges.push((v, op.id));
            }
        }
        edges
    }

    /// Checks SSA well-formedness: every operand refers to an op defined
    /// *earlier in the same block*, memory opcodes carry a [`MemRef`] and
    /// non-memory opcodes do not, and block membership is consistent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (bi, block) in self.blocks.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for &vid in &block.ops {
                let op = self.op(vid);
                if op.block != bi {
                    return Err(format!(
                        "{vid} listed in block {bi} but owned by {}",
                        op.block
                    ));
                }
                for u in op.value_operands() {
                    if !seen.contains(&u) {
                        return Err(format!("{vid} uses {u} before definition in block {bi}"));
                    }
                }
                let needs_mem = matches!(
                    op.opcode,
                    Opcode::Alloca | Opcode::GetElementPtr | Opcode::Load | Opcode::Store
                );
                if needs_mem && op.mem.is_none() {
                    return Err(format!("{vid} ({}) lacks a memory reference", op.opcode));
                }
                if !needs_mem && op.mem.is_some() {
                    return Err(format!(
                        "{vid} ({}) should not carry a memory reference",
                        op.opcode
                    ));
                }
                seen.insert(vid);
            }
        }
        let listed: usize = self.blocks.iter().map(|b| b.ops.len()).sum();
        if listed != self.ops.len() {
            return Err(format!(
                "arena has {} ops but blocks list {listed}",
                self.ops.len()
            ));
        }
        Ok(())
    }
}

impl fmt::Display for IrFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "define @{} {{", self.name)?;
        for block in &self.blocks {
            let dims: Vec<String> = block
                .dims
                .iter()
                .map(|d| format!("{}<{}", d.var, d.trip))
                .collect();
            writeln!(
                f,
                "{}: ; dims=[{}] pipelined={} unroll={}",
                block.label,
                dims.join(","),
                block.pipelined,
                block.unroll
            )?;
            for &vid in &block.ops {
                let op = self.op(vid);
                let operands: Vec<String> = op.operands.iter().map(|o| o.to_string()).collect();
                write!(f, "  {vid} = {} {}", op.opcode, operands.join(", "))?;
                if let Some(m) = &op.mem {
                    write!(f, " ; {}[{}]", m.array, m.linear)?;
                }
                writeln!(f)?;
            }
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;

    fn mk_memref(array: &str) -> MemRef {
        MemRef {
            array: array.to_string(),
            indices: vec![AffineExpr::var("i")],
            linear: AffineExpr::var("i"),
            bank: Some(0),
        }
    }

    fn tiny_func() -> IrFunction {
        let mut f = IrFunction::new("t");
        let b = f.push_block(
            "body",
            vec![LoopDim {
                var: "i".into(),
                trip: 8,
                source_label: "i".into(),
            }],
            true,
            1,
        );
        let gep = f.push_op(
            b,
            Opcode::GetElementPtr,
            vec![Operand::IVar("i".into())],
            32,
            Some(mk_memref("a")),
            0,
        );
        let ld = f.push_op(
            b,
            Opcode::Load,
            vec![Operand::Value(gep)],
            32,
            Some(mk_memref("a")),
            0,
        );
        let m = f.push_op(
            b,
            Opcode::FMul,
            vec![Operand::Value(ld), Operand::ConstF(2.0)],
            32,
            None,
            0,
        );
        let gep2 = f.push_op(
            b,
            Opcode::GetElementPtr,
            vec![Operand::IVar("i".into())],
            32,
            Some(mk_memref("y")),
            0,
        );
        f.push_op(
            b,
            Opcode::Store,
            vec![Operand::Value(m), Operand::Value(gep2)],
            0,
            Some(mk_memref("y")),
            0,
        );
        f
    }

    #[test]
    fn push_and_lookup() {
        let f = tiny_func();
        assert_eq!(f.len(), 5);
        assert_eq!(f.op(ValueId(2)).opcode, Opcode::FMul);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn def_use_edges_counted() {
        let f = tiny_func();
        // load<-gep, fmul<-load, store<-fmul, store<-gep2
        assert_eq!(f.def_use_edges().len(), 4);
    }

    #[test]
    fn dynamic_count_scales_with_trip() {
        let f = tiny_func();
        assert_eq!(f.dynamic_op_count(), 5 * 8);
    }

    #[test]
    fn validate_rejects_use_before_def() {
        let mut f = IrFunction::new("bad");
        let b = f.push_block("b", vec![], false, 1);
        f.push_op(
            b,
            Opcode::FAdd,
            vec![Operand::Value(ValueId(5)), Operand::ConstF(1.0)],
            32,
            None,
            0,
        );
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_missing_memref() {
        let mut f = IrFunction::new("bad");
        let b = f.push_block("b", vec![], false, 1);
        f.push_op(b, Opcode::Load, vec![], 32, None, 0);
        assert!(f.validate().is_err());
    }

    #[test]
    fn opcode_histogram() {
        let f = tiny_func();
        let h = f.opcode_counts();
        assert_eq!(h[&Opcode::GetElementPtr], 2);
        assert_eq!(h[&Opcode::FMul], 1);
    }

    #[test]
    fn display_contains_mnemonics() {
        let s = tiny_func().to_string();
        assert!(s.contains("fmul"));
        assert!(s.contains("getelementptr"));
    }
}
