//! Intermediate representation for the PowerGear reproduction.
//!
//! This crate models the artifacts a high-level synthesis (HLS) front end
//! consumes and produces, mirroring what the paper extracts from Vivado HLS:
//!
//! * a **kernel** description — structured affine loop nests over arrays
//!   (the C++ source of Fig. 1), built with [`KernelBuilder`];
//! * an **LLVM-like IR** ([`IrFunction`]) in SSA form with the opcode set the
//!   paper's graph-construction flow pattern-matches on (`alloca`,
//!   `getelementptr`, `load`/`store`, float/int arithmetic, casts, control);
//! * the **opcode taxonomy** ([`Opcode`], [`OpClass`]) that classifies nodes
//!   into arithmetic (A) and non-arithmetic (N) for the heterogeneous edge
//!   relations A→A, A→N, N→A, N→N.
//!
//! The actual lowering from kernels to IR (with directives applied) lives in
//! the `pg-hls` crate; graph construction lives in `pg-graphcon`.
//!
//! # Examples
//!
//! ```
//! use pg_ir::{ArrayKind, KernelBuilder};
//! use pg_ir::expr::{aff, Expr};
//!
//! // y[i] = y[i] + a[i] * x[i]  for i in 0..16
//! let kernel = KernelBuilder::new("axpy")
//!     .array("a", &[16], ArrayKind::Input)
//!     .array("x", &[16], ArrayKind::Input)
//!     .array("y", &[16], ArrayKind::Output)
//!     .loop_("i", 16, |b| {
//!         b.assign(
//!             ("y", vec![aff("i")]),
//!             Expr::load("y", vec![aff("i")])
//!                 + Expr::load("a", vec![aff("i")]) * Expr::load("x", vec![aff("i")]),
//!         );
//!     })
//!     .build()
//!     .expect("valid kernel");
//! assert_eq!(kernel.name, "axpy");
//! ```

pub mod expr;
pub mod ir;
pub mod kernel;
pub mod opcode;

pub use expr::{AffineExpr, ArrayRef, BinOp, Expr};
pub use ir::{IrBlock, IrFunction, IrOp, LoopDim, MemRef, Operand, ValueId};
pub use kernel::{ArrayDecl, ArrayKind, Block, Kernel, KernelBuilder, KernelError, Loop, Stmt};
pub use opcode::{OpClass, Opcode};
