//! Buffer insertion (§III-A).
//!
//! "Memory elements can be inferred from DFG nodes with IR opcodes `alloca`
//! and `getelementptr` followed by `load` or `store`." This pass pattern-
//! matches those nodes, materializes one buffer node per `(array, bank)`,
//! reroutes address computation into the buffer and data through it
//! (`store → buffer → load`), annotates buffers with their memory resource
//! utilization, and retires the `alloca`/`getelementptr` nodes along with
//! the raw store→load shortcut edges.

use crate::dfg::{NodeKind, WorkEdge, WorkGraph, WorkNode};
use pg_activity::{EventRef, NodeActivity};
use pg_hls::HlsDesign;
use pg_ir::Opcode;
use std::collections::BTreeMap;

/// Runs buffer insertion on `g`.
pub fn insert_buffers(g: &mut WorkGraph, design: &HlsDesign) {
    // Materialize one buffer node per (array, bank). Ordered map: the
    // activity-aggregation pass below iterates it, so iteration order must
    // not depend on hash state.
    let mut buffer_of: BTreeMap<(String, usize), usize> = BTreeMap::new();
    for (decl, banks) in &design.arrays {
        let blocks_total = design.lib.bram_blocks(decl.len(), *banks) as f64;
        for bank in 0..*banks {
            let kind = if decl.kind.is_io() {
                NodeKind::BufferIo
            } else {
                NodeKind::BufferInternal
            };
            let idx = g.add_node(WorkNode {
                kind,
                ops: vec![],
                activity: NodeActivity::default(),
                bram: blocks_total / *banks as f64,
                array: Some(decl.name.clone()),
                bank,
                alive: true,
            });
            buffer_of.insert((decl.name.clone(), bank), idx);
        }
    }
    let banks_of: BTreeMap<String, usize> = design
        .arrays
        .iter()
        .map(|(d, b)| (d.name.clone(), *b))
        .collect();
    let buffers_for = |array: &str, bank: Option<usize>| -> Vec<usize> {
        let banks = banks_of.get(array).copied().unwrap_or(1);
        match bank {
            Some(b) => vec![buffer_of[&(array.to_string(), b.min(banks - 1))]],
            None => (0..banks)
                .map(|b| buffer_of[&(array.to_string(), b)])
                .collect(),
        }
    };

    let func = &design.ir;
    // Event sources for `trace_outputs`, resolved in one edge pass (the
    // per-node scan made buffer insertion O(V·E)): first alive outgoing
    // edge with events, and first alive incoming edge as the store
    // fallback — "first" by edge index, as the scans would find.
    let mut first_out_ev: Vec<usize> = vec![usize::MAX; g.nodes.len()];
    let mut first_in_ev: Vec<usize> = vec![usize::MAX; g.nodes.len()];
    for (ei, e) in g.edges.iter().enumerate() {
        if !e.alive {
            continue;
        }
        if !e.src_ev.is_empty() && first_out_ev[e.src] == usize::MAX {
            first_out_ev[e.src] = ei;
        }
        if !e.snk_ev.is_empty() && first_in_ev[e.dst] == usize::MAX {
            first_in_ev[e.dst] = ei;
        }
    }
    let trace_outputs = |ni: usize| -> EventRef {
        if first_out_ev[ni] != usize::MAX {
            g.edges[first_out_ev[ni]].src_ev
        } else if first_in_ev[ni] != usize::MAX {
            g.edges[first_in_ev[ni]].snk_ev
        } else {
            EventRef::EMPTY
        }
    };

    // Plan rewires before mutating.
    let mut new_edges: Vec<WorkEdge> = Vec::new();
    let mut kill_nodes: Vec<usize> = Vec::new();
    let mut kill_edges: Vec<usize> = Vec::new();

    for (ni, node) in g.nodes.iter().enumerate() {
        if !node.alive {
            continue;
        }
        let opcode = match &node.kind {
            NodeKind::Op(o) => *o,
            _ => continue,
        };
        match opcode {
            Opcode::Alloca => kill_nodes.push(ni),
            Opcode::GetElementPtr => {
                let op = func.op(node.ops[0]);
                let m = op.mem.as_ref().expect("gep has memref");
                let targets = buffers_for(&m.array, m.bank);
                // predecessors (index arithmetic) now feed the buffer
                for (ei, e) in g.edges.iter().enumerate() {
                    if !e.alive {
                        continue;
                    }
                    if e.dst == ni {
                        kill_edges.push(ei);
                        for &b in &targets {
                            new_edges.push(WorkEdge {
                                src: e.src,
                                dst: b,
                                src_ev: e.src_ev,
                                snk_ev: e.snk_ev,
                                alive: true,
                            });
                        }
                    } else if e.src == ni {
                        // gep -> load/store address edge: retire; data path
                        // is rebuilt below from the load/store side
                        kill_edges.push(ei);
                    }
                }
                kill_nodes.push(ni);
            }
            Opcode::Load => {
                let op = func.op(node.ops[0]);
                let m = op.mem.as_ref().expect("load has memref");
                for &b in &buffers_for(&m.array, m.bank) {
                    new_edges.push(WorkEdge {
                        src: b,
                        dst: ni,
                        src_ev: trace_outputs(ni),
                        snk_ev: trace_outputs(ni),
                        alive: true,
                    });
                }
            }
            Opcode::Store => {
                let op = func.op(node.ops[0]);
                let m = op.mem.as_ref().expect("store has memref");
                for &b in &buffers_for(&m.array, m.bank) {
                    new_edges.push(WorkEdge {
                        src: ni,
                        dst: b,
                        src_ev: trace_outputs(ni),
                        snk_ev: trace_outputs(ni),
                        alive: true,
                    });
                }
            }
            _ => {}
        }
    }

    // Raw store→load shortcuts are now mediated by buffers.
    for (ei, e) in g.edges.iter().enumerate() {
        if !e.alive {
            continue;
        }
        let src_store = matches!(g.nodes[e.src].kind, NodeKind::Op(Opcode::Store));
        let dst_load = matches!(g.nodes[e.dst].kind, NodeKind::Op(Opcode::Load));
        if src_store && dst_load {
            kill_edges.push(ei);
        }
    }

    for ei in kill_edges {
        g.edges[ei].alive = false;
    }
    for &ni in &kill_nodes {
        g.nodes[ni].alive = false;
    }
    if !kill_nodes.is_empty() {
        for e in &mut g.edges {
            if e.alive && (!g.nodes[e.src].alive || !g.nodes[e.dst].alive) {
                e.alive = false;
            }
        }
    }
    for e in new_edges {
        if g.nodes[e.src].alive && g.nodes[e.dst].alive {
            g.add_edge(e);
        }
    }

    // Buffer activity: aggregate of the traffic flowing through it, with
    // per-buffer neighbour lists filled in one edge pass (edge order, so
    // the float accumulation matches the per-buffer scans exactly).
    let mut buffer_slot: Vec<usize> = vec![usize::MAX; g.nodes.len()];
    let buffer_nodes: Vec<usize> = buffer_of.values().copied().collect();
    for (slot, &bi) in buffer_nodes.iter().enumerate() {
        buffer_slot[bi] = slot;
    }
    let mut stats: Vec<Vec<NodeActivity>> = vec![Vec::new(); buffer_nodes.len()];
    for e in g.edges.iter().filter(|e| e.alive) {
        if buffer_slot[e.dst] != usize::MAX {
            stats[buffer_slot[e.dst]].push(g.nodes[e.src].activity);
        } else if buffer_slot[e.src] != usize::MAX {
            stats[buffer_slot[e.src]].push(g.nodes[e.dst].activity);
        }
    }
    for (slot, &bi) in buffer_nodes.iter().enumerate() {
        g.nodes[bi].activity = NodeActivity::merge(&stats[slot]);
    }

    g.fuse_parallel_edges();
    debug_assert_eq!(g.check(), Ok(()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_raw;
    use pg_activity::{execute, Stimuli};
    use pg_hls::{Directives, HlsFlow};
    use pg_ir::expr::aff;
    use pg_ir::{ArrayKind, Expr, Kernel, KernelBuilder};

    fn kernel() -> Kernel {
        KernelBuilder::new("bk")
            .array("a", &[16], ArrayKind::Input)
            .array("t", &[16], ArrayKind::Temp)
            .array("y", &[16], ArrayKind::Output)
            .loop_("i", 16, |b| {
                b.assign(
                    ("t", vec![aff("i")]),
                    Expr::load("a", vec![aff("i")]) * Expr::Const(2.0),
                );
            })
            .loop_("j", 16, |b| {
                b.assign(("y", vec![aff("j")]), Expr::load("t", vec![aff("j")]));
            })
            .build()
            .unwrap()
    }

    fn with_buffers(d: &Directives) -> (HlsDesign, WorkGraph) {
        let k = kernel();
        let design = HlsFlow::new().run(&k, d).unwrap();
        let stim = Stimuli::for_kernel(&k, 0);
        let trace = execute(&design, &stim);
        let mut g = build_raw(&design, &trace);
        insert_buffers(&mut g, &design);
        (design, g)
    }

    fn count_kind(g: &WorkGraph, pred: impl Fn(&NodeKind) -> bool) -> usize {
        g.nodes.iter().filter(|n| n.alive && pred(&n.kind)).count()
    }

    #[test]
    fn buffers_created_per_bank() {
        let (_d, g) = with_buffers(&Directives::new());
        assert_eq!(count_kind(&g, |k| matches!(k, NodeKind::BufferIo)), 2);
        assert_eq!(count_kind(&g, |k| matches!(k, NodeKind::BufferInternal)), 1);
        let mut d = Directives::new();
        d.partition("t", 4);
        let (_d2, g2) = with_buffers(&d);
        assert_eq!(
            count_kind(&g2, |k| matches!(k, NodeKind::BufferInternal)),
            4
        );
    }

    #[test]
    fn geps_and_allocas_removed() {
        let (_d, g) = with_buffers(&Directives::new());
        assert_eq!(
            count_kind(&g, |k| matches!(
                k,
                NodeKind::Op(Opcode::GetElementPtr) | NodeKind::Op(Opcode::Alloca)
            )),
            0
        );
    }

    #[test]
    fn store_routes_through_buffer_to_load() {
        let (design, g) = with_buffers(&Directives::new());
        // find the internal buffer for t
        let buf = g
            .nodes
            .iter()
            .position(|n| {
                n.alive
                    && matches!(n.kind, NodeKind::BufferInternal)
                    && n.array.as_deref() == Some("t")
            })
            .unwrap();
        let store_t = design
            .ir
            .ops
            .iter()
            .find(|o| o.opcode == Opcode::Store && o.mem.as_ref().unwrap().array == "t")
            .unwrap();
        let load_t = design
            .ir
            .ops
            .iter()
            .find(|o| o.opcode == Opcode::Load && o.mem.as_ref().unwrap().array == "t")
            .unwrap();
        assert!(g.succs(store_t.id.idx()).contains(&buf));
        assert!(g.preds(load_t.id.idx()).contains(&buf));
        // the direct store->load shortcut is gone
        assert!(!g.succs(store_t.id.idx()).contains(&load_t.id.idx()));
    }

    #[test]
    fn buffers_annotated_with_bram() {
        let (design, g) = with_buffers(&Directives::new());
        let total: f64 = g
            .nodes
            .iter()
            .filter(|n| {
                n.alive
                    && n.array.is_some()
                    && matches!(n.kind, NodeKind::BufferIo | NodeKind::BufferInternal)
            })
            .map(|n| n.bram)
            .sum();
        assert!((total - design.report.bram as f64).abs() < 1e-9);
    }

    #[test]
    fn index_arithmetic_feeds_buffer() {
        let (_design, g) = with_buffers(&Directives::new());
        let buf = g
            .nodes
            .iter()
            .position(|n| {
                n.alive && matches!(n.kind, NodeKind::BufferIo) && n.array.as_deref() == Some("a")
            })
            .unwrap();
        let preds = g.preds(buf);
        assert!(
            preds
                .iter()
                .any(|&p| matches!(g.nodes[p].kind, NodeKind::Op(Opcode::SExt))),
            "address path should reach the buffer"
        );
    }

    #[test]
    fn graph_still_consistent() {
        let (_d, g) = with_buffers(&Directives::new());
        assert_eq!(g.check(), Ok(()));
        assert!(g.num_edges() > 0);
    }
}
