//! Graph data structures for the construction flow.
//!
//! [`WorkGraph`] is the mutable representation the optimization passes
//! (buffer insertion, datapath merging, trimming) operate on; it keeps the
//! cycle-stamped value-event sequences on every edge so that activities can
//! be recomputed after edges are fused or rerouted. [`PowerGraph`] is the
//! finalized, feature-annotated sample consumed by the GNN.
//!
//! # Edge event storage
//!
//! Edges do not own event vectors. Every stream lives compressed in a flat
//! arena (see [`pg_activity::events`] for the run format) and edges hold
//! copyable [`EventRef`] slices into it, managed by [`GraphEvents`]:
//!
//! * the **base** arena is the execution trace's arena, shared with the
//!   graph via `Arc` — def-use fan-out, buffer rerouting and trim bypass
//!   attach an op's stream to many edges as plain `(offset, len)` copies;
//! * the **extension** arena holds streams the passes create (parallel-
//!   edge fusion time-merges two streams into a new one), distinguished by
//!   bit 31 of the ref offset.
//!
//! Activity folds ([`GraphEvents::sa_ar`]) consume the compressed runs
//! directly — no decode allocation — and are bit-identical to the naive
//! slice math of Eq. 2/3.

use pg_activity::events::{EventArena, MergeScratch};
use pg_activity::{EventRef, NodeActivity};
use pg_ir::{OpClass, Opcode, ValueId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Offset tag selecting the extension arena of a [`GraphEvents`].
const EXT_BIT: u32 = 1 << 31;

/// The event storage of one [`WorkGraph`]: the trace's shared base arena
/// plus a graph-owned extension arena for streams created by passes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphEvents {
    base: Arc<EventArena>,
    ext: EventArena,
}

impl GraphEvents {
    /// Wraps the trace's arena as the shared base.
    pub fn with_base(base: Arc<EventArena>) -> Self {
        assert!(
            base.words().len() < EXT_BIT as usize,
            "base arena exceeds the 2^31-word ref space"
        );
        GraphEvents {
            base,
            ext: EventArena::new(),
        }
    }

    /// Compressed words of one stream.
    pub fn stream(&self, r: EventRef) -> &[u32] {
        if r.off & EXT_BIT != 0 {
            let off = (r.off & !EXT_BIT) as usize;
            &self.ext.words()[off..off + r.len as usize]
        } else {
            &self.base.words()[r.off as usize..(r.off + r.len) as usize]
        }
    }

    /// Number of events in a stream.
    pub fn count(&self, r: EventRef) -> usize {
        pg_activity::events::event_count(self.stream(r))
    }

    /// Decodes a stream to raw `(cycle, bits)` events (tests, diagnostics).
    pub fn decode(&self, r: EventRef) -> Vec<(u64, u32)> {
        pg_activity::events::decode(self.stream(r))
    }

    /// Eq. 2 / Eq. 3 of one stream, folded over its compressed runs.
    pub fn sa_ar(&self, r: EventRef, latency: u64) -> (f64, f64) {
        pg_activity::events::fold_sa_ar(self.stream(r), latency)
    }

    /// [`GraphEvents::sa_ar`] memoized per distinct stream: fan-out
    /// attaches one op's stream to many edges as the same `(offset, len)`
    /// ref — bit 31 of the offset disambiguates base vs extension arena,
    /// so the pair is a sound memo key. Used by graph finalization and
    /// the oracle netlist, which both fold every alive edge.
    pub fn sa_ar_memo(
        &self,
        r: EventRef,
        latency: u64,
        memo: &mut BTreeMap<(u32, u32), (f64, f64)>,
    ) -> (f64, f64) {
        *memo
            .entry((r.off, r.len))
            .or_insert_with(|| self.sa_ar(r, latency))
    }

    /// Tags an extension-arena ref with [`EXT_BIT`], checking the same
    /// 2^31-word bound `with_base` enforces for the base arena (an
    /// overflowing offset would silently alias an earlier stream).
    fn ext_ref(&self, off: u32, len: u32) -> EventRef {
        assert!(
            self.ext.words().len() < EXT_BIT as usize,
            "extension arena exceeds the 2^31-word ref space"
        );
        EventRef {
            off: off | EXT_BIT,
            len,
        }
    }

    /// Encodes raw events into the extension arena (tests, synthetic
    /// graphs).
    pub fn push_events(&mut self, events: &[(u64, u32)]) -> EventRef {
        let r = self.ext.push_events(events);
        self.ext_ref(r.off, r.len)
    }

    /// Time-merges two streams into a new extension stream (stable: ties
    /// take `a` first), decoding through `scratch` so repeated merges
    /// reuse one pool of buffers. The merged stream is encoded as delta
    /// runs directly into the extension arena. Both streams must be
    /// non-empty (merging with an empty stream is the identity — keep the
    /// other ref instead, as `fuse_parallel_edges` does).
    pub fn merge(&mut self, a: EventRef, b: EventRef, scratch: &mut MergeScratch) -> EventRef {
        self.merge_many(&[a, b], scratch)
    }

    /// K-way time-merge (stable: equal cycles take the earliest stream in
    /// `refs` first — bit-identical to a left-fold of pairwise merges, but
    /// each input is read exactly once). Every stream must be non-empty:
    /// empty members would be identity elements, so callers filter them
    /// out and keep the surviving ref when fewer than two remain.
    pub fn merge_many(&mut self, refs: &[EventRef], scratch: &mut MergeScratch) -> EventRef {
        use pg_activity::events::{merge_streams_k, MERGE_FAN_IN};
        assert!(
            refs.len() >= 2 && refs.iter().all(|r| !r.is_empty()),
            "merge_many requires >= 2 non-empty streams"
        );
        if refs.len() <= MERGE_FAN_IN {
            // Compressed-domain fast path: merge the run encodings
            // directly, staged through the scratch because the output
            // arena may also be an input.
            let mut tmp = std::mem::take(&mut scratch.words_tmp);
            tmp.clear();
            {
                let mut inputs: [&[u32]; MERGE_FAN_IN] = [&[]; MERGE_FAN_IN];
                for (i, &r) in refs.iter().enumerate() {
                    inputs[i] = self.stream(r);
                }
                merge_streams_k(&mut tmp, &inputs[..refs.len()]);
            }
            let out = self.ext.words_mut();
            let off = out.len() as u32;
            out.extend_from_slice(&tmp);
            let len = tmp.len() as u32;
            scratch.words_tmp = tmp;
            return self.ext_ref(off, len);
        }
        // Wide groups: decode all inputs first (immutable borrows end),
        // then append the interleave to the extension arena.
        scratch.begin();
        for &r in refs {
            scratch.add(self.stream(r));
        }
        let out = self.ext.words_mut();
        let off = out.len() as u32;
        let r = scratch.encode_merged(out);
        self.ext_ref(off, r.len)
    }
}

/// Kind of a graph node after construction.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// An IR operation (possibly representing several merged instances).
    Op(Opcode),
    /// An interface (I/O) buffer bank.
    BufferIo,
    /// An internal (alloca-derived) buffer bank.
    BufferInternal,
}

impl NodeKind {
    /// `true` for arithmetic (A) nodes in the paper's edge typing; buffers
    /// are non-arithmetic.
    pub fn is_arithmetic(&self) -> bool {
        match self {
            NodeKind::Op(o) => o.is_arithmetic(),
            _ => false,
        }
    }

    /// One-hot opcode slot: IR opcodes use their own index, buffers take the
    /// two trailing slots.
    pub fn opcode_slot(&self) -> usize {
        match self {
            NodeKind::Op(o) => o.index(),
            NodeKind::BufferIo => Opcode::COUNT,
            NodeKind::BufferInternal => Opcode::COUNT + 1,
        }
    }

    /// One-hot class slot: the four [`OpClass`]es plus a buffer class.
    pub fn class_slot(&self) -> usize {
        match self {
            NodeKind::Op(o) => o.class().index(),
            _ => OpClass::COUNT,
        }
    }
}

/// Heterogeneous edge relation (source class → sink class), §III-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// arithmetic → arithmetic
    AA,
    /// arithmetic → non-arithmetic
    AN,
    /// non-arithmetic → arithmetic
    NA,
    /// non-arithmetic → non-arithmetic
    NN,
}

impl Relation {
    /// Number of relation types.
    pub const COUNT: usize = 4;

    /// Relation from source/sink arithmetic-ness.
    pub fn from_classes(src_arith: bool, dst_arith: bool) -> Self {
        match (src_arith, dst_arith) {
            (true, true) => Relation::AA,
            (true, false) => Relation::AN,
            (false, true) => Relation::NA,
            (false, false) => Relation::NN,
        }
    }

    /// Stable index for per-relation weights.
    pub fn index(self) -> usize {
        match self {
            Relation::AA => 0,
            Relation::AN => 1,
            Relation::NA => 2,
            Relation::NN => 3,
        }
    }
}

/// A node of the working graph.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkNode {
    /// Kind (op or buffer).
    pub kind: NodeKind,
    /// IR op instances represented (empty for buffers).
    pub ops: Vec<ValueId>,
    /// Activity statistics (merged across instances).
    pub activity: NodeActivity,
    /// BRAM blocks for buffer nodes (0 otherwise).
    pub bram: f64,
    /// Backing array for buffers.
    pub array: Option<String>,
    /// Bank index for buffers.
    pub bank: usize,
    /// Liveness flag (passes tombstone instead of reindexing).
    pub alive: bool,
}

/// An edge of the working graph. Event sequences are `(offset, len)` refs
/// into the graph's [`GraphEvents`] arenas — attaching a stream to another
/// edge is a copy of two words, never an allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkEdge {
    /// Source node index.
    pub src: usize,
    /// Sink node index.
    pub dst: usize,
    /// `(cycle, bits)` events injected by the source.
    pub src_ev: EventRef,
    /// `(cycle, bits)` events consumed by the sink.
    pub snk_ev: EventRef,
    /// Liveness flag.
    pub alive: bool,
}

/// The mutable graph the construction passes transform.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkGraph {
    /// Nodes (tombstoned, never removed).
    pub nodes: Vec<WorkNode>,
    /// Edges (tombstoned, never removed).
    pub edges: Vec<WorkEdge>,
    /// Event stream storage referenced by the edges.
    pub events: GraphEvents,
    /// Design latency for activity normalization.
    pub latency: u64,
}

impl WorkGraph {
    /// Adds a node, returning its index.
    pub fn add_node(&mut self, node: WorkNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Adds an edge, returning its index.
    pub fn add_edge(&mut self, edge: WorkEdge) -> usize {
        self.edges.push(edge);
        self.edges.len() - 1
    }

    /// Encodes raw events into the graph's extension arena (test helper).
    pub fn add_events(&mut self, events: &[(u64, u32)]) -> EventRef {
        self.events.push_events(events)
    }

    /// Alive-node count.
    pub fn num_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Alive-edge count.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().filter(|e| e.alive).count()
    }

    /// Alive predecessor node indices of `v` (sorted, deduplicated).
    pub fn preds(&self, v: usize) -> Vec<usize> {
        let mut p: Vec<usize> = self
            .edges
            .iter()
            .filter(|e| e.alive && e.dst == v && self.nodes[e.src].alive)
            .map(|e| e.src)
            .collect();
        p.sort_unstable();
        p.dedup();
        p
    }

    /// Alive successor node indices of `v` (sorted, deduplicated).
    pub fn succs(&self, v: usize) -> Vec<usize> {
        let mut s: Vec<usize> = self
            .edges
            .iter()
            .filter(|e| e.alive && e.src == v && self.nodes[e.dst].alive)
            .map(|e| e.dst)
            .collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Fuses parallel edges (same `(src, dst)`) by time-merging their event
    /// sequences. Called after passes that re-point edges.
    ///
    /// Each group of parallel edges is merged **k-way in one pass** —
    /// bit-identical to folding pairwise merges left-to-right in edge
    /// order (cycle ties keep the earlier edge's events first), but every
    /// stream is decoded once instead of the accumulating stream being
    /// re-decoded per pair.
    pub fn fuse_parallel_edges(&mut self) {
        let _t = pg_util::prof::scope("graph.fuse");
        // Group alive parallel edges by endpoint pair, preserving edge
        // order within and across groups.
        let mut group_idx: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, e) in self.edges.iter().enumerate() {
            if !e.alive {
                continue;
            }
            match group_idx.entry((e.src, e.dst)) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(groups.len());
                    groups.push((i, Vec::new()));
                }
                std::collections::btree_map::Entry::Occupied(o) => {
                    groups[*o.get()].1.push(i);
                }
            }
        }
        let mut scratch = MergeScratch::default();
        let mut streams: Vec<EventRef> = Vec::new();
        for (keep, drops) in &groups {
            if drops.is_empty() {
                continue;
            }
            let src_ev = fuse_group_side(
                &self.edges,
                &mut self.events,
                *keep,
                drops,
                |e| e.src_ev,
                &mut scratch,
                &mut streams,
            );
            let snk_ev = fuse_group_side(
                &self.edges,
                &mut self.events,
                *keep,
                drops,
                |e| e.snk_ev,
                &mut scratch,
                &mut streams,
            );
            let k = &mut self.edges[*keep];
            k.src_ev = src_ev;
            k.snk_ev = snk_ev;
            for &d in drops {
                self.edges[d].alive = false;
            }
        }
    }

    /// Sanity invariants: alive edges point at alive nodes.
    pub fn check(&self) -> Result<(), String> {
        for (i, e) in self.edges.iter().enumerate() {
            if !e.alive {
                continue;
            }
            if e.src >= self.nodes.len() || e.dst >= self.nodes.len() {
                return Err(format!("edge {i} out of range"));
            }
            if !self.nodes[e.src].alive || !self.nodes[e.dst].alive {
                return Err(format!("edge {i} touches dead node"));
            }
        }
        Ok(())
    }
}

/// Fuses one side (source or sink events) of a parallel-edge group.
/// Merging with an empty sequence is the identity — a group with one
/// non-empty stream reuses that stream's ref; with none, the ref of the
/// last member (what a pairwise fold would leave behind).
fn fuse_group_side(
    edges: &[WorkEdge],
    events: &mut GraphEvents,
    keep: usize,
    drops: &[usize],
    side: fn(&WorkEdge) -> EventRef,
    scratch: &mut MergeScratch,
    streams: &mut Vec<EventRef>,
) -> EventRef {
    streams.clear();
    streams.push(side(&edges[keep]));
    streams.extend(drops.iter().map(|&d| side(&edges[d])));
    let non_empty = streams.iter().filter(|r| !r.is_empty()).count();
    match non_empty {
        0 => *streams.last().expect("group has members"),
        1 => *streams
            .iter()
            .find(|r| !r.is_empty())
            .expect("one non-empty stream"),
        _ => {
            streams.retain(|r| !r.is_empty());
            events.merge_many(streams, scratch)
        }
    }
}

/// A finalized graph sample: the output of the construction flow and the
/// input to HEC-GNN.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerGraph {
    /// Source kernel name.
    pub kernel: String,
    /// Design-point identifier.
    pub design_id: String,
    /// Number of nodes.
    pub num_nodes: usize,
    /// Flattened node features, `num_nodes × NODE_FEATS` row-major.
    pub node_feats: Vec<f32>,
    /// Directed edges `(src, dst)`.
    pub edges: Vec<(u32, u32)>,
    /// Four-dimensional edge features `[SA_src, SA_snk, AR_src, AR_snk]`.
    pub edge_feats: Vec<[f32; 4]>,
    /// Edge relation types.
    pub edge_rel: Vec<Relation>,
    /// Global metadata features (HLS report; filled by the dataset builder
    /// once the unoptimized baseline is known).
    pub meta: Vec<f32>,
}

impl PowerGraph {
    /// Node feature width: 5 class slots + 23 opcode slots + 6 numeric.
    pub const NODE_FEATS: usize = OpClass::COUNT + 1 + Opcode::COUNT + 2 + 6;
    /// Edge feature width (Eq. 2/3 in both directions).
    pub const EDGE_FEATS: usize = 4;

    /// Features of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: usize) -> &[f32] {
        &self.node_feats[i * Self::NODE_FEATS..(i + 1) * Self::NODE_FEATS]
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Histogram of edges per relation type.
    pub fn relation_counts(&self) -> [usize; Relation::COUNT] {
        let mut c = [0usize; Relation::COUNT];
        for r in &self.edge_rel {
            c[r.index()] += 1;
        }
        c
    }

    /// Structural validation (used by tests and property checks).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.node_feats.len() != self.num_nodes * Self::NODE_FEATS {
            return Err("node feature buffer size mismatch".into());
        }
        if self.edges.len() != self.edge_feats.len() || self.edges.len() != self.edge_rel.len() {
            return Err("edge array length mismatch".into());
        }
        for &(s, d) in &self.edges {
            if s as usize >= self.num_nodes || d as usize >= self.num_nodes {
                return Err(format!("edge ({s},{d}) out of range"));
            }
        }
        for f in &self.node_feats {
            if !f.is_finite() {
                return Err("non-finite node feature".into());
            }
        }
        for ef in &self.edge_feats {
            if ef.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return Err("invalid edge feature".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_node(kind: NodeKind) -> WorkNode {
        WorkNode {
            kind,
            ops: vec![],
            activity: NodeActivity::default(),
            bram: 0.0,
            array: None,
            bank: 0,
            alive: true,
        }
    }

    #[test]
    fn relation_mapping() {
        assert_eq!(Relation::from_classes(true, true), Relation::AA);
        assert_eq!(Relation::from_classes(true, false), Relation::AN);
        assert_eq!(Relation::from_classes(false, true), Relation::NA);
        assert_eq!(Relation::from_classes(false, false), Relation::NN);
        let idx: Vec<usize> = [Relation::AA, Relation::AN, Relation::NA, Relation::NN]
            .iter()
            .map(|r| r.index())
            .collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn node_kind_slots_distinct() {
        let a = NodeKind::Op(Opcode::FAdd);
        let b = NodeKind::BufferIo;
        let c = NodeKind::BufferInternal;
        assert_ne!(a.opcode_slot(), b.opcode_slot());
        assert_ne!(b.opcode_slot(), c.opcode_slot());
        assert!(c.opcode_slot() < Opcode::COUNT + 2);
        assert_eq!(b.class_slot(), OpClass::COUNT);
        assert!(a.is_arithmetic());
        assert!(!b.is_arithmetic());
    }

    #[test]
    fn preds_succs_respect_liveness() {
        let mut g = WorkGraph::default();
        let a = g.add_node(mk_node(NodeKind::Op(Opcode::Load)));
        let b = g.add_node(mk_node(NodeKind::Op(Opcode::FAdd)));
        let c = g.add_node(mk_node(NodeKind::Op(Opcode::Store)));
        g.add_edge(WorkEdge {
            src: a,
            dst: b,
            src_ev: EventRef::EMPTY,
            snk_ev: EventRef::EMPTY,
            alive: true,
        });
        g.add_edge(WorkEdge {
            src: b,
            dst: c,
            src_ev: EventRef::EMPTY,
            snk_ev: EventRef::EMPTY,
            alive: true,
        });
        assert_eq!(g.preds(b), vec![a]);
        assert_eq!(g.succs(b), vec![c]);
        g.nodes[a].alive = false;
        g.edges[0].alive = false;
        assert!(g.preds(b).is_empty());
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn fuse_parallel_edges_merges_events() {
        let mut g = WorkGraph::default();
        let a = g.add_node(mk_node(NodeKind::Op(Opcode::Load)));
        let b = g.add_node(mk_node(NodeKind::Op(Opcode::FAdd)));
        let e1s = g.add_events(&[(0, 1)]);
        let e2s = g.add_events(&[(1, 2)]);
        g.add_edge(WorkEdge {
            src: a,
            dst: b,
            src_ev: e1s,
            snk_ev: e1s,
            alive: true,
        });
        g.add_edge(WorkEdge {
            src: a,
            dst: b,
            src_ev: e2s,
            snk_ev: e2s,
            alive: true,
        });
        g.fuse_parallel_edges();
        assert_eq!(g.num_edges(), 1);
        let e = *g.edges.iter().find(|e| e.alive).unwrap();
        assert_eq!(g.events.decode(e.src_ev), vec![(0, 1), (1, 2)]);
        assert!(g.check().is_ok());
    }

    #[test]
    fn fuse_with_empty_side_reuses_stream() {
        let mut g = WorkGraph::default();
        let a = g.add_node(mk_node(NodeKind::Op(Opcode::Load)));
        let b = g.add_node(mk_node(NodeKind::Op(Opcode::FAdd)));
        let ev = g.add_events(&[(0, 1), (2, 3)]);
        g.add_edge(WorkEdge {
            src: a,
            dst: b,
            src_ev: EventRef::EMPTY,
            snk_ev: ev,
            alive: true,
        });
        g.add_edge(WorkEdge {
            src: a,
            dst: b,
            src_ev: ev,
            snk_ev: EventRef::EMPTY,
            alive: true,
        });
        g.fuse_parallel_edges();
        let e = *g.edges.iter().find(|e| e.alive).unwrap();
        assert_eq!(e.src_ev, ev, "non-empty side must be reused verbatim");
        assert_eq!(e.snk_ev, ev);
    }

    #[test]
    fn check_catches_dead_endpoint() {
        let mut g = WorkGraph::default();
        let a = g.add_node(mk_node(NodeKind::Op(Opcode::Load)));
        let b = g.add_node(mk_node(NodeKind::Op(Opcode::FAdd)));
        g.add_edge(WorkEdge {
            src: a,
            dst: b,
            src_ev: EventRef::EMPTY,
            snk_ev: EventRef::EMPTY,
            alive: true,
        });
        g.nodes[b].alive = false;
        assert!(g.check().is_err());
    }

    #[test]
    fn powergraph_validation() {
        let g = PowerGraph {
            kernel: "k".into(),
            design_id: "d".into(),
            num_nodes: 2,
            node_feats: vec![0.0; 2 * PowerGraph::NODE_FEATS],
            edges: vec![(0, 1)],
            edge_feats: vec![[0.1, 0.1, 0.05, 0.05]],
            edge_rel: vec![Relation::NA],
            meta: vec![],
        };
        assert!(g.validate().is_ok());
        assert_eq!(g.relation_counts(), [0, 0, 1, 0]);
        let mut bad = g.clone();
        bad.edges[0].1 = 9;
        assert!(bad.validate().is_err());
    }
}
