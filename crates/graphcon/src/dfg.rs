//! Graph data structures for the construction flow.
//!
//! [`WorkGraph`] is the mutable representation the optimization passes
//! (buffer insertion, datapath merging, trimming) operate on; it keeps the
//! cycle-stamped value-event sequences on every edge so that activities can
//! be recomputed after edges are fused or rerouted. [`PowerGraph`] is the
//! finalized, feature-annotated sample consumed by the GNN.

use pg_activity::NodeActivity;
use pg_ir::{OpClass, Opcode, ValueId};
use std::collections::HashMap;
use std::sync::Arc;

/// A shared cycle-stamped `(cycle, bits)` event sequence.
///
/// Construction passes constantly duplicate event streams — def-use
/// fan-out puts one op's outputs on every consumer edge, buffer insertion
/// reroutes them, trim bypass inherits them onto bridge edges. Behind an
/// `Arc`, all of those are reference bumps instead of deep copies; a pass
/// that actually needs a *new* sequence (parallel-edge fusion) builds one
/// and wraps it.
pub type EventSeq = Arc<Vec<(u64, u32)>>;

/// Wraps raw events into a shared [`EventSeq`].
pub fn events(ev: Vec<(u64, u32)>) -> EventSeq {
    Arc::new(ev)
}

/// Kind of a graph node after construction.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// An IR operation (possibly representing several merged instances).
    Op(Opcode),
    /// An interface (I/O) buffer bank.
    BufferIo,
    /// An internal (alloca-derived) buffer bank.
    BufferInternal,
}

impl NodeKind {
    /// `true` for arithmetic (A) nodes in the paper's edge typing; buffers
    /// are non-arithmetic.
    pub fn is_arithmetic(&self) -> bool {
        match self {
            NodeKind::Op(o) => o.is_arithmetic(),
            _ => false,
        }
    }

    /// One-hot opcode slot: IR opcodes use their own index, buffers take the
    /// two trailing slots.
    pub fn opcode_slot(&self) -> usize {
        match self {
            NodeKind::Op(o) => o.index(),
            NodeKind::BufferIo => Opcode::COUNT,
            NodeKind::BufferInternal => Opcode::COUNT + 1,
        }
    }

    /// One-hot class slot: the four [`OpClass`]es plus a buffer class.
    pub fn class_slot(&self) -> usize {
        match self {
            NodeKind::Op(o) => o.class().index(),
            _ => OpClass::COUNT,
        }
    }
}

/// Heterogeneous edge relation (source class → sink class), §III-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// arithmetic → arithmetic
    AA,
    /// arithmetic → non-arithmetic
    AN,
    /// non-arithmetic → arithmetic
    NA,
    /// non-arithmetic → non-arithmetic
    NN,
}

impl Relation {
    /// Number of relation types.
    pub const COUNT: usize = 4;

    /// Relation from source/sink arithmetic-ness.
    pub fn from_classes(src_arith: bool, dst_arith: bool) -> Self {
        match (src_arith, dst_arith) {
            (true, true) => Relation::AA,
            (true, false) => Relation::AN,
            (false, true) => Relation::NA,
            (false, false) => Relation::NN,
        }
    }

    /// Stable index for per-relation weights.
    pub fn index(self) -> usize {
        match self {
            Relation::AA => 0,
            Relation::AN => 1,
            Relation::NA => 2,
            Relation::NN => 3,
        }
    }
}

/// A node of the working graph.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkNode {
    /// Kind (op or buffer).
    pub kind: NodeKind,
    /// IR op instances represented (empty for buffers).
    pub ops: Vec<ValueId>,
    /// Activity statistics (merged across instances).
    pub activity: NodeActivity,
    /// BRAM blocks for buffer nodes (0 otherwise).
    pub bram: f64,
    /// Backing array for buffers.
    pub array: Option<String>,
    /// Bank index for buffers.
    pub bank: usize,
    /// Liveness flag (passes tombstone instead of reindexing).
    pub alive: bool,
}

/// An edge of the working graph with raw event sequences.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkEdge {
    /// Source node index.
    pub src: usize,
    /// Sink node index.
    pub dst: usize,
    /// `(cycle, bits)` events injected by the source.
    pub src_ev: EventSeq,
    /// `(cycle, bits)` events consumed by the sink.
    pub snk_ev: EventSeq,
    /// Liveness flag.
    pub alive: bool,
}

/// The mutable graph the construction passes transform.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkGraph {
    /// Nodes (tombstoned, never removed).
    pub nodes: Vec<WorkNode>,
    /// Edges (tombstoned, never removed).
    pub edges: Vec<WorkEdge>,
    /// Design latency for activity normalization.
    pub latency: u64,
}

impl WorkGraph {
    /// Adds a node, returning its index.
    pub fn add_node(&mut self, node: WorkNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Adds an edge, returning its index.
    pub fn add_edge(&mut self, edge: WorkEdge) -> usize {
        self.edges.push(edge);
        self.edges.len() - 1
    }

    /// Alive-node count.
    pub fn num_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Alive-edge count.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().filter(|e| e.alive).count()
    }

    /// Alive predecessor node indices of `v` (sorted, deduplicated).
    pub fn preds(&self, v: usize) -> Vec<usize> {
        let mut p: Vec<usize> = self
            .edges
            .iter()
            .filter(|e| e.alive && e.dst == v && self.nodes[e.src].alive)
            .map(|e| e.src)
            .collect();
        p.sort_unstable();
        p.dedup();
        p
    }

    /// Alive successor node indices of `v` (sorted, deduplicated).
    pub fn succs(&self, v: usize) -> Vec<usize> {
        let mut s: Vec<usize> = self
            .edges
            .iter()
            .filter(|e| e.alive && e.src == v && self.nodes[e.dst].alive)
            .map(|e| e.dst)
            .collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Fuses parallel edges (same `(src, dst)`) by time-merging their event
    /// sequences. Called after passes that re-point edges.
    pub fn fuse_parallel_edges(&mut self) {
        let mut first: HashMap<(usize, usize), usize> = HashMap::new();
        let mut to_merge: Vec<(usize, usize)> = Vec::new();
        for (i, e) in self.edges.iter().enumerate() {
            if !e.alive {
                continue;
            }
            match first.entry((e.src, e.dst)) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(i);
                }
                std::collections::hash_map::Entry::Occupied(o) => {
                    to_merge.push((*o.get(), i));
                }
            }
        }
        for (keep, drop) in to_merge {
            let (se, de) = {
                let d = &self.edges[drop];
                (Arc::clone(&d.src_ev), Arc::clone(&d.snk_ev))
            };
            // Merging with an empty sequence is the identity — reuse the
            // non-empty side's shared sequence instead of re-allocating.
            let k = &mut self.edges[keep];
            k.src_ev = match (k.src_ev.is_empty(), se.is_empty()) {
                (true, _) => se,
                (false, true) => Arc::clone(&k.src_ev),
                (false, false) => Arc::new(pg_activity::sa::merge_events(&k.src_ev, &se)),
            };
            k.snk_ev = match (k.snk_ev.is_empty(), de.is_empty()) {
                (true, _) => de,
                (false, true) => Arc::clone(&k.snk_ev),
                (false, false) => Arc::new(pg_activity::sa::merge_events(&k.snk_ev, &de)),
            };
            self.edges[drop].alive = false;
        }
    }

    /// Sanity invariants: alive edges point at alive nodes.
    pub fn check(&self) -> Result<(), String> {
        for (i, e) in self.edges.iter().enumerate() {
            if !e.alive {
                continue;
            }
            if e.src >= self.nodes.len() || e.dst >= self.nodes.len() {
                return Err(format!("edge {i} out of range"));
            }
            if !self.nodes[e.src].alive || !self.nodes[e.dst].alive {
                return Err(format!("edge {i} touches dead node"));
            }
        }
        Ok(())
    }
}

/// A finalized graph sample: the output of the construction flow and the
/// input to HEC-GNN.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerGraph {
    /// Source kernel name.
    pub kernel: String,
    /// Design-point identifier.
    pub design_id: String,
    /// Number of nodes.
    pub num_nodes: usize,
    /// Flattened node features, `num_nodes × NODE_FEATS` row-major.
    pub node_feats: Vec<f32>,
    /// Directed edges `(src, dst)`.
    pub edges: Vec<(u32, u32)>,
    /// Four-dimensional edge features `[SA_src, SA_snk, AR_src, AR_snk]`.
    pub edge_feats: Vec<[f32; 4]>,
    /// Edge relation types.
    pub edge_rel: Vec<Relation>,
    /// Global metadata features (HLS report; filled by the dataset builder
    /// once the unoptimized baseline is known).
    pub meta: Vec<f32>,
}

impl PowerGraph {
    /// Node feature width: 5 class slots + 23 opcode slots + 6 numeric.
    pub const NODE_FEATS: usize = OpClass::COUNT + 1 + Opcode::COUNT + 2 + 6;
    /// Edge feature width (Eq. 2/3 in both directions).
    pub const EDGE_FEATS: usize = 4;

    /// Features of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: usize) -> &[f32] {
        &self.node_feats[i * Self::NODE_FEATS..(i + 1) * Self::NODE_FEATS]
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Histogram of edges per relation type.
    pub fn relation_counts(&self) -> [usize; Relation::COUNT] {
        let mut c = [0usize; Relation::COUNT];
        for r in &self.edge_rel {
            c[r.index()] += 1;
        }
        c
    }

    /// Structural validation (used by tests and property checks).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.node_feats.len() != self.num_nodes * Self::NODE_FEATS {
            return Err("node feature buffer size mismatch".into());
        }
        if self.edges.len() != self.edge_feats.len() || self.edges.len() != self.edge_rel.len() {
            return Err("edge array length mismatch".into());
        }
        for &(s, d) in &self.edges {
            if s as usize >= self.num_nodes || d as usize >= self.num_nodes {
                return Err(format!("edge ({s},{d}) out of range"));
            }
        }
        for f in &self.node_feats {
            if !f.is_finite() {
                return Err("non-finite node feature".into());
            }
        }
        for ef in &self.edge_feats {
            if ef.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return Err("invalid edge feature".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_node(kind: NodeKind) -> WorkNode {
        WorkNode {
            kind,
            ops: vec![],
            activity: NodeActivity::default(),
            bram: 0.0,
            array: None,
            bank: 0,
            alive: true,
        }
    }

    #[test]
    fn relation_mapping() {
        assert_eq!(Relation::from_classes(true, true), Relation::AA);
        assert_eq!(Relation::from_classes(true, false), Relation::AN);
        assert_eq!(Relation::from_classes(false, true), Relation::NA);
        assert_eq!(Relation::from_classes(false, false), Relation::NN);
        let idx: Vec<usize> = [Relation::AA, Relation::AN, Relation::NA, Relation::NN]
            .iter()
            .map(|r| r.index())
            .collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn node_kind_slots_distinct() {
        let a = NodeKind::Op(Opcode::FAdd);
        let b = NodeKind::BufferIo;
        let c = NodeKind::BufferInternal;
        assert_ne!(a.opcode_slot(), b.opcode_slot());
        assert_ne!(b.opcode_slot(), c.opcode_slot());
        assert!(c.opcode_slot() < Opcode::COUNT + 2);
        assert_eq!(b.class_slot(), OpClass::COUNT);
        assert!(a.is_arithmetic());
        assert!(!b.is_arithmetic());
    }

    #[test]
    fn preds_succs_respect_liveness() {
        let mut g = WorkGraph::default();
        let a = g.add_node(mk_node(NodeKind::Op(Opcode::Load)));
        let b = g.add_node(mk_node(NodeKind::Op(Opcode::FAdd)));
        let c = g.add_node(mk_node(NodeKind::Op(Opcode::Store)));
        g.add_edge(WorkEdge {
            src: a,
            dst: b,
            src_ev: events(vec![]),
            snk_ev: events(vec![]),
            alive: true,
        });
        g.add_edge(WorkEdge {
            src: b,
            dst: c,
            src_ev: events(vec![]),
            snk_ev: events(vec![]),
            alive: true,
        });
        assert_eq!(g.preds(b), vec![a]);
        assert_eq!(g.succs(b), vec![c]);
        g.nodes[a].alive = false;
        g.edges[0].alive = false;
        assert!(g.preds(b).is_empty());
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn fuse_parallel_edges_merges_events() {
        let mut g = WorkGraph::default();
        let a = g.add_node(mk_node(NodeKind::Op(Opcode::Load)));
        let b = g.add_node(mk_node(NodeKind::Op(Opcode::FAdd)));
        g.add_edge(WorkEdge {
            src: a,
            dst: b,
            src_ev: events(vec![(0, 1)]),
            snk_ev: events(vec![(0, 1)]),
            alive: true,
        });
        g.add_edge(WorkEdge {
            src: a,
            dst: b,
            src_ev: events(vec![(1, 2)]),
            snk_ev: events(vec![(1, 2)]),
            alive: true,
        });
        g.fuse_parallel_edges();
        assert_eq!(g.num_edges(), 1);
        let e = g.edges.iter().find(|e| e.alive).unwrap();
        assert_eq!(*e.src_ev, vec![(0, 1), (1, 2)]);
        assert!(g.check().is_ok());
    }

    #[test]
    fn check_catches_dead_endpoint() {
        let mut g = WorkGraph::default();
        let a = g.add_node(mk_node(NodeKind::Op(Opcode::Load)));
        let b = g.add_node(mk_node(NodeKind::Op(Opcode::FAdd)));
        g.add_edge(WorkEdge {
            src: a,
            dst: b,
            src_ev: events(vec![]),
            snk_ev: events(vec![]),
            alive: true,
        });
        g.nodes[b].alive = false;
        assert!(g.check().is_err());
    }

    #[test]
    fn powergraph_validation() {
        let g = PowerGraph {
            kernel: "k".into(),
            design_id: "d".into(),
            num_nodes: 2,
            node_feats: vec![0.0; 2 * PowerGraph::NODE_FEATS],
            edges: vec![(0, 1)],
            edge_feats: vec![[0.1, 0.1, 0.05, 0.05]],
            edge_rel: vec![Relation::NA],
            meta: vec![],
        };
        assert!(g.validate().is_ok());
        assert_eq!(g.relation_counts(), [0, 0, 1, 0]);
        let mut bad = g.clone();
        bad.edges[0].1 = 9;
        assert!(bad.validate().is_err());
    }
}
