//! Feature annotation and finalization (§III-A).
//!
//! Node features: one-hot operation class and opcode (buffers get their own
//! slots), plus the numeric activity statistics (overall activation rate,
//! input/output/overall switching activities), memory-resource annotation
//! and merged-instance count. Edge features: the four-dimensional
//! `[SA_src, SA_snk, AR_src, AR_snk]` vector of Eq. 2/3. Edge relations:
//! A→A / A→N / N→A / N→N from the arithmetic classification of endpoint
//! nodes.

use crate::dfg::{PowerGraph, Relation, WorkGraph};
use std::collections::BTreeMap;

/// Finalizes a worked graph into a [`PowerGraph`] sample.
pub fn finalize(g: &WorkGraph, kernel: &str, design_id: &str) -> PowerGraph {
    // Compact alive nodes.
    let mut remap = vec![u32::MAX; g.nodes.len()];
    let mut num_nodes = 0usize;
    for (i, n) in g.nodes.iter().enumerate() {
        if n.alive {
            remap[i] = num_nodes as u32;
            num_nodes += 1;
        }
    }

    let mut node_feats = vec![0.0f32; num_nodes * PowerGraph::NODE_FEATS];
    for (i, n) in g.nodes.iter().enumerate() {
        if !n.alive {
            continue;
        }
        let row = remap[i] as usize * PowerGraph::NODE_FEATS;
        let f = &mut node_feats[row..row + PowerGraph::NODE_FEATS];
        f[n.kind.class_slot()] = 1.0;
        let opcode_base = 5; // OpClass::COUNT + 1
        f[opcode_base + n.kind.opcode_slot()] = 1.0;
        let num_base = opcode_base + 23; // Opcode::COUNT + 2
        f[num_base] = n.activity.ar as f32;
        f[num_base + 1] = n.activity.sa_in as f32;
        f[num_base + 2] = n.activity.sa_out as f32;
        f[num_base + 3] = n.activity.sa_overall as f32;
        f[num_base + 4] = (n.bram / 8.0).min(4.0) as f32;
        f[num_base + 5] = ((1 + n.ops.len()) as f32).log2() / 4.0;
    }

    let mut edges = Vec::new();
    let mut edge_feats = Vec::new();
    let mut edge_rel = Vec::new();
    // Fan-out attaches one op's stream to many edges as the same
    // `(offset, len)` ref — fold each distinct stream once.
    let mut fold_memo: BTreeMap<(u32, u32), (f64, f64)> = BTreeMap::new();
    for e in g.edges.iter().filter(|e| e.alive) {
        let (s, d) = (remap[e.src], remap[e.dst]);
        debug_assert!(s != u32::MAX && d != u32::MAX);
        edges.push((s, d));
        let (sa_src, ar_src) = g.events.sa_ar_memo(e.src_ev, g.latency, &mut fold_memo);
        let (sa_snk, ar_snk) = g.events.sa_ar_memo(e.snk_ev, g.latency, &mut fold_memo);
        edge_feats.push([sa_src as f32, sa_snk as f32, ar_src as f32, ar_snk as f32]);
        edge_rel.push(Relation::from_classes(
            g.nodes[e.src].kind.is_arithmetic(),
            g.nodes[e.dst].kind.is_arithmetic(),
        ));
    }

    PowerGraph {
        kernel: kernel.to_string(),
        design_id: design_id.to_string(),
        num_nodes,
        node_feats,
        edges,
        edge_feats,
        edge_rel,
        meta: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::{NodeKind, WorkEdge, WorkNode};
    use pg_activity::NodeActivity;
    use pg_ir::Opcode;

    fn tiny() -> WorkGraph {
        let mut g = WorkGraph {
            latency: 10,
            ..WorkGraph::default()
        };
        let load = g.add_node(WorkNode {
            kind: NodeKind::Op(Opcode::Load),
            ops: vec![],
            activity: NodeActivity {
                ar: 0.5,
                sa_in: 0.1,
                sa_out: 0.2,
                sa_overall: 0.3,
            },
            bram: 0.0,
            array: None,
            bank: 0,
            alive: true,
        });
        let fadd = g.add_node(WorkNode {
            kind: NodeKind::Op(Opcode::FAdd),
            ops: vec![],
            activity: NodeActivity::default(),
            bram: 0.0,
            array: None,
            bank: 0,
            alive: true,
        });
        let dead = g.add_node(WorkNode {
            kind: NodeKind::Op(Opcode::SExt),
            ops: vec![],
            activity: NodeActivity::default(),
            bram: 0.0,
            array: None,
            bank: 0,
            alive: false,
        });
        let _ = dead;
        let src_ev = g.add_events(&[(0, 0), (1, 0xFF)]);
        let snk_ev = g.add_events(&[(0, 0), (2, 0xFF)]);
        g.add_edge(WorkEdge {
            src: load,
            dst: fadd,
            src_ev,
            snk_ev,
            alive: true,
        });
        g
    }

    #[test]
    fn compacts_dead_nodes() {
        let pg = finalize(&tiny(), "k", "d");
        assert_eq!(pg.num_nodes, 2);
        assert_eq!(pg.num_edges(), 1);
        assert!(pg.validate().is_ok());
    }

    #[test]
    fn one_hot_and_numeric_features() {
        let pg = finalize(&tiny(), "k", "d");
        let f = pg.node(0); // load node
                            // class one-hot: Memory = index 1
        assert_eq!(f[1], 1.0);
        assert_eq!(f.iter().take(5).sum::<f32>(), 1.0);
        // opcode one-hot: exactly one set
        assert_eq!(f[5..5 + 23].iter().sum::<f32>(), 1.0);
        assert_eq!(f[5 + Opcode::Load.index()], 1.0);
        // numeric tail
        let nb = 5 + 23;
        assert!((f[nb] - 0.5).abs() < 1e-6);
        assert!((f[nb + 3] - 0.3).abs() < 1e-6);
    }

    #[test]
    fn edge_features_match_eq2_eq3() {
        let pg = finalize(&tiny(), "k", "d");
        let ef = pg.edge_feats[0];
        // one change of 8 bits over latency 10
        assert!((ef[0] - 0.8).abs() < 1e-6);
        assert!((ef[1] - 0.8).abs() < 1e-6);
        assert!((ef[2] - 0.1).abs() < 1e-6);
        assert!((ef[3] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn relation_from_endpoints() {
        let pg = finalize(&tiny(), "k", "d");
        // load (N) -> fadd (A)
        assert_eq!(pg.edge_rel[0], Relation::NA);
    }
}
