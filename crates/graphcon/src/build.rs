//! Raw DFG construction from HLS artifacts.
//!
//! The "original HLS DFG" of Fig. 2: one node per static IR op, SSA def-use
//! edges carrying the traced value events, and store→load memory edges for
//! aliasing accesses (these are replaced by explicit buffer nodes in the
//! buffer-insertion pass).

use crate::dfg::{GraphEvents, NodeKind, WorkEdge, WorkGraph, WorkNode};
use pg_activity::ExecutionTrace;
use pg_hls::schedule::may_alias;
use pg_hls::HlsDesign;
use pg_ir::{Opcode, Operand};
use std::sync::Arc;

/// Builds the raw dataflow graph of `design` annotated with traced events.
/// The trace's compressed event arena is shared with the graph (`Arc`), so
/// attaching an op's outputs to every consumer edge costs an
/// `(offset, len)` copy.
pub fn build_raw(design: &HlsDesign, trace: &ExecutionTrace) -> WorkGraph {
    let func = &design.ir;
    let mut g = WorkGraph {
        latency: trace.latency,
        events: GraphEvents::with_base(Arc::clone(&trace.arena)),
        ..WorkGraph::default()
    };

    // One node per static op; node index == ValueId index.
    for op in &func.ops {
        g.add_node(WorkNode {
            kind: NodeKind::Op(op.opcode),
            ops: vec![op.id],
            activity: trace.activity_of(op.id),
            bram: 0.0,
            array: op.mem.as_ref().map(|m| m.array.clone()),
            bank: op.mem.as_ref().and_then(|m| m.bank).unwrap_or(0),
            alive: true,
        });
    }

    // SSA def-use edges.
    for op in &func.ops {
        for (k, operand) in op.operands.iter().enumerate() {
            if let Operand::Value(u) = operand {
                g.add_edge(WorkEdge {
                    src: u.idx(),
                    dst: op.id.idx(),
                    src_ev: trace.output(*u),
                    snk_ev: trace.inputs(op.id)[k],
                    alive: true,
                });
            }
        }
    }

    // Memory dataflow: store -> later-or-same-block load on aliasing refs.
    let stores: Vec<&pg_ir::IrOp> = func
        .ops
        .iter()
        .filter(|o| o.opcode == Opcode::Store)
        .collect();
    let loads: Vec<&pg_ir::IrOp> = func
        .ops
        .iter()
        .filter(|o| o.opcode == Opcode::Load)
        .collect();
    for s in &stores {
        let ms = s.mem.as_ref().expect("store has memref");
        for l in &loads {
            if l.block < s.block {
                continue;
            }
            let ml = l.mem.as_ref().expect("load has memref");
            if may_alias(ms, ml) {
                g.add_edge(WorkEdge {
                    src: s.id.idx(),
                    dst: l.id.idx(),
                    src_ev: trace.output(s.id),
                    snk_ev: trace.output(l.id),
                    alive: true,
                });
            }
        }
    }

    g.fuse_parallel_edges();
    debug_assert_eq!(g.check(), Ok(()));
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_activity::{execute, Stimuli};
    use pg_hls::{Directives, HlsFlow};
    use pg_ir::expr::aff;
    use pg_ir::{ArrayKind, Expr, Kernel, KernelBuilder};

    fn axpy() -> Kernel {
        KernelBuilder::new("axpy")
            .array("a", &[16], ArrayKind::Input)
            .array("x", &[16], ArrayKind::Input)
            .array("y", &[16], ArrayKind::Output)
            .loop_("i", 16, |b| {
                b.assign(
                    ("y", vec![aff("i")]),
                    Expr::load("y", vec![aff("i")])
                        + Expr::load("a", vec![aff("i")]) * Expr::load("x", vec![aff("i")]),
                );
            })
            .build()
            .unwrap()
    }

    fn raw(kernel: &Kernel) -> (HlsDesign, WorkGraph) {
        let design = HlsFlow::new().run(kernel, &Directives::new()).unwrap();
        let stim = Stimuli::for_kernel(kernel, 0);
        let trace = execute(&design, &stim);
        let g = build_raw(&design, &trace);
        (design, g)
    }

    #[test]
    fn node_per_static_op() {
        let k = axpy();
        let (design, g) = raw(&k);
        assert_eq!(g.num_nodes(), design.ir.len());
    }

    #[test]
    fn def_use_edges_present() {
        let k = axpy();
        let (design, g) = raw(&k);
        // every def-use pair within a block appears as an edge
        let fmul = design
            .ir
            .ops
            .iter()
            .find(|o| o.opcode == Opcode::FMul)
            .unwrap();
        let preds = g.preds(fmul.id.idx());
        assert_eq!(preds.len(), 2, "fmul should have two load preds");
    }

    #[test]
    fn store_to_load_memory_edge() {
        let k = axpy();
        let (design, g) = raw(&k);
        let store = design
            .ir
            .ops
            .iter()
            .find(|o| o.opcode == Opcode::Store)
            .unwrap();
        let y_load = design
            .ir
            .ops
            .iter()
            .find(|o| o.opcode == Opcode::Load && o.mem.as_ref().unwrap().array == "y")
            .unwrap();
        assert!(
            g.succs(store.id.idx()).contains(&y_load.id.idx()),
            "store y -> load y memory edge missing"
        );
    }

    #[test]
    fn events_attached_to_edges() {
        let k = axpy();
        let (_design, g) = raw(&k);
        let with_events = g
            .edges
            .iter()
            .filter(|e| e.alive && !e.src_ev.is_empty())
            .count();
        assert!(with_events > 5, "expected traced events on edges");
        // all event sequences are time-sorted
        for e in g.edges.iter().filter(|e| e.alive) {
            for w in g.events.decode(e.src_ev).windows(2) {
                assert!(w[0].0 <= w[1].0);
            }
        }
    }

    #[test]
    fn no_memory_edge_between_disjoint_arrays() {
        let k = axpy();
        let (design, g) = raw(&k);
        let store = design
            .ir
            .ops
            .iter()
            .find(|o| o.opcode == Opcode::Store)
            .unwrap();
        let a_load = design
            .ir
            .ops
            .iter()
            .find(|o| o.opcode == Opcode::Load && o.mem.as_ref().unwrap().array == "a")
            .unwrap();
        assert!(!g.succs(store.id.idx()).contains(&a_load.id.idx()));
    }
}
