//! PowerGear's graph construction flow (§III-A of the paper).
//!
//! Transforms an HLS design plus its activity trace into a directed,
//! heterogeneous, feature-annotated graph sample ([`PowerGraph`]):
//!
//! 1. **Raw DFG build** — one node per static IR op, SSA def-use edges and
//!    store→load memory edges, all carrying cycle-stamped value events;
//! 2. **Buffer insertion** — `alloca`/`getelementptr`+`load`/`store`
//!    patterns become explicit I/O / internal buffer nodes annotated with
//!    memory resource utilization;
//! 3. **Datapath merging** — nodes bound to the same functional unit
//!    (resource sharing across FSM states) and duplicate chains between the
//!    same endpoints are fused, restoring the real hardware structure;
//! 4. **Graph trimming** — cast/control noise (`sext`, `trunc`, …) is
//!    bypassed;
//! 5. **Feature annotation** — per-edge switching activities and activation
//!    rates (Eq. 2/3, both dataflow directions), A/N relation types, and
//!    node one-hot + activity features.
//!
//! # Examples
//!
//! ```
//! use pg_activity::{execute, Stimuli};
//! use pg_graphcon::GraphFlow;
//! use pg_hls::{Directives, HlsFlow};
//! use pg_ir::{ArrayKind, KernelBuilder};
//! use pg_ir::expr::{aff, Expr};
//!
//! let k = KernelBuilder::new("scale")
//!     .array("x", &[8], ArrayKind::Input)
//!     .array("y", &[8], ArrayKind::Output)
//!     .loop_("i", 8, |b| {
//!         b.assign(("y", vec![aff("i")]),
//!                  Expr::load("x", vec![aff("i")]) * Expr::Const(2.0));
//!     })
//!     .build()?;
//! let design = HlsFlow::new().run(&k, &Directives::new())?;
//! let trace = execute(&design, &Stimuli::for_kernel(&k, 0));
//! let graph = GraphFlow::new().build(&design, &trace);
//! assert!(graph.validate().is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod annotate;
pub mod buffers;
pub mod build;
pub mod dfg;
pub mod flow;
pub mod merge;
pub mod trim;

pub use dfg::{GraphEvents, NodeKind, PowerGraph, Relation, WorkEdge, WorkGraph, WorkNode};
pub use flow::{GraphConfig, GraphFlow};
pub use pg_activity::EventRef;
