//! Graph trimming (§III-A).
//!
//! "We bypass DFG nodes that contribute little to arithmetic computation and
//! also produce trivial hardware entities, e.g., bit truncation and signed
//! extension." Trimmable nodes (`sext`, `zext`, `trunc`, `bitcast`, `br`,
//! `ret`) are removed; every predecessor is reconnected to every successor,
//! the bridged edge inheriting the producer-side events of the incoming edge
//! and the consumer-side events of the outgoing edge.

use crate::dfg::{NodeKind, WorkEdge, WorkGraph};

/// Runs graph trimming on `g`.
///
/// Single pass over nodes with an incrementally-maintained adjacency
/// index: bypassing victim `n` appends bridge edges and registers them in
/// the index, so a later victim on the same cast chain sees them without
/// rescanning the edge list. Equivalent to (and bit-identical with) the
/// fixpoint formulation — victims are processed in ascending node order,
/// which is exactly the order repeated "first trimmable node" scans would
/// produce, and trimming never *creates* trimmable nodes — but costs
/// O(V + E) amortized instead of O(V·E).
pub fn trim(g: &mut WorkGraph) {
    // Adjacency index over alive edges (edge indexes, ascending).
    let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); g.nodes.len()];
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); g.nodes.len()];
    for (ei, e) in g.edges.iter().enumerate() {
        if e.alive {
            in_edges[e.dst].push(ei);
            out_edges[e.src].push(ei);
        }
    }

    for ni in 0..g.nodes.len() {
        let n = &g.nodes[ni];
        if !(n.alive && matches!(&n.kind, NodeKind::Op(o) if o.is_trimmable())) {
            continue;
        }
        // Bridge every alive in-edge to every alive out-edge, inheriting
        // producer-side events from the in-edge and consumer-side events
        // from the out-edge.
        let mut bridges: Vec<WorkEdge> = Vec::new();
        for &ie in &in_edges[ni] {
            if !g.edges[ie].alive {
                continue;
            }
            for &oe in &out_edges[ni] {
                if !g.edges[oe].alive {
                    continue;
                }
                let (src, dst) = (g.edges[ie].src, g.edges[oe].dst);
                if src != ni && dst != ni {
                    bridges.push(WorkEdge {
                        src,
                        dst,
                        src_ev: g.edges[ie].src_ev,
                        snk_ev: g.edges[oe].snk_ev,
                        alive: true,
                    });
                }
            }
        }
        for slot in [&in_edges[ni], &out_edges[ni]] {
            for &ei in slot {
                g.edges[ei].alive = false;
            }
        }
        g.nodes[ni].alive = false;
        for b in bridges {
            let (src, dst) = (b.src, b.dst);
            let ei = g.add_edge(b);
            in_edges[dst].push(ei);
            out_edges[src].push(ei);
        }
    }
    g.fuse_parallel_edges();
    debug_assert_eq!(g.check(), Ok(()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::insert_buffers;
    use crate::build::build_raw;
    use crate::merge::merge_datapaths;
    use pg_activity::{execute, Stimuli};
    use pg_hls::{Directives, HlsFlow};
    use pg_ir::expr::aff;
    use pg_ir::{ArrayKind, Expr, Kernel, KernelBuilder, Opcode};

    fn kernel() -> Kernel {
        KernelBuilder::new("tk")
            .array("a", &[8, 8], ArrayKind::Input)
            .array("y", &[8], ArrayKind::Output)
            .loop_("i", 8, |bb| {
                bb.loop_("j", 8, |bb| {
                    bb.assign(
                        ("y", vec![aff("i")]),
                        Expr::load("y", vec![aff("i")]) + Expr::load("a", vec![aff("i"), aff("j")]),
                    );
                });
            })
            .build()
            .unwrap()
    }

    fn graph(trimmed: bool) -> WorkGraph {
        let k = kernel();
        let design = HlsFlow::new().run(&k, &Directives::new()).unwrap();
        let stim = Stimuli::for_kernel(&k, 0);
        let trace = execute(&design, &stim);
        let mut g = build_raw(&design, &trace);
        insert_buffers(&mut g, &design);
        merge_datapaths(&mut g, &design);
        if trimmed {
            trim(&mut g);
        }
        g
    }

    fn count_trimmable(g: &WorkGraph) -> usize {
        g.nodes
            .iter()
            .filter(|n| n.alive && matches!(&n.kind, NodeKind::Op(o) if o.is_trimmable()))
            .count()
    }

    #[test]
    fn removes_all_trimmable_nodes() {
        let g0 = graph(false);
        assert!(count_trimmable(&g0) > 0, "test needs casts to trim");
        let g1 = graph(true);
        assert_eq!(count_trimmable(&g1), 0);
        assert!(g1.num_nodes() < g0.num_nodes());
    }

    #[test]
    fn preserves_connectivity_through_bypass() {
        let g = graph(true);
        // phi(j) -> (sext gone) -> buffer a must now be a direct edge:
        // find a phi with a buffer successor
        let has_phi_to_buffer = g.edges.iter().any(|e| {
            e.alive
                && matches!(g.nodes[e.src].kind, NodeKind::Op(Opcode::Phi))
                && matches!(
                    g.nodes[e.dst].kind,
                    NodeKind::BufferIo | NodeKind::BufferInternal
                )
        });
        assert!(has_phi_to_buffer, "bypass should bridge phi -> buffer");
    }

    #[test]
    fn bridged_edges_carry_events() {
        let g = graph(true);
        let bridged: Vec<&crate::dfg::WorkEdge> = g
            .edges
            .iter()
            .filter(|e| e.alive && matches!(g.nodes[e.src].kind, NodeKind::Op(Opcode::Phi)))
            .collect();
        assert!(!bridged.is_empty());
        assert!(bridged.iter().any(|e| !e.src_ev.is_empty()));
    }

    #[test]
    fn graph_consistent_after_trim() {
        let g = graph(true);
        assert_eq!(g.check(), Ok(()));
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn trim_is_idempotent() {
        let mut g = graph(true);
        let (n, e) = (g.num_nodes(), g.num_edges());
        trim(&mut g);
        assert_eq!(g.num_nodes(), n);
        assert_eq!(g.num_edges(), e);
    }
}
