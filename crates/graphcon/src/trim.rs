//! Graph trimming (§III-A).
//!
//! "We bypass DFG nodes that contribute little to arithmetic computation and
//! also produce trivial hardware entities, e.g., bit truncation and signed
//! extension." Trimmable nodes (`sext`, `zext`, `trunc`, `bitcast`, `br`,
//! `ret`) are removed; every predecessor is reconnected to every successor,
//! the bridged edge inheriting the producer-side events of the incoming edge
//! and the consumer-side events of the outgoing edge.

use crate::dfg::{NodeKind, WorkEdge, WorkGraph};

/// Runs graph trimming on `g`.
pub fn trim(g: &mut WorkGraph) {
    // Iterate until no trimmable node remains (handles cast chains).
    loop {
        let victim = g
            .nodes
            .iter()
            .position(|n| n.alive && matches!(&n.kind, NodeKind::Op(o) if o.is_trimmable()));
        let Some(ni) = victim else { break };
        bypass(g, ni);
    }
    g.fuse_parallel_edges();
    debug_assert_eq!(g.check(), Ok(()));
}

fn bypass(g: &mut WorkGraph, ni: usize) {
    let in_edges: Vec<usize> = g
        .edges
        .iter()
        .enumerate()
        .filter(|(_, e)| e.alive && e.dst == ni)
        .map(|(i, _)| i)
        .collect();
    let out_edges: Vec<usize> = g
        .edges
        .iter()
        .enumerate()
        .filter(|(_, e)| e.alive && e.src == ni)
        .map(|(i, _)| i)
        .collect();
    let mut bridges = Vec::new();
    for &ie in &in_edges {
        for &oe in &out_edges {
            let (src, src_ev) = {
                let e = &g.edges[ie];
                (e.src, e.src_ev.clone())
            };
            let (dst, snk_ev) = {
                let e = &g.edges[oe];
                (e.dst, e.snk_ev.clone())
            };
            if src != ni && dst != ni {
                bridges.push(WorkEdge {
                    src,
                    dst,
                    src_ev,
                    snk_ev,
                    alive: true,
                });
            }
        }
    }
    for &ie in in_edges.iter().chain(&out_edges) {
        g.edges[ie].alive = false;
    }
    g.nodes[ni].alive = false;
    for b in bridges {
        g.add_edge(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::insert_buffers;
    use crate::build::build_raw;
    use crate::merge::merge_datapaths;
    use pg_activity::{execute, Stimuli};
    use pg_hls::{Directives, HlsFlow};
    use pg_ir::expr::aff;
    use pg_ir::{ArrayKind, Expr, Kernel, KernelBuilder, Opcode};

    fn kernel() -> Kernel {
        KernelBuilder::new("tk")
            .array("a", &[8, 8], ArrayKind::Input)
            .array("y", &[8], ArrayKind::Output)
            .loop_("i", 8, |bb| {
                bb.loop_("j", 8, |bb| {
                    bb.assign(
                        ("y", vec![aff("i")]),
                        Expr::load("y", vec![aff("i")]) + Expr::load("a", vec![aff("i"), aff("j")]),
                    );
                });
            })
            .build()
            .unwrap()
    }

    fn graph(trimmed: bool) -> WorkGraph {
        let k = kernel();
        let design = HlsFlow::new().run(&k, &Directives::new()).unwrap();
        let stim = Stimuli::for_kernel(&k, 0);
        let trace = execute(&design, &stim);
        let mut g = build_raw(&design, &trace);
        insert_buffers(&mut g, &design);
        merge_datapaths(&mut g, &design);
        if trimmed {
            trim(&mut g);
        }
        g
    }

    fn count_trimmable(g: &WorkGraph) -> usize {
        g.nodes
            .iter()
            .filter(|n| n.alive && matches!(&n.kind, NodeKind::Op(o) if o.is_trimmable()))
            .count()
    }

    #[test]
    fn removes_all_trimmable_nodes() {
        let g0 = graph(false);
        assert!(count_trimmable(&g0) > 0, "test needs casts to trim");
        let g1 = graph(true);
        assert_eq!(count_trimmable(&g1), 0);
        assert!(g1.num_nodes() < g0.num_nodes());
    }

    #[test]
    fn preserves_connectivity_through_bypass() {
        let g = graph(true);
        // phi(j) -> (sext gone) -> buffer a must now be a direct edge:
        // find a phi with a buffer successor
        let has_phi_to_buffer = g.edges.iter().any(|e| {
            e.alive
                && matches!(g.nodes[e.src].kind, NodeKind::Op(Opcode::Phi))
                && matches!(
                    g.nodes[e.dst].kind,
                    NodeKind::BufferIo | NodeKind::BufferInternal
                )
        });
        assert!(has_phi_to_buffer, "bypass should bridge phi -> buffer");
    }

    #[test]
    fn bridged_edges_carry_events() {
        let g = graph(true);
        let bridged: Vec<&crate::dfg::WorkEdge> = g
            .edges
            .iter()
            .filter(|e| e.alive && matches!(g.nodes[e.src].kind, NodeKind::Op(Opcode::Phi)))
            .collect();
        assert!(!bridged.is_empty());
        assert!(bridged.iter().any(|e| !e.src_ev.is_empty()));
    }

    #[test]
    fn graph_consistent_after_trim() {
        let g = graph(true);
        assert_eq!(g.check(), Ok(()));
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn trim_is_idempotent() {
        let mut g = graph(true);
        let (n, e) = (g.num_nodes(), g.num_edges());
        trim(&mut g);
        assert_eq!(g.num_nodes(), n);
        assert_eq!(g.num_edges(), e);
    }
}
