//! Graph-construction flow orchestration.
//!
//! [`GraphFlow`] chains the four passes of §III-A — raw DFG build, buffer
//! insertion, datapath merging, graph trimming — and finalizes feature
//! annotation. Each pass can be disabled individually, which the test suite
//! and the design-choice ablation bench use to quantify each pass's
//! contribution.

use crate::annotate::finalize;
use crate::buffers::insert_buffers;
use crate::build::build_raw;
use crate::dfg::PowerGraph;
use crate::merge::merge_datapaths;
use crate::trim::trim;
use pg_activity::ExecutionTrace;
use pg_hls::HlsDesign;
use pg_util::prof;

/// Pass-selection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphConfig {
    /// Insert explicit buffer nodes (on by default).
    pub buffer_insertion: bool,
    /// Merge shared/duplicated datapaths (on by default).
    pub datapath_merging: bool,
    /// Trim cast/control noise nodes (on by default).
    pub graph_trimming: bool,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            buffer_insertion: true,
            datapath_merging: true,
            graph_trimming: true,
        }
    }
}

/// The graph construction flow.
#[derive(Debug, Clone, Default)]
pub struct GraphFlow {
    /// Pass selection.
    pub config: GraphConfig,
}

impl GraphFlow {
    /// Flow with all optimizations enabled (the paper's configuration).
    pub fn new() -> Self {
        Self::default()
    }

    /// Flow with explicit pass selection.
    pub fn with_config(config: GraphConfig) -> Self {
        GraphFlow { config }
    }

    /// Builds the annotated power graph for `design` using its activity
    /// `trace`.
    pub fn build(&self, design: &HlsDesign, trace: &ExecutionTrace) -> PowerGraph {
        let g = self.build_work(design, trace);
        self.finalize_work(&g, design)
    }

    /// Runs the configured construction passes, returning the intermediate
    /// [`WorkGraph`](crate::dfg::WorkGraph). The work graph is also what
    /// the power oracle's netlist surrogate consumes — building it once
    /// and sharing it (see `pg_powersim::build_netlist_from_graph`) halves
    /// the graph-construction cost of a labeled sample.
    pub fn build_work(&self, design: &HlsDesign, trace: &ExecutionTrace) -> crate::dfg::WorkGraph {
        let _t = prof::scope("graph");
        let mut g = {
            let _t = prof::scope("graph.build_raw");
            build_raw(design, trace)
        };
        if self.config.buffer_insertion {
            let _t = prof::scope("graph.buffers");
            insert_buffers(&mut g, design);
        }
        if self.config.datapath_merging {
            let _t = prof::scope("graph.merge");
            merge_datapaths(&mut g, design);
        }
        if self.config.graph_trimming {
            let _t = prof::scope("graph.trim");
            trim(&mut g);
        }
        g
    }

    /// Annotates and compacts an already-built work graph into the final
    /// [`PowerGraph`] sample.
    pub fn finalize_work(&self, g: &crate::dfg::WorkGraph, design: &HlsDesign) -> PowerGraph {
        let _t = prof::scope("graph.finalize");
        finalize(g, &design.kernel_name, &design.design_id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_activity::{execute, Stimuli};
    use pg_hls::{Directives, HlsFlow};
    use pg_ir::expr::aff;
    use pg_ir::{ArrayKind, Expr, Kernel, KernelBuilder};

    fn kernel() -> Kernel {
        KernelBuilder::new("flowk")
            .array("a", &[8, 8], ArrayKind::Input)
            .array("x", &[8], ArrayKind::Input)
            .array("y", &[8], ArrayKind::Output)
            .loop_("i", 8, |bb| {
                bb.loop_("j", 8, |bb| {
                    bb.assign(
                        ("y", vec![aff("i")]),
                        Expr::load("y", vec![aff("i")])
                            + Expr::load("a", vec![aff("i"), aff("j")])
                                * Expr::load("x", vec![aff("j")]),
                    );
                });
            })
            .build()
            .unwrap()
    }

    fn build(d: &Directives, cfg: GraphConfig) -> PowerGraph {
        let k = kernel();
        let design = HlsFlow::new().run(&k, d).unwrap();
        let stim = Stimuli::for_kernel(&k, 0);
        let trace = execute(&design, &stim);
        GraphFlow::with_config(cfg).build(&design, &trace)
    }

    #[test]
    fn full_flow_produces_valid_graph() {
        let pg = build(&Directives::new(), GraphConfig::default());
        assert!(pg.validate().is_ok());
        assert!(pg.num_nodes >= 8);
        assert!(pg.num_edges() >= pg.num_nodes - 1);
        assert_eq!(pg.kernel, "flowk");
    }

    #[test]
    fn optimized_graph_smaller_than_raw() {
        let raw = build(
            &Directives::new(),
            GraphConfig {
                buffer_insertion: false,
                datapath_merging: false,
                graph_trimming: false,
            },
        );
        let opt = build(&Directives::new(), GraphConfig::default());
        assert!(
            opt.num_nodes < raw.num_nodes,
            "optimized {} vs raw {}",
            opt.num_nodes,
            raw.num_nodes
        );
    }

    #[test]
    fn unrolling_grows_graph() {
        let g1 = build(&Directives::new(), GraphConfig::default());
        let mut d = Directives::new();
        d.pipeline("j")
            .unroll("j", 4)
            .partition("a", 4)
            .partition("x", 4);
        let g4 = build(&d, GraphConfig::default());
        assert!(
            g4.num_nodes > g1.num_nodes,
            "unrolled {} vs baseline {}",
            g4.num_nodes,
            g1.num_nodes
        );
    }

    #[test]
    fn all_relations_represented() {
        let pg = build(&Directives::new(), GraphConfig::default());
        let counts = pg.relation_counts();
        let total: usize = counts.iter().sum();
        assert_eq!(total, pg.num_edges());
        // NA edges (buffer->load->arith chains) must exist
        assert!(counts[crate::dfg::Relation::NA.index()] > 0);
    }

    #[test]
    fn edge_features_bounded() {
        let pg = build(&Directives::new(), GraphConfig::default());
        for ef in &pg.edge_feats {
            // SA <= 32 * AR (32-bit values); AR <= 1 per issue slot is not
            // guaranteed post-merge, but must stay finite and non-negative
            assert!(ef[0] <= 32.0 * ef[2] + 1e-6);
            assert!(ef[1] <= 32.0 * ef[3] + 1e-6);
        }
    }

    #[test]
    fn deterministic() {
        let a = build(&Directives::new(), GraphConfig::default());
        let b = build(&Directives::new(), GraphConfig::default());
        assert_eq!(a, b);
    }
}
