//! Datapath merging (§III-A).
//!
//! Two mechanisms restore the real hardware implementation from the DFG:
//!
//! 1. **Resource-sharing merge** — DFG nodes whose ops are bound to the same
//!    functional-unit instance (the HLS binding's sharing sets) are fused:
//!    one physical adder that serves five FSM states is one graph node, not
//!    five ("we merge the DFG nodes utilizing the same set of hardware
//!    resources").
//! 2. **Structural chain merge** — identical sibling nodes with the same
//!    opcode, predecessors and successors (duplicate IR chains produced by
//!    different loop executions between the same endpoints) are fused
//!    iteratively, collapsing duplicate node chains.
//!
//! Merging fuses edge event sequences by time, so the merged wire carries
//! the interleaved traffic of all instances — its switching activity is the
//! physical net's activity.

use crate::dfg::{NodeKind, WorkGraph};
use pg_activity::NodeActivity;
use pg_hls::HlsDesign;
use std::collections::BTreeMap;

/// Runs both merging mechanisms until fixpoint.
pub fn merge_datapaths(g: &mut WorkGraph, design: &HlsDesign) {
    {
        let _t = pg_util::prof::scope("graph.merge.binding");
        merge_by_binding(g, design);
    }
    let _t = pg_util::prof::scope("graph.merge.rounds");
    let mut guard = 0;
    while merge_structural_round(g) {
        guard += 1;
        if guard > 64 {
            break;
        }
    }
    debug_assert_eq!(g.check(), Ok(()));
}

/// Fuses nodes bound to the same FU instance (same opcode only: an IntAlu
/// instance executing `add` and `icmp` in different states keeps separate
/// node identities for feature fidelity).
pub fn merge_by_binding(g: &mut WorkGraph, design: &HlsDesign) {
    // Group alive op nodes by (instance, opcode). Ordered map: groups are
    // disjoint so merge order cannot change the result, but iterating in
    // key order keeps the pass reproducible by construction.
    let mut groups: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for (ni, node) in g.nodes.iter().enumerate() {
        if !node.alive {
            continue;
        }
        let opcode = match &node.kind {
            NodeKind::Op(o) => *o,
            _ => continue,
        };
        // every op in the node shares an instance pre-merge (singletons)
        let Some(&vid) = node.ops.first() else {
            continue;
        };
        if let Some(&inst) = design.binding.op_to_instance.get(&vid) {
            groups.entry((inst, opcode.index())).or_default().push(ni);
        }
    }
    let mut merged_any = false;
    for group in groups.into_values() {
        if group.len() > 1 {
            merge_group(g, &group);
            merged_any = true;
        }
    }
    if merged_any {
        g.fuse_parallel_edges();
    }
}

/// One round of structural merging; returns `true` if anything merged.
pub fn merge_structural_round(g: &mut WorkGraph) -> bool {
    // Adjacency in one edge pass (the per-node `preds`/`succs` helpers
    // rescan the whole edge list per call, which made this round O(V·E)).
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); g.nodes.len()];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); g.nodes.len()];
    for e in g.edges.iter().filter(|e| e.alive) {
        if g.nodes[e.src].alive {
            preds[e.dst].push(e.src);
        }
        if g.nodes[e.dst].alive {
            succs[e.src].push(e.dst);
        }
    }
    for list in preds.iter_mut().chain(succs.iter_mut()) {
        list.sort_unstable();
        list.dedup();
    }

    let mut by_key: BTreeMap<(usize, Vec<usize>, Vec<usize>), Vec<usize>> = BTreeMap::new();
    for (ni, node) in g.nodes.iter().enumerate() {
        if !node.alive {
            continue;
        }
        if !matches!(node.kind, NodeKind::Op(_)) {
            continue; // buffers are distinct physical memories
        }
        let (preds, succs) = (
            std::mem::take(&mut preds[ni]),
            std::mem::take(&mut succs[ni]),
        );
        if preds.is_empty() && succs.is_empty() {
            continue;
        }
        by_key
            .entry((node.kind.opcode_slot(), preds, succs))
            .or_default()
            .push(ni);
    }
    let mut merged = false;
    for group in by_key.into_values() {
        if group.len() > 1 {
            merge_group(g, &group);
            merged = true;
        }
    }
    if merged {
        g.fuse_parallel_edges();
    }
    merged
}

/// Fuses `group` into its lowest-index member: union op lists, average
/// activities, re-point edges (parallel edges fused by the caller).
fn merge_group(g: &mut WorkGraph, group: &[usize]) {
    let mut sorted = group.to_vec();
    sorted.sort_unstable();
    let keep = sorted[0];
    let stats: Vec<NodeActivity> = sorted.iter().map(|&i| g.nodes[i].activity).collect();
    let mut ops = Vec::new();
    let mut bram = 0.0;
    for &i in &sorted {
        ops.extend(g.nodes[i].ops.iter().copied());
        bram += g.nodes[i].bram;
    }
    // One edge pass re-points every dropped member to `keep` (the dropped
    // set is sorted, so membership is a binary search).
    let dropped = &sorted[1..];
    for e in &mut g.edges {
        if !e.alive {
            continue;
        }
        if dropped.binary_search(&e.src).is_ok() {
            e.src = keep;
        }
        if dropped.binary_search(&e.dst).is_ok() {
            e.dst = keep;
        }
    }
    for &drop in dropped {
        g.nodes[drop].alive = false;
    }
    let node = &mut g.nodes[keep];
    node.ops = ops;
    node.bram = bram;
    node.activity = NodeActivity::merge(&stats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::insert_buffers;
    use crate::build::build_raw;
    use pg_activity::{execute, Stimuli};
    use pg_hls::{Directives, HlsFlow};
    use pg_ir::expr::aff;
    use pg_ir::{ArrayKind, Expr, Kernel, KernelBuilder, Opcode};

    /// Two dependent fadds per iteration -> shared adder when sequential.
    fn chain() -> Kernel {
        KernelBuilder::new("chain")
            .array("a", &[8], ArrayKind::Input)
            .array("b", &[8], ArrayKind::Input)
            .array("y", &[8], ArrayKind::Output)
            .loop_("i", 8, |bb| {
                bb.assign(
                    ("y", vec![aff("i")]),
                    (Expr::load("a", vec![aff("i")]) + Expr::Const(1.0))
                        + Expr::load("b", vec![aff("i")]),
                );
            })
            .build()
            .unwrap()
    }

    /// x[i]*x[i]: two identical loads between buffer and fmul.
    fn square() -> Kernel {
        KernelBuilder::new("square")
            .array("x", &[8], ArrayKind::Input)
            .array("y", &[8], ArrayKind::Output)
            .loop_("i", 8, |bb| {
                bb.assign(
                    ("y", vec![aff("i")]),
                    Expr::load("x", vec![aff("i")]) * Expr::load("x", vec![aff("i")]),
                );
            })
            .build()
            .unwrap()
    }

    fn pipeline(kernel: &Kernel, d: &Directives, merge: bool) -> (HlsDesign, WorkGraph) {
        let design = HlsFlow::new().run(kernel, d).unwrap();
        let stim = Stimuli::for_kernel(kernel, 0);
        let trace = execute(&design, &stim);
        let mut g = build_raw(&design, &trace);
        insert_buffers(&mut g, &design);
        if merge {
            merge_datapaths(&mut g, &design);
        }
        (design, g)
    }

    fn count_opcode(g: &WorkGraph, op: Opcode) -> usize {
        g.nodes
            .iter()
            .filter(|n| n.alive && matches!(&n.kind, NodeKind::Op(o) if *o == op))
            .count()
    }

    #[test]
    fn shared_adders_merge_to_one_node() {
        let (_d, g0) = pipeline(&chain(), &Directives::new(), false);
        let (_d, g1) = pipeline(&chain(), &Directives::new(), true);
        assert_eq!(count_opcode(&g0, Opcode::FAdd), 2);
        assert_eq!(
            count_opcode(&g1, Opcode::FAdd),
            1,
            "sequential fadds share one FU and must merge"
        );
    }

    #[test]
    fn merged_node_records_instances() {
        let (_d, g) = pipeline(&chain(), &Directives::new(), true);
        let fadd = g
            .nodes
            .iter()
            .find(|n| n.alive && matches!(&n.kind, NodeKind::Op(Opcode::FAdd)))
            .unwrap();
        assert_eq!(fadd.ops.len(), 2);
    }

    #[test]
    fn duplicate_loads_merge_structurally() {
        let (_d, g) = pipeline(&square(), &Directives::new(), true);
        // both loads of x share the port (binding merge) or the chain merge
        assert_eq!(count_opcode(&g, Opcode::Load), 1);
    }

    #[test]
    fn pipelined_unrolled_lanes_stay_separate() {
        let mut d = Directives::new();
        d.pipeline("i")
            .unroll("i", 4)
            .partition("a", 4)
            .partition("b", 4)
            .partition("y", 4);
        let (design, g) = pipeline(&chain(), &d, true);
        // with II=1, each lane's adders are distinct hardware
        let ii = design.schedule.blocks.last().unwrap().ii;
        if ii == 1 {
            assert!(
                count_opcode(&g, Opcode::FAdd) >= 4,
                "parallel lanes must not merge"
            );
        }
    }

    #[test]
    fn merging_reduces_not_below_one() {
        let (_d, g) = pipeline(&chain(), &Directives::new(), true);
        assert!(g.num_nodes() >= 3);
        assert_eq!(g.check(), Ok(()));
    }

    #[test]
    fn idempotent() {
        let kernel = chain();
        let design = HlsFlow::new().run(&kernel, &Directives::new()).unwrap();
        let stim = Stimuli::for_kernel(&kernel, 0);
        let trace = execute(&design, &stim);
        let mut g = build_raw(&design, &trace);
        insert_buffers(&mut g, &design);
        merge_datapaths(&mut g, &design);
        let nodes_after = g.num_nodes();
        let edges_after = g.num_edges();
        merge_datapaths(&mut g, &design);
        assert_eq!(g.num_nodes(), nodes_after);
        assert_eq!(g.num_edges(), edges_after);
    }
}
