//! Lightweight per-request span tracing for the serving path.
//!
//! Each request entering the daemon gets a `trace_id` from a process-wide
//! atomic counter; the stages it passes through (admission → batching →
//! routing → inference → encode) each record a [`Span`] with a start
//! timestamp and duration in monotonic microseconds (from
//! [`crate::metrics::monotonic_us`] — no wall-clock tokens here). When the
//! daemon runs with `--trace-out <path>`, completed traces are appended to
//! that file as JSON Lines, one object per request:
//!
//! ```json
//! {"trace_id":7,"kernel":"gemm","spans":[{"name":"admission","start_us":120,"dur_us":480}]}
//! ```
//!
//! The format is documented in `docs/OBSERVABILITY.md`. Writing is
//! buffered behind a mutex and flushed per record so traces survive an
//! abrupt daemon stop; a failed write disables the sink rather than
//! failing the request.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Allocates the next process-unique trace id (starting at 1).
pub fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// One named stage of a request's lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stage name (`admission`, `batching`, `routing`, `inference`,
    /// `encode`).
    pub name: &'static str,
    /// Start in monotonic microseconds ([`crate::metrics::monotonic_us`]).
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// A completed request trace, ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Process-unique request id.
    pub trace_id: u64,
    /// Kernel the request targeted.
    pub kernel: String,
    /// Stages in the order they completed.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Starts a trace for `kernel` with a fresh id.
    pub fn begin(kernel: &str) -> Self {
        Self {
            trace_id: next_trace_id(),
            kernel: kernel.to_string(),
            spans: Vec::new(),
        }
    }
    /// Appends a span covering `[start_us, start_us + dur_us)`.
    pub fn span(&mut self, name: &'static str, start_us: u64, dur_us: u64) {
        self.spans.push(Span {
            name,
            start_us,
            dur_us,
        });
    }
    /// Serializes to one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96 + 48 * self.spans.len());
        out.push_str("{\"trace_id\":");
        out.push_str(&self.trace_id.to_string());
        out.push_str(",\"kernel\":\"");
        json_escape_into(&mut out, &self.kernel);
        out.push_str("\",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            json_escape_into(&mut out, s.name);
            out.push_str("\",\"start_us\":");
            out.push_str(&s.start_us.to_string());
            out.push_str(",\"dur_us\":");
            out.push_str(&s.dur_us.to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Append-only JSONL sink for completed traces. Clone-free: share via
/// `Arc`.
pub struct TraceSink {
    writer: Mutex<BufWriter<File>>,
    failed: AtomicBool,
}

impl TraceSink {
    /// Creates (truncates) the trace file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
            failed: AtomicBool::new(false),
        })
    }

    /// Appends one trace as a JSON line and flushes. A write failure
    /// latches the sink off; tracing must never take a request down.
    pub fn record(&self, trace: &Trace) {
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        let line = trace.to_json();
        let mut w = self.writer.lock().expect("trace sink lock");
        let ok = w
            .write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .and_then(|()| w.flush())
            .is_ok();
        if !ok {
            self.failed.store(true, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_increasing() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert!(b > a);
    }

    #[test]
    fn json_line_shape_and_escaping() {
        let mut t = Trace {
            trace_id: 42,
            kernel: "ge\"mm\\x".into(),
            spans: Vec::new(),
        };
        t.span("admission", 10, 5);
        t.span("inference", 15, 100);
        let line = t.to_json();
        assert!(line.starts_with("{\"trace_id\":42,\"kernel\":\"ge\\\"mm\\\\x\","));
        assert!(line.contains("{\"name\":\"admission\",\"start_us\":10,\"dur_us\":5}"));
        assert!(line.ends_with("]}"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn sink_appends_jsonl() {
        let path = std::env::temp_dir().join(format!("pg_trace_test_{}.jsonl", std::process::id()));
        let sink = TraceSink::create(&path).unwrap();
        let mut t = Trace::begin("mm");
        t.span("encode", 0, 1);
        sink.record(&t);
        sink.record(&t);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.contains("\"kernel\":\"mm\"")));
        let _ = std::fs::remove_file(&path);
    }
}
