//! Minimal CSV writer used by the benchmark binaries to dump figure data
//! (e.g. the Pareto-frontier series of the paper's Fig. 4) without pulling
//! in a serialization dependency.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// An in-memory CSV document with a fixed header row.
///
/// # Examples
///
/// ```
/// use pg_util::CsvWriter;
/// let mut csv = CsvWriter::new(&["latency", "power"]);
/// csv.row(&[1.0, 0.25]);
/// assert!(csv.to_string().starts_with("latency,power\n"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CsvWriter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvWriter {
    /// Creates a writer with the given column names.
    pub fn new(header: &[&str]) -> Self {
        CsvWriter {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a numeric row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.header.len(),
            "csv row width mismatch: got {}, header has {}",
            values.len(),
            self.header.len()
        );
        self.rows
            .push(values.iter().map(|v| format!("{v}")).collect());
    }

    /// Appends a row of raw strings (escaped if they contain commas).
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row_strs(&mut self, values: &[&str]) {
        assert_eq!(values.len(), self.header.len(), "csv row width mismatch");
        self.rows.push(values.iter().map(|s| escape(s)).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Writes the document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the filesystem.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_string())
    }
}

impl std::fmt::Display for CsvWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        writeln!(out, "{}", self.header.join(",")).ok();
        for row in &self.rows {
            writeln!(out, "{}", row.join(",")).ok();
        }
        f.write_str(&out)
    }
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut csv = CsvWriter::new(&["a", "b"]);
        csv.row(&[1.0, 2.5]);
        csv.row(&[3.0, 4.0]);
        let text = csv.to_string();
        assert_eq!(text, "a,b\n1,2.5\n3,4\n");
        assert_eq!(csv.len(), 2);
        assert!(!csv.is_empty());
    }

    #[test]
    fn escapes_commas_and_quotes() {
        let mut csv = CsvWriter::new(&["name"]);
        csv.row_strs(&["a,b"]);
        csv.row_strs(&["say \"hi\""]);
        let text = csv.to_string();
        assert!(text.contains("\"a,b\""));
        assert!(text.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic]
    fn width_mismatch_panics() {
        CsvWriter::new(&["a"]).row(&[1.0, 2.0]);
    }
}
