//! Workspace-wide observability: a process-global registry of named
//! counters, gauges, and fixed-bucket histograms.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism stays intact.** Metric values must never feed back
//!    into computation — they are write-only from the hot paths and read
//!    only by telemetry consumers (Stats frames, the Prometheus endpoint,
//!    `powergear stats`). All storage is integer (`u64`/`i64`), sharded
//!    per thread and merged by summation in fixed shard order, so a
//!    snapshot is bit-exact regardless of thread interleaving *given the
//!    same observations*. Wall-clock only enters through [`Timer`] and
//!    [`monotonic_us`], both confined to this file (which is on the
//!    pg-lint `wall_clock` allow-list for exactly that reason).
//! 2. **Near-free when disabled.** Like [`crate::prof`], recording is
//!    gated on one relaxed atomic load; the registry ships enabled so the
//!    daemon is observable out of the box, and the bench harness flips it
//!    off to measure instrumentation overhead.
//! 3. **No dependencies.** Hand-rolled registry, snapshot, and Prometheus
//!    text rendering; `std` only.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! resolved once at setup; the hot path never touches the registry lock.
//!
//! # Naming convention
//!
//! Metric names are lowercase snake_case. Counters end in `_total`;
//! histograms and gauges carry a unit suffix (`_us`, `_bytes`, `_graphs`,
//! `_depth`). The `metric_name` pg-lint rule enforces this at the call
//! site.
//!
//! # Examples
//!
//! ```
//! use pg_util::metrics;
//! let c = metrics::counter("doc_requests_total");
//! c.inc();
//! let h = metrics::histogram("doc_wait_us", metrics::buckets::LATENCY_US);
//! h.observe(120);
//! let snap = metrics::snapshot();
//! assert_eq!(snap.counter_value("doc_requests_total", &[]), Some(1));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of per-thread shards for counters and histograms. Threads are
/// assigned shards round-robin; contention only occurs when more than
/// `SHARDS` threads hit the *same* metric concurrently, and even then the
/// cost is a contended atomic add, never a lock.
const SHARDS: usize = 8;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is metric recording currently on? (On by default.)
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off. Off makes every `inc`/`observe` a single
/// relaxed load — used by the bench harness to measure overhead parity.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Monotonic microseconds since the first call in this process. The only
/// sanctioned clock for telemetry timestamps (span start times); keeps
/// `Instant` tokens out of instrumented modules.
pub fn monotonic_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

// ---------------------------------------------------------------------------
// Storage cores
// ---------------------------------------------------------------------------

struct CounterCore {
    shards: [AtomicU64; SHARDS],
}

impl CounterCore {
    fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
    /// Fixed shard order; u64 addition, so the merge is order-independent
    /// and bit-exact by construction.
    fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
    fn zero(&self) {
        for s in &self.shards {
            s.store(0, Ordering::Relaxed);
        }
    }
}

struct GaugeCore {
    value: AtomicI64,
}

struct HistogramCore {
    /// Upper bounds (inclusive), strictly increasing; an implicit +inf
    /// bucket (`u64::MAX`) is appended at registration.
    bounds: Vec<u64>,
    /// `shards[s][b]` = observations in bucket `b` from shard `s`.
    shards: Vec<Vec<AtomicU64>>,
    /// Sum of observed values per shard (integer microseconds / units).
    sums: [AtomicU64; SHARDS],
}

impl HistogramCore {
    fn new(bounds: &[u64]) -> Self {
        let mut b: Vec<u64> = bounds.to_vec();
        b.sort_unstable();
        b.dedup();
        if b.last() != Some(&u64::MAX) {
            b.push(u64::MAX);
        }
        let nb = b.len();
        Self {
            bounds: b,
            shards: (0..SHARDS)
                .map(|_| (0..nb).map(|_| AtomicU64::new(0)).collect())
                .collect(),
            sums: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
    fn observe(&self, v: u64) {
        let b = self.bounds.partition_point(|&ub| ub < v);
        let s = shard_index();
        self.shards[s][b].fetch_add(1, Ordering::Relaxed);
        self.sums[s].fetch_add(v, Ordering::Relaxed);
    }
    fn merged(&self) -> (Vec<(u64, u64)>, u64, u64) {
        let mut buckets: Vec<(u64, u64)> = self.bounds.iter().map(|&ub| (ub, 0u64)).collect();
        for shard in &self.shards {
            for (slot, cell) in buckets.iter_mut().zip(shard.iter()) {
                slot.1 = slot.1.wrapping_add(cell.load(Ordering::Relaxed));
            }
        }
        let count = buckets
            .iter()
            .map(|&(_, c)| c)
            .fold(0u64, u64::wrapping_add);
        let sum = self
            .sums
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add);
        (buckets, count, sum)
    }
    fn zero(&self) {
        for shard in &self.shards {
            for cell in shard {
                cell.store(0, Ordering::Relaxed);
            }
        }
        for s in &self.sums {
            s.store(0, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// (name, sorted label pairs) — BTreeMap keeps snapshots deterministically
/// ordered without a sort pass.
type Key = (String, Vec<(String, String)>);

enum Entry {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

fn registry() -> &'static Mutex<BTreeMap<Key, Entry>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<Key, Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn make_key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

/// Zeroes every registered metric's value (registrations and live handles
/// stay valid). Test-support only — production code never resets.
pub fn reset() {
    let reg = registry().lock().expect("metrics lock");
    for entry in reg.values() {
        match entry {
            Entry::Counter(c) => c.zero(),
            Entry::Gauge(g) => g.value.store(0, Ordering::Relaxed),
            Entry::Histogram(h) => h.zero(),
        }
    }
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// Monotonically increasing event count. Cheap to clone; resolve once and
/// reuse — `inc` never takes a lock.
#[derive(Clone)]
pub struct Counter {
    core: Arc<CounterCore>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.core.shards[shard_index()].fetch_add(n, Ordering::Relaxed);
        }
    }
    /// Current merged value.
    pub fn value(&self) -> u64 {
        self.core.value()
    }
}

/// A settable signed level (queue depth, loaded-model count).
#[derive(Clone)]
pub struct Gauge {
    core: Arc<GaugeCore>,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        if enabled() {
            self.core.value.store(v, Ordering::Relaxed);
        }
    }
    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        if enabled() {
            self.core.value.fetch_add(d, Ordering::Relaxed);
        }
    }
    /// Current value.
    pub fn value(&self) -> i64 {
        self.core.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket distribution of integer observations (latency in
/// microseconds, batch sizes in graphs, ...).
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.core.observe(v);
        }
    }
    /// Starts a wall-clock timer that records elapsed microseconds into
    /// this histogram on drop. The only way instrumented code should time
    /// anything — it keeps `Instant` confined to this module.
    pub fn start_timer(&self) -> Timer {
        Timer {
            hist: self.clone(),
            start: enabled().then(Instant::now),
        }
    }
}

/// RAII guard from [`Histogram::start_timer`]; records elapsed
/// microseconds on drop (no-op while recording is disabled).
#[must_use = "a dropped timer records zero time"]
pub struct Timer {
    hist: Histogram,
    start: Option<Instant>,
}

impl Timer {
    /// Stops the timer and returns the elapsed microseconds it recorded
    /// (0 if recording was disabled when it started).
    pub fn stop(mut self) -> u64 {
        self.finish()
    }
    fn finish(&mut self) -> u64 {
        if let Some(start) = self.start.take() {
            let us = start.elapsed().as_micros() as u64;
            self.hist.observe(us);
            us
        } else {
            0
        }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.finish();
    }
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

/// Returns the counter registered under `name` (no labels), creating it on
/// first use.
pub fn counter(name: &str) -> Counter {
    counter_with(name, &[])
}

/// Returns the counter registered under `name` + `labels`.
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Counter {
    let key = make_key(name, labels);
    let mut reg = registry().lock().expect("metrics lock");
    let entry = reg
        .entry(key)
        .or_insert_with(|| Entry::Counter(Arc::new(CounterCore::new())));
    match entry {
        Entry::Counter(c) => Counter {
            core: Arc::clone(c),
        },
        _ => panic!("metric {name:?} already registered with a different type"),
    }
}

/// Returns the gauge registered under `name` (no labels).
pub fn gauge(name: &str) -> Gauge {
    gauge_with(name, &[])
}

/// Returns the gauge registered under `name` + `labels`.
pub fn gauge_with(name: &str, labels: &[(&str, &str)]) -> Gauge {
    let key = make_key(name, labels);
    let mut reg = registry().lock().expect("metrics lock");
    let entry = reg.entry(key).or_insert_with(|| {
        Entry::Gauge(Arc::new(GaugeCore {
            value: AtomicI64::new(0),
        }))
    });
    match entry {
        Entry::Gauge(g) => Gauge {
            core: Arc::clone(g),
        },
        _ => panic!("metric {name:?} already registered with a different type"),
    }
}

/// Returns the histogram registered under `name` (no labels) with the
/// given bucket upper bounds (an implicit +inf bucket is appended).
/// Bounds are fixed at first registration; later callers get the
/// existing buckets.
pub fn histogram(name: &str, bounds: &[u64]) -> Histogram {
    histogram_with(name, &[], bounds)
}

/// Returns the histogram registered under `name` + `labels`.
pub fn histogram_with(name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
    let key = make_key(name, labels);
    let mut reg = registry().lock().expect("metrics lock");
    let entry = reg
        .entry(key)
        .or_insert_with(|| Entry::Histogram(Arc::new(HistogramCore::new(bounds))));
    match entry {
        Entry::Histogram(h) => Histogram {
            core: Arc::clone(h),
        },
        _ => panic!("metric {name:?} already registered with a different type"),
    }
}

/// Standard bucket layouts.
pub mod buckets {
    /// Exponential-ish microsecond latency buckets, 1us .. 1s.
    pub const LATENCY_US: &[u64] = &[
        1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
        250_000, 500_000, 1_000_000,
    ];
    /// Power-of-two size buckets, 1 .. 1024 (batch sizes, graph counts).
    pub const SIZE_POW2: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// One counter's merged value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Merged value.
    pub value: u64,
}

/// One gauge's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: i64,
}

/// One histogram's merged distribution at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Total observations (= sum of bucket counts).
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// `(upper_bound, observations_in_bucket)` — per-bucket counts, not
    /// cumulative; the final bound is `u64::MAX` (+inf).
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Nearest-rank percentile estimate: the upper bound of the first
    /// bucket whose cumulative count reaches `q * count` (`q` in 0..=1).
    /// Returns `None` when empty; the +inf bucket reports `u64::MAX`.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(ub, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return Some(ub);
            }
        }
        self.buckets.last().map(|&(ub, _)| ub)
    }
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A consistent-enough point-in-time view of every registered metric,
/// sorted by (name, labels). Individual cells are read without a global
/// stop-the-world, so a snapshot taken while writers run may split a
/// logically-atomic pair across cells — fine for telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All counters, including `prof_*` scope roll-ins.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name + labels (labels in any order).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let (_, key) = make_key(name, labels);
        self.counters
            .iter()
            .find(|c| c.name == name && c.labels == key)
            .map(|c| c.value)
    }
    /// Looks up a gauge value by name + labels.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let (_, key) = make_key(name, labels);
        self.gauges
            .iter()
            .find(|g| g.name == name && g.labels == key)
            .map(|g| g.value)
    }
    /// Looks up a histogram by name + labels.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        let (_, key) = make_key(name, labels);
        self.histograms
            .iter()
            .find(|h| h.name == name && h.labels == key)
    }
}

/// Takes a snapshot of the whole registry, folding in [`crate::prof`]
/// scope accumulators as `prof_<scope>_time_us_total` /
/// `prof_<scope>_calls_total` counters (dots become underscores) so one
/// surface carries both serving and offline-pipeline telemetry.
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    {
        let reg = registry().lock().expect("metrics lock");
        for ((name, labels), entry) in reg.iter() {
            match entry {
                Entry::Counter(c) => snap.counters.push(CounterSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: c.value(),
                }),
                Entry::Gauge(g) => snap.gauges.push(GaugeSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: g.value.load(Ordering::Relaxed),
                }),
                Entry::Histogram(h) => {
                    let (buckets, count, sum) = h.merged();
                    snap.histograms.push(HistogramSnapshot {
                        name: name.clone(),
                        labels: labels.clone(),
                        count,
                        sum,
                        buckets,
                    });
                }
            }
        }
    }
    let mut prof_counters: Vec<CounterSnapshot> = Vec::new();
    for e in crate::prof::entries() {
        let scope = e.name.replace('.', "_");
        prof_counters.push(CounterSnapshot {
            name: format!("prof_{scope}_time_us_total"),
            labels: Vec::new(),
            value: (e.total_secs * 1e6) as u64,
        });
        prof_counters.push(CounterSnapshot {
            name: format!("prof_{scope}_calls_total"),
            labels: Vec::new(),
            value: e.count,
        });
    }
    prof_counters.sort_by(|a, b| a.name.cmp(&b.name));
    snap.counters.extend(prof_counters);
    snap
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

fn fmt_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, String)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&v.replace('\\', "\\\\").replace('"', "\\\""));
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&v);
        out.push('"');
    }
    out.push('}');
}

/// Renders a snapshot in Prometheus text exposition format (version
/// 0.0.4): `# TYPE` headers, `_bucket`/`_sum`/`_count` series with
/// cumulative `le` bounds for histograms.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_type: Option<(String, &'static str)> = None;
    let mut type_header = |out: &mut String, name: &str, kind: &'static str| {
        if last_type.as_ref().map(|(n, k)| (n.as_str(), *k)) != Some((name, kind)) {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            last_type = Some((name.to_string(), kind));
        }
    };
    for c in &snap.counters {
        type_header(&mut out, &c.name, "counter");
        out.push_str(&c.name);
        fmt_labels(&mut out, &c.labels, None);
        out.push(' ');
        out.push_str(&c.value.to_string());
        out.push('\n');
    }
    for g in &snap.gauges {
        type_header(&mut out, &g.name, "gauge");
        out.push_str(&g.name);
        fmt_labels(&mut out, &g.labels, None);
        out.push(' ');
        out.push_str(&g.value.to_string());
        out.push('\n');
    }
    for h in &snap.histograms {
        type_header(&mut out, &h.name, "histogram");
        let mut cum = 0u64;
        for &(ub, c) in &h.buckets {
            cum += c;
            let le = if ub == u64::MAX {
                "+Inf".to_string()
            } else {
                ub.to_string()
            };
            out.push_str(&h.name);
            out.push_str("_bucket");
            fmt_labels(&mut out, &h.labels, Some(("le", le)));
            out.push(' ');
            out.push_str(&cum.to_string());
            out.push('\n');
        }
        out.push_str(&h.name);
        out.push_str("_sum");
        fmt_labels(&mut out, &h.labels, None);
        out.push(' ');
        out.push_str(&h.sum.to_string());
        out.push('\n');
        out.push_str(&h.name);
        out.push_str("_count");
        fmt_labels(&mut out, &h.labels, None);
        out.push(' ');
        out.push_str(&h.count.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; exercise everything in one test so
    // parallel test threads never race reset() (same pattern as prof.rs).
    // Names are test-unique to avoid collisions with other suites.
    #[test]
    fn registry_end_to_end() {
        let c = counter("mtest_events_total");
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        // Same key resolves to the same cell.
        counter("mtest_events_total").inc();
        assert_eq!(c.value(), 6);

        let cl = counter_with("mtest_labeled_total", &[("model", "a")]);
        cl.add(2);
        // Label order must not matter for identity.
        let cl2 = counter_with("mtest_labeled_total", &[("model", "a")]);
        assert_eq!(cl2.value(), 2);

        let g = gauge("mtest_depth");
        g.set(7);
        g.add(-3);
        assert_eq!(g.value(), 4);

        let h = histogram("mtest_wait_us", buckets::LATENCY_US);
        h.observe(0);
        h.observe(3);
        h.observe(40);
        h.observe(u64::MAX); // lands in +inf bucket

        let snap = snapshot();
        assert_eq!(snap.counter_value("mtest_events_total", &[]), Some(6));
        assert_eq!(
            snap.counter_value("mtest_labeled_total", &[("model", "a")]),
            Some(2)
        );
        assert_eq!(snap.gauge_value("mtest_depth", &[]), Some(4));
        let hs = snap.histogram("mtest_wait_us", &[]).unwrap();
        assert_eq!(hs.count, 4);
        assert_eq!(hs.buckets.iter().map(|&(_, c)| c).sum::<u64>(), hs.count);
        assert_eq!(hs.buckets.last().unwrap(), &(u64::MAX, 1));
        assert_eq!(hs.percentile(0.5), Some(5)); // obs {0,3} covered by le=5
        assert_eq!(hs.percentile(1.0), Some(u64::MAX));

        // Timer records one observation.
        let th = histogram("mtest_timer_us", buckets::LATENCY_US);
        {
            let _t = th.start_timer();
            std::hint::black_box(40 + 2);
        }
        let us = th.start_timer().stop();
        let snap = snapshot();
        let hs = snap.histogram("mtest_timer_us", &[]).unwrap();
        assert_eq!(hs.count, 2);
        assert!(hs.sum >= us);

        // Sharded writes from many threads merge exactly.
        let mc = counter("mtest_mt_total");
        let mh = histogram("mtest_mt_us", buckets::SIZE_POW2);
        std::thread::scope(|s| {
            for t in 0..16 {
                let mc = mc.clone();
                let mh = mh.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        mc.inc();
                        mh.observe(t * 100 + i);
                    }
                });
            }
        });
        assert_eq!(mc.value(), 1600);
        let snap = snapshot();
        let hs = snap.histogram("mtest_mt_us", &[]).unwrap();
        assert_eq!(hs.count, 1600);
        assert_eq!(hs.sum, (0..1600u64).sum::<u64>());

        // Disabled => no-ops.
        set_enabled(false);
        mc.inc();
        mh.observe(1);
        let _zero = th.start_timer();
        drop(_zero);
        set_enabled(true);
        assert_eq!(mc.value(), 1600);

        // Prometheus rendering: headers, cumulative buckets, escaping.
        let snap = snapshot();
        let text = render_prometheus(&snap);
        assert!(text.contains("# TYPE mtest_events_total counter"));
        assert!(text.contains("mtest_events_total 6"));
        assert!(text.contains("mtest_labeled_total{model=\"a\"} 2"));
        assert!(text.contains("# TYPE mtest_wait_us histogram"));
        assert!(text.contains("mtest_wait_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("mtest_wait_us_count 4"));

        // Prof scopes fold into the snapshot as counters.
        crate::prof::set_enabled(true);
        {
            let _s = crate::prof::scope("mtest.stage");
        }
        let snap = snapshot();
        assert!(snap
            .counter_value("prof_mtest_stage_calls_total", &[])
            .is_some());
        crate::prof::set_enabled(false);
        crate::prof::reset();

        // reset() zeroes values but keeps handles live.
        reset();
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        c.inc();
        assert_eq!(snapshot().counter_value("mtest_events_total", &[]), Some(1));
    }
}
