//! Aligned plain-text table rendering for the benchmark binaries.
//!
//! The paper's evaluation is presented as three tables; the `table1/2/3`
//! binaries format their reproduced counterparts with this helper so the
//! output can be diffed and pasted into `EXPERIMENTS.md` directly.

use std::fmt;

/// A simple fixed-column text table.
///
/// # Examples
///
/// ```
/// use pg_util::Table;
/// let mut t = Table::new(&["Dataset", "Error (%)"]);
/// t.row(vec!["Atax".into(), "11.18".into()]);
/// let s = t.to_string();
/// assert!(s.contains("Atax"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "table row width mismatch");
        self.rows.push(cells);
    }

    /// Convenience: formats a float with `prec` decimals.
    pub fn fmt_f(v: f64, prec: usize) -> String {
        format!("{v:.prec$}")
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        writeln!(
            f,
            "{}",
            "-".repeat(width.iter().sum::<usize>() + 2 * (ncol - 1))
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["A", "Bee"]);
        t.row(vec!["xx".into(), "1".into()]);
        let s = t.to_string();
        assert!(s.contains("A   Bee"));
        assert!(s.contains("xx  1"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new(&["A", "B"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("|---|---|"));
    }

    #[test]
    fn fmt_f_precision() {
        assert_eq!(Table::fmt_f(1.23456, 2), "1.23");
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        Table::new(&["A"]).row(vec!["1".into(), "2".into()]);
    }
}
