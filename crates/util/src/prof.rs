//! Lightweight timing instrumentation: named timer scopes.
//!
//! The cold synthesis path (`HlsFlow::run` stages, graph construction,
//! trimming) is instrumented with [`scope`] guards. When profiling is
//! disabled — the default — a scope costs one relaxed atomic load, so the
//! instrumentation can stay in the hot paths permanently. When enabled
//! (via [`set_enabled`]), each scope records its wall time into a global
//! accumulator keyed by name; [`entries`] and [`report`] read the result.
//!
//! Scopes are thread-safe: parallel dataset workers accumulate into the
//! same counters. Nested scopes each record their own wall time, so a
//! parent stage ("hls") includes its children ("hls.lower", ...) — the
//! report is an attribution tree flattened by dotted names, not a
//! partition.
//!
//! # Examples
//!
//! ```
//! use pg_util::prof;
//! prof::set_enabled(true);
//! prof::reset();
//! {
//!     let _t = prof::scope("work");
//!     std::hint::black_box(40 + 2);
//! }
//! let entries = prof::entries();
//! assert_eq!(entries.len(), 1);
//! assert_eq!(entries[0].name, "work");
//! assert_eq!(entries[0].count, 1);
//! prof::set_enabled(false);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<&'static str, (u64, u64)>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, (u64, u64)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Is profiling currently recording?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off (off by default; scopes are near-free while
/// off).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clears all accumulated timings.
pub fn reset() {
    registry().lock().expect("prof lock").clear();
}

/// One accumulated timer.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfEntry {
    /// Scope name (dotted hierarchy by convention, e.g. `hls.schedule`).
    pub name: &'static str,
    /// Total wall time spent inside the scope.
    pub total_secs: f64,
    /// Number of times the scope ran.
    pub count: u64,
}

impl ProfEntry {
    /// Mean wall time per invocation.
    pub fn mean_secs(&self) -> f64 {
        self.total_secs / self.count.max(1) as f64
    }
}

/// Snapshot of every accumulator, sorted by descending total time.
pub fn entries() -> Vec<ProfEntry> {
    let mut out: Vec<ProfEntry> = registry()
        .lock()
        .expect("prof lock")
        .iter()
        .map(|(&name, &(ns, count))| ProfEntry {
            name,
            total_secs: ns as f64 / 1e9,
            count,
        })
        .collect();
    out.sort_by(|a, b| {
        b.total_secs
            .partial_cmp(&a.total_secs)
            .expect("finite totals")
            .then(a.name.cmp(b.name))
    });
    out
}

/// RAII guard recording elapsed wall time on drop (no-op while disabled).
#[must_use = "a dropped scope records zero time"]
pub struct Scope {
    name: &'static str,
    start: Option<Instant>,
}

/// Opens a named timer scope. The returned guard records on drop.
pub fn scope(name: &'static str) -> Scope {
    Scope {
        name,
        start: enabled().then(Instant::now),
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            let mut reg = registry().lock().expect("prof lock");
            let slot = reg.entry(self.name).or_insert((0, 0));
            slot.0 += ns;
            slot.1 += 1;
        }
    }
}

/// Formats [`entries`] as an aligned text table. `total_secs` (when
/// positive) adds a share-of-total column so stage attribution reads off
/// directly.
pub fn report(total_secs: f64) -> String {
    let entries = entries();
    let mut out = format!(
        "{:<28} {:>10} {:>12} {:>12} {:>7}\n",
        "scope", "calls", "total ms", "mean us", "share"
    );
    for e in &entries {
        let share = if total_secs > 0.0 {
            format!("{:.1}%", 100.0 * e.total_secs / total_secs)
        } else {
            "-".into()
        };
        out.push_str(&format!(
            "{:<28} {:>10} {:>12.2} {:>12.2} {:>7}\n",
            e.name,
            e.count,
            e.total_secs * 1e3,
            e.mean_secs() * 1e6,
            share
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so exercise everything in one test —
    // parallel test threads would otherwise race reset() calls.
    #[test]
    fn scopes_accumulate_and_reset() {
        set_enabled(true);
        reset();
        for _ in 0..3 {
            let _t = scope("prof_test.a");
            std::hint::black_box(1 + 1);
        }
        {
            let _outer = scope("prof_test.outer");
            let _inner = scope("prof_test.outer.inner");
        }
        let all = entries();
        let a = all.iter().find(|e| e.name == "prof_test.a").unwrap();
        assert_eq!(a.count, 3);
        assert!(a.total_secs >= 0.0);
        assert!(a.mean_secs() <= a.total_secs.max(1e-12) + 1e-9);
        assert!(all.iter().any(|e| e.name == "prof_test.outer.inner"));

        let table = report(a.total_secs.max(1e-9));
        assert!(table.contains("prof_test.a"));
        assert!(table.contains("scope"));

        // Disabled scopes record nothing.
        set_enabled(false);
        reset();
        {
            let _t = scope("prof_test.disabled");
        }
        assert!(entries().is_empty());

        // Threads share the accumulator.
        set_enabled(true);
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _t = scope("prof_test.mt");
                });
            }
        });
        let all = entries();
        assert_eq!(
            all.iter().find(|e| e.name == "prof_test.mt").unwrap().count,
            4
        );
        set_enabled(false);
        reset();
    }
}
