//! Shared utilities for the PowerGear reproduction workspace.
//!
//! Provides a deterministic pseudo-random number generator ([`Rng64`]),
//! summary statistics used throughout the evaluation harness, plain-text
//! table/CSV writers used by the benchmark binaries to regenerate the
//! paper's tables and figures, lightweight timer-scope instrumentation
//! ([`prof`]) attributing cold-synthesis time across pipeline stages, and
//! the workspace observability layer ([`metrics`] registry + [`trace`]
//! per-request spans) surfaced by the serving daemon.
//!
//! # Examples
//!
//! ```
//! use pg_util::{mean, Rng64};
//! let mut rng = Rng64::new(1);
//! let xs: Vec<f64> = (0..8).map(|_| rng.f64()).collect();
//! assert!(mean(&xs) > 0.0);
//! ```

pub mod csv;
pub mod metrics;
pub mod prof;
pub mod rng;
pub mod stats;
pub mod table;
pub mod trace;

pub use csv::CsvWriter;
pub use rng::Rng64;
pub use stats::{mape, mean, median, percentile, rmse, stddev};
pub use table::Table;
