//! Summary statistics shared by the evaluation harness.
//!
//! The paper reports estimation quality as mean absolute percentage error
//! (MAPE) against on-board measurement; [`mape`] implements exactly that
//! metric and the rest are helpers for dataset/table summaries.

/// Arithmetic mean; `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(pg_util::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; `0.0` for slices shorter than two.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (average of the middle two for even lengths); `0.0` when empty.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Linear-interpolated percentile `p` in `[0, 100]`; `0.0` when empty.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    if v.len() == 1 {
        return v[0];
    }
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    v[lo] * (1.0 - frac) + v[hi] * frac
}

/// Mean absolute percentage error (%), the paper's accuracy metric.
///
/// Targets with absolute value below `1e-12` are skipped to avoid division
/// by zero (they do not occur in practice: power is strictly positive).
///
/// # Examples
///
/// ```
/// let err = pg_util::mape(&[110.0, 90.0], &[100.0, 100.0]);
/// assert!((err - 10.0).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn mape(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "mape requires equal lengths");
    let mut total = 0.0;
    let mut n = 0usize;
    for (p, t) in pred.iter().zip(target) {
        if t.abs() > 1e-12 {
            total += ((p - t) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * total / n as f64
    }
}

/// Root-mean-square error between predictions and targets (same unit as
/// the inputs). Empty inputs yield `0.0`.
///
/// # Examples
///
/// ```
/// let err = pg_util::rmse(&[3.0, 1.0], &[0.0, 1.0]);
/// assert!((err - (4.5f64).sqrt()).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn rmse(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "rmse requires equal lengths");
    if pred.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (p, t) in pred.iter().zip(target) {
        let d = p - t;
        total += d * d;
    }
    (total / pred.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_basic() {
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[2.0], &[0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn stddev_basic() {
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(stddev(&[5.0]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert!((percentile(&xs, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn mape_matches_hand_computation() {
        // |(1.1-1)/1| = 0.1, |(0.8-1)/1| = 0.2 -> 15 %
        let e = mape(&[1.1, 0.8], &[1.0, 1.0]);
        assert!((e - 15.0).abs() < 1e-9);
    }

    #[test]
    fn mape_skips_zero_targets() {
        let e = mape(&[1.0, 5.0], &[0.0, 4.0]);
        assert!((e - 25.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn mape_length_mismatch_panics() {
        mape(&[1.0], &[1.0, 2.0]);
    }
}
