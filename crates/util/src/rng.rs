//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the reproduction (dataset sampling, weight
//! initialization, dropout, placement jitter, measurement noise) draws from
//! [`Rng64`], a small xoshiro256\*\*-based generator seeded explicitly, so
//! that every experiment is bit-reproducible across runs and platforms.

/// A deterministic random number generator (xoshiro256\*\* seeded via
/// SplitMix64).
///
/// # Examples
///
/// ```
/// use pg_util::Rng64;
/// let mut rng = Rng64::new(42);
/// let a = rng.next_u64();
/// let b = Rng64::new(42).next_u64();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng64 {
    state: [u64; 4],
    /// Cached second normal deviate from Box-Muller.
    spare_normal: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 {
            state,
            spare_normal: None,
        }
    }

    /// Derives an independent child generator; useful for splitting one
    /// experiment seed into per-component streams.
    pub fn fork(&mut self, stream: u64) -> Self {
        let s = self
            .next_u64()
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Rng64::new(s)
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn f32(&mut self) -> f32 {
        self.f64() as f32
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "Rng64::below requires bound > 0");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng64::range requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Standard normal deviate (Box-Muller).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let m = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * m);
                return u * m;
            }
        }
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher-Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.len() < 2 {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Chooses a uniformly random element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len())])
        }
    }

    /// Samples `k` distinct indices from `0..n` (reservoir sampling order is
    /// then shuffled). Returns fewer than `k` if `n < k`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx
    }
}

/// Stateless 64-bit hash used for deterministic "noise" that must depend only
/// on an identifier (e.g. per-design measurement jitter).
///
/// # Examples
///
/// ```
/// let h1 = pg_util::rng::hash64(b"atax-cfg-3");
/// let h2 = pg_util::rng::hash64(b"atax-cfg-3");
/// assert_eq!(h1, h2);
/// ```
pub fn hash64(bytes: &[u8]) -> u64 {
    // FNV-1a followed by a SplitMix64 finalizer for avalanche.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut s = h;
    splitmix64(&mut s)
}

/// Stateless mix of several identifiers into one seed (SplitMix64 steps
/// folded over the inputs). Use this to derive per-worker RNG seeds as a
/// pure function of coordinates like `(seed, epoch, batch, shard)` — no
/// stream is consumed, so the derivation is independent of how many
/// workers exist or in which order they run.
///
/// # Examples
///
/// ```
/// let a = pg_util::rng::mix64(&[42, 0, 3, 1]);
/// let b = pg_util::rng::mix64(&[42, 0, 3, 1]);
/// assert_eq!(a, b);
/// assert_ne!(a, pg_util::rng::mix64(&[42, 0, 3, 2]));
/// ```
pub fn mix64(parts: &[u64]) -> u64 {
    let mut s: u64 = 0x243F_6A88_85A3_08D3; // pi fractional bits, arbitrary non-zero start
    for &p in parts {
        s ^= p;
        s = splitmix64(&mut s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng64::new(3);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng64::new(4);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn range_within() {
        let mut rng = Rng64::new(5);
        for _ in 0..500 {
            let x = rng.range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        Rng64::new(0).below(0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng64::new(6);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::new(8);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng64::new(9);
        let s = rng.sample_indices(30, 10);
        assert_eq!(s.len(), 10);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn sample_indices_small_population() {
        let mut rng = Rng64::new(10);
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn hash64_stable_and_spread() {
        assert_eq!(hash64(b"abc"), hash64(b"abc"));
        assert_ne!(hash64(b"abc"), hash64(b"abd"));
    }

    #[test]
    fn mix64_pure_and_order_sensitive() {
        assert_eq!(mix64(&[1, 2, 3]), mix64(&[1, 2, 3]));
        assert_ne!(mix64(&[1, 2, 3]), mix64(&[3, 2, 1]));
        assert_ne!(mix64(&[0]), mix64(&[0, 0]));
        // Seeding an Rng64 from a mixed seed is reproducible.
        let mut a = Rng64::new(mix64(&[7, 0, 4, 2]));
        let mut b = Rng64::new(mix64(&[7, 0, 4, 2]));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_streams_independent() {
        let mut root = Rng64::new(11);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn bool_probability() {
        let mut rng = Rng64::new(12);
        let hits = (0..10_000).filter(|_| rng.bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
