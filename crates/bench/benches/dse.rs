//! Criterion benches for the DSE machinery behind Table III and Fig. 4:
//! Pareto frontier extraction, ADRS evaluation and the full iterative
//! sampling loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_dse::{adrs, pareto_frontier, run_dse, DseConfig, Point};
use pg_util::Rng64;

fn synth_space(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = Rng64::new(seed);
    let mut lat = Vec::with_capacity(n);
    let mut pow = Vec::with_capacity(n);
    for i in 0..n {
        let x = (i + 1) as f64 / n as f64;
        lat.push(2000.0 * x + 100.0 * rng.f64());
        pow.push(0.4 / x + 0.05 * rng.normal().abs());
    }
    (lat, pow)
}

fn bench_pareto(c: &mut Criterion) {
    let mut g = c.benchmark_group("pareto_frontier");
    g.sample_size(30);
    for n in [64usize, 256, 1024] {
        let (lat, pow) = synth_space(n, 1);
        let pts: Vec<Point> = lat
            .iter()
            .zip(&pow)
            .enumerate()
            .map(|(id, (&l, &p))| Point {
                id,
                latency: l,
                power: p,
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| pareto_frontier(pts))
        });
    }
    g.finish();
}

fn bench_adrs(c: &mut Criterion) {
    let (lat, pow) = synth_space(512, 2);
    let pts: Vec<Point> = lat
        .iter()
        .zip(&pow)
        .enumerate()
        .map(|(id, (&l, &p))| Point {
            id,
            latency: l,
            power: p,
        })
        .collect();
    let exact = pareto_frontier(&pts);
    let approx = pareto_frontier(&pts[..256]);
    let mut g = c.benchmark_group("adrs");
    g.sample_size(50);
    g.bench_function("eq8", |b| b.iter(|| adrs(&exact, &approx)));
    g.finish();
}

fn bench_dse_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("dse_loop");
    g.sample_size(10);
    for budget in [0.2f64, 0.4] {
        let (lat, pow) = synth_space(256, 3);
        let noisy: Vec<f64> = {
            let mut rng = Rng64::new(4);
            pow.iter().map(|p| p * (1.0 + 0.1 * rng.normal())).collect()
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("budget{}", (budget * 100.0) as u32)),
            &budget,
            |b, &budget| b.iter(|| run_dse(&lat, &pow, &noisy, &DseConfig::with_budget(budget, 7))),
        );
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pareto, bench_adrs, bench_dse_loop
);
criterion_main!(benches);
