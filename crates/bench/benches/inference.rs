//! Criterion bench over the serving layer: sequential `Ensemble::predict`
//! versus the batched multi-core `InferenceEngine`, with throughput
//! reporting (graphs/s) via the extended criterion shim.
//!
//! `PG_BENCH_QUICK=1` shrinks the dataset and measurement budget for the
//! CI perf-smoke lane.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pg_datasets::{build_kernel_dataset_cached, polybench, DatasetConfig, HlsCache, PowerTarget};
use pg_gnn::{train_ensemble, InferenceEngine, ModelConfig, ServeConfig, TrainConfig};
use pg_graphcon::PowerGraph;

fn quick() -> bool {
    std::env::var("PG_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn serving_fixture() -> (Vec<PowerGraph>, pg_gnn::Ensemble) {
    let cfg = DatasetConfig {
        size: 10,
        max_samples: if quick() { 16 } else { 48 },
        seed: 1,
        threads: 1,
    };
    let cache = HlsCache::new();
    let ds = build_kernel_dataset_cached(&polybench::bicg(10), &cfg, &cache);
    let data = ds.labeled(PowerTarget::Dynamic);
    let mut tc = TrainConfig::quick(ModelConfig::hec(16));
    tc.epochs = if quick() { 2 } else { 6 };
    tc.folds = 2;
    tc.threads = 1;
    let ensemble = train_ensemble(&data, &tc);
    let graphs: Vec<PowerGraph> = ds.samples.iter().map(|s| s.graph.clone()).collect();
    (graphs, ensemble)
}

fn bench_inference(c: &mut Criterion) {
    let (graphs, ensemble) = serving_fixture();
    let refs: Vec<&PowerGraph> = graphs.iter().collect();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut g = c.benchmark_group("inference");
    g.sample_size(if quick() { 10 } else { 20 });
    g.throughput(Throughput::Elements(refs.len() as u64));

    g.bench_function("sequential", |b| b.iter(|| ensemble.predict(&refs)));

    let mut thread_counts = vec![1, 2, cores];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    for threads in thread_counts {
        let engine = InferenceEngine::with_config(&ensemble, ServeConfig::new(8, threads));
        g.bench_with_input(
            BenchmarkId::new("engine", format!("{threads}t")),
            &engine,
            |b, e| b.iter(|| e.predict(&refs)),
        );
    }
    g.finish();
}

fn bench_hls_cache(c: &mut Criterion) {
    let kernel = polybench::bicg(10);
    let cfg = DatasetConfig {
        size: 10,
        max_samples: if quick() { 8 } else { 16 },
        seed: 1,
        threads: 1,
    };
    let mut g = c.benchmark_group("hls_cache");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cfg.max_samples as u64));
    g.bench_function("cold_build", |b| {
        b.iter(|| build_kernel_dataset_cached(&kernel, &cfg, &HlsCache::new()))
    });
    let warm = HlsCache::new();
    build_kernel_dataset_cached(&kernel, &cfg, &warm);
    g.bench_function("warm_rebuild", |b| {
        b.iter(|| build_kernel_dataset_cached(&kernel, &cfg, &warm))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_inference, bench_hls_cache
);
criterion_main!(benches);
