//! Criterion micro-benches over the estimation pipeline — the runtime
//! backbone of Table I's speedup column: PowerGear's inference flow
//! (trace + graph construction + GNN ensemble) versus the Vivado-surrogate
//! estimation flow, plus the individual stages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_activity::{execute, ExecutionTrace, Stimuli};
use pg_datasets::{build_kernel_dataset, polybench, DatasetConfig, PowerTarget};
use pg_gnn::{train_ensemble, ModelConfig, TrainConfig};
use pg_graphcon::GraphFlow;
use pg_hls::{Directives, HlsFlow};
use pg_powersim::{BoardOracle, VivadoEstimator};

fn bench_stage_pipeline(c: &mut Criterion) {
    let kernel = polybench::atax(12);
    let mut d = Directives::new();
    d.pipeline("j").unroll("j", 2).partition("A", 2);
    let flow = HlsFlow::new();
    let design = flow.run(&kernel, &d).expect("synthesis");
    let stim = Stimuli::for_kernel(&kernel, 0);
    let trace = execute(&design, &stim);
    let gf = GraphFlow::new();

    let mut g = c.benchmark_group("pipeline_stages");
    g.sample_size(20);
    g.bench_function("hls_flow", |b| {
        b.iter(|| flow.run(&kernel, &d).expect("synthesis"))
    });
    g.bench_function("activity_trace", |b| b.iter(|| execute(&design, &stim)));
    g.bench_function("graph_construction", |b| {
        b.iter(|| gf.build(&design, &trace))
    });
    g.bench_function("oracle_measure", |b| {
        b.iter(|| BoardOracle::default().measure(&design, &trace))
    });
    g.finish();
}

fn bench_speedup_pair(c: &mut Criterion) {
    // Table I runtime column: PowerGear inference flow vs Vivado estimation
    let cfg = DatasetConfig {
        size: 12,
        max_samples: 16,
        seed: 1,
        threads: 2,
    };
    let ds = build_kernel_dataset(&polybench::mvt(12), &cfg);
    let data = ds.labeled(PowerTarget::Dynamic);
    let mut tc = TrainConfig::quick(ModelConfig::hec(16));
    tc.epochs = 6;
    tc.folds = 2;
    tc.threads = 1;
    let ensemble = train_ensemble(&data, &tc);

    let kernel = polybench::mvt(12);
    let mut d = Directives::new();
    d.pipeline("j").unroll("j", 4).partition("A", 4);
    let flow = HlsFlow::new();
    let design = flow.run(&kernel, &d).expect("synthesis");
    let stim = Stimuli::for_kernel(&kernel, 1);
    let est = VivadoEstimator::new();
    let gf = GraphFlow::new();

    let mut g = c.benchmark_group("table1_speedup");
    g.sample_size(10);
    g.bench_function("powergear_inference_flow", |b| {
        b.iter(|| {
            let trace = execute(&design, &stim);
            let mut graph = gf.build(&design, &trace);
            graph.meta = design
                .report
                .metadata_features(&ds.baseline)
                .into_iter()
                .map(|v| v as f32)
                .collect();
            ensemble.predict(&[&graph])
        })
    });
    g.bench_function("vivado_estimation_flow", |b| {
        b.iter(|| est.estimate_raw(&design))
    });
    g.finish();
}

fn bench_graph_scale(c: &mut Criterion) {
    // graph construction cost versus unroll factor (design size)
    let kernel = polybench::gemm(8);
    let flow = HlsFlow::new();
    let stim = Stimuli::for_kernel(&kernel, 0);
    let mut g = c.benchmark_group("graph_vs_unroll");
    g.sample_size(10);
    for unroll in [1usize, 2, 4] {
        let mut d = Directives::new();
        if unroll > 1 {
            d.pipeline("k").unroll("k", unroll).partition("A", unroll);
        }
        let design = flow.run(&kernel, &d).expect("synthesis");
        let trace: ExecutionTrace = execute(&design, &stim);
        g.bench_with_input(BenchmarkId::from_parameter(unroll), &unroll, |b, _| {
            b.iter(|| GraphFlow::new().build(&design, &trace))
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_stage_pipeline, bench_speedup_pair, bench_graph_scale
);
criterion_main!(benches);
