//! Criterion benches over the learning stack: forward/backward cost of
//! HEC-GNN versus the baseline convolutions (the models compared in Tables
//! I and II), plus HL-Pow's GBDT inference.

use criterion::{criterion_group, criterion_main, Criterion};
use pg_datasets::{build_kernel_dataset, polybench, DatasetConfig, PowerTarget};
use pg_gnn::{Arch, GraphBatch, ModelConfig, PowerModel};
use pg_graphcon::PowerGraph;
use pg_hlpow::HlPowModel;
use pg_tensor::Tape;
use pg_util::Rng64;

fn dataset_graphs() -> (Vec<PowerGraph>, Vec<f64>) {
    let cfg = DatasetConfig {
        size: 12,
        max_samples: 24,
        seed: 1,
        threads: 2,
    };
    let ds = build_kernel_dataset(&polybench::bicg(12), &cfg);
    let graphs: Vec<PowerGraph> = ds.samples.iter().map(|s| s.graph.clone()).collect();
    let targets: Vec<f64> = ds
        .samples
        .iter()
        .map(|s| s.label(PowerTarget::Dynamic))
        .collect();
    (graphs, targets)
}

fn bench_conv_forward(c: &mut Criterion) {
    let (graphs, targets) = dataset_graphs();
    let refs: Vec<&PowerGraph> = graphs.iter().collect();
    let batch = GraphBatch::new(&refs, &targets);
    let mut g = c.benchmark_group("conv_forward");
    g.sample_size(20);
    for (name, cfg) in [
        ("hec", ModelConfig::hec(32)),
        ("gcn", ModelConfig::baseline(Arch::Gcn, 32)),
        ("sage", ModelConfig::baseline(Arch::Sage, 32)),
        ("graphconv", ModelConfig::baseline(Arch::GraphConv, 32)),
        ("gine", ModelConfig::baseline(Arch::Gine, 32)),
    ] {
        let model = PowerModel::new(cfg, 1);
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut tape = Tape::new();
                let mut rng = Rng64::new(0);
                let out = model.forward(&mut tape, &batch, false, &mut rng);
                tape.value(out).data[0]
            })
        });
    }
    g.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let (graphs, targets) = dataset_graphs();
    let refs: Vec<&PowerGraph> = graphs.iter().collect();
    let batch = GraphBatch::new(&refs, &targets);
    let mut model = PowerModel::new(ModelConfig::hec(32), 2);
    model.target_scale = 0.3;
    let mut g = c.benchmark_group("training");
    g.sample_size(10);
    g.bench_function("hec_loss_and_grads", |b| {
        b.iter(|| {
            let mut rng = Rng64::new(1);
            model.loss_and_grads(&batch, &mut rng)
        })
    });
    g.finish();
}

fn bench_hlpow(c: &mut Criterion) {
    let (graphs, targets) = dataset_graphs();
    let data: Vec<(&PowerGraph, f64)> = graphs.iter().zip(targets.iter().copied()).collect();
    let model = HlPowModel::train(&data, 1);
    let mut g = c.benchmark_group("hlpow");
    g.sample_size(20);
    g.bench_function("gbdt_inference", |b| b.iter(|| model.predict(&graphs[0])));
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_conv_forward, bench_train_step, bench_hlpow
);
criterion_main!(benches);
